//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored serde subset — no `syn`/`quote` (unavailable offline), just a
//! small token-tree walk.
//!
//! Supported shapes are exactly what this workspace declares: non-generic
//! structs (named, tuple, unit) and non-generic enums whose variants are
//! unit, tuple, or struct-like. Anything else produces a compile error
//! naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving item.
enum Item {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

enum Variant {
    Unit(String),
    Tuple(String, usize),
    Struct(String, Vec<String>),
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Skip `#[...]` attributes and visibility qualifiers at `i`.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 1; // the attribute's bracket group
                if matches!(tokens.get(i), Some(TokenTree::Group(_))) {
                    i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1; // optional pub(...) restriction
                if matches!(
                    tokens.get(i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    i += 1;
                }
            }
            _ => return i,
        }
    }
}

/// Split a field/variant list on commas that sit outside both nested
/// groups (automatic) and `<...>` type-argument nesting (tracked here).
fn split_top_level(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle = 0i32;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    out.push(std::mem::take(&mut cur));
                    continue;
                }
                _ => {}
            }
        }
        cur.push(t.clone());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Leading `name :` of one named-field declaration.
fn field_name(tokens: &[TokenTree]) -> Option<String> {
    let i = skip_attrs_and_vis(tokens, 0);
    match tokens.get(i) {
        Some(TokenTree::Ident(id)) => Some(id.to_string()),
        _ => None,
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, got {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "vendored serde_derive does not support generic types (type {name})"
        ));
    }

    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                let fields = split_top_level(&inner)
                    .iter()
                    .filter_map(|f| field_name(f))
                    .collect();
                Ok(Item::NamedStruct { name, fields })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Ok(Item::TupleStruct {
                    name,
                    arity: split_top_level(&inner).len(),
                })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::UnitStruct { name }),
            other => Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                let mut variants = Vec::new();
                for v in split_top_level(&inner) {
                    let j = skip_attrs_and_vis(&v, 0);
                    let vname = match v.get(j) {
                        Some(TokenTree::Ident(id)) => id.to_string(),
                        None => continue, // trailing comma
                        other => return Err(format!("bad variant: {other:?}")),
                    };
                    if matches!(v.get(j + 1), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
                        // discriminant (= expr): still a unit variant
                        variants.push(Variant::Unit(vname));
                        continue;
                    }
                    match v.get(j + 1) {
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                            variants.push(Variant::Tuple(vname, split_top_level(&inner).len()));
                        }
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                            let fields = split_top_level(&inner)
                                .iter()
                                .filter_map(|f| field_name(f))
                                .collect();
                            variants.push(Variant::Struct(vname, fields));
                        }
                        None => variants.push(Variant::Unit(vname)),
                        other => return Err(format!("bad variant body: {other:?}")),
                    }
                }
                Ok(Item::Enum { name, variants })
            }
            other => Err(format!("unsupported enum body: {other:?}")),
        },
        other => Err(format!("cannot derive for a {other}")),
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let (name, body) = match &item {
        Item::NamedStruct { name, fields } => {
            let mut b = String::new();
            b.push_str("use ::serde::ser::SerializeStruct as _;\n");
            b.push_str(&format!(
                "let mut st = serializer.serialize_struct({name:?}, {})?;\n",
                fields.len()
            ));
            for f in fields {
                b.push_str(&format!("st.serialize_field({f:?}, &self.{f})?;\n"));
            }
            b.push_str("st.end()");
            (name, b)
        }
        Item::TupleStruct { name, arity } => {
            let mut b = String::new();
            b.push_str("use ::serde::ser::SerializeTupleStruct as _;\n");
            b.push_str(&format!(
                "let mut st = serializer.serialize_tuple_struct({name:?}, {arity})?;\n"
            ));
            for k in 0..*arity {
                b.push_str(&format!("st.serialize_field(&self.{k})?;\n"));
            }
            b.push_str("st.end()");
            (name, b)
        }
        Item::UnitStruct { name } => (name, format!("serializer.serialize_unit_struct({name:?})")),
        Item::Enum { name, variants } => {
            let mut b = String::from("match self {\n");
            for (idx, v) in variants.iter().enumerate() {
                match v {
                    Variant::Unit(vn) => b.push_str(&format!(
                        "{name}::{vn} => serializer.serialize_unit_variant({name:?}, {idx}u32, {vn:?}),\n"
                    )),
                    Variant::Tuple(vn, arity) => {
                        let binds: Vec<String> =
                            (0..*arity).map(|k| format!("__f{k}")).collect();
                        b.push_str(&format!(
                            "{name}::{vn}({}) => {{\nuse ::serde::ser::SerializeTupleVariant as _;\n\
                             let mut tv = serializer.serialize_tuple_variant({name:?}, {idx}u32, {vn:?}, {arity})?;\n",
                            binds.join(", ")
                        ));
                        for bind in &binds {
                            b.push_str(&format!("tv.serialize_field({bind})?;\n"));
                        }
                        b.push_str("tv.end()\n},\n");
                    }
                    Variant::Struct(vn, fields) => {
                        b.push_str(&format!(
                            "{name}::{vn} {{ {} }} => {{\nuse ::serde::ser::SerializeStructVariant as _;\n\
                             let mut sv = serializer.serialize_struct_variant({name:?}, {idx}u32, {vn:?}, {})?;\n",
                            fields.join(", "),
                            fields.len()
                        ));
                        for f in fields {
                            b.push_str(&format!("sv.serialize_field({f:?}, {f})?;\n"));
                        }
                        b.push_str("sv.end()\n},\n");
                    }
                }
            }
            b.push('}');
            (name, b)
        }
    };

    format!(
        "#[automatically_derived]\n\
         impl ::serde::ser::Serialize for {name} {{\n\
             fn serialize<__S: ::serde::ser::Serializer>(&self, serializer: __S)\n\
                 -> ::std::result::Result<__S::Ok, __S::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
    .parse()
    .unwrap()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let name = match &item {
        Item::NamedStruct { name, .. }
        | Item::TupleStruct { name, .. }
        | Item::UnitStruct { name }
        | Item::Enum { name, .. } => name,
    };
    // The vendored Deserialize is a marker trait (nothing in the
    // workspace deserializes through serde), so the impl is empty.
    format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::de::Deserialize<'de> for {name} {{}}"
    )
    .parse()
    .unwrap()
}
