//! Minimal, dependency-free reimplementation of the subset of `criterion`
//! this workspace uses (no network access to crates.io in the build
//! environment).
//!
//! Semantics: each benchmark is warmed up briefly, then timed over a
//! fixed wall-clock budget, and the mean time per iteration is printed.
//! There is no statistical analysis, HTML report, or baseline storage —
//! numbers are for eyeballing relative cost, which is all the repo's
//! figures/microbench harness needs offline.
//!
//! Passing `--test` (as `cargo test` does for bench targets) runs each
//! benchmark exactly once to check it executes, without timing loops.

use std::time::{Duration, Instant};

/// Identifies a benchmark within a group, e.g. `function_name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Passed to the benchmark closure; `iter` runs and times the workload.
pub struct Bencher {
    test_mode: bool,
    /// Wall-clock budget for the measurement loop.
    budget: Duration,
    /// Mean nanoseconds per iteration, filled by `iter`.
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            std::hint::black_box(f());
            self.mean_ns = 0.0;
            self.iters = 1;
            return;
        }
        // Warmup: a few runs to populate caches and estimate cost.
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_iters < 3 || (warmup_start.elapsed() < self.budget / 10 && warmup_iters < 1000)
        {
            std::hint::black_box(f());
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed() / warmup_iters as u32;

        // Measurement: as many iterations as fit the budget, at least one.
        let target = if per_iter.is_zero() {
            1000
        } else {
            (self.budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 100_000) as u64
        };
        let start = Instant::now();
        for _ in 0..target {
            std::hint::black_box(f());
        }
        let elapsed = start.elapsed();
        self.mean_ns = elapsed.as_nanos() as f64 / target as f64;
        self.iters = target;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c Criterion,
    name: String,
    /// Retained for API compatibility; the measurement loop is
    /// time-budgeted rather than sample-count based.
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            test_mode: self.criterion.test_mode,
            budget: self.criterion.budget,
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut b);
        self.report(&id, &b);
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            test_mode: self.criterion.test_mode,
            budget: self.criterion.budget,
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut b, input);
        self.report(&id, &b);
        self
    }

    pub fn finish(&mut self) {}

    fn report(&self, id: &BenchmarkId, b: &Bencher) {
        if self.criterion.test_mode {
            println!("test {}/{} ... ok", self.name, id.id);
        } else {
            println!(
                "{}/{}: {} ({} iters)",
                self.name,
                id.id,
                fmt_ns(b.mean_ns),
                b.iters
            );
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s/iter", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms/iter", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs/iter", ns / 1e3)
    } else {
        format!("{ns:.1} ns/iter")
    }
}

/// Benchmark driver. `Default` reads the command line for `--test`.
pub struct Criterion {
    test_mode: bool,
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            test_mode,
            budget: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        if !self.test_mode {
            println!("\n== {name} ==");
        }
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 100,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Collect benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point for `harness = false` bench binaries.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_nonzero_time() {
        let mut b = Bencher {
            test_mode: false,
            budget: Duration::from_millis(20),
            mean_ns: 0.0,
            iters: 0,
        };
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..100u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert!(b.iters >= 1);
        assert!(b.mean_ns > 0.0);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut b = Bencher {
            test_mode: true,
            budget: Duration::from_millis(20),
            mean_ns: 0.0,
            iters: 0,
        };
        let mut count = 0;
        b.iter(|| count += 1);
        assert_eq!(count, 1);
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("assign", "fudj");
        assert_eq!(id.id, "assign/fudj");
    }
}
