//! Minimal, dependency-free reimplementation of the subset of the
//! `parking_lot` crate this workspace uses (no network access to
//! crates.io in the build environment).
//!
//! Wraps `std::sync` primitives, exposing the poison-free `parking_lot`
//! calling convention: `lock()`/`read()`/`write()` return guards directly.
//! A poisoned std lock (a panic while held) is deliberately ignored —
//! `parking_lot` has no poisoning, so neither does this shim.

use std::sync::{self, LockResult};

fn unpoison<G>(r: LockResult<G>) -> G {
    match r {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Mutual exclusion lock without poisoning.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        unpoison(self.inner.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        unpoison(self.inner.lock())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.inner.get_mut())
    }
}

/// Reader-writer lock without poisoning.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// RAII read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        unpoison(self.inner.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        unpoison(self.inner.read())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        unpoison(self.inner.write())
    }

    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.inner.get_mut())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn lock_survives_panic_while_held() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: no poisoning, lock stays usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
