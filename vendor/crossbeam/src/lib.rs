//! Minimal, dependency-free reimplementation of the `crossbeam::channel`
//! subset this workspace uses (no network access to crates.io in the
//! build environment).
//!
//! Provides an unbounded MPMC channel: both [`channel::Sender`] and
//! [`channel::Receiver`] are clonable, sends never block, and receives
//! block until a message arrives or every sender is dropped.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
    }

    /// Sending half; clonable. The channel disconnects when the last
    /// sender is dropped.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; clonable (MPMC: each message is delivered to
    /// exactly one receiver).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and every sender has been dropped.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }
    impl std::error::Error for RecvError {}

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueue a message; never blocks.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            // Receiver liveness is not tracked: a send into a channel with
            // no receivers parks the value forever, matching the only way
            // this workspace uses the channel (receivers outlive senders).
            let mut q = match self.shared.queue.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            q.push_back(value);
            drop(q);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender gone: wake every blocked receiver.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or the channel disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = match self.shared.queue.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                q = match self.shared.ready.wait(q) {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = match self.shared.queue.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            if let Some(v) = q.pop_front() {
                return Ok(v);
            }
            if self.shared.senders.load(Ordering::SeqCst) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn send_recv_in_order() {
        let (tx, rx) = channel::unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn disconnect_on_last_sender_drop() {
        let (tx, rx) = channel::unbounded::<i32>();
        let tx2 = tx.clone();
        drop(tx);
        tx2.send(9).unwrap();
        drop(tx2);
        assert_eq!(rx.recv(), Ok(9));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn mpmc_across_threads() {
        let (tx, rx) = channel::unbounded();
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut got = 0;
                    while rx.recv().is_ok() {
                        got += 1;
                    }
                    got
                })
            })
            .collect();
        for i in 0..300 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total: i32 = consumers.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 300);
    }
}
