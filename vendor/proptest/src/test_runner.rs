//! Deterministic RNG and per-property configuration.

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps full-workspace property runs
        // fast on small CI hosts while still exercising varied inputs.
        ProptestConfig { cases: 64 }
    }
}

/// xoshiro256++ seeded from an FNV-1a hash of the test name, so every
/// property sees a reproducible, test-specific stream.
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self::seed_from_u64(h)
    }

    pub fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, the standard way to fill xoshiro state.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, n)`; returns 0 when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        // Modulo bias is irrelevant for test-input generation.
        self.next_u64() % n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let a: Vec<u64> = {
            let mut r = TestRng::for_test("alpha");
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_test("alpha");
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = TestRng::for_test("beta");
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = TestRng::for_test("f64");
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = TestRng::for_test("below");
        for n in [1u64, 2, 7, 1000] {
            for _ in 0..100 {
                assert!(r.below(n) < n);
            }
        }
        assert_eq!(r.below(0), 0);
    }
}
