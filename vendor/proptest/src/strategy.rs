//! The `Strategy` trait and the combinators this workspace uses.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A generator of test inputs. Unlike upstream there is no value tree and
/// no shrinking: `sample` draws one concrete value.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Discard values failing the predicate (resamples instead of
    /// upstream's reject-and-retry bookkeeping).
    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            f,
        }
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// Erase a strategy's concrete type (used by `prop_oneof!`).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted 1000 samples: {}", self.reason);
    }
}

/// Weighted choice between same-valued strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
    total: u64,
}

impl<T> Union<T> {
    pub fn new(options: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one branch");
        let total = options.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! weights sum to zero");
        Union { options, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.options {
            if pick < *w as u64 {
                return s.sample(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weight accounting is exhaustive")
    }
}

// --- integer and float ranges ------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let off = ((rng.next_u64() as u128) % span) as i128;
                (start as i128 + off) as $t
            }
        }
    )+};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.next_f64() as $t * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                // next_f64 is in [0, 1); scale slightly past the end so the
                // inclusive bound is reachable after clamping.
                let v = start + rng.next_f64() as $t * (end - start) * 1.000001;
                v.min(end)
            }
        }
    )+};
}
float_range_strategy!(f32, f64);

// --- tuples ------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}
tuple_strategy!(S0.0);
tuple_strategy!(S0.0, S1.1);
tuple_strategy!(S0.0, S1.1, S2.2);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7, S8.8);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7, S8.8, S9.9);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7, S8.8, S9.9, S10.10);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7, S8.8, S9.9, S10.10, S11.11);

// --- string patterns ---------------------------------------------------------

/// One element of the mini-pattern language: `[class]`, `.`, or a literal
/// character, each with a repetition count range (default exactly 1).
struct PatternAtom {
    chars: Option<Vec<char>>, // None = any printable ASCII
    min: usize,
    max: usize,
}

fn parse_pattern(pat: &str) -> Vec<PatternAtom> {
    let chars: Vec<char> = pat.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let set = match chars[i] {
            '[' => {
                let mut set = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i], chars[i + 2]);
                        assert!(lo <= hi, "bad range {lo}-{hi} in pattern {pat:?}");
                        set.extend((lo..=hi).collect::<Vec<char>>());
                        i += 3;
                    } else {
                        set.push(chars[i]);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated class in pattern {pat:?}");
                i += 1; // consume ']'
                Some(set)
            }
            '.' => {
                i += 1;
                None
            }
            c => {
                i += 1;
                Some(vec![c])
            }
        };
        let (mut min, mut max) = (1usize, 1usize);
        if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unterminated repetition in pattern {pat:?}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            if let Some((lo, hi)) = body.split_once(',') {
                min = lo.trim().parse().expect("pattern repetition lower bound");
                max = hi.trim().parse().expect("pattern repetition upper bound");
            } else {
                min = body.trim().parse().expect("pattern repetition count");
                max = min;
            }
            i = close + 1;
        }
        atoms.push(PatternAtom {
            chars: set,
            min,
            max,
        });
    }
    atoms
}

/// String literals act as pattern strategies, like upstream's
/// regex-derived strategies.
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in parse_pattern(self) {
            let n = atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize;
            for _ in 0..n {
                match &atom.chars {
                    Some(set) => {
                        assert!(!set.is_empty(), "empty class in pattern {self:?}");
                        out.push(set[rng.below(set.len() as u64) as usize]);
                    }
                    None => out.push((0x20 + rng.below(0x5f) as u8) as char),
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_test("strategy-tests")
    }

    #[test]
    fn int_range_stays_in_bounds() {
        let mut r = rng();
        let s = -100i64..100;
        for _ in 0..500 {
            let v = s.sample(&mut r);
            assert!((-100..100).contains(&v));
        }
    }

    #[test]
    fn float_inclusive_range_reaches_bounds_region() {
        let mut r = rng();
        let s = 0.05f64..=1.0;
        for _ in 0..500 {
            let v = s.sample(&mut r);
            assert!((0.05..=1.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn pattern_class_and_repetition() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[a-z][a-z0-9_]{0,8}".sample(&mut r);
            assert!(!s.is_empty() && s.len() <= 9, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn pattern_dot_is_printable() {
        let mut r = rng();
        for _ in 0..50 {
            let s = ".{0,200}".sample(&mut r);
            assert!(s.len() <= 200);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn union_respects_weights_roughly() {
        let mut r = rng();
        let u = Union::new(vec![(9, boxed(Just(0u8))), (1, boxed(Just(1u8)))]);
        let ones: usize = (0..1000).map(|_| u.sample(&mut r) as usize).sum();
        assert!(ones < 300, "weight-1 branch hit {ones}/1000 times");
    }

    #[test]
    fn filter_and_map_compose() {
        let mut r = rng();
        let s = (0i64..100)
            .prop_filter("even", |v| v % 2 == 0)
            .prop_map(|v| v * 10);
        for _ in 0..100 {
            let v = s.sample(&mut r);
            assert_eq!(v % 20, 0);
        }
    }
}
