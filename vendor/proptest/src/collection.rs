//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

/// Vectors of `len` elements drawn from `element`; `len` is sampled from
/// the half-open range like upstream's `SizeRange`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range for vec strategy");
    VecStrategy { element, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.len.start + rng.below((self.len.end - self.len.start) as u64) as usize;
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_in_range() {
        let mut r = TestRng::for_test("vec-len");
        let s = vec(0i64..10, 3..10);
        for _ in 0..200 {
            let v = s.sample(&mut r);
            assert!((3..10).contains(&v.len()));
            assert!(v.iter().all(|x| (0..10).contains(x)));
        }
    }
}
