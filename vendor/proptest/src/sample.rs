//! Sampling strategies (`prop::sample::select`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

pub struct Select<T: Clone> {
    options: Vec<T>,
}

/// Uniformly pick one of the given values.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select requires at least one option");
    Select { options }
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.options[rng.below(self.options.len() as u64) as usize].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_options() {
        let mut r = TestRng::for_test("select");
        let s = select(vec!["a", "b", "c"]);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(s.sample(&mut r));
        }
        assert_eq!(seen.len(), 3);
    }
}
