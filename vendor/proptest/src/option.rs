//! Option strategies (`prop::option::of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

pub struct OptionStrategy<S> {
    inner: S,
}

/// `None` roughly a quarter of the time, otherwise `Some` of the inner
/// strategy's value.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.sample(rng))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_both_variants() {
        let mut r = TestRng::for_test("option-of");
        let s = of(0i64..10);
        let mut none = 0;
        let mut some = 0;
        for _ in 0..200 {
            match s.sample(&mut r) {
                None => none += 1,
                Some(v) => {
                    assert!((0..10).contains(&v));
                    some += 1;
                }
            }
        }
        assert!(none > 0 && some > 0, "none={none} some={some}");
    }
}
