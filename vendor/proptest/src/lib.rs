//! Minimal, dependency-free reimplementation of the subset of `proptest`
//! this workspace uses (the build environment has no network access to
//! crates.io, so heavyweight dev-dependencies are vendored as stubs).
//!
//! Differences from upstream, by design:
//!
//! * **Sampling only, no shrinking.** Each property runs `cases` times
//!   against deterministically seeded random inputs; a failing case
//!   panics with the generated values visible in the assertion message
//!   but is not minimized.
//! * **`prop_assume!` skips the case** instead of rejecting-and-retrying,
//!   so assumption-heavy properties effectively run slightly fewer cases.
//! * **String "regex" strategies** support exactly the pattern language
//!   used in this repo: sequences of `[class]`, `.`, and literal atoms,
//!   each with an optional `{m,n}` repetition.
//!
//! Seeds derive from the property function's name, so runs are
//! reproducible across invocations and machines.

pub mod collection;
pub mod option;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical "anything goes" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )+};
    }
    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    impl Arbitrary for i128 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            u128::arbitrary(rng) as i128
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite, sign-symmetric, spanning several magnitudes; the
            // workspace never relies on NaN/inf from `any::<f64>()`.
            (rng.next_f64() - 0.5) * 2e12
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            f64::arbitrary(rng) as f32
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Printable ASCII keeps generated values debuggable.
            (0x20 + rng.below(0x5f) as u8) as char
        }
    }

    /// Strategy producing arbitrary values of `T`.
    pub struct Any<T>(std::marker::PhantomData<T>);

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl<T: Arbitrary + std::fmt::Debug> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
    // Upstream's prelude re-exports the crate under the name `prop` so
    // tests can write `prop::collection::vec(...)`.
    pub use crate as prop;
}

/// Assert inside a property; panics with the formatted message on failure
/// (upstream returns a `TestCaseError`, which without shrinking is
/// equivalent to a panic).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Skip the current case when the assumption does not hold. The body of
/// each property runs inside a closure, so `return` abandons just this
/// case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return;
        }
    };
}

/// Choose between strategies, optionally weighted (`w => strat`). All
/// branches must produce the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::boxed($strat))),+
        ])
    };
}

/// Define property tests. Accepts an optional
/// `#![proptest_config(...)]` header followed by `fn name(pat in strategy, ...) { body }`
/// items, each of which becomes a `#[test]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            #[test]
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let __strategy = ($(($strat),)+);
                let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for _ in 0..__cfg.cases {
                    let ($($pat,)+) =
                        $crate::strategy::Strategy::sample(&__strategy, &mut __rng);
                    (move || { $body })();
                }
            }
        )*
    };
}
