//! Minimal, dependency-free reimplementation of the subset of the `bytes`
//! crate this workspace uses (the build environment has no network access
//! to crates.io, so the real crate cannot be fetched).
//!
//! Semantics match the upstream crate for the implemented surface:
//! `BytesMut` is a growable write buffer, `Bytes` a cheaply-cloneable
//! read cursor over immutable shared storage, and the `Buf`/`BufMut`
//! traits expose little-endian accessors.

use std::sync::Arc;

/// Read-side trait: consuming accessors over a byte cursor.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Copy `dst.len()` bytes out and advance.
    fn copy_to_slice(&mut self, dst: &mut [u8]);
    /// Advance the cursor by `n` bytes.
    fn advance(&mut self, n: usize);
    /// The unread remainder as a contiguous slice, without advancing
    /// (upstream `Buf::chunk`; every buffer here is contiguous, so this
    /// is the whole remainder rather than upstream's "first chunk").
    fn chunk(&self) -> &[u8];

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
    fn get_u128_le(&mut self) -> u128 {
        let mut b = [0u8; 16];
        self.copy_to_slice(&mut b);
        u128::from_le_bytes(b)
    }
    fn get_i64_le(&mut self) -> i64 {
        self.get_u64_le() as i64
    }
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

/// Write-side trait: appending accessors over a growable buffer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u128_le(&mut self, v: u128) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_bits().to_le_bytes());
    }
}

/// Growable, clonable write buffer.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Convert into an immutable, cheaply-cloneable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Split off and return the first `at` bytes; `self` keeps the rest
    /// (upstream semantics; upstream shares storage, this copies).
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.data.len(), "split_to out of bounds");
        let rest = self.data.split_off(at);
        BytesMut {
            data: std::mem::replace(&mut self.data, rest),
        }
    }
}

impl From<&[u8]> for BytesMut {
    fn from(data: &[u8]) -> Self {
        BytesMut {
            data: data.to_vec(),
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

/// Immutable shared byte storage with a read cursor and an end bound.
/// Cloning is O(1) (an `Arc` bump) and each clone reads independently;
/// [`Bytes::slice`] produces zero-copy sub-views over the same storage.
#[derive(Clone, Default, Debug)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    pos: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::default()
    }

    pub fn len(&self) -> usize {
        self.end - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The unread remainder as a slice.
    pub fn chunk(&self) -> &[u8] {
        &self.data[self.pos..self.end]
    }

    /// From a static slice (copies here; upstream borrows, which only
    /// changes allocation behaviour, not semantics).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// A zero-copy sub-view of the unread remainder: shares the backing
    /// storage (upstream semantics) and narrows the window to `range`,
    /// interpreted relative to [`Bytes::chunk`].
    ///
    /// # Panics
    /// Panics when the range exceeds the unread remainder.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&s) => s,
            Bound::Excluded(&s) => s + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&e) => e + 1,
            Bound::Excluded(&e) => e,
            Bound::Unbounded => self.len(),
        };
        assert!(
            start <= end && end <= self.len(),
            "slice {start}..{end} out of bounds (len {})",
            self.len()
        );
        Bytes {
            data: Arc::clone(&self.data),
            pos: self.pos + start,
            end: self.pos + end,
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Bytes {
            data: Arc::new(data),
            pos: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.chunk() == other.chunk()
    }
}
impl Eq for Bytes {}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.chunk()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        let n = dst.len();
        assert!(n <= self.remaining(), "copy_to_slice out of bounds");
        dst.copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.remaining(), "advance out of bounds");
        self.pos += n;
    }

    fn chunk(&self) -> &[u8] {
        Bytes::chunk(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le_accessors() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_i64_le(-42);
        buf.put_f64_le(1.5);
        buf.put_u128_le(u128::MAX - 1);
        buf.put_slice(b"abc");
        let mut b = buf.freeze();
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(b.get_i64_le(), -42);
        assert_eq!(b.get_f64_le(), 1.5);
        assert_eq!(b.get_u128_le(), u128::MAX - 1);
        let mut s = [0u8; 3];
        b.copy_to_slice(&mut s);
        assert_eq!(&s, b"abc");
        assert!(!b.has_remaining());
    }

    #[test]
    fn split_to_takes_front_keeps_rest() {
        let mut buf = BytesMut::new();
        buf.put_slice(b"headtail");
        let head = buf.split_to(4);
        assert_eq!(&head[..], b"head");
        assert_eq!(&buf[..], b"tail");
        let empty = buf.split_to(0);
        assert!(empty.is_empty());
        assert_eq!(&buf[..], b"tail");
    }

    #[test]
    fn deref_mut_allows_in_place_patching() {
        let mut buf = BytesMut::new();
        buf.put_slice(b"\0\0\0\0rest");
        buf[0..4].copy_from_slice(&7u32.to_le_bytes());
        let mut b = buf.freeze();
        assert_eq!(b.get_u32_le(), 7);
    }

    #[test]
    fn slice_is_zero_copy_and_bounded() {
        let mut buf = BytesMut::new();
        buf.put_slice(b"0123456789");
        let b = buf.freeze();
        let mid = b.slice(2..7);
        // Shares storage: no new allocation behind the sub-view.
        assert_eq!(Arc::strong_count(&b.data), 2);
        assert_eq!(&mid[..], b"23456");
        assert_eq!(mid.len(), 5);
        // Reads respect the end bound.
        let mut cur = mid.clone();
        let mut out = [0u8; 5];
        cur.copy_to_slice(&mut out);
        assert_eq!(&out, b"23456");
        assert!(!cur.has_remaining());
        // Slice-of-slice composes offsets.
        let inner = mid.slice(1..=2);
        assert_eq!(&inner[..], b"34");
        assert_eq!(Arc::strong_count(&b.data), 4);
    }

    #[test]
    fn slice_is_relative_to_the_cursor() {
        let mut b = Bytes::from(&b"abcdef"[..]);
        b.advance(2);
        let s = b.slice(1..3);
        assert_eq!(&s[..], b"de");
        let all = b.slice(..);
        assert_eq!(&all[..], b"cdef");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_past_end_panics() {
        let b = Bytes::from(&b"abc"[..]);
        let _ = b.slice(1..5);
    }

    #[test]
    fn chunk_is_available_through_the_trait() {
        fn peek_first(buf: &impl Buf) -> Option<u8> {
            buf.chunk().first().copied()
        }
        let mut b = Bytes::from(&b"xyz"[..]);
        assert_eq!(peek_first(&b), Some(b'x'));
        b.advance(1);
        assert_eq!(peek_first(&b), Some(b'y'));
        assert_eq!(b.chunk(), b"yz");
        assert_eq!(b.remaining(), 2, "chunk must not advance");
    }

    #[test]
    fn clones_read_independently() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(5);
        buf.put_u32_le(6);
        let mut a = buf.freeze();
        let mut b = a.clone();
        assert_eq!(a.get_u32_le(), 5);
        assert_eq!(b.get_u32_le(), 5);
        assert_eq!(a.get_u32_le(), 6);
        assert_eq!(b.get_u32_le(), 6);
    }
}
