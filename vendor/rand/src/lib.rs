//! Minimal, dependency-free reimplementation of the subset of the `rand`
//! crate this workspace uses (no network access to crates.io in the
//! build environment).
//!
//! [`rngs::SmallRng`] is xoshiro256++ seeded through SplitMix64 — the
//! same family upstream `SmallRng` uses on 64-bit targets. Sequences are
//! deterministic per seed but are *not* bit-identical to upstream; all
//! in-repo users derive expectations from the generator itself, never
//! from hard-coded sequences.

/// Core RNG abstraction: a source of `u64`s plus derived samplers.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types samplable by [`Rng::gen`] (upstream's `Standard` distribution).
pub trait StandardSample: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    /// Uniform in [0, 1): 53 random mantissa bits.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift bounded sampling (Lemire); the tiny
                // modulo bias of plain % is irrelevant here, but this is
                // just as cheap and unbiased for spans < 2^64.
                let r = rng.next_u64() as u128;
                let v = (r * span) >> 64;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = self.into_inner();
                assert!(s <= e, "gen_range: empty range");
                let span = (e as i128 - s as i128 + 1) as u128;
                let r = rng.next_u64() as u128;
                let v = (r * span) >> 64;
                (s as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = f64::sample_standard(rng) as $t;
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = self.into_inner();
                assert!(s <= e, "gen_range: empty range");
                let u = f64::sample_standard(rng) as $t;
                s + u * (e - s)
            }
        }
    )*};
}

float_range!(f32, f64);

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of an inferred type (upstream `Standard`).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform sample from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_in(self)
    }

    /// Bernoulli trial with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction (upstream trait, `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small, fast, non-cryptographic RNG: xoshiro256++ with SplitMix64
    /// seed expansion.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let i = rng.gen_range(-5i64..17);
            assert!((-5..17).contains(&i));
            let u = rng.gen_range(0usize..9);
            assert!(u < 9);
            let f = rng.gen_range(0.5f64..10.0);
            assert!((0.5..10.0).contains(&f));
            let g: f64 = rng.gen();
            assert!((0.0..1.0).contains(&g));
            let k = rng.gen_range(0.05f64..=1.0);
            assert!((0.05..=1.0).contains(&k));
        }
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.85)).count();
        assert!((8_000..9_000).contains(&hits), "hits={hits}");
        assert!((0..1000).all(|_| !rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }
}
