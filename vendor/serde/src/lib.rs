//! Minimal, dependency-free reimplementation of the subset of `serde`
//! this workspace uses (no network access to crates.io in the build
//! environment).
//!
//! The `ser` side mirrors upstream's data model closely enough that a
//! hand-written `Serializer` (e.g. `fudj-core`'s byte-counting
//! serializer) compiles unchanged. The `de` side is a marker trait only:
//! nothing in the workspace deserializes through serde.

pub mod de;
pub mod ser;

pub use de::Deserialize;
pub use ser::{Serialize, Serializer};

// Derive macros live in the macro namespace; the trait re-exports above
// live in the type namespace, so both `Serialize`s coexist.
pub use serde_derive::{Deserialize, Serialize};
