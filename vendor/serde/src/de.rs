//! Deserialization half of the vendored serde subset.
//!
//! Nothing in this workspace deserializes through serde — types derive
//! `Deserialize` only so their declarations stay source-compatible with
//! the real crate. The trait is therefore a pure marker.

/// Marker trait standing in for upstream `de::Deserialize`.
pub trait Deserialize<'de>: Sized {}
