//! # fudj-repro — FUDJ: Flexible User-Defined Distributed Joins, in Rust
//!
//! Umbrella crate re-exporting the whole workspace under one name, used by
//! the runnable examples and the cross-crate integration tests. See the
//! individual crates for the real API surface:
//!
//! * [`core`] (`fudj-core`) — the FUDJ programming model (the paper's
//!   contribution): [`core::FlexibleJoin`], the join registry, the
//!   standalone runner;
//! * [`joins`] — the paper's three example join libraries + baselines;
//! * [`exec`] — the simulated shared-nothing cluster;
//! * [`planner`] — the optimizer with the FUDJ rewrite rule;
//! * [`sched`] — the concurrent query scheduler (admission control,
//!   fair-share dispatch, cancellation, deadlines);
//! * [`serve`] — the multi-tenant serving tier (plan/result caches with
//!   epoch-based ingest invalidation, latency histograms);
//! * [`sql`] — the SQL front end (`CREATE JOIN`, SELECT subset, EXPLAIN);
//! * [`datagen`] — seeded synthetic datasets standing in for Table I;
//! * [`types`], [`geo`], [`textutil`], [`temporal`], [`storage`] —
//!   substrates.
//!
//! ## Quickstart
//!
//! ```
//! use fudj_repro::sql::Session;
//! use fudj_repro::joins::standard_library;
//! use fudj_repro::datagen::{parks, wildfires, GeneratorConfig};
//!
//! let session = Session::new(4);
//! session.install_library(standard_library());
//! session.register_dataset(parks(GeneratorConfig::new(200, 1, 4)).unwrap()).unwrap();
//! session.register_dataset(wildfires(GeneratorConfig::new(500, 2, 4)).unwrap()).unwrap();
//!
//! session.execute(r#"CREATE JOIN st_contains(a: polygon, b: point)
//!                    RETURNS boolean AS "spatial.SpatialJoin" AT flexiblejoins"#).unwrap();
//!
//! let damaged = session.query(
//!     "SELECT p.id, COUNT(w.id) AS num_fires \
//!      FROM Parks p, Wildfires w \
//!      WHERE ST_Contains(p.boundary, w.location) \
//!      GROUP BY p.id ORDER BY num_fires DESC LIMIT 10").unwrap();
//! assert!(!damaged.is_empty());
//! ```

pub use fudj_core as core;
pub use fudj_datagen as datagen;
pub use fudj_exec as exec;
pub use fudj_geo as geo;
pub use fudj_joins as joins;
pub use fudj_planner as planner;
pub use fudj_sched as sched;
pub use fudj_serve as serve;
pub use fudj_sql as sql;
pub use fudj_storage as storage;
pub use fudj_temporal as temporal;
pub use fudj_text as textutil;
pub use fudj_types as types;
