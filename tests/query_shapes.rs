//! Query-shape regression tests: the exact SQL constructs the paper's
//! queries rely on, checked end-to-end against hand-computed semantics.

use fudj_repro::datagen::{parks, GeneratorConfig};
use fudj_repro::joins::standard_library;
use fudj_repro::sql::{QueryOutput, Session};
use fudj_repro::textutil::{jaccard_similarity_texts, token_set};
use fudj_repro::types::Value;

fn session() -> Session {
    let s = Session::new(2);
    s.register_dataset(parks(GeneratorConfig::new(250, 301, 2)).unwrap())
        .unwrap();
    s.install_library(standard_library());
    s.execute(
        r#"CREATE JOIN jaccard_similarity(a: string, b: string, t: double)
           RETURNS boolean AS "setsimilarity.SetSimilarityJoin" AT flexiblejoins"#,
    )
    .unwrap();
    s
}

/// Query 2's `dp.park_id <> p.id` conjunct must survive as a residual filter
/// above the FUDJ join, and the threshold comparison must bind as the
/// join's parameter.
#[test]
fn query2_residual_filter_and_threshold() {
    let s = session();
    let sql = "SELECT a.id, b.id AS other_id \
               FROM Parks a, Parks b \
               WHERE a.id <> b.id AND jaccard_similarity(a.tags, b.tags) >= 0.8 \
               ORDER BY a.id";
    let QueryOutput::Plan(plan) = s.execute(&format!("EXPLAIN {sql}")).unwrap() else {
        panic!()
    };
    assert!(plan.contains("FudjJoin"), "{plan}");
    assert!(
        plan.contains("Filter"),
        "residual <> filter present: {plan}"
    );

    let batch = s.query(sql).unwrap();
    assert!(!batch.is_empty());
    // Semantics: no self-pairs, every pair really ≥ 0.8, symmetric closure.
    let parks_ds = s.catalog().get("Parks").unwrap();
    let tags_of = |id: &Value| -> String {
        parks_ds
            .all_rows()
            .iter()
            .find(|r| r.get(0) == id)
            .map(|r| r.get(2).as_str().unwrap().to_owned())
            .unwrap()
    };
    for row in batch.rows() {
        assert_ne!(row.get(0), row.get(1), "self pair leaked through <>");
        let sim = jaccard_similarity_texts(&tags_of(row.get(0)), &tags_of(row.get(1)));
        assert!(sim >= 0.8, "pair below threshold: {sim}");
    }
    // ORDER BY a.id holds.
    let ids: Vec<&Value> = batch.rows().iter().map(|r| r.get(0)).collect();
    assert!(ids.windows(2).all(|w| w[0] <= w[1]));
}

/// Every qualifying pair is present (completeness against a brute-force
/// scan of the same dataset).
#[test]
fn query2_completeness() {
    let s = session();
    let batch = s
        .query(
            "SELECT a.id, b.id AS other_id FROM Parks a, Parks b \
             WHERE a.id <> b.id AND jaccard_similarity(a.tags, b.tags) >= 0.8",
        )
        .unwrap();
    let rows = s.catalog().get("Parks").unwrap().all_rows();
    let mut expected = 0usize;
    for x in &rows {
        for y in &rows {
            if x.get(0) != y.get(0) {
                let a = token_set(x.get(2).as_str().unwrap());
                let b = token_set(y.get(2).as_str().unwrap());
                if !a.is_empty() && fudj_repro::textutil::jaccard_of_sorted(&a, &b) >= 0.8 {
                    expected += 1;
                }
            }
        }
    }
    assert_eq!(batch.len(), expected);
    assert!(expected > 0, "fixture must have similar parks");
}

/// Aggregates over expressions and unaliased group keys.
#[test]
fn aggregate_over_expression() {
    let s = session();
    let batch = s
        .query(
            "SELECT COUNT(*) AS n, MIN(p.id) AS first_id, MAX(p.id) AS last_id \
             FROM Parks p",
        )
        .unwrap();
    assert_eq!(batch.len(), 1);
    let row = &batch.rows()[0];
    assert_eq!(row.get(0), &Value::Int64(250));
    assert!(row.get(1) <= row.get(2));
}

/// Multi-line statements, comments, and trailing semicolons all parse.
#[test]
fn sql_formatting_robustness() {
    let s = session();
    let batch = s
        .query(
            "SELECT p.id -- choose the key\n\
             FROM Parks p /* the dataset */\n\
             LIMIT 5 ;",
        )
        .unwrap();
    assert_eq!(batch.len(), 5);
}

/// EXPLAIN ANALYZE over the text self-join reports the dedup-relevant
/// counters.
#[test]
fn explain_analyze_text_join() {
    let s = session();
    let QueryOutput::Plan(text) = s
        .execute(
            "EXPLAIN ANALYZE SELECT COUNT(*) FROM Parks a, Parks b \
             WHERE jaccard_similarity(a.tags, b.tags) >= 0.9",
        )
        .unwrap()
    else {
        panic!()
    };
    assert!(text.contains("phase join:"), "{text}");
    assert!(text.contains("dedup rejections:"), "{text}");
}
