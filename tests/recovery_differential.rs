//! Differential recovery suite: permanent worker deaths at stage
//! boundaries, with and without stage checkpointing.
//!
//! The contract under test (ISSUE 5's acceptance criteria):
//!
//! * with checkpointing ON, a run that survives injected deaths returns
//!   results *and logical counters* bit-identical to the fault-free run,
//!   and its [`RecoveryStats`] prove the recovery was partial — lost
//!   partitions were restored from checkpoints, not recomputed
//!   (`partitions_recomputed` strictly below the stage partition count,
//!   `checkpoints_read > 0`);
//! * with checkpointing OFF, the same death schedule still completes with
//!   the right answer, but only via full-stage replays;
//! * under a starvation-level checkpoint byte budget, eviction forces the
//!   replay fallback and the answer still matches.
//!
//! Like the chaos suite, the death schedule is a pure function of the
//! seed: `RECOVERY_SEEDS=<seeds> cargo test --test recovery_differential`
//! replays any matrix deterministically.

use fudj_repro::core::{EngineJoin, FaultConfig, FudjEngineJoin, JoinAlgorithm, ProxyJoin};
use fudj_repro::exec::{Cluster, FudjJoinNode, PhysicalPlan, RecoveryStats, WorkerState};
use fudj_repro::geo::{Point, Polygon, Rect};
use fudj_repro::joins::{IntervalFudj, SpatialDedup, SpatialFudj};
use fudj_repro::storage::{CheckpointPolicy, DatasetBuilder};
use fudj_repro::temporal::Interval;
use fudj_repro::types::{DataType, Field, Row, Schema, Value};
use std::sync::Arc;

const WORKERS: usize = 3;

/// Death-only fault plan: no transient faults, so any divergence from the
/// fault-free run is attributable to the death/recovery machinery alone.
fn deaths_only(seed: u64) -> FaultConfig {
    FaultConfig {
        worker_death_prob: 0.35,
        ..FaultConfig::quiet(seed)
    }
}

/// The seed matrix (`RECOVERY_SEEDS=1,2,3` overrides, mirroring
/// `CHAOS_SEEDS` in the chaos suite).
fn seeds() -> Vec<u64> {
    match std::env::var("RECOVERY_SEEDS") {
        Ok(s) => s
            .split(',')
            .map(|t| t.trim().parse().expect("RECOVERY_SEEDS must be u64s"))
            .collect(),
        Err(_) => (0..10).map(|i| 4_242 + 131 * i).collect(),
    }
}

/// Deterministic workload data (xorshift64*), as in the chaos suite.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (self.next() >> 11) as f64 / (1u64 << 53) as f64 * (hi - lo)
    }

    fn i64_in(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next() % (hi - lo) as u64) as i64
    }
}

fn dataset(name: &str, keys: &[Value]) -> Arc<fudj_repro::storage::Dataset> {
    let dt = keys
        .first()
        .map(Value::data_type)
        .unwrap_or(DataType::Int64);
    let schema = Schema::shared(vec![Field::new("id", DataType::Int64), Field::new("k", dt)]);
    let d = DatasetBuilder::new(name, schema)
        .partitions(WORKERS)
        .build()
        .unwrap();
    for (i, k) in keys.iter().enumerate() {
        d.insert(Row::new(vec![Value::Int64(i as i64), k.clone()]))
            .unwrap();
    }
    Arc::new(d)
}

struct Workload {
    name: &'static str,
    engine: Arc<dyn EngineJoin>,
    left: Vec<Value>,
    right: Vec<Value>,
    params: Vec<Value>,
}

fn workloads() -> Vec<Workload> {
    let mut g = Gen(7);
    let polys: Vec<Value> = (0..24)
        .map(|_| {
            let (x, y) = (g.f64_in(0.0, 90.0), g.f64_in(0.0, 90.0));
            let (w, h) = (g.f64_in(0.5, 12.0), g.f64_in(0.5, 12.0));
            Value::polygon(Polygon::from_rect(&Rect::new(x, y, x + w, y + h)))
        })
        .collect();
    let points: Vec<Value> = (0..40)
        .map(|_| Value::Point(Point::new(g.f64_in(0.0, 100.0), g.f64_in(0.0, 100.0))))
        .collect();
    let ivals = |salt: u64| -> Vec<Value> {
        let mut g = Gen(100 + salt);
        (0..30)
            .map(|_| {
                let s = g.i64_in(0, 50_000);
                Value::Interval(Interval::new(s, s + g.i64_in(0, 3_000)))
            })
            .collect()
    };
    let spatial: Arc<dyn JoinAlgorithm> = Arc::new(ProxyJoin::new(SpatialFudj::with_dedup(
        SpatialDedup::FrameworkAvoidance,
    )));
    let interval: Arc<dyn JoinAlgorithm> = Arc::new(ProxyJoin::new(IntervalFudj::new()));
    vec![
        Workload {
            name: "spatial",
            engine: Arc::new(FudjEngineJoin::new(spatial)),
            left: polys,
            right: points,
            params: vec![Value::Int64(8)],
        },
        Workload {
            name: "interval",
            engine: Arc::new(FudjEngineJoin::new(interval)),
            left: ivals(0),
            right: ivals(1),
            params: vec![Value::Int64(50)],
        },
    ]
}

fn plan(w: &Workload) -> PhysicalPlan {
    PhysicalPlan::FudjJoin(FudjJoinNode::new(
        PhysicalPlan::Scan {
            dataset: dataset("l", &w.left),
        },
        PhysicalPlan::Scan {
            dataset: dataset("r", &w.right),
        },
        w.engine.clone(),
        1,
        1,
        w.params.clone(),
    ))
}

/// Sorted (left id, right id) pairs plus the full snapshot of one run.
fn run_on(cluster: &Cluster, w: &Workload) -> (Vec<(i64, i64)>, fudj_repro::exec::MetricsSnapshot) {
    let (batch, metrics) = cluster.execute(&plan(w)).unwrap();
    let mut pairs: Vec<(i64, i64)> = batch
        .rows()
        .iter()
        .map(|r| (r.get(0).as_i64().unwrap(), r.get(2).as_i64().unwrap()))
        .collect();
    pairs.sort_unstable();
    (pairs, metrics.snapshot())
}

/// THE acceptance test: with checkpointing on, surviving a worker death
/// is invisible in both the results and the logical counters, and the
/// recovery provably restored rather than recomputed.
#[test]
fn death_with_checkpoints_is_partial_recovery_and_counter_identical() {
    for w in workloads() {
        let (base_pairs, base_snap) = run_on(&Cluster::new(WORKERS), &w);
        assert!(!base_pairs.is_empty(), "{}: degenerate workload", w.name);
        assert_eq!(base_snap.recovery, RecoveryStats::default());

        let mut total_deaths = 0;
        for seed in seeds() {
            let cluster = Cluster::with_faults(WORKERS, deaths_only(seed));
            cluster.set_checkpoint_policy(CheckpointPolicy::All);
            let (pairs, snap) = run_on(&cluster, &w);
            assert_eq!(
                pairs, base_pairs,
                "{} seed {seed}: results diverged under death recovery",
                w.name
            );

            // Logical counters must be bit-identical to the fault-free
            // run: restoring from checkpoints re-runs no exchanges and
            // no UDF calls. Only the fault/recovery counters themselves
            // may differ.
            let mut fp = snap.fingerprint();
            fp.fault = Default::default();
            fp.recovery = RecoveryStats::default();
            let mut base_fp = base_snap.fingerprint();
            base_fp.fault = Default::default();
            base_fp.recovery = RecoveryStats::default();
            assert_eq!(
                fp, base_fp,
                "{} seed {seed}: logical counters moved",
                w.name
            );

            let r = snap.recovery;
            assert!(r.checkpoints_written > 0, "{} seed {seed}: {r:?}", w.name);
            if r.deaths_survived > 0 {
                total_deaths += r.deaths_survived;
                // Partial recovery: strictly fewer partitions recomputed
                // than the stage holds, and the rest came from the store.
                assert!(r.checkpoints_read > 0, "{} seed {seed}: {r:?}", w.name);
                assert!(r.partitions_restored > 0, "{} seed {seed}: {r:?}", w.name);
                assert!(
                    r.partitions_recomputed < WORKERS as u64,
                    "{} seed {seed}: recovery was not partial: {r:?}",
                    w.name
                );
                assert_eq!(r.full_stage_replays, 0, "{} seed {seed}: {r:?}", w.name);
                // The death is visible in the membership report.
                let dead = cluster
                    .workers_status()
                    .iter()
                    .filter(|i| i.state == WorkerState::Dead)
                    .count();
                assert!(dead > 0, "{} seed {seed}: no dead worker listed", w.name);
            }
        }
        assert!(
            total_deaths > 0,
            "{}: no deaths fired across the whole seed matrix — the suite proves nothing",
            w.name
        );
    }
}

/// With checkpointing off the same deaths complete via full-stage replay:
/// same answer, no checkpoint reads, every partition recomputed.
#[test]
fn death_without_checkpoints_falls_back_to_full_stage_replay() {
    for w in workloads() {
        let (base_pairs, _) = run_on(&Cluster::new(WORKERS), &w);
        let mut total_deaths = 0;
        let mut total_replays = 0;
        for seed in seeds() {
            let cluster = Cluster::with_faults(WORKERS, deaths_only(seed));
            let (pairs, snap) = run_on(&cluster, &w);
            assert_eq!(
                pairs, base_pairs,
                "{} seed {seed}: full-stage replay diverged",
                w.name
            );
            let r = snap.recovery;
            assert_eq!(r.checkpoints_written, 0, "{} seed {seed}: {r:?}", w.name);
            assert_eq!(r.checkpoints_read, 0, "{} seed {seed}: {r:?}", w.name);
            if r.deaths_survived > 0 {
                total_deaths += r.deaths_survived;
                total_replays += r.full_stage_replays;
                assert!(r.full_stage_replays > 0, "{} seed {seed}: {r:?}", w.name);
                assert!(r.partitions_recomputed > 0, "{} seed {seed}: {r:?}", w.name);
                assert_eq!(r.partitions_restored, 0, "{} seed {seed}: {r:?}", w.name);
            }
        }
        assert!(total_deaths > 0, "{}: no deaths fired", w.name);
        assert!(total_replays > 0, "{}: no replays exercised", w.name);
    }
}

/// Eviction stress: a byte budget far below one partition's size evicts
/// checkpoints as fast as they are written, so deaths fall back to
/// replay — and the answer still matches.
#[test]
fn starved_checkpoint_budget_degrades_to_replay_not_wrong_answers() {
    let w = &workloads()[0];
    let (base_pairs, _) = run_on(&Cluster::new(WORKERS), w);
    let mut evictions = 0;
    let mut deaths = 0;
    for seed in seeds() {
        let cluster = Cluster::with_faults(WORKERS, deaths_only(seed));
        cluster.set_checkpoint_policy(CheckpointPolicy::All);
        cluster.set_checkpoint_budget(Some(16)); // smaller than any partition
        let (pairs, snap) = run_on(&cluster, w);
        assert_eq!(pairs, base_pairs, "seed {seed}: starved run diverged");
        let r = snap.recovery;
        evictions += r.checkpoints_evicted;
        deaths += r.deaths_survived;
        if r.deaths_survived > 0 {
            assert_eq!(r.partitions_restored, 0, "seed {seed}: {r:?}");
            assert!(r.full_stage_replays > 0, "seed {seed}: {r:?}");
        }
    }
    assert!(evictions > 0, "budget never evicted anything");
    assert!(deaths > 0, "no deaths fired under the starved budget");
}

/// Same seed ⇒ same death schedule, same recovery counters, same answer —
/// the property that makes death chaos debuggable.
#[test]
fn death_schedule_is_reproducible() {
    let w = &workloads()[1];
    let run = |seed: u64| {
        let cluster = Cluster::with_faults(WORKERS, deaths_only(seed));
        cluster.set_checkpoint_policy(CheckpointPolicy::All);
        run_on(&cluster, w)
    };
    for seed in seeds().into_iter().take(4) {
        let (pairs_a, snap_a) = run(seed);
        let (pairs_b, snap_b) = run(seed);
        assert_eq!(pairs_a, pairs_b, "seed {seed}: results diverged");
        assert_eq!(
            snap_a.recovery, snap_b.recovery,
            "seed {seed}: recovery schedule diverged"
        );
    }
}

/// Elastic membership: decommissioned workers leave the routing set
/// without moving unaffected partitions, queries keep answering, and a
/// replacement can rejoin the freed slot.
#[test]
fn decommission_and_rejoin_preserve_answers() {
    let w = &workloads()[0];
    let (base_pairs, _) = run_on(&Cluster::new(WORKERS), w);

    let cluster = Cluster::new(WORKERS);
    cluster.decommission_worker(1).unwrap();
    let (pairs, _) = run_on(&cluster, w);
    assert_eq!(pairs, base_pairs, "decommissioned cluster diverged");
    assert_eq!(
        cluster.workers_status()[1].state,
        WorkerState::Decommissioned
    );

    // Double-decommission and unknown ids are errors, not panics.
    assert!(cluster.decommission_worker(1).is_err());
    assert!(cluster.decommission_worker(99).is_err());

    // A replacement adopts the freed slot; at full strength add fails.
    assert_eq!(cluster.add_worker().unwrap(), 1);
    assert!(cluster.add_worker().is_err());
    let (pairs, _) = run_on(&cluster, w);
    assert_eq!(pairs, base_pairs, "rejoined cluster diverged");

    // The cluster never gives up its last worker.
    cluster.decommission_worker(0).unwrap();
    cluster.decommission_worker(2).unwrap();
    assert!(cluster.decommission_worker(1).is_err());
    let (pairs, _) = run_on(&cluster, w);
    assert_eq!(pairs, base_pairs, "single-survivor cluster diverged");
}
