//! Integration tests for the implemented §VIII future-work features:
//! auto-tuned bucket counts, sort-merge bucket matching, the forward-scan
//! advanced interval operator, and memory-budget spilling — all driven
//! through the SQL/session layer to prove they compose with the optimizer.

use fudj_repro::datagen::{nyctaxi, parks, wildfires, GeneratorConfig};
use fudj_repro::exec::CombineStrategy;
use fudj_repro::joins::builtin::AdvancedIntervalJoin;
use fudj_repro::joins::standard_library;
use fudj_repro::planner::PlanOptions;
use fudj_repro::sql::Session;
use std::sync::Arc;

fn session(workers: usize) -> Session {
    let s = Session::new(workers);
    s.register_dataset(parks(GeneratorConfig::new(500, 201, workers)).unwrap())
        .unwrap();
    s.register_dataset(wildfires(GeneratorConfig::new(1_000, 202, workers)).unwrap())
        .unwrap();
    s.register_dataset(nyctaxi(GeneratorConfig::new(500, 203, workers)).unwrap())
        .unwrap();
    s.install_library(standard_library());
    s
}

const SPATIAL_SQL: &str = "SELECT p.id, COUNT(w.id) AS n \
                           FROM Parks p, Wildfires w \
                           WHERE st_contains(p.boundary, w.location) GROUP BY p.id";

const INTERVAL_SQL: &str = "SELECT COUNT(*) FROM NYCTaxi n1, NYCTaxi n2 \
                            WHERE n1.Vendor = 1 AND n2.Vendor = 2 \
                              AND overlapping_interval(n1.ride_interval, n2.ride_interval)";

fn sorted(batch: &fudj_repro::types::Batch) -> Vec<fudj_repro::types::Row> {
    let mut rows = batch.rows().to_vec();
    rows.sort();
    rows
}

#[test]
fn auto_tuned_spatial_join_matches_fixed_grid() {
    let s = session(3);
    s.execute(
        r#"CREATE JOIN st_contains(a: polygon, b: point)
           RETURNS boolean AS "spatial.SpatialJoinAuto" AT flexiblejoins"#,
    )
    .unwrap();
    let auto = s.query(SPATIAL_SQL).unwrap();

    let s2 = session(3);
    s2.execute(
        r#"CREATE JOIN st_contains(a: polygon, b: point)
           RETURNS boolean AS "spatial.SpatialJoin" AT flexiblejoins"#,
    )
    .unwrap();
    let fixed = s2.query(SPATIAL_SQL).unwrap();
    assert_eq!(sorted(&auto), sorted(&fixed));
    assert!(!auto.is_empty());
}

#[test]
fn auto_tuned_interval_join_matches_fixed_granules() {
    let s = session(3);
    s.execute(
        r#"CREATE JOIN overlapping_interval(a: interval, b: interval)
           RETURNS boolean AS "interval.OverlappingIntervalJoinAuto" AT flexiblejoins"#,
    )
    .unwrap();
    let auto = s.query(INTERVAL_SQL).unwrap();

    let s2 = session(3);
    s2.execute(
        r#"CREATE JOIN overlapping_interval(a: interval, b: interval)
           RETURNS boolean AS "interval.OverlappingIntervalJoin" AT flexiblejoins"#,
    )
    .unwrap();
    let fixed = s2.query(INTERVAL_SQL).unwrap();
    assert_eq!(auto.rows(), fixed.rows());
    assert!(auto.rows()[0].get(0).as_i64().unwrap() > 0);
}

#[test]
fn sort_merge_combine_through_session() {
    let mut s = session(3);
    s.execute(
        r#"CREATE JOIN st_contains(a: polygon, b: point)
           RETURNS boolean AS "spatial.SpatialJoin" AT flexiblejoins"#,
    )
    .unwrap();
    let hash = s.query(SPATIAL_SQL).unwrap();

    s.set_options(PlanOptions {
        combine: CombineStrategy::SortMerge,
        ..Default::default()
    });
    let merge = s.query(SPATIAL_SQL).unwrap();
    assert_eq!(sorted(&hash), sorted(&merge));
}

#[test]
fn spilling_through_session_same_answers() {
    let mut s = session(2);
    s.execute(
        r#"CREATE JOIN st_contains(a: polygon, b: point)
           RETURNS boolean AS "spatial.SpatialJoin" AT flexiblejoins"#,
    )
    .unwrap();
    let in_memory = s.query(SPATIAL_SQL).unwrap();

    s.set_options(PlanOptions {
        memory_budget_rows: Some(50),
        ..Default::default()
    });
    let out = s.execute(SPATIAL_SQL).unwrap();
    let fudj_repro::sql::QueryOutput::Rows(spilled, metrics) = out else {
        panic!()
    };
    assert_eq!(sorted(&in_memory), sorted(&spilled));
    assert!(metrics.spilled_rows > 0, "tiny budget must spill");
}

#[test]
fn advanced_interval_operator_matches_fudj() {
    let s = session(3);
    s.execute(
        r#"CREATE JOIN overlapping_interval(a: interval, b: interval)
           RETURNS boolean AS "interval.OverlappingIntervalJoin" AT flexiblejoins"#,
    )
    .unwrap();
    let fudj = s.query(INTERVAL_SQL).unwrap();

    let mut s2 = session(3);
    s2.execute(
        r#"CREATE JOIN overlapping_interval(a: interval, b: interval)
           RETURNS boolean AS "interval.OverlappingIntervalJoin" AT flexiblejoins"#,
    )
    .unwrap();
    let mut options = PlanOptions::default();
    options.join_overrides.insert(
        "overlapping_interval".into(),
        Arc::new(AdvancedIntervalJoin::new()),
    );
    s2.set_options(options);
    let advanced = s2.query(INTERVAL_SQL).unwrap();
    assert_eq!(fudj.rows(), advanced.rows());
}

#[test]
fn all_extensions_compose() {
    // Auto-tuning + sort-merge + spilling together, still the right answer.
    let mut s = session(2);
    s.execute(
        r#"CREATE JOIN st_contains(a: polygon, b: point)
           RETURNS boolean AS "spatial.SpatialJoinAuto" AT flexiblejoins"#,
    )
    .unwrap();
    let plain = s.query(SPATIAL_SQL).unwrap();

    s.set_options(PlanOptions {
        combine: CombineStrategy::SortMerge,
        memory_budget_rows: Some(64),
        ..Default::default()
    });
    let combined = s.query(SPATIAL_SQL).unwrap();
    assert_eq!(sorted(&plain), sorted(&combined));
}
