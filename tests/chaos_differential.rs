//! Differential chaos suite: the paper's join libraries, executed on a
//! cluster under seeded fault injection, must return exactly the result
//! multiset of a fault-free standalone execution — across many seeds, so
//! every recovery path (task retry, worker re-execution, speculation,
//! retransmission, duplicate discard) is exercised against the oracle.
//!
//! The fault schedule is a pure function of the seed, so this suite is
//! fully reproducible: a seed that passes once passes forever, and a
//! failing seed can be replayed locally with
//! `CHAOS_SEEDS=<seed> cargo test --test chaos_differential`.

use fudj_repro::core::{
    standalone::run_standalone, EngineJoin, FudjEngineJoin, GuardConfig, GuardedJoin,
    JoinAlgorithm, ProxyJoin, UdfPolicy, UdfStats,
};
use fudj_repro::exec::{Cluster, FaultConfig, FaultStats, FudjJoinNode, PhysicalPlan};
use fudj_repro::geo::{Point, Polygon, Rect};
use fudj_repro::joins::evil::{EqualityFudj, EvilJoin, EvilMode, EvilPhase};
use fudj_repro::joins::poisoned;
use fudj_repro::joins::{IntervalFudj, SpatialDedup, SpatialFudj, TextSimilarityFudj};
use fudj_repro::storage::DatasetBuilder;
use fudj_repro::temporal::Interval;
use fudj_repro::types::{ext, DataType, ExtValue, Field, Row, Schema, Value};
use std::sync::Arc;

const WORKERS: usize = 3;

/// The seed matrix: `CHAOS_SEEDS=1,2,3` overrides (the CI chaos job pins
/// a small fixed matrix; the default local run covers 20 seeds).
fn seeds() -> Vec<u64> {
    match std::env::var("CHAOS_SEEDS") {
        Ok(s) => {
            let parsed: Vec<u64> = s
                .split(',')
                .map(|t| t.trim().parse().expect("CHAOS_SEEDS must be u64s"))
                .collect();
            assert!(!parsed.is_empty(), "CHAOS_SEEDS set but empty");
            parsed
        }
        Err(_) => (0..20).map(|i| 9_001 + 977 * i).collect(),
    }
}

/// Tiny deterministic generator for workload data (xorshift64*) — the
/// *data* must be identical across runs just like the fault schedule.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (self.next() >> 11) as f64 / (1u64 << 53) as f64 * (hi - lo)
    }

    fn i64_in(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next() % (hi - lo) as u64) as i64
    }
}

fn polygons(n: usize) -> Vec<Value> {
    let mut g = Gen(11);
    (0..n)
        .map(|_| {
            let (x, y) = (g.f64_in(0.0, 90.0), g.f64_in(0.0, 90.0));
            let (w, h) = (g.f64_in(0.5, 12.0), g.f64_in(0.5, 12.0));
            Value::polygon(Polygon::from_rect(&Rect::new(x, y, x + w, y + h)))
        })
        .collect()
}

fn points(n: usize) -> Vec<Value> {
    let mut g = Gen(22);
    (0..n)
        .map(|_| Value::Point(Point::new(g.f64_in(0.0, 100.0), g.f64_in(0.0, 100.0))))
        .collect()
}

fn intervals(n: usize, salt: u64) -> Vec<Value> {
    let mut g = Gen(33 + salt);
    (0..n)
        .map(|_| {
            let s = g.i64_in(0, 50_000);
            Value::Interval(Interval::new(s, s + g.i64_in(0, 3_000)))
        })
        .collect()
}

fn texts(n: usize, salt: u64) -> Vec<Value> {
    const WORDS: [&str; 7] = ["river", "peak", "camp", "view", "rock", "fern", "lake"];
    let mut g = Gen(44 + salt);
    (0..n)
        .map(|_| {
            let k = 1 + (g.next() % 5) as usize;
            let ws: Vec<&str> = (0..k).map(|_| WORDS[(g.next() % 7) as usize]).collect();
            Value::str(ws.join(" "))
        })
        .collect()
}

/// Wrap keys in an (id, key) dataset split over `parts` partitions.
fn dataset(name: &str, keys: &[Value], parts: usize) -> Arc<fudj_repro::storage::Dataset> {
    let dt = keys
        .first()
        .map(Value::data_type)
        .unwrap_or(DataType::Int64);
    let schema = Schema::shared(vec![Field::new("id", DataType::Int64), Field::new("k", dt)]);
    let d = DatasetBuilder::new(name, schema)
        .partitions(parts)
        .build()
        .unwrap();
    for (i, k) in keys.iter().enumerate() {
        d.insert(Row::new(vec![Value::Int64(i as i64), k.clone()]))
            .unwrap();
    }
    Arc::new(d)
}

/// One join workload: an engine join, its standalone algorithm, data,
/// and parameters.
struct Workload {
    name: &'static str,
    engine: Arc<dyn EngineJoin>,
    alg: Arc<dyn JoinAlgorithm>,
    left: Vec<Value>,
    right: Vec<Value>,
    params: Vec<Value>,
}

/// The three paper libraries, including the spatial library's duplicate
/// *elimination* variant (the recovery machinery must not disturb either
/// dedup semantics).
fn workloads() -> Vec<Workload> {
    let mut out = Vec::new();
    for (name, dedup) in [
        ("spatial/avoidance", SpatialDedup::FrameworkAvoidance),
        ("spatial/elimination", SpatialDedup::Elimination),
    ] {
        let alg = Arc::new(ProxyJoin::new(SpatialFudj::with_dedup(dedup)));
        out.push(Workload {
            name,
            engine: Arc::new(FudjEngineJoin::new(alg.clone())),
            alg,
            left: polygons(24),
            right: points(40),
            params: vec![Value::Int64(8)],
        });
    }
    let alg = Arc::new(ProxyJoin::new(IntervalFudj::new()));
    out.push(Workload {
        name: "interval",
        engine: Arc::new(FudjEngineJoin::new(alg.clone())),
        alg,
        left: intervals(30, 0),
        right: intervals(30, 1),
        params: vec![Value::Int64(50)],
    });
    let alg = Arc::new(ProxyJoin::new(TextSimilarityFudj::new()));
    out.push(Workload {
        name: "text",
        engine: Arc::new(FudjEngineJoin::new(alg.clone())),
        alg,
        left: texts(18, 0),
        right: texts(18, 1),
        params: vec![Value::Float64(0.5)],
    });
    out
}

fn plan(w: &Workload) -> PhysicalPlan {
    PhysicalPlan::FudjJoin(FudjJoinNode::new(
        PhysicalPlan::Scan {
            dataset: dataset("l", &w.left, WORKERS),
        },
        PhysicalPlan::Scan {
            dataset: dataset("r", &w.right, WORKERS),
        },
        w.engine.clone(),
        1,
        1,
        w.params.clone(),
    ))
}

/// Run the workload on `cluster`, returning sorted (left id, right id)
/// pairs and the fault counters of the run.
fn run_on(cluster: &Cluster, w: &Workload) -> (Vec<(i64, i64)>, FaultStats) {
    let (batch, metrics) = cluster.execute(&plan(w)).unwrap();
    let mut pairs: Vec<(i64, i64)> = batch
        .rows()
        .iter()
        .map(|r| (r.get(0).as_i64().unwrap(), r.get(2).as_i64().unwrap()))
        .collect();
    pairs.sort_unstable();
    (pairs, metrics.snapshot().fault)
}

/// Fault-free oracle: the paper's standalone single-machine runner.
fn oracle(w: &Workload) -> Vec<(i64, i64)> {
    let el: Vec<ExtValue> = w
        .left
        .iter()
        .map(|v| ext::to_external(v).unwrap())
        .collect();
    let er: Vec<ExtValue> = w
        .right
        .iter()
        .map(|v| ext::to_external(v).unwrap())
        .collect();
    let ep: Vec<ExtValue> = w
        .params
        .iter()
        .map(|v| ext::to_external(v).unwrap())
        .collect();
    let mut pairs: Vec<(i64, i64)> = run_standalone(w.alg.as_ref(), &el, &er, &ep)
        .unwrap()
        .into_iter()
        .map(|(i, j)| (i as i64, j as i64))
        .collect();
    pairs.sort_unstable();
    pairs
}

/// The tentpole guarantee: for every library and every seed, the chaotic
/// distributed result equals the fault-free standalone result — and the
/// suite as a whole genuinely injected (and recovered from) faults.
#[test]
fn chaotic_runs_match_fault_free_oracle_across_seeds() {
    let seeds = seeds();
    let mut total = FaultStats::default();
    for w in workloads() {
        let expected = oracle(&w);
        assert!(!expected.is_empty(), "{}: degenerate workload", w.name);
        for &seed in &seeds {
            let cluster = Cluster::with_faults(WORKERS, FaultConfig::chaos(seed));
            let (pairs, fault) = run_on(&cluster, &w);
            assert_eq!(
                pairs, expected,
                "{} diverged from the fault-free oracle under seed {seed}",
                w.name
            );
            total.injected_panics += fault.injected_panics;
            total.injected_transients += fault.injected_transients;
            total.injected_worker_losses += fault.injected_worker_losses;
            total.injected_stragglers += fault.injected_stragglers;
            total.dropped_deliveries += fault.dropped_deliveries;
            total.duplicated_deliveries += fault.duplicated_deliveries;
            total.task_retries += fault.task_retries;
            total.reexecutions += fault.reexecutions;
            total.speculations += fault.speculations;
            total.delivery_retries += fault.delivery_retries;
            total.duplicates_discarded += fault.duplicates_discarded;
        }
    }
    // The suite must have exercised every fault class and every recovery
    // path at least once — otherwise it proves nothing.
    assert!(total.injected_panics > 0, "no panics injected: {total:?}");
    assert!(total.injected_transients > 0, "no transients: {total:?}");
    assert!(total.injected_worker_losses > 0, "no losses: {total:?}");
    assert!(total.injected_stragglers > 0, "no stragglers: {total:?}");
    assert!(total.dropped_deliveries > 0, "no drops: {total:?}");
    assert!(total.duplicated_deliveries > 0, "no duplicates: {total:?}");
    assert!(total.task_retries > 0 && total.delivery_retries > 0);
    assert!(total.reexecutions > 0, "no re-executions: {total:?}");
    assert_eq!(total.duplicates_discarded, total.duplicated_deliveries);
}

/// The matrix extended with the permanent-death fault class: full chaos
/// (panics, transients, losses, stragglers, drops, duplicates) *plus*
/// `WorkerDeath` at stage boundaries, with checkpointing on. Results must
/// still be bit-identical to the fault-free oracle for every seed, and
/// the matrix as a whole must genuinely kill workers (a death-free run
/// of this test would prove nothing).
#[test]
fn chaos_with_worker_deaths_still_matches_oracle() {
    use fudj_repro::storage::CheckpointPolicy;

    let seeds = seeds();
    let mut deaths = 0;
    let mut restored = 0;
    for w in workloads() {
        let expected = oracle(&w);
        for &seed in &seeds {
            let cluster = Cluster::with_faults(WORKERS, FaultConfig::chaos_with_deaths(seed));
            cluster.set_checkpoint_policy(CheckpointPolicy::All);
            let (batch, metrics) = cluster.execute(&plan(&w)).unwrap();
            let mut pairs: Vec<(i64, i64)> = batch
                .rows()
                .iter()
                .map(|r| (r.get(0).as_i64().unwrap(), r.get(2).as_i64().unwrap()))
                .collect();
            pairs.sort_unstable();
            assert_eq!(
                pairs, expected,
                "{} diverged from the oracle under death seed {seed}",
                w.name
            );
            let r = metrics.snapshot().recovery;
            deaths += r.deaths_survived;
            restored += r.partitions_restored;
        }
    }
    assert!(deaths > 0, "no worker deaths injected across the matrix");
    assert!(restored > 0, "no partition was ever checkpoint-restored");
}

/// Same seed ⇒ identical fault schedule, identical counters, identical
/// results. This is the property that makes chaos testing debuggable.
#[test]
fn same_seed_reproduces_schedule_and_results_exactly() {
    let seed = *seeds().first().unwrap();
    for w in workloads() {
        let cluster = Cluster::with_faults(WORKERS, FaultConfig::chaos(seed));
        let (pairs_a, fault_a) = run_on(&cluster, &w);
        // A fresh cluster (fresh pool, fresh context) with the same seed.
        let cluster = Cluster::with_faults(WORKERS, FaultConfig::chaos(seed));
        let (pairs_b, fault_b) = run_on(&cluster, &w);
        assert_eq!(pairs_a, pairs_b, "{}: results diverged", w.name);
        assert_eq!(fault_a, fault_b, "{}: fault schedule diverged", w.name);
        assert!(fault_a.total_injected() > 0, "{}: nothing injected", w.name);
    }
}

/// Different seeds ⇒ different fault schedules (same results, of course).
#[test]
fn different_seeds_draw_different_schedules() {
    let w = &workloads()[0];
    let stats: Vec<FaultStats> = [5u64, 6, 7, 8]
        .iter()
        .map(|&s| run_on(&Cluster::with_faults(WORKERS, FaultConfig::chaos(s)), w).1)
        .collect();
    assert!(
        stats.windows(2).any(|p| p[0] != p[1]),
        "four different seeds produced identical schedules: {stats:?}"
    );
}

/// Chaos × guard: an evil library under the Quarantine policy, executed
/// under seeded fault injection. Two guarantees compose here: (a) the
/// surviving result multiset is exactly the fault-free quarantined result
/// for every seed, and (b) task retries re-running the same poisoned keys
/// never double-count quarantine/violation counters (the guard dedups
/// violation sites, so the counters are a function of the data, not of the
/// recovery schedule).
#[test]
fn quarantined_evil_library_survives_chaos_without_double_counting() {
    let poison_long = |v: i64| poisoned(&ExtValue::Long(v));
    let pool: Vec<i64> = (0..200).collect();
    let left: Vec<Value> = pool.iter().map(|v| Value::Int64(v % 40)).collect();
    let right: Vec<Value> = pool.iter().map(|v| Value::Int64(v % 25)).collect();

    // The guard handle is stateful (violation-site dedup), so every run
    // gets a fresh wrapper around a fresh evil join.
    let guarded_plan = || {
        let evil: Arc<dyn JoinAlgorithm> = Arc::new(EvilJoin::new(
            Arc::new(EqualityFudj),
            EvilMode::PanicIn(EvilPhase::Assign),
        ));
        let engine: Arc<dyn EngineJoin> = Arc::new(FudjEngineJoin::new(Arc::new(
            GuardedJoin::new(evil, GuardConfig::with_policy(UdfPolicy::Quarantine)),
        )));
        PhysicalPlan::FudjJoin(FudjJoinNode::new(
            PhysicalPlan::Scan {
                dataset: dataset("l", &left, WORKERS),
            },
            PhysicalPlan::Scan {
                dataset: dataset("r", &right, WORKERS),
            },
            engine,
            1,
            1,
            vec![],
        ))
    };
    let run = |cluster: &Cluster| -> (Vec<(i64, i64)>, UdfStats) {
        let (batch, metrics) = cluster.execute(&guarded_plan()).unwrap();
        let mut pairs: Vec<(i64, i64)> = batch
            .rows()
            .iter()
            .map(|r| (r.get(0).as_i64().unwrap(), r.get(2).as_i64().unwrap()))
            .collect();
        pairs.sort_unstable();
        (pairs, metrics.snapshot().udf)
    };

    // Oracle: the equality join minus every pair touching a poisoned key.
    let mut expected: Vec<(i64, i64)> = Vec::new();
    for (i, l) in left.iter().enumerate() {
        for (j, r) in right.iter().enumerate() {
            if l == r && !poison_long(l.as_i64().unwrap()) {
                expected.push((i as i64, j as i64));
            }
        }
    }
    expected.sort_unstable();
    assert!(!expected.is_empty(), "degenerate workload");

    let (clean_pairs, clean_udf) = run(&Cluster::new(WORKERS));
    assert_eq!(clean_pairs, expected, "fault-free quarantine diverged");
    assert!(clean_udf.quarantined_rows > 0, "{clean_udf:?}");
    assert!(clean_udf.assign_violations > 0, "{clean_udf:?}");

    for seed in seeds() {
        let cluster = Cluster::with_faults(WORKERS, FaultConfig::chaos(seed));
        let (pairs, udf) = run(&cluster);
        assert_eq!(pairs, expected, "seed {seed}: surviving results diverged");
        assert_eq!(
            udf, clean_udf,
            "seed {seed}: retries double-counted quarantined rows"
        );
    }
}

/// A quiet (all-zero-probability) fault plan is indistinguishable from no
/// plan at all: no counters move, and the canonical traffic metrics are
/// byte-for-byte those of an unarmed run.
#[test]
fn quiet_fault_plan_changes_nothing() {
    for w in workloads() {
        let unarmed = Cluster::new(WORKERS);
        let (batch, metrics) = unarmed.execute(&plan(&w)).unwrap();
        let base = metrics.snapshot();

        let quiet = Cluster::with_faults(WORKERS, FaultConfig::quiet(123));
        let (qbatch, qmetrics) = quiet.execute(&plan(&w)).unwrap();
        let qsnap = qmetrics.snapshot();

        assert_eq!(qsnap.fault, FaultStats::default(), "{}", w.name);
        assert_eq!(batch.rows().len(), qbatch.rows().len(), "{}", w.name);
        assert_eq!(base.rows_shuffled, qsnap.rows_shuffled, "{}", w.name);
        assert_eq!(base.bytes_shuffled, qsnap.bytes_shuffled, "{}", w.name);
        assert_eq!(base.rows_broadcast, qsnap.rows_broadcast, "{}", w.name);
        assert_eq!(base.bytes_broadcast, qsnap.bytes_broadcast, "{}", w.name);
        assert_eq!(base.state_bytes, qsnap.state_bytes, "{}", w.name);
        assert_eq!(base.verify_calls, qsnap.verify_calls, "{}", w.name);
        assert_eq!(base.dedup_rejections, qsnap.dedup_rejections, "{}", w.name);
    }
}
