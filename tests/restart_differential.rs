//! Whole-process crash-restart resumption: for every query-journal crash
//! site (and every PR-8 storage crash site, which the journal writes now
//! also traverse), under a pinned seed matrix, run a journaled query
//! workload until the injected crash kills the "process", reopen the same
//! virtual disk, and assert that
//!
//! 1. reopening never panics and never errors — the journal replays,
//!    finished queries are dropped, unfinished queries re-execute,
//! 2. every resumed query's rows AND logical [`CounterFingerprint`] are
//!    identical to an uninterrupted oracle run of the same statement
//!    (the journal's counter seed makes a boundary-resume
//!    indistinguishable from a full run),
//! 3. a second crash during the resume itself is also survivable, and a
//!    further reopen changes nothing (idempotent, exactly-once), and
//! 4. sealed journals leave no durable checkpoint frames behind.
//!
//! Seeds come from `CHAOS_SEEDS` (comma-separated, default pinned matrix)
//! so CI can widen the sweep without a code change.

use fudj_repro::datagen::{parks, wildfires, GeneratorConfig};
use fudj_repro::exec::{CounterFingerprint, MetricsSnapshot};
use fudj_repro::joins::standard_library;
use fudj_repro::sql::Session;
use fudj_repro::storage::{
    DatasetBuilder, FaultFs, StorageFaultConfig, CRASH_POINTS, QUERY_CRASH_POINTS,
};
use fudj_repro::types::{Batch, DataType, Field, FudjError, Row, Schema, Value};
use std::collections::BTreeMap;
use std::sync::Arc;

fn seeds() -> Vec<u64> {
    std::env::var("CHAOS_SEEDS")
        .unwrap_or_else(|_| "101,202,303,404,505".into())
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect()
}

/// The journaled query workload: a UDF join feeding an aggregate (both
/// `join:combine` and `agg:shuffle` boundaries) plus a plain aggregate.
const QUERIES: &[&str] = &[
    "SELECT p.id, COUNT(w.id) AS num_fires FROM Parks p, Wildfires w \
     WHERE ST_Contains(p.boundary, w.location) GROUP BY p.id ORDER BY num_fires DESC",
    "SELECT k.tag, COUNT(*) AS c FROM kv k GROUP BY k.tag ORDER BY k.tag",
    "SELECT COUNT(*) AS c FROM Wildfires w",
];

const CREATE_ST: &str = r#"CREATE JOIN st_contains(a: polygon, b: point)
    RETURNS boolean AS "spatial.SpatialJoin" AT flexiblejoins"#;

/// A session with the workload's datasets and joins registered — the
/// same deterministic state on every construction, so a fresh in-memory
/// session is a valid oracle for a crashed-and-reopened one.
fn make_session() -> Session {
    let s = Session::new(3);
    s.install_library(standard_library());
    s.register_dataset(parks(GeneratorConfig::new(40, 1, 3)).unwrap())
        .unwrap();
    s.register_dataset(wildfires(GeneratorConfig::new(80, 2, 3)).unwrap())
        .unwrap();
    let kv = DatasetBuilder::new(
        "kv",
        Schema::shared(vec![
            Field::new("id", DataType::Int64),
            Field::new("tag", DataType::String),
        ]),
    )
    .primary_key("id")
    .partitions(3)
    .build()
    .unwrap();
    kv.insert_all(
        (0..24).map(|i| Row::new(vec![Value::Int64(i), Value::str(format!("t{}", i % 4))])),
    )
    .unwrap();
    s.register_dataset(kv).unwrap();
    s.execute(CREATE_ST).unwrap();
    s
}

fn sorted_rows(batch: &Batch) -> Vec<Row> {
    let mut rows = batch.rows().to_vec();
    rows.sort();
    rows
}

/// Normalize a snapshot for logical comparison: resume bookkeeping,
/// checkpoint restore reads, and the session/tier-scoped counter blocks
/// differ by construction between a resumed run and the oracle.
fn logical_fingerprint(snapshot: &MetricsSnapshot) -> CounterFingerprint {
    let mut fp = snapshot.fingerprint();
    fp.recovery.stages_resumed = 0;
    fp.recovery.resume_rows_restored = 0;
    fp.recovery.resume_full_replays = 0;
    fp.recovery.checkpoints_read = 0;
    fp.durability = Default::default();
    fp.serving = Default::default();
    fp
}

/// Oracle rows + normalized fingerprint, keyed by workload statement.
type OracleMap = BTreeMap<&'static str, (Vec<Row>, CounterFingerprint)>;

/// Uninterrupted oracle: each query's rows + normalized fingerprint from
/// a plain in-memory run (no WAL, no journal, no faults). Deterministic,
/// so it is computed once for the whole matrix.
fn oracle() -> Arc<OracleMap> {
    use std::sync::OnceLock;
    static ORACLE: OnceLock<Arc<OracleMap>> = OnceLock::new();
    ORACLE
        .get_or_init(|| {
            let s = make_session();
            // The oracle checkpoints at every boundary too (in-memory
            // tier only), so checkpoint write counters match runs that
            // executed under the durable tier's `All` policy.
            s.execute("SET checkpoint_stages = all").unwrap();
            let mut map = BTreeMap::new();
            for &sql in QUERIES {
                let out = s.execute(sql).unwrap();
                map.insert(
                    sql,
                    (sorted_rows(out.batch()), logical_fingerprint(out.metrics())),
                );
            }
            Arc::new(map)
        })
        .clone()
}

/// Outcome of one crash/reopen cycle, aggregated for non-vacuity checks.
#[derive(Default)]
struct RunTally {
    crashed: bool,
    resumed_queries: usize,
    boundary_resumes: u64,
    full_replays: u64,
}

/// Run the journaled workload until the armed crash fires, reopen the
/// same virtual disk, and check every resumed query against the oracle.
fn run_one(site: &str, seed: u64) -> RunTally {
    // Vary when the crash strikes, bounded by how often each site is
    // traversed: journal sites fire once or twice per query, checkpoint
    // and WAL writes many times per query, snapshot/manifest/rotate
    // sites only during the workload's two `\persist` steps.
    let hit = if site.starts_with("checkpoint:") || site == "wal:append" || site == "wal:sync" {
        1 + seed % 6
    } else if site.starts_with("journal:") {
        1 + seed % 3
    } else {
        1 + seed % 2
    };
    let fs = FaultFs::new(StorageFaultConfig::crash_at(seed, site, hit));
    let dir = format!("/restart-{}-{seed}", site.replace(':', "-"));
    let mut tally = RunTally::default();

    let session = make_session();
    session.execute("SET checkpoint_durable = on").unwrap();
    match session.open_wal_with(&dir, fs.clone()) {
        Ok(()) => {
            // Interleave persists so the snapshot/manifest/rotate crash
            // sites are traversed alongside the query-journal sites.
            let steps: Vec<Option<&str>> = vec![
                Some(QUERIES[0]),
                None, // persist
                Some(QUERIES[1]),
                Some(QUERIES[2]),
                None, // persist
            ];
            for step in steps {
                let result = match step {
                    Some(sql) => session.execute(sql).map(Some),
                    None => session.persist().map(|_| None),
                };
                match result {
                    Ok(Some(out)) => {
                        // An acknowledged result must already be correct.
                        let sql = step.unwrap();
                        let (want_rows, _) = &oracle()[sql];
                        assert_eq!(
                            &sorted_rows(out.batch()),
                            want_rows,
                            "[{site} seed {seed}] pre-crash answer diverges"
                        );
                    }
                    Ok(None) => {}
                    Err(FudjError::Crash(_)) => {
                        tally.crashed = true;
                        break;
                    }
                    Err(e) => panic!("[{site} seed {seed}] non-crash step failure: {e}"),
                }
            }
        }
        Err(e) => {
            assert!(
                matches!(e, FudjError::Crash(_)),
                "[{site} seed {seed}] initial open failed with a non-crash error: {e}"
            );
            tally.crashed = true;
        }
    }
    drop(session);

    // Restart: same virtual disk, crash flag cleared, faults disarmed.
    fs.reopen_after_crash();
    let recovered = make_session();
    recovered.execute("SET checkpoint_durable = on").unwrap();
    recovered
        .open_wal_with(&dir, fs.clone())
        .unwrap_or_else(|e| panic!("[{site} seed {seed}] reopen failed: {e}"));

    for resumed in recovered.take_resumed() {
        tally.resumed_queries += 1;
        let sql = resumed.sql.as_str();
        let (want_rows, want_fp) = oracle()
            .get(sql)
            .cloned()
            .unwrap_or_else(|| panic!("[{site} seed {seed}] journal invented query {sql:?}"));
        let (batch, snapshot) = resumed
            .result
            .unwrap_or_else(|e| panic!("[{site} seed {seed}] resume of {sql:?} failed: {e}"));
        assert_eq!(
            sorted_rows(&batch),
            want_rows,
            "[{site} seed {seed}] resumed rows diverge for {sql:?} \
             (resumed_from {:?})",
            resumed.resumed_from
        );
        assert_eq!(
            logical_fingerprint(&snapshot),
            want_fp,
            "[{site} seed {seed}] resumed counter fingerprint diverges for {sql:?} \
             (resumed_from {:?})",
            resumed.resumed_from
        );
        tally.boundary_resumes += snapshot.recovery.stages_resumed;
        tally.full_replays += snapshot.recovery.resume_full_replays;
    }

    // Exactly-once: every journal entry is now sealed, so one more
    // restart resumes nothing and observes the same catalog state.
    drop(recovered);
    let again = make_session();
    again
        .open_wal_with(&dir, fs)
        .unwrap_or_else(|e| panic!("[{site} seed {seed}] second reopen failed: {e}"));
    assert!(
        again.take_resumed().is_empty(),
        "[{site} seed {seed}] sealed journal re-resumed — results would be delivered twice"
    );
    // Disk hygiene: sealed queries drop their durable checkpoint frames.
    assert_eq!(
        again.cluster().checkpoints().durable_frames(),
        Vec::<String>::new(),
        "[{site} seed {seed}] durable checkpoint frames leaked past QueryFinished"
    );
    tally
}

#[test]
fn every_query_crash_site_resumes_to_the_oracle() {
    let seeds = seeds();
    assert!(!seeds.is_empty(), "CHAOS_SEEDS must name at least one seed");
    let mut total = RunTally::default();
    for site in QUERY_CRASH_POINTS.iter().chain(CRASH_POINTS) {
        let mut site_crashes = 0usize;
        for &seed in &seeds {
            let tally = run_one(site, seed);
            site_crashes += tally.crashed as usize;
            total.resumed_queries += tally.resumed_queries;
            total.boundary_resumes += tally.boundary_resumes;
            total.full_replays += tally.full_replays;
        }
        assert!(
            site_crashes > 0,
            "crash site {site} never fired across the seed matrix — the sweep is \
             vacuous for this site"
        );
    }
    // The matrix must exercise the interesting machinery, not just crash
    // before anything was journaled.
    assert!(
        total.resumed_queries > 0,
        "no run left an unfinished journaled query to resume"
    );
    assert!(
        total.boundary_resumes > 0,
        "no resume restored a committed stage boundary — every run fell back to \
         full replay, so the checkpoint path is untested"
    );
    assert!(
        total.full_replays + (total.resumed_queries as u64) > total.boundary_resumes,
        "sanity: tallies are internally consistent"
    );
}

/// A crash during the resume itself (double crash) must leave the journal
/// in a state a *third* process can still recover: resume again, reach the
/// oracle answer, and seal everything exactly once.
#[test]
fn double_crash_during_resume_is_idempotent() {
    for &seed in &seeds() {
        let fs = FaultFs::new(StorageFaultConfig::crash_at(
            seed,
            "journal:stage",
            2 + seed % 2,
        ));
        let dir = format!("/restart-double-{seed}");

        let session = make_session();
        session.execute("SET checkpoint_durable = on").unwrap();
        let mut crashed = session.open_wal_with(&dir, fs.clone()).is_err();
        if !crashed {
            for &sql in QUERIES {
                if session.execute(sql).is_err() {
                    crashed = true;
                    break;
                }
            }
        }
        drop(session);
        if !crashed {
            continue; // this seed never reached the armed site
        }

        // Second process: arm a *different* crash so the resume itself can
        // die mid-flight (checkpoint writes happen during resumed stages).
        fs.reopen_after_crash();
        fs.set_config(StorageFaultConfig::crash_at(
            seed ^ 0xff,
            "checkpoint:write",
            1,
        ));
        let second = make_session();
        second.execute("SET checkpoint_durable = on").unwrap();
        match second.open_wal_with(&dir, fs.clone()) {
            Ok(()) => {
                // Resume results may individually be crash errors; nothing
                // may be a wrong answer.
                for resumed in second.take_resumed() {
                    if let Ok((batch, _)) = resumed.result {
                        let (want_rows, _) = &oracle()[resumed.sql.as_str()];
                        assert_eq!(&sorted_rows(&batch), want_rows, "[double seed {seed}]");
                    }
                }
            }
            Err(e) => assert!(
                matches!(e, FudjError::Crash(_)),
                "[double seed {seed}] second open failed non-crash: {e}"
            ),
        }
        drop(second);

        // Third process: quiet disk; everything left pending resumes to
        // the oracle answer and the journal seals.
        fs.reopen_after_crash();
        fs.set_config(StorageFaultConfig::quiet(seed));
        let third = make_session();
        third.execute("SET checkpoint_durable = on").unwrap();
        third
            .open_wal_with(&dir, fs.clone())
            .unwrap_or_else(|e| panic!("[double seed {seed}] third open failed: {e}"));
        for resumed in third.take_resumed() {
            let (want_rows, want_fp) = &oracle()[resumed.sql.as_str()];
            let (batch, snapshot) = resumed
                .result
                .unwrap_or_else(|e| panic!("[double seed {seed}] final resume failed: {e}"));
            assert_eq!(&sorted_rows(&batch), want_rows, "[double seed {seed}]");
            assert_eq!(
                &logical_fingerprint(&snapshot),
                want_fp,
                "[double seed {seed}] fingerprint diverges after double crash"
            );
        }
        drop(third);

        fs.reopen_after_crash();
        let fourth = make_session();
        fourth.open_wal_with(&dir, fs).unwrap();
        assert!(
            fourth.take_resumed().is_empty(),
            "[double seed {seed}] journal did not seal after the third process"
        );
    }
}

/// Crash-resume cycles on the real filesystem leave no staging litter and
/// no orphaned checkpoint frames in the WAL directory tree.
#[test]
fn crash_resume_cycles_leave_no_disk_litter() {
    let dir = std::env::temp_dir().join(format!("fudj-restart-litter-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let s = make_session();
        s.execute("SET checkpoint_durable = on").unwrap();
        s.open_wal(dir.to_str().unwrap()).unwrap();
        for &sql in QUERIES {
            s.execute(sql).unwrap();
        }
        s.persist().unwrap();
    }
    {
        // Reopen (nothing pending) and run once more.
        let s = make_session();
        s.execute("SET checkpoint_durable = on").unwrap();
        s.open_wal(dir.to_str().unwrap()).unwrap();
        assert!(s.take_resumed().is_empty());
        s.execute(QUERIES[1]).unwrap();
    }
    let mut stack = vec![dir.clone()];
    let mut litter = Vec::new();
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(&d).unwrap().filter_map(|e| e.ok()) {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
                continue;
            }
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.ends_with(".tmp") || name.ends_with(".fudj-probe") || name.ends_with(".fckpt") {
                litter.push(path.display().to_string());
            }
        }
    }
    assert_eq!(
        litter,
        Vec::<String>::new(),
        "sealed queries must leave no checkpoint frames or staging files"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
