//! Row-vs-columnar differential oracle: the vectorized execution core must
//! be *observationally indistinguishable* from the row-at-a-time
//! interpreter. For every join class, under Zipf-skewed keys, across the
//! chaos seed matrix, with spill budgets and Quarantine-guarded evil
//! libraries in the mix, both execution modes must produce bit-identical
//! result multisets AND bit-identical [`CounterFingerprint`]s — the
//! columnar engine is an evaluation strategy, not a semantics change.
//!
//! Replay a failing seed with
//! `CHAOS_SEEDS=<seed> cargo test --test columnar_differential`.

use fudj_repro::core::{
    EngineJoin, FudjEngineJoin, GuardConfig, GuardedJoin, JoinAlgorithm, ProxyJoin, UdfPolicy,
    UdfStats,
};
use fudj_repro::exec::{
    Cluster, CounterFingerprint, ExecMode, FaultConfig, FudjJoinNode, PhysicalPlan,
};
use fudj_repro::geo::{Point, Polygon, Rect};
use fudj_repro::joins::evil::{EqualityFudj, EvilJoin, EvilMode, EvilPhase};
use fudj_repro::joins::{poisoned, IntervalFudj, SpatialDedup, SpatialFudj, TextSimilarityFudj};
use fudj_repro::storage::DatasetBuilder;
use fudj_repro::temporal::Interval;
use fudj_repro::types::{DataType, ExtValue, Field, Row, Schema, Value};
use std::sync::Arc;

const WORKERS: usize = 3;

/// The seed matrix: `CHAOS_SEEDS=1,2,3` overrides (the CI columnar job
/// pins the same fixed matrix as the chaos job).
fn seeds() -> Vec<u64> {
    match std::env::var("CHAOS_SEEDS") {
        Ok(s) => {
            let parsed: Vec<u64> = s
                .split(',')
                .map(|t| t.trim().parse().expect("CHAOS_SEEDS must be u64s"))
                .collect();
            assert!(!parsed.is_empty(), "CHAOS_SEEDS set but empty");
            parsed
        }
        Err(_) => (0..5).map(|i| 31_337 + 1_013 * i).collect(),
    }
}

/// xorshift64* — data must be a pure function of its seed.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn f64_unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.f64_unit() * (hi - lo)
    }

    fn i64_in(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next() % (hi - lo) as u64) as i64
    }
}

/// Draw `n` Zipf(s≈1.2)-distributed samples from `pool`: a few hot keys
/// dominate, giving the columnar bucket/stride paths genuinely skewed
/// partitions (the regime the paper's DIVIDE phase exists for).
fn zipf_sample(pool: &[Value], n: usize, salt: u64) -> Vec<Value> {
    let weights: Vec<f64> = (0..pool.len())
        .map(|i| 1.0 / ((i + 1) as f64).powf(1.2))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut g = Gen(0x5EED ^ salt);
    (0..n)
        .map(|_| {
            let mut u = g.f64_unit() * total;
            let mut idx = pool.len() - 1;
            for (i, w) in weights.iter().enumerate() {
                if u < *w {
                    idx = i;
                    break;
                }
                u -= w;
            }
            pool[idx].clone()
        })
        .collect()
}

fn polygon_pool(n: usize) -> Vec<Value> {
    let mut g = Gen(11);
    (0..n)
        .map(|_| {
            let (x, y) = (g.f64_in(0.0, 90.0), g.f64_in(0.0, 90.0));
            let (w, h) = (g.f64_in(0.5, 12.0), g.f64_in(0.5, 12.0));
            Value::polygon(Polygon::from_rect(&Rect::new(x, y, x + w, y + h)))
        })
        .collect()
}

/// Points jittered around the polygon pool's corners, so containment hits
/// actually occur even after Zipf sampling concentrates on hot entries.
fn point_pool(n: usize, polys: &[Value]) -> Vec<Value> {
    let mut g = Gen(22);
    (0..n)
        .map(|i| {
            let Value::Polygon(p) = &polys[i % polys.len()] else {
                panic!("polygon pool holds polygons")
            };
            let b = p.mbr();
            Value::Point(Point::new(
                g.f64_in(b.min_x, b.min_x + 2.0 * (b.max_x - b.min_x)),
                g.f64_in(b.min_y, b.min_y + 2.0 * (b.max_y - b.min_y)),
            ))
        })
        .collect()
}

fn interval_pool(n: usize, salt: u64) -> Vec<Value> {
    let mut g = Gen(33 + salt);
    (0..n)
        .map(|_| {
            let s = g.i64_in(0, 50_000);
            Value::Interval(Interval::new(s, s + g.i64_in(0, 3_000)))
        })
        .collect()
}

fn text_pool(n: usize, salt: u64) -> Vec<Value> {
    const WORDS: [&str; 7] = ["river", "peak", "camp", "view", "rock", "fern", "lake"];
    let mut g = Gen(44 + salt);
    (0..n)
        .map(|_| {
            let k = 1 + (g.next() % 5) as usize;
            let ws: Vec<&str> = (0..k).map(|_| WORDS[(g.next() % 7) as usize]).collect();
            Value::str(ws.join(" "))
        })
        .collect()
}

fn dataset(name: &str, keys: &[Value], parts: usize) -> Arc<fudj_repro::storage::Dataset> {
    let dt = keys
        .first()
        .map(Value::data_type)
        .unwrap_or(DataType::Int64);
    let schema = Schema::shared(vec![Field::new("id", DataType::Int64), Field::new("k", dt)]);
    let d = DatasetBuilder::new(name, schema)
        .partitions(parts)
        .build()
        .unwrap();
    for (i, k) in keys.iter().enumerate() {
        d.insert(Row::new(vec![Value::Int64(i as i64), k.clone()]))
            .unwrap();
    }
    Arc::new(d)
}

struct Workload {
    name: &'static str,
    engine: Arc<dyn EngineJoin>,
    left: Vec<Value>,
    right: Vec<Value>,
    params: Vec<Value>,
}

/// All four join classes, each fed Zipf-skewed key distributions.
fn workloads() -> Vec<Workload> {
    let mut out = Vec::new();
    for (name, dedup) in [
        ("spatial/avoidance", SpatialDedup::FrameworkAvoidance),
        ("spatial/elimination", SpatialDedup::Elimination),
    ] {
        let alg: Arc<dyn JoinAlgorithm> = Arc::new(ProxyJoin::new(SpatialFudj::with_dedup(dedup)));
        out.push(Workload {
            name,
            engine: Arc::new(FudjEngineJoin::new(alg)),
            left: zipf_sample(&polygon_pool(20), 30, 1),
            right: zipf_sample(&point_pool(32, &polygon_pool(20)), 48, 2),
            params: vec![Value::Int64(8)],
        });
    }
    let alg: Arc<dyn JoinAlgorithm> = Arc::new(ProxyJoin::new(IntervalFudj::new()));
    out.push(Workload {
        name: "interval",
        engine: Arc::new(FudjEngineJoin::new(alg)),
        left: zipf_sample(&interval_pool(24, 0), 36, 3),
        right: zipf_sample(&interval_pool(24, 1), 36, 4),
        params: vec![Value::Int64(50)],
    });
    let alg: Arc<dyn JoinAlgorithm> = Arc::new(ProxyJoin::new(TextSimilarityFudj::new()));
    out.push(Workload {
        name: "text",
        engine: Arc::new(FudjEngineJoin::new(alg)),
        left: zipf_sample(&text_pool(14, 0), 26, 5),
        right: zipf_sample(&text_pool(14, 1), 26, 6),
        params: vec![Value::Float64(0.5)],
    });
    out
}

fn plan(w: &Workload, budget: Option<usize>) -> PhysicalPlan {
    let mut node = FudjJoinNode::new(
        PhysicalPlan::Scan {
            dataset: dataset("l", &w.left, WORKERS),
        },
        PhysicalPlan::Scan {
            dataset: dataset("r", &w.right, WORKERS),
        },
        w.engine.clone(),
        1,
        1,
        w.params.clone(),
    );
    node.memory_budget_rows = budget;
    PhysicalPlan::FudjJoin(node)
}

/// Execute under one mode; sorted result rows + the counter fingerprint.
fn run_mode(
    cluster: &Cluster,
    plan: &PhysicalPlan,
    mode: ExecMode,
) -> (Vec<Row>, CounterFingerprint) {
    let (batch, metrics) = cluster.execute_mode(plan, Some(mode)).unwrap();
    let snap = metrics.snapshot();
    assert_eq!(snap.exec_mode, mode, "snapshot must report the pinned mode");
    let mut rows = batch.rows().to_vec();
    rows.sort();
    (rows, snap.fingerprint())
}

/// Fault-free: every join class, in memory and under a tight spill budget,
/// produces bit-identical rows and counters in both modes.
#[test]
fn fault_free_modes_agree_bit_for_bit() {
    let mut spilled = 0u64;
    for w in workloads() {
        for budget in [None, Some(8)] {
            let p = plan(&w, budget);
            let cluster = Cluster::new(WORKERS);
            let (rows_r, fp_r) = run_mode(&cluster, &p, ExecMode::Row);
            let (rows_c, fp_c) = run_mode(&cluster, &p, ExecMode::Columnar);
            assert!(!rows_r.is_empty(), "{}: degenerate workload", w.name);
            assert_eq!(
                rows_r, rows_c,
                "{} (budget {budget:?}): results diverged across modes",
                w.name
            );
            assert_eq!(
                fp_r, fp_c,
                "{} (budget {budget:?}): counter fingerprints diverged",
                w.name
            );
            if budget.is_some() {
                spilled += fp_r.spilled_rows;
            }
        }
    }
    // Theta multi-joins (interval) take the broadcast path, so not every
    // workload spills — but the matrix as a whole must exercise the
    // budgeted hybrid-hash COMBINE in both modes.
    assert!(spilled > 0, "no budgeted workload ever spilled");
}

/// The chaos matrix: every join class × every pinned seed, one fresh
/// faulted cluster per mode (same seed ⇒ same schedule). Results and
/// fingerprints — including the fault/recovery counters inside the
/// fingerprint — must match across modes.
#[test]
fn chaos_matrix_modes_agree() {
    let seeds = seeds();
    let mut injected = 0u64;
    for w in workloads() {
        let p = plan(&w, None);
        for &seed in &seeds {
            let row_cluster = Cluster::with_faults(WORKERS, FaultConfig::chaos(seed));
            let (rows_r, fp_r) = run_mode(&row_cluster, &p, ExecMode::Row);
            let col_cluster = Cluster::with_faults(WORKERS, FaultConfig::chaos(seed));
            let (rows_c, fp_c) = run_mode(&col_cluster, &p, ExecMode::Columnar);
            assert_eq!(
                rows_r, rows_c,
                "{} seed {seed}: results diverged across modes",
                w.name
            );
            assert_eq!(
                fp_r, fp_c,
                "{} seed {seed}: fingerprints diverged across modes",
                w.name
            );
            injected += fp_r.fault.total_injected();
        }
    }
    assert!(injected > 0, "the chaos matrix never injected a fault");
}

/// Chaos × spill: a tight budget under fault injection still agrees across
/// modes, and the spill counters inside the fingerprint agree too.
#[test]
fn chaos_with_spill_budget_modes_agree() {
    let w = &workloads()[0];
    let p = plan(w, Some(8));
    for seed in seeds() {
        let (rows_r, fp_r) = run_mode(
            &Cluster::with_faults(WORKERS, FaultConfig::chaos(seed)),
            &p,
            ExecMode::Row,
        );
        let (rows_c, fp_c) = run_mode(
            &Cluster::with_faults(WORKERS, FaultConfig::chaos(seed)),
            &p,
            ExecMode::Columnar,
        );
        assert_eq!(rows_r, rows_c, "seed {seed}: spilled results diverged");
        assert_eq!(fp_r, fp_c, "seed {seed}: spill fingerprints diverged");
        assert!(fp_r.spilled_rows > 0, "seed {seed}: budget must spill");
    }
}

/// Quarantine-guarded evil join (panics in `assign` on poisoned keys):
/// the columnar `assign_slice` stride must quarantine exactly the rows the
/// per-row path quarantines — same survivors, same violation counters —
/// fault-free and under the first chaos seed.
#[test]
fn quarantined_evil_join_agrees_across_modes() {
    let poison_long = |v: i64| poisoned(&ExtValue::Long(v));
    let pool: Vec<i64> = (0..200).collect();
    let left: Vec<Value> = pool.iter().map(|v| Value::Int64(v % 40)).collect();
    let right: Vec<Value> = pool.iter().map(|v| Value::Int64(v % 25)).collect();

    // Fresh guard state per run: the wrapper dedups violation sites.
    let guarded_plan = || {
        let evil: Arc<dyn JoinAlgorithm> = Arc::new(EvilJoin::new(
            Arc::new(EqualityFudj),
            EvilMode::PanicIn(EvilPhase::Assign),
        ));
        let engine: Arc<dyn EngineJoin> = Arc::new(FudjEngineJoin::new(Arc::new(
            GuardedJoin::new(evil, GuardConfig::with_policy(UdfPolicy::Quarantine)),
        )));
        PhysicalPlan::FudjJoin(FudjJoinNode::new(
            PhysicalPlan::Scan {
                dataset: dataset("l", &left, WORKERS),
            },
            PhysicalPlan::Scan {
                dataset: dataset("r", &right, WORKERS),
            },
            engine,
            1,
            1,
            vec![],
        ))
    };
    let run = |cluster: &Cluster, mode: ExecMode| -> (Vec<(i64, i64)>, UdfStats) {
        let (batch, metrics) = cluster.execute_mode(&guarded_plan(), Some(mode)).unwrap();
        let mut pairs: Vec<(i64, i64)> = batch
            .rows()
            .iter()
            .map(|r| (r.get(0).as_i64().unwrap(), r.get(2).as_i64().unwrap()))
            .collect();
        pairs.sort_unstable();
        (pairs, metrics.snapshot().udf)
    };

    // Oracle: the equality join minus every pair touching a poisoned key.
    let mut expected: Vec<(i64, i64)> = Vec::new();
    for (i, l) in left.iter().enumerate() {
        for (j, r) in right.iter().enumerate() {
            if l == r && !poison_long(l.as_i64().unwrap()) {
                expected.push((i as i64, j as i64));
            }
        }
    }
    expected.sort_unstable();

    let (pairs_r, udf_r) = run(&Cluster::new(WORKERS), ExecMode::Row);
    let (pairs_c, udf_c) = run(&Cluster::new(WORKERS), ExecMode::Columnar);
    assert_eq!(
        pairs_r, expected,
        "row-mode quarantine diverged from oracle"
    );
    assert_eq!(
        pairs_c, expected,
        "columnar quarantine diverged from oracle"
    );
    assert_eq!(udf_r, udf_c, "violation counters diverged across modes");
    assert!(udf_r.quarantined_rows > 0, "{udf_r:?}");
    assert!(udf_r.assign_violations > 0, "{udf_r:?}");

    let seed = *seeds().first().unwrap();
    let (chaos_r, chaos_udf_r) = run(
        &Cluster::with_faults(WORKERS, FaultConfig::chaos(seed)),
        ExecMode::Row,
    );
    let (chaos_c, chaos_udf_c) = run(
        &Cluster::with_faults(WORKERS, FaultConfig::chaos(seed)),
        ExecMode::Columnar,
    );
    assert_eq!(chaos_r, expected, "seed {seed}: row survivors diverged");
    assert_eq!(
        chaos_c, expected,
        "seed {seed}: columnar survivors diverged"
    );
    assert_eq!(chaos_udf_r, chaos_udf_c, "seed {seed}: counters diverged");
}

/// The relational pipeline around the joins: a SQL query whose plan
/// compiles to `VecFilter`/`VecProject`/`HashAggregate` must agree across
/// modes through the full front end, and the plan text must show that the
/// vector operators (not closures) were selected — the *same* plan serves
/// both modes.
#[test]
fn sql_scan_filter_aggregate_pipeline_agrees_across_modes() {
    use fudj_repro::datagen::{nyctaxi, GeneratorConfig};
    use fudj_repro::sql::Session;

    let run = |mode: &str| {
        let s = Session::new(WORKERS);
        s.register_dataset(nyctaxi(GeneratorConfig::new(240, 3, WORKERS)).unwrap())
            .unwrap();
        s.execute(&format!("SET exec_mode = {mode}")).unwrap();
        let sql = "SELECT n.Vendor, COUNT(*) AS c, AVG(n.Vendor) AS avg_v \
                   FROM NYCTaxi n \
                   WHERE n.Vendor >= 1 AND n.Vendor <> 3 \
                   GROUP BY n.Vendor ORDER BY n.Vendor";
        let explain = s.execute(&format!("EXPLAIN {sql}")).unwrap();
        let fudj_repro::sql::QueryOutput::Plan(text) = explain else {
            panic!("expected a plan")
        };
        assert!(text.contains("VecFilter"), "{text}");
        assert!(text.contains("VecProject"), "{text}");
        let out = s.execute(sql).unwrap();
        let rows = out.batch().rows().to_vec();
        let fp = out.metrics().fingerprint();
        (rows, fp)
    };

    let (rows_r, fp_r) = run("row");
    let (rows_c, fp_c) = run("columnar");
    assert!(!rows_r.is_empty());
    assert_eq!(rows_r, rows_c, "SQL pipeline results diverged across modes");
    assert_eq!(
        fp_r, fp_c,
        "SQL pipeline fingerprints diverged across modes"
    );
}
