//! End-to-end integration tests: the paper's queries, executed through the
//! full SQL → optimizer → distributed-engine stack, with the on-top NLJ
//! plan as the semantic oracle.

use fudj_repro::datagen::{amazon_reviews, nyctaxi, parks, weather, wildfires, GeneratorConfig};
use fudj_repro::joins::standard_library;
use fudj_repro::planner::PlanOptions;
use fudj_repro::sql::{QueryOutput, Session};
use fudj_repro::types::Row;

/// Build a session with all five datasets and all paper joins registered.
fn session(workers: usize) -> Session {
    let s = Session::new(workers);
    s.register_dataset(parks(GeneratorConfig::new(400, 101, workers.max(2))).unwrap())
        .unwrap();
    s.register_dataset(wildfires(GeneratorConfig::new(900, 102, workers.max(2))).unwrap())
        .unwrap();
    s.register_dataset(nyctaxi(GeneratorConfig::new(400, 103, workers.max(2))).unwrap())
        .unwrap();
    s.register_dataset(amazon_reviews(GeneratorConfig::new(350, 104, workers.max(2))).unwrap())
        .unwrap();
    s.register_dataset(weather(GeneratorConfig::new(500, 105, workers.max(2))).unwrap())
        .unwrap();
    s.install_library(standard_library());
    for ddl in [
        r#"CREATE JOIN st_contains(a: polygon, b: point)
           RETURNS boolean AS "spatial.SpatialJoin" AT flexiblejoins"#,
        r#"CREATE JOIN overlapping_interval(a: interval, b: interval)
           RETURNS boolean AS "interval.OverlappingIntervalJoin" AT flexiblejoins"#,
        r#"CREATE JOIN similarity_jaccard(a: string, b: string, t: double)
           RETURNS boolean AS "setsimilarity.SetSimilarityJoin" AT flexiblejoins"#,
        r#"CREATE JOIN jaccard_similarity(a: string, b: string, t: double)
           RETURNS boolean AS "setsimilarity.SetSimilarityJoinElimination" AT flexiblejoins"#,
        r#"CREATE JOIN st_intersects(a: polygon, b: polygon)
           RETURNS boolean AS "spatial.SpatialJoinRefPoint" AT flexiblejoins"#,
    ] {
        s.execute(ddl).unwrap();
    }
    s
}

fn sorted_rows(batch: &fudj_repro::types::Batch) -> Vec<Row> {
    let mut rows = batch.rows().to_vec();
    rows.sort();
    rows
}

/// Run `sql` under the FUDJ planner and the forced on-top planner; both must
/// return the same multiset of rows.
fn assert_fudj_equals_ontop(sql: &str, workers: usize) -> usize {
    let fudj_session = session(workers);
    let fudj = fudj_session.query(sql).unwrap();

    let mut ontop_session = session(workers);
    ontop_session.set_options(PlanOptions {
        force_on_top: true,
        ..Default::default()
    });
    let ontop = ontop_session.query(sql).unwrap();

    assert_eq!(sorted_rows(&fudj), sorted_rows(&ontop), "{sql}");
    fudj.len()
}

#[test]
fn paper_query1_spatial_aggregation() {
    let n = assert_fudj_equals_ontop(
        "SELECT p.id, p.tags, COUNT(w.id) AS num_fires \
         FROM Parks p, Wildfires w \
         WHERE ST_Contains(p.boundary, w.location) \
           AND w.fire_start >= parse_date('01/01/2022', 'M/D/Y') \
         GROUP BY p.id, p.tags",
        3,
    );
    assert!(n > 0, "spatial query must produce groups");
}

#[test]
fn paper_query2_text_similarity_with_elimination_dedup() {
    // jaccard_similarity is registered with the *elimination* dedup class;
    // the answer must still match on-top exactly.
    let n = assert_fudj_equals_ontop(
        "SELECT a.id, b.id AS other_id \
         FROM Parks a, Parks b \
         WHERE a.id <> b.id AND jaccard_similarity(a.tags, b.tags) >= 0.8",
        3,
    );
    assert!(n > 0, "similar park pairs exist");
}

#[test]
fn paper_query5_interval_vendor_split() {
    let n = assert_fudj_equals_ontop(
        "SELECT COUNT(*) FROM NYCTaxi n1, NYCTaxi n2 \
         WHERE n1.Vendor = 1 AND n2.Vendor = 2 \
           AND overlapping_interval(n1.ride_interval, n2.ride_interval)",
        3,
    );
    assert_eq!(n, 1, "global count row");
}

#[test]
fn paper_query5_text_similarity_counts() {
    assert_fudj_equals_ontop(
        "SELECT COUNT(*) FROM AmazonReview r1, AmazonReview r2 \
         WHERE r1.overall = 5 AND r2.overall = 4 \
           AND similarity_jaccard(r1.review, r2.review) >= 0.9",
        3,
    );
}

#[test]
fn paper_query3_combined_spatial_and_interval() {
    let n = assert_fudj_equals_ontop(
        "SELECT f.id, COUNT(w.id) AS readings, AVG(w.temp) AS avg_temp \
         FROM Wildfires f, Parks p, Weather w \
         WHERE ST_Contains(p.boundary, f.location) \
           AND overlapping_interval(interval(f.fire_start, f.fire_end), w.reading_interval) \
           AND ST_Distance(f.location, w.location) < 5 \
         GROUP BY f.id",
        3,
    );
    assert!(n > 0, "combined query produces results");
}

#[test]
fn query3_plan_contains_both_fudjs() {
    let s = session(2);
    let QueryOutput::Plan(plan) = s
        .execute(
            "EXPLAIN SELECT COUNT(*) \
             FROM Wildfires f, Parks p, Weather w \
             WHERE ST_Contains(p.boundary, f.location) \
               AND overlapping_interval(interval(f.fire_start, f.fire_end), w.reading_interval)",
        )
        .unwrap()
    else {
        panic!("not a plan")
    };
    assert!(plan.contains("spatial_join"), "{plan}");
    assert!(plan.contains("interval_join"), "{plan}");
    assert!(plan.contains("theta-nlj"), "{plan}");
    assert!(plan.contains("match: hash"), "{plan}");
}

#[test]
fn results_stable_across_worker_counts() {
    let sql = "SELECT p.id, COUNT(w.id) AS n \
               FROM Parks p, Wildfires w \
               WHERE ST_Contains(p.boundary, w.location) GROUP BY p.id";
    let reference = sorted_rows(&session(1).query(sql).unwrap());
    assert!(!reference.is_empty());
    for workers in [2, 4, 8] {
        let got = sorted_rows(&session(workers).query(sql).unwrap());
        assert_eq!(got, reference, "workers={workers}");
    }
}

#[test]
fn self_join_with_reference_point_dedup() {
    // st_intersects is registered with the custom reference-point dedup.
    let n = assert_fudj_equals_ontop(
        "SELECT COUNT(*) FROM Parks a, Parks b \
         WHERE st_intersects(a.boundary, b.boundary)",
        3,
    );
    assert_eq!(n, 1);
    // And the optimizer marked it as summarize-once.
    let s = session(2);
    let QueryOutput::Plan(plan) = s
        .execute(
            "EXPLAIN SELECT COUNT(*) FROM Parks a, Parks b \
             WHERE st_intersects(a.boundary, b.boundary)",
        )
        .unwrap()
    else {
        panic!()
    };
    assert!(plan.contains("summarize once"), "{plan}");
}

#[test]
fn drop_join_reverts_to_on_top() {
    let s = session(2);
    let sql = "EXPLAIN SELECT COUNT(*) FROM Parks p, Wildfires w \
               WHERE ST_Contains(p.boundary, w.location)";
    let QueryOutput::Plan(before) = s.execute(sql).unwrap() else {
        panic!()
    };
    assert!(before.contains("FudjJoin"));

    s.execute("DROP JOIN st_contains").unwrap();
    let QueryOutput::Plan(after) = s.execute(sql).unwrap() else {
        panic!()
    };
    assert!(after.contains("NestedLoopJoin"), "{after}");
    assert!(!after.contains("FudjJoin"));
}

#[test]
fn join_parameters_flow_from_sql_and_options() {
    // Grid side passed as a SQL argument and as an options injection must
    // both work and agree with each other.
    let s1 = session(2);
    let via_sql = s1
        .query(
            "SELECT COUNT(*) FROM Parks p, Wildfires w \
             WHERE st_contains(p.boundary, w.location, 64)",
        )
        .unwrap();

    let mut s2 = session(2);
    s2.set_options(PlanOptions {
        extra_join_params: vec![fudj_repro::types::Value::Int64(64)],
        ..Default::default()
    });
    let via_options = s2
        .query(
            "SELECT COUNT(*) FROM Parks p, Wildfires w \
             WHERE st_contains(p.boundary, w.location)",
        )
        .unwrap();
    assert_eq!(via_sql.rows(), via_options.rows());
}
