//! Property-based equivalence: for random workloads, worker counts, and
//! parameters, the distributed execution of every join strategy returns
//! exactly the pairs of (a) the sequential engine reference and (b) the
//! paper's standalone single-machine runner. This pins the three
//! implementations of the FUDJ semantics to one another.

use fudj_repro::core::{
    reference_execute, standalone::run_standalone, EngineJoin, FudjEngineJoin, ProxyJoin,
};
use fudj_repro::exec::{Cluster, FudjJoinNode, PhysicalPlan};
use fudj_repro::geo::{Point, Polygon, Rect};
use fudj_repro::joins::{BandJoin, IntervalFudj, SpatialDedup, SpatialFudj, TextSimilarityFudj};
use fudj_repro::storage::DatasetBuilder;
use fudj_repro::temporal::Interval;
use fudj_repro::types::{ext, DataType, ExtValue, Field, Row, Schema, Value};
use proptest::prelude::*;
use std::sync::Arc;

/// Wrap keys in an (id, key) dataset split over `parts` partitions.
fn dataset(name: &str, keys: &[Value], parts: usize) -> Arc<fudj_repro::storage::Dataset> {
    let dt = keys
        .first()
        .map(Value::data_type)
        .unwrap_or(DataType::Int64);
    let schema = Schema::shared(vec![Field::new("id", DataType::Int64), Field::new("k", dt)]);
    let d = DatasetBuilder::new(name, schema)
        .partitions(parts)
        .build()
        .unwrap();
    for (i, k) in keys.iter().enumerate() {
        d.insert(Row::new(vec![Value::Int64(i as i64), k.clone()]))
            .unwrap();
    }
    Arc::new(d)
}

/// Distributed pairs of a join over two key sets.
fn run_distributed(
    join: Arc<dyn EngineJoin>,
    left: &[Value],
    right: &[Value],
    params: Vec<Value>,
    workers: usize,
) -> Vec<(i64, i64)> {
    let plan = PhysicalPlan::FudjJoin(FudjJoinNode::new(
        PhysicalPlan::Scan {
            dataset: dataset("l", left, workers),
        },
        PhysicalPlan::Scan {
            dataset: dataset("r", right, workers),
        },
        join,
        1,
        1,
        params,
    ));
    let (batch, _) = Cluster::new(workers).execute(&plan).unwrap();
    let mut pairs: Vec<(i64, i64)> = batch
        .rows()
        .iter()
        .map(|r| (r.get(0).as_i64().unwrap(), r.get(2).as_i64().unwrap()))
        .collect();
    pairs.sort_unstable();
    pairs
}

/// Standalone-runner pairs (operates on external values).
fn run_via_standalone(
    alg: &dyn fudj_repro::core::JoinAlgorithm,
    left: &[Value],
    right: &[Value],
    params: &[Value],
) -> Vec<(i64, i64)> {
    let el: Vec<ExtValue> = left.iter().map(|v| ext::to_external(v).unwrap()).collect();
    let er: Vec<ExtValue> = right.iter().map(|v| ext::to_external(v).unwrap()).collect();
    let ep: Vec<ExtValue> = params
        .iter()
        .map(|v| ext::to_external(v).unwrap())
        .collect();
    run_standalone(alg, &el, &er, &ep)
        .unwrap()
        .into_iter()
        .map(|(i, j)| (i as i64, j as i64))
        .collect()
}

fn arb_point() -> impl Strategy<Value = Value> {
    (0.0..100.0f64, 0.0..100.0f64).prop_map(|(x, y)| Value::Point(Point::new(x, y)))
}

fn arb_poly() -> impl Strategy<Value = Value> {
    (0.0..90.0f64, 0.0..90.0f64, 0.5..12.0f64, 0.5..12.0f64)
        .prop_map(|(x, y, w, h)| Value::polygon(Polygon::from_rect(&Rect::new(x, y, x + w, y + h))))
}

fn arb_interval() -> impl Strategy<Value = Value> {
    (0i64..50_000, 0i64..3_000).prop_map(|(s, d)| Value::Interval(Interval::new(s, s + d)))
}

fn arb_text() -> impl Strategy<Value = Value> {
    prop::collection::vec(
        prop::sample::select(vec![
            "river", "peak", "camp", "view", "rock", "fern", "lake",
        ]),
        1..6,
    )
    .prop_map(|ws| Value::str(ws.join(" ")))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn spatial_join_three_way_agreement(
        polys in prop::collection::vec(arb_poly(), 1..25),
        pts in prop::collection::vec(arb_point(), 1..40),
        n in 2i64..24,
        workers in 1usize..5,
        dedup in prop::sample::select(vec![
            SpatialDedup::FrameworkAvoidance,
            SpatialDedup::ReferencePoint,
            SpatialDedup::Elimination,
        ]),
    ) {
        let params = vec![Value::Int64(n)];
        let alg = Arc::new(ProxyJoin::new(SpatialFudj::with_dedup(dedup)));
        let ej: Arc<dyn EngineJoin> = Arc::new(FudjEngineJoin::new(alg.clone()));

        let distributed = run_distributed(ej.clone(), &polys, &pts, params.clone(), workers);
        let reference: Vec<(i64, i64)> = reference_execute(ej.as_ref(), &polys, &pts, &params)
            .unwrap().into_iter().map(|(i, j)| (i as i64, j as i64)).collect();
        let standalone = run_via_standalone(alg.as_ref(), &polys, &pts, &params);

        prop_assert_eq!(&distributed, &reference);
        prop_assert_eq!(&distributed, &standalone);
    }

    #[test]
    fn interval_join_three_way_agreement(
        l in prop::collection::vec(arb_interval(), 1..30),
        r in prop::collection::vec(arb_interval(), 1..30),
        n in 1i64..200,
        workers in 1usize..5,
    ) {
        let params = vec![Value::Int64(n)];
        let alg = Arc::new(ProxyJoin::new(IntervalFudj::new()));
        let ej: Arc<dyn EngineJoin> = Arc::new(FudjEngineJoin::new(alg.clone()));

        let distributed = run_distributed(ej.clone(), &l, &r, params.clone(), workers);
        let standalone = run_via_standalone(alg.as_ref(), &l, &r, &params);
        prop_assert_eq!(&distributed, &standalone);

        // Ground truth: brute-force interval overlap.
        let mut truth = Vec::new();
        for (i, a) in l.iter().enumerate() {
            for (j, b) in r.iter().enumerate() {
                if a.as_interval().unwrap().overlaps(&b.as_interval().unwrap()) {
                    truth.push((i as i64, j as i64));
                }
            }
        }
        prop_assert_eq!(&distributed, &truth);
    }

    #[test]
    fn text_join_three_way_agreement(
        l in prop::collection::vec(arb_text(), 1..20),
        r in prop::collection::vec(arb_text(), 1..20),
        t in 0.4f64..0.95,
        workers in 1usize..4,
    ) {
        let params = vec![Value::Float64(t)];
        let alg = Arc::new(ProxyJoin::new(TextSimilarityFudj::new()));
        let ej: Arc<dyn EngineJoin> = Arc::new(FudjEngineJoin::new(alg.clone()));

        let distributed = run_distributed(ej.clone(), &l, &r, params.clone(), workers);
        let standalone = run_via_standalone(alg.as_ref(), &l, &r, &params);
        prop_assert_eq!(&distributed, &standalone);
    }

    #[test]
    fn band_join_three_way_agreement(
        l in prop::collection::vec((0.0..500.0f64).prop_map(Value::Float64), 1..30),
        r in prop::collection::vec((0.0..500.0f64).prop_map(Value::Float64), 1..30),
        eps in 0.5f64..30.0,
        workers in 1usize..4,
    ) {
        let params = vec![Value::Float64(eps)];
        let alg = Arc::new(ProxyJoin::new(BandJoin::new()));
        let ej: Arc<dyn EngineJoin> = Arc::new(FudjEngineJoin::new(alg.clone()));

        let distributed = run_distributed(ej.clone(), &l, &r, params.clone(), workers);
        let standalone = run_via_standalone(alg.as_ref(), &l, &r, &params);
        prop_assert_eq!(&distributed, &standalone);

        let mut truth = Vec::new();
        for (i, a) in l.iter().enumerate() {
            for (j, b) in r.iter().enumerate() {
                if (a.as_f64().unwrap() - b.as_f64().unwrap()).abs() <= eps {
                    truth.push((i as i64, j as i64));
                }
            }
        }
        prop_assert_eq!(&distributed, &truth);
    }
}
