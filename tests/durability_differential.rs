//! Crash-restart differential recovery: for every named crash point in
//! the durable store, under a pinned seed matrix, simulate a crash
//! mid-workload, reopen the store, and assert that
//!
//! 1. recovery never panics and never errors,
//! 2. the recovered state is exactly the committed prefix of the
//!    workload — the state after the last acknowledged operation, or
//!    that state plus the single in-flight operation whose WAL record
//!    happened to become durable before the crash (log-before-apply
//!    makes anything else impossible), and
//! 3. re-running queries over the recovered session matches a fresh
//!    in-memory oracle session that applied the same committed prefix.
//!
//! Seeds come from `CHAOS_SEEDS` (comma-separated, default pinned matrix)
//! so CI can widen the sweep without a code change.

use fudj_repro::joins::standard_library;
use fudj_repro::sql::Session;
use fudj_repro::storage::{DatasetBuilder, FaultFs, StorageFaultConfig, CRASH_POINTS};
use fudj_repro::types::{DataType, Field, FudjError, Row, Schema, Value};
use std::collections::BTreeSet;

fn seeds() -> Vec<u64> {
    std::env::var("CHAOS_SEEDS")
        .unwrap_or_else(|_| "101,202,303,404,505".into())
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect()
}

fn kv_row(i: i64) -> Row {
    Row::new(vec![Value::Int64(i), Value::str(format!("t{}", i % 5))])
}

/// One workload step. Every step is a *single* WAL record (batch inserts
/// go through `insert_all`, which logs one record), so the committed
/// prefix is well-defined at record granularity.
#[derive(Clone, Debug)]
enum Op {
    RegisterKv,
    Insert(std::ops::Range<i64>),
    Sql(&'static str),
    Persist,
}

const CREATE_ST: &str = r#"CREATE JOIN st_contains(a: polygon, b: point)
    RETURNS boolean AS "spatial.SpatialJoin" AT flexiblejoins
    WITH (policy = quarantine, budget_ms = 250)"#;
const CREATE_IV: &str = r#"CREATE JOIN overlapping_interval(a: interval, b: interval)
    RETURNS boolean AS "interval.OverlappingIntervalJoin" AT flexiblejoins"#;
const CREATE_SIM: &str = r#"CREATE JOIN similarity_jaccard(a: string, b: string, t: double)
    RETURNS boolean AS "setsimilarity.SetSimilarityJoin" AT flexiblejoins"#;
const DROP_ST: &str = "DROP JOIN st_contains";

fn workload() -> Vec<Op> {
    vec![
        Op::RegisterKv,
        Op::Insert(0..16),
        Op::Sql(CREATE_ST),
        Op::Insert(16..24),
        Op::Persist,
        Op::Insert(24..32),
        Op::Sql(CREATE_IV),
        Op::Sql(DROP_ST),
        Op::Insert(32..40),
        Op::Persist,
        Op::Insert(40..48),
        Op::Sql(CREATE_SIM),
    ]
}

/// Apply one step to a live session. For a non-durable oracle session,
/// `Persist` is a no-op (it has no store and no logical effect anyway).
fn apply(session: &Session, op: &Op, durable: bool) -> fudj_repro::types::Result<()> {
    match op {
        Op::RegisterKv => {
            let schema = Schema::shared(vec![
                Field::new("id", DataType::Int64),
                Field::new("tag", DataType::String),
            ]);
            let dataset = DatasetBuilder::new("kv", schema)
                .primary_key("id")
                .partitions(2)
                .build()?;
            session.register_dataset(dataset).map(|_| ())
        }
        Op::Insert(range) => session
            .catalog()
            .get("kv")?
            .insert_all(range.clone().map(kv_row)),
        Op::Sql(sql) => session.execute(sql).map(|_| ()),
        Op::Persist => {
            if durable {
                session.persist()
            } else {
                Ok(())
            }
        }
    }
}

/// Pure model of the logical state after a prefix of the workload.
#[derive(Clone, Debug, PartialEq, Eq)]
struct ModelState {
    kv_rows: Option<u64>,
    joins: BTreeSet<String>,
}

fn model_states() -> Vec<ModelState> {
    let mut state = ModelState {
        kv_rows: None,
        joins: BTreeSet::new(),
    };
    let mut states = vec![state.clone()];
    for op in workload() {
        match op {
            Op::RegisterKv => state.kv_rows = Some(0),
            Op::Insert(r) => {
                state.kv_rows = Some(state.kv_rows.unwrap_or(0) + (r.end - r.start) as u64)
            }
            Op::Sql(sql) => {
                if let Some(rest) = sql.strip_prefix("CREATE JOIN ") {
                    let name = rest.split('(').next().unwrap().trim();
                    state.joins.insert(name.to_owned());
                } else if let Some(name) = sql.strip_prefix("DROP JOIN ") {
                    state.joins.remove(name.trim());
                }
            }
            Op::Persist => {}
        }
        states.push(state.clone());
    }
    states
}

fn observed_state(session: &Session) -> ModelState {
    ModelState {
        kv_rows: session.catalog().get("kv").ok().map(|d| d.len() as u64),
        joins: session.registry().join_names().into_iter().collect(),
    }
}

fn fresh_session() -> Session {
    let s = Session::new(2);
    s.install_library(standard_library());
    s
}

fn sorted_rows(batch: &fudj_repro::types::Batch) -> Vec<Row> {
    let mut rows = batch.rows().to_vec();
    rows.sort();
    rows
}

/// Run the workload against a fault-armed store, crash, reopen, and check
/// the recovered session against the oracle. Returns whether the armed
/// crash actually fired, so the matrix test can prove it is not vacuous.
fn run_one(site: &str, seed: u64) -> bool {
    // Vary when the crash strikes: write-heavy sites get hit many times
    // per run, snapshot sites only during Persist.
    let hit = if site.starts_with("wal:") {
        1 + seed % 8
    } else {
        1 + seed % 2
    };
    let fs = FaultFs::new(StorageFaultConfig::crash_at(seed, site, hit));
    let dir = format!("/wal-{}-{seed}", site.replace(':', "-"));

    let session = fresh_session();
    session
        .open_wal_with(&dir, fs.clone())
        .unwrap_or_else(|e| panic!("[{site} seed {seed}] initial open failed: {e}"));

    let mut committed = 0usize;
    let mut crashed = false;
    for op in workload() {
        match apply(&session, &op, true) {
            Ok(()) => committed += 1,
            Err(e) => {
                assert!(
                    matches!(e, FudjError::Crash(_)),
                    "[{site} seed {seed}] op {op:?} failed with a non-crash error: {e}"
                );
                crashed = true;
                break;
            }
        }
    }
    drop(session); // the "process" is gone

    // Restart: same (virtual) disk, crash flag cleared, faults disarmed.
    fs.reopen_after_crash();
    let recovered = fresh_session();
    recovered
        .open_wal_with(&dir, fs.clone())
        .unwrap_or_else(|e| panic!("[{site} seed {seed}] recovery open failed: {e}"));

    // The recovered state must be the committed prefix — exactly the
    // acknowledged ops, or those plus the one in-flight record the crash
    // let slip to disk. Never anything torn, reordered, or invented.
    let states = model_states();
    let actual = observed_state(&recovered);
    let candidates: Vec<usize> = if crashed && committed + 1 < states.len() {
        vec![committed, committed + 1]
    } else {
        vec![committed]
    };
    let matched = candidates
        .iter()
        .copied()
        .find(|&k| states[k] == actual)
        .unwrap_or_else(|| {
            panic!(
                "[{site} seed {seed} hit {hit}] recovered state {actual:?} is not the \
                 committed prefix (acknowledged {committed} ops; expected one of \
                 {:?})",
                candidates.iter().map(|&k| &states[k]).collect::<Vec<_>>()
            )
        });

    // Differential oracle: a plain in-memory session that applied the
    // same prefix must answer queries identically.
    if states[matched].kv_rows.is_some() {
        let oracle = fresh_session();
        for op in workload().iter().take(matched) {
            apply(&oracle, op, false)
                .unwrap_or_else(|e| panic!("[{site} seed {seed}] oracle replay failed: {e}"));
        }
        let sql = "SELECT k.tag, COUNT(*) AS c FROM kv k GROUP BY k.tag ORDER BY k.tag";
        let got = recovered
            .query(sql)
            .unwrap_or_else(|e| panic!("[{site} seed {seed}] recovered query failed: {e}"));
        let want = oracle.query(sql).unwrap();
        assert_eq!(
            sorted_rows(&got),
            sorted_rows(&want),
            "[{site} seed {seed}] recovered session answers differently from the oracle"
        );
    }

    // A second restart is idempotent: recovery already truncated torn
    // tails, so reopening changes nothing.
    drop(recovered);
    let again = fresh_session();
    again
        .open_wal_with(&dir, fs)
        .unwrap_or_else(|e| panic!("[{site} seed {seed}] second recovery failed: {e}"));
    assert_eq!(
        observed_state(&again),
        actual,
        "[{site} seed {seed}] recovery is not idempotent"
    );
    crashed
}

#[test]
fn every_crash_point_recovers_the_committed_prefix() {
    let seeds = seeds();
    assert!(!seeds.is_empty(), "CHAOS_SEEDS must name at least one seed");
    let mut crashes = 0usize;
    for site in CRASH_POINTS {
        let mut site_crashes = 0usize;
        for &seed in &seeds {
            if run_one(site, seed) {
                site_crashes += 1;
            }
        }
        assert!(
            site_crashes > 0,
            "crash point {site} never fired across the seed matrix — the \
             sweep is vacuous for this site"
        );
        crashes += site_crashes;
    }
    assert!(crashes > 0);
}

/// Dropped fsyncs (a lying disk) widen what a crash may destroy — the
/// committed prefix can fall behind the acknowledged ops — but recovery
/// must still land on *some* earlier model state, never a torn one.
#[test]
fn lying_disk_crash_still_recovers_a_consistent_prefix() {
    for &seed in &seeds() {
        let cfg = StorageFaultConfig {
            crash_point: Some(("wal:append".into(), 1 + seed % 10)),
            ..StorageFaultConfig::chaos(seed)
        };
        let fs = FaultFs::new(cfg);
        let dir = format!("/wal-lying-{seed}");
        let session = fresh_session();
        if session.open_wal_with(&dir, fs.clone()).is_err() {
            // Aggressive bit flips can corrupt the store's own probe
            // writes at open; a clean error is an acceptable outcome.
            continue;
        }
        for op in workload() {
            if apply(&session, &op, true).is_err() {
                break;
            }
        }
        drop(session);
        fs.reopen_after_crash();
        // Bit flips stay armed on the reopened store: recovery must
        // quarantine damage, not propagate it.
        let recovered = fresh_session();
        match recovered.open_wal_with(&dir, fs) {
            Ok(()) => {
                let actual = observed_state(&recovered);
                assert!(
                    model_states().contains(&actual),
                    "[lying disk seed {seed}] recovered state {actual:?} matches no \
                     model prefix"
                );
            }
            Err(e) => assert!(
                !matches!(e, FudjError::Crash(_)),
                "[lying disk seed {seed}] crash flag leaked through reopen: {e}"
            ),
        }
    }
}

/// RAII hygiene on the real filesystem: a disk-backed store that
/// snapshots and compacts leaves no `*.tmp` staging files behind, and
/// removing its directory leaves nothing of ours in the temp dir.
#[test]
fn disk_store_leaves_no_tmp_litter() {
    let dir =
        std::env::temp_dir().join(format!("fudj-wal-litter-{}-{}", std::process::id(), "scan"));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let session = fresh_session();
        session.open_wal(dir.to_str().unwrap()).unwrap();
        for op in workload() {
            apply(&session, &op, true).unwrap();
        }
        session.persist().unwrap();
    }
    let litter: Vec<String> = std::fs::read_dir(&dir)
        .expect("wal dir must exist")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".tmp") || n.ends_with(".fudj-probe"))
        .collect();
    assert_eq!(litter, Vec::<String>::new(), "staging files leaked");
    std::fs::remove_dir_all(&dir).unwrap();
    let prefix = format!("fudj-wal-litter-{}-", std::process::id());
    let stray: Vec<String> = std::fs::read_dir(std::env::temp_dir())
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with(&prefix))
        .collect();
    assert_eq!(stray, Vec::<String>::new(), "temp-dir litter remains");
}
