//! Skew-spill differential suite: for every join class, a memory-budgeted
//! (spilling) execution must return exactly the result multiset — and the
//! logical UDF counters — of the unbudgeted in-memory execution, on
//! Zipf-skewed inputs that concentrate most rows in a few hot buckets.
//! A second matrix re-runs the spilling plans under seeded chaos and
//! asserts the *spill* counters are bit-identical to the fault-free run:
//! task retries and re-executions must never double-count `spilled_rows`
//! or `spilled_bytes`.
//!
//! Replay a failing seed with
//! `CHAOS_SEEDS=<seed> cargo test --test spill_differential`.

use fudj_repro::core::{EngineJoin, FudjEngineJoin, JoinAlgorithm, ProxyJoin};
use fudj_repro::exec::{Cluster, FaultConfig, FudjJoinNode, MetricsSnapshot, PhysicalPlan};
use fudj_repro::geo::{Point, Polygon, Rect};
use fudj_repro::joins::evil::EqualityFudj;
use fudj_repro::joins::{IntervalFudj, SpatialFudj, TextSimilarityFudj};
use fudj_repro::storage::DatasetBuilder;
use fudj_repro::temporal::Interval;
use fudj_repro::types::{DataType, Field, Row, Schema, Value};
use std::sync::Arc;

const WORKERS: usize = 3;
/// Small enough that every default-match workload below must spill on
/// every worker, large enough that the resident set still matters.
const BUDGET: usize = 20;

/// The seed matrix: `CHAOS_SEEDS=1,2,3` overrides (the CI spill job pins
/// a 5-seed matrix; the default local run covers 10 seeds).
fn seeds() -> Vec<u64> {
    match std::env::var("CHAOS_SEEDS") {
        Ok(s) => {
            let parsed: Vec<u64> = s
                .split(',')
                .map(|t| t.trim().parse().expect("CHAOS_SEEDS must be u64s"))
                .collect();
            assert!(!parsed.is_empty(), "CHAOS_SEEDS set but empty");
            parsed
        }
        Err(_) => (0..10).map(|i| 4_241 + 131 * i).collect(),
    }
}

/// Deterministic xorshift64* generator — the workload data must be
/// identical across runs just like the fault schedule.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (self.next() >> 11) as f64 / (1u64 << 53) as f64 * (hi - lo)
    }

    /// Zipf-flavored draw over `[0, universe)`: log-uniform, so small
    /// values dominate heavily (the hot keys of the skew suite).
    fn zipf(&mut self, universe: u64) -> u64 {
        let u = self.f64_in(0.0, 1.0);
        ((universe as f64).powf(u) as u64).min(universe - 1)
    }
}

/// Skewed polygons: most rectangles crowd the hot cell near the origin.
fn skewed_polygons(n: usize) -> Vec<Value> {
    let mut g = Gen(0xA11CE);
    (0..n)
        .map(|_| {
            let (x, y) = if g.next() % 10 < 7 {
                (g.f64_in(0.0, 12.0), g.f64_in(0.0, 12.0))
            } else {
                (g.f64_in(0.0, 90.0), g.f64_in(0.0, 90.0))
            };
            let (w, h) = (g.f64_in(0.5, 10.0), g.f64_in(0.5, 10.0));
            Value::polygon(Polygon::from_rect(&Rect::new(x, y, x + w, y + h)))
        })
        .collect()
}

/// Skewed points: 70% land in the same hot cell the polygons crowd.
fn skewed_points(n: usize) -> Vec<Value> {
    let mut g = Gen(0xB0B);
    (0..n)
        .map(|_| {
            let (x, y) = if g.next() % 10 < 7 {
                (g.f64_in(0.0, 15.0), g.f64_in(0.0, 15.0))
            } else {
                (g.f64_in(0.0, 100.0), g.f64_in(0.0, 100.0))
            };
            Value::Point(Point::new(x, y))
        })
        .collect()
}

/// Skewed intervals: most starts pile into the first few hundred ticks.
fn skewed_intervals(n: usize, salt: u64) -> Vec<Value> {
    let mut g = Gen(0xCAFE + salt);
    (0..n)
        .map(|_| {
            let s = g.zipf(40_000) as i64;
            Value::Interval(Interval::new(s, s + 200 + (g.next() % 2_000) as i64))
        })
        .collect()
}

/// Skewed texts: word ranks drawn Zipf-style, so a handful of tokens
/// dominate every document.
fn skewed_texts(n: usize, salt: u64) -> Vec<Value> {
    const WORDS: [&str; 8] = [
        "river", "peak", "camp", "view", "rock", "fern", "lake", "pine",
    ];
    let mut g = Gen(0xD00D + salt);
    (0..n)
        .map(|_| {
            let k = 1 + (g.next() % 5) as usize;
            let ws: Vec<&str> = (0..k).map(|_| WORDS[g.zipf(8) as usize]).collect();
            Value::str(ws.join(" "))
        })
        .collect()
}

/// Skewed equality keys over a universe of 48, log-uniform.
fn skewed_longs(n: usize, salt: u64) -> Vec<Value> {
    let mut g = Gen(0xF00 + salt);
    (0..n).map(|_| Value::Int64(g.zipf(48) as i64)).collect()
}

fn dataset(name: &str, keys: &[Value]) -> Arc<fudj_repro::storage::Dataset> {
    let dt = keys
        .first()
        .map(Value::data_type)
        .unwrap_or(DataType::Int64);
    let schema = Schema::shared(vec![Field::new("id", DataType::Int64), Field::new("k", dt)]);
    let d = DatasetBuilder::new(name, schema)
        .partitions(WORKERS)
        .build()
        .unwrap();
    for (i, k) in keys.iter().enumerate() {
        d.insert(Row::new(vec![Value::Int64(i as i64), k.clone()]))
            .unwrap();
    }
    Arc::new(d)
}

/// One skewed workload per join class of the paper's library suite.
struct Workload {
    name: &'static str,
    engine: Arc<dyn EngineJoin>,
    left: Vec<Value>,
    right: Vec<Value>,
    params: Vec<Value>,
    /// Theta joins rebalance+broadcast and cannot spill; the budget must
    /// be ignored rather than breaking (or "spilling") them.
    theta: bool,
}

fn workloads() -> Vec<Workload> {
    fn proxy<J: fudj_repro::core::FlexibleJoin + 'static>(j: J) -> Arc<dyn EngineJoin> {
        Arc::new(FudjEngineJoin::new(Arc::new(ProxyJoin::new(j))))
    }
    let equality: Arc<dyn JoinAlgorithm> = Arc::new(EqualityFudj);
    vec![
        Workload {
            name: "spatial",
            engine: proxy(SpatialFudj::new()),
            left: skewed_polygons(40),
            right: skewed_points(140),
            params: vec![Value::Int64(8)],
            theta: false,
        },
        Workload {
            name: "interval",
            engine: proxy(IntervalFudj::new()),
            left: skewed_intervals(45, 0),
            right: skewed_intervals(45, 1),
            params: vec![Value::Int64(40)],
            theta: true,
        },
        Workload {
            name: "text",
            engine: proxy(TextSimilarityFudj::new()),
            left: skewed_texts(60, 0),
            right: skewed_texts(60, 1),
            params: vec![Value::Float64(0.5)],
            theta: false,
        },
        Workload {
            name: "equality",
            engine: Arc::new(FudjEngineJoin::new(equality)),
            left: skewed_longs(130, 0),
            right: skewed_longs(130, 1),
            params: vec![],
            theta: false,
        },
    ]
}

fn plan(w: &Workload, budget: Option<usize>) -> PhysicalPlan {
    let mut node = FudjJoinNode::new(
        PhysicalPlan::Scan {
            dataset: dataset("l", &w.left),
        },
        PhysicalPlan::Scan {
            dataset: dataset("r", &w.right),
        },
        w.engine.clone(),
        1,
        1,
        w.params.clone(),
    );
    node.memory_budget_rows = budget;
    PhysicalPlan::FudjJoin(node)
}

fn run_on(
    cluster: &Cluster,
    w: &Workload,
    budget: Option<usize>,
) -> (Vec<(i64, i64)>, MetricsSnapshot) {
    let (batch, metrics) = cluster.execute(&plan(w, budget)).unwrap();
    let mut pairs: Vec<(i64, i64)> = batch
        .rows()
        .iter()
        .map(|r| (r.get(0).as_i64().unwrap(), r.get(2).as_i64().unwrap()))
        .collect();
    pairs.sort_unstable();
    (pairs, metrics.snapshot())
}

/// The logical-counter projection the spill path must preserve exactly:
/// UDF call counts and dedup decisions are a function of the data, not of
/// where sub-partitions happened to live.
fn logical(snap: &MetricsSnapshot) -> (u64, u64) {
    (snap.verify_calls, snap.dedup_rejections)
}

/// The spill-counter projection that must be identical between a
/// fault-free and a chaotic run of the *same* spilling plan.
fn spill_counters(snap: &MetricsSnapshot) -> [u64; 8] {
    [
        snap.spilled_rows,
        snap.spilled_bytes,
        snap.spill_resident_partitions,
        snap.spill_spilled_partitions,
        snap.spill_passes,
        snap.spill_recursion_depth,
        snap.spill_bnl_fallbacks,
        snap.spill_peak_resident_rows,
    ]
}

/// The tentpole differential: on Zipf-skewed inputs, every join class
/// returns identical results and identical logical counters whether it
/// joins in memory or spills under a tight budget — the default-match
/// classes through hybrid-hash sub-partitions, the theta class by
/// spilling both sides whole and block-nested-looping (hash
/// repartitioning is unsound for cross-bucket matches).
#[test]
fn spilled_equals_in_memory_across_join_classes_under_skew() {
    let cluster = Cluster::new(WORKERS);
    for w in workloads() {
        let (mem_pairs, mem_snap) = run_on(&cluster, &w, None);
        assert!(!mem_pairs.is_empty(), "{}: degenerate workload", w.name);
        let (sp_pairs, sp_snap) = run_on(&cluster, &w, Some(BUDGET));
        assert_eq!(
            sp_pairs, mem_pairs,
            "{}: spilled result diverged from in-memory",
            w.name
        );
        assert_eq!(
            logical(&sp_snap),
            logical(&mem_snap),
            "{}: spilling changed verify/dedup counts",
            w.name
        );
        assert!(
            sp_snap.spilled_rows > 0,
            "{}: budget {BUDGET} did not spill",
            w.name
        );
        assert!(sp_snap.spill_spilled_partitions > 0, "{}", w.name);
        if w.theta {
            assert!(
                sp_snap.spill_bnl_fallbacks > 0,
                "{}: budgeted theta run never took the BNL path",
                w.name
            );
        }
        assert_eq!(
            mem_snap.spilled_rows, 0,
            "{}: unbudgeted run spilled",
            w.name
        );
    }
}

/// Hybrid-hash payoff under skew: with the budget just below the input
/// size, the long tail of cold sub-partitions stays memory-resident — the
/// spill volume must be well below "everything", unlike the old grace
/// path which always wrote both sides in full.
#[test]
fn near_budget_skewed_run_keeps_a_resident_set() {
    let cluster = Cluster::new(WORKERS);
    let w = &workloads()[3]; // equality: clean row accounting
    let (mem_pairs, _) = run_on(&cluster, w, None);
    // Per-worker tagged input is ~(130+130)/3 ≈ 87 rows; budget 60 spills
    // only the hot head.
    let (pairs, snap) = run_on(&cluster, w, Some(60));
    assert_eq!(pairs, mem_pairs);
    assert!(snap.spilled_rows > 0, "near-budget run must still spill");
    assert!(
        snap.spill_resident_partitions > 0,
        "no sub-partition stayed resident: {snap:?}"
    );
    let tagged_input = 260; // every input row tagged at least once
    assert!(
        snap.spilled_rows < tagged_input,
        "near-budget spill wrote {} rows — no better than full grace \
         partitioning",
        snap.spilled_rows
    );
}

/// The chaos matrix: re-running the spilling plans under seeded fault
/// injection must reproduce the fault-free results *and* the exact spill
/// counters — proof that task retries, re-executions and duplicate
/// deliveries never double-count `spilled_rows`/`spilled_bytes` (faults
/// inject before the single real execution of each COMBINE task, and
/// exchange delivery order is deterministic, so even eviction decisions
/// replay identically).
#[test]
fn chaos_never_double_counts_spill_work() {
    let seeds = seeds();
    let mut injected = 0u64;
    for w in workloads() {
        let baseline = run_on(&Cluster::new(WORKERS), &w, Some(BUDGET));
        for &seed in &seeds {
            let cluster = Cluster::with_faults(WORKERS, FaultConfig::chaos(seed));
            let (pairs, snap) = run_on(&cluster, &w, Some(BUDGET));
            assert_eq!(
                pairs, baseline.0,
                "{} seed {seed}: chaotic spilled result diverged",
                w.name
            );
            assert_eq!(
                spill_counters(&snap),
                spill_counters(&baseline.1),
                "{} seed {seed}: spill counters moved under chaos",
                w.name
            );
            assert_eq!(
                logical(&snap),
                logical(&baseline.1),
                "{} seed {seed}: logical counters moved under chaos",
                w.name
            );
            injected += snap.fault.total_injected();
        }
    }
    assert!(injected > 0, "the chaos matrix injected nothing");
}
