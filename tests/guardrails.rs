//! End-to-end tests for the UDF guardrail layer, driven through the SQL
//! session so they exercise parser → planner (guard wrapping + join lease)
//! → distributed execution → metrics surfacing.
//!
//! The adversarial classes come from [`fudj_repro::joins::evil`]: each one
//! wraps a plain hash-equality join and misbehaves in exactly one way on
//! the deterministic one-in-eight [`poisoned`] key set, so every test has
//! an exact oracle computed from the raw rows.

use fudj_repro::exec::GuardMode;
use fudj_repro::joins::evil::{evil_library, EVIL_LIBRARY_NAME};
use fudj_repro::joins::{poisoned, standard_library};
use fudj_repro::sql::Session;
use fudj_repro::storage::DatasetBuilder;
use fudj_repro::types::{DataType, ExtValue, Field, FudjError, Row, Schema, Value};

/// Key values for the two sides: a deterministic mix of poisoned and clean
/// longs with enough duplication to make the equality join non-trivial.
fn side_keys(side_salt: i64, n: i64) -> Vec<i64> {
    let poisoned_long = |v: i64| poisoned(&ExtValue::Long(v));
    let mut poison: Vec<i64> = (0..).filter(|v| poisoned_long(*v)).take(4).collect();
    let mut clean: Vec<i64> = (0..).filter(|v| !poisoned_long(*v)).take(12).collect();
    poison.rotate_left((side_salt % 4) as usize);
    clean.rotate_left((side_salt % 12) as usize);
    (0..n)
        .map(|i| {
            if i % 3 == 0 {
                poison[(i / 3) as usize % poison.len()]
            } else {
                clean[i as usize % clean.len()]
            }
        })
        .collect()
}

/// Session with datasets `A(id, k)` and `B(id, k)` plus both libraries.
fn session(workers: usize) -> Session {
    let s = Session::new(workers);
    s.install_library(standard_library());
    s.install_library(evil_library());
    for (name, salt, n) in [("A", 1i64, 60i64), ("B", 2, 45)] {
        let schema = Schema::shared(vec![
            Field::new("id", DataType::Int64),
            Field::new("k", DataType::Int64),
        ]);
        let ds = DatasetBuilder::new(name, schema)
            .partitions(workers)
            .build()
            .unwrap();
        ds.insert_all(
            side_keys(salt, n)
                .into_iter()
                .enumerate()
                .map(|(id, k)| Row::new(vec![Value::Int64(id as i64), Value::Int64(k)])),
        )
        .unwrap();
        s.register_dataset(ds).unwrap();
    }
    s
}

fn create_evil_join(s: &Session, class: &str, with: &str) {
    let ddl = format!(
        r#"CREATE JOIN same_key(a: bigint, b: bigint)
           RETURNS boolean AS "{class}" AT {EVIL_LIBRARY_NAME} {with}"#
    );
    s.execute(&ddl).unwrap();
}

const JOIN_SQL: &str = "SELECT COUNT(*) AS c FROM A a, B b WHERE same_key(a.k, b.k)";

/// Equality-join count oracle; `drop_poisoned` simulates quarantine.
fn oracle(drop_poisoned: bool) -> i64 {
    let left = side_keys(1, 60);
    let right = side_keys(2, 45);
    let mut count = 0i64;
    for l in &left {
        for r in &right {
            if l == r && !(drop_poisoned && poisoned(&ExtValue::Long(*l))) {
                count += 1;
            }
        }
    }
    count
}

fn count_of(s: &Session, sql: &str) -> i64 {
    s.query(sql).unwrap().rows()[0].get(0).as_i64().unwrap()
}

// -- tentpole: the adversarial matrix ---------------------------------------

#[test]
fn failfast_attributes_every_evil_mode_to_its_phase() {
    let cases = [
        ("evil.PanicSummarize", "", "summarize"),
        ("evil.PanicDivide", "", "divide"),
        ("evil.PanicAssign", "", "assign"),
        ("evil.PanicVerify", "", "verify"),
        ("evil.HangAssign", "", "assign"),
        ("evil.OutOfRange", "", "assign"),
        (
            "evil.OverReplicate",
            "WITH (max_buckets_per_key = 16)",
            "assign",
        ),
        ("evil.NonDetAssign", "WITH (check_sample = 1)", "assign"),
    ];
    for (class, with, expect_phase) in cases {
        let s = session(3);
        create_evil_join(&s, class, with);
        let err = s.query(JOIN_SQL).unwrap_err();
        match err {
            FudjError::UdfViolation { ref phase, .. } => {
                assert_eq!(phase, expect_phase, "{class}: {err}")
            }
            other => panic!("{class}: expected a UDF violation, got {other}"),
        }
    }
}

#[test]
fn quarantine_survives_with_exactly_the_clean_results() {
    for class in ["evil.PanicAssign", "evil.HangAssign", "evil.OutOfRange"] {
        let s = session(3);
        create_evil_join(&s, class, "WITH (policy = quarantine)");
        let out = s.execute(JOIN_SQL).unwrap();
        let count = out.batch().rows()[0].get(0).as_i64().unwrap();
        assert_eq!(count, oracle(true), "{class}");
        let udf = &out.metrics().udf;
        assert!(udf.assign_violations > 0, "{class}: {udf:?}");
        assert!(udf.quarantined_rows > 0, "{class}: {udf:?}");
        assert_eq!(udf.fallback_activations, 0, "{class}: {udf:?}");
    }
}

#[test]
fn quarantined_summarize_still_answers() {
    // Summarize quarantine drops the key from the summary but not from the
    // join itself: results must stay complete for this count-only summary.
    let s = session(3);
    create_evil_join(&s, "evil.PanicSummarize", "WITH (policy = quarantine)");
    let out = s.execute(JOIN_SQL).unwrap();
    assert_eq!(
        out.batch().rows()[0].get(0).as_i64().unwrap(),
        oracle(false)
    );
    assert!(out.metrics().udf.summarize_violations > 0);
}

#[test]
fn fallback_equality_recovers_the_full_result() {
    for class in ["evil.PanicAssign", "evil.HangAssign", "evil.OutOfRange"] {
        let s = session(3);
        create_evil_join(&s, class, "WITH (policy = fallback)");
        let out = s.execute(JOIN_SQL).unwrap();
        let count = out.batch().rows()[0].get(0).as_i64().unwrap();
        assert_eq!(count, oracle(false), "{class}");
        assert!(
            out.metrics().udf.fallback_activations > 0,
            "{class}: {:?}",
            out.metrics().udf
        );
    }
}

#[test]
fn tame_guarded_run_is_identical_to_unguarded() {
    let s = session(3);
    create_evil_join(&s, "evil.Tame", "");
    let guarded = s.execute(JOIN_SQL).unwrap();

    let mut s2 = session(3);
    create_evil_join(&s2, "evil.Tame", "");
    s2.set_guard(GuardMode::Off);
    let unguarded = s2.execute(JOIN_SQL).unwrap();

    assert_eq!(guarded.batch().rows(), unguarded.batch().rows());
    assert_eq!(
        guarded.batch().rows()[0].get(0).as_i64().unwrap(),
        oracle(false)
    );

    // The guard must not perturb the deterministic execution counters.
    let (g, u) = (guarded.metrics(), unguarded.metrics());
    assert_eq!(g.bytes_shuffled, u.bytes_shuffled);
    assert_eq!(g.bytes_broadcast, u.bytes_broadcast);
    assert_eq!(g.state_bytes, u.state_bytes);
    assert_eq!(g.verify_calls, u.verify_calls);
    assert_eq!(g.dedup_rejections, u.dedup_rejections);
    assert_eq!(g.spilled_rows, u.spilled_rows);
    assert!(!g.udf.any(), "{:?}", g.udf);
    assert!(!u.udf.any());
}

#[test]
fn session_guard_override_beats_per_join_options() {
    // The join is created FailFast (default), but a session-wide Quarantine
    // override must win.
    let mut s = session(3);
    create_evil_join(&s, "evil.PanicAssign", "");
    s.set_guard(GuardMode::Override(
        fudj_repro::exec::GuardConfig::with_policy(fudj_repro::exec::UdfPolicy::Quarantine),
    ));
    assert_eq!(count_of(&s, JOIN_SQL), oracle(true));

    // And turning the guard off turns the panic back into a raw panic —
    // which the pool's recovery layer converts into an execution error, not
    // a crash (but never a clean quarantined answer).
    s.set_guard(GuardMode::Off);
    assert!(s.query(JOIN_SQL).is_err());
}

// -- satellite 1: worker-pool hygiene after guarded failures ----------------

#[test]
fn pool_survives_guarded_failures_and_keeps_answering() {
    let s = session(3);
    create_evil_join(&s, "evil.PanicAssign", "");
    for _ in 0..3 {
        let err = s.query(JOIN_SQL).unwrap_err();
        assert!(matches!(err, FudjError::UdfViolation { .. }), "{err}");
        // The same session (same worker pool) must keep answering plain
        // queries with correct results after every failure.
        assert_eq!(count_of(&s, "SELECT COUNT(*) AS c FROM A a"), 60);
    }
    // And a well-behaved join still runs on the pool that saw the panics.
    s.execute("DROP JOIN same_key").unwrap();
    create_evil_join(&s, "evil.Tame", "");
    assert_eq!(count_of(&s, JOIN_SQL), oracle(false));
}

// -- columnar mode: guard semantics must survive the batch UDF boundary -----

/// Under `exec_mode = columnar` the executor crosses the assign boundary
/// once per partition stride (`assign_slice`), not once per row. A guarded
/// evil join panicking mid-stride must still attribute the violation to the
/// `assign` phase with per-call isolation — FailFast errors identically,
/// Quarantine drops exactly the poisoned keys, and the counters match the
/// row-mode run bit for bit.
#[test]
fn columnar_mode_attributes_mid_stride_panics_to_assign() {
    for mode in ["row", "columnar"] {
        let s = session(3);
        s.execute(&format!("SET exec_mode = {mode}")).unwrap();
        create_evil_join(&s, "evil.PanicAssign", "");
        let err = s.query(JOIN_SQL).unwrap_err();
        match err {
            FudjError::UdfViolation { ref phase, .. } => {
                assert_eq!(phase, "assign", "{mode}: {err}")
            }
            other => panic!("{mode}: expected a UDF violation, got {other}"),
        }
    }
}

#[test]
fn columnar_quarantine_matches_row_mode_exactly() {
    let run = |mode: &str| {
        let s = session(3);
        s.execute(&format!("SET exec_mode = {mode}")).unwrap();
        create_evil_join(&s, "evil.PanicAssign", "WITH (policy = quarantine)");
        let out = s.execute(JOIN_SQL).unwrap();
        let count = out.batch().rows()[0].get(0).as_i64().unwrap();
        (count, out.metrics().fingerprint())
    };
    let (count_r, fp_r) = run("row");
    let (count_c, fp_c) = run("columnar");
    assert_eq!(count_r, oracle(true), "row-mode quarantine diverged");
    assert_eq!(count_c, oracle(true), "columnar quarantine diverged");
    assert_eq!(
        fp_r, fp_c,
        "quarantine counters must not depend on the execution mode"
    );
    assert!(fp_r.udf.quarantined_rows > 0, "{:?}", fp_r.udf);
    assert!(fp_r.udf.assign_violations > 0, "{:?}", fp_r.udf);
}

/// Pool hygiene under columnar mode: a mid-stride panic must not poison
/// the worker pool — the same session keeps answering, in both modes.
#[test]
fn pool_stays_healthy_after_columnar_mid_stride_panics() {
    let s = session(3);
    s.execute("SET exec_mode = columnar").unwrap();
    create_evil_join(&s, "evil.PanicAssign", "");
    for _ in 0..3 {
        let err = s.query(JOIN_SQL).unwrap_err();
        assert!(matches!(err, FudjError::UdfViolation { .. }), "{err}");
        assert_eq!(count_of(&s, "SELECT COUNT(*) AS c FROM A a"), 60);
    }
    // Flipping back to row mode on the same pool also still works.
    s.execute("SET exec_mode = row").unwrap();
    assert_eq!(count_of(&s, "SELECT COUNT(*) AS c FROM B b"), 45);
    s.execute("DROP JOIN same_key").unwrap();
    create_evil_join(&s, "evil.Tame", "");
    assert_eq!(count_of(&s, JOIN_SQL), oracle(false));
}

// -- satellite 2: DROP JOIN on an in-flight definition ----------------------

#[test]
fn drop_join_refuses_while_a_plan_holds_the_definition() {
    let s = session(2);
    create_evil_join(&s, "evil.Tame", "");
    let def = s.registry().get("same_key").unwrap();
    let lease = def.lease();
    let err = s.execute("DROP JOIN same_key").unwrap_err();
    assert!(
        matches!(err, FudjError::Catalog(ref msg) if msg.contains("in-flight")),
        "{err}"
    );
    // The definition is still usable while leased.
    assert_eq!(count_of(&s, JOIN_SQL), oracle(false));
    drop(lease);
    s.execute("DROP JOIN same_key").unwrap();
    assert!(s.registry().get("same_key").is_none());
}
