//! Serving-tier differential suite: the tentpole invariant of the
//! multi-tenant serving tier is that **caching is invisible** — with the
//! plan and result caches on, under continuous ingest and under seeded
//! chaos, every response is bit-identical (rows, and execution counters
//! modulo the tier-scoped serving block) to a cache-free oracle session
//! holding the same data.
//!
//! The workload is the seeded multi-tenant generator (Zipf-skewed shape
//! popularity over all four join classes), with a table append injected
//! every few statements into *both* engines — so cached entries go stale
//! mid-run and the tier must invalidate rather than serve the old answer.
//! The chaos variant re-runs the differential under the pinned fault-seed
//! matrix (`CHAOS_SEEDS` overrides it, as in the other suites).

use fudj_repro::exec::FaultConfig;
use fudj_repro::serve::{generate, sample_session, MixProfile, ServingTier, WorkloadConfig};
use fudj_repro::sql::{QueryOutput, Session};
use fudj_repro::storage::{FaultFs, StorageFaultConfig};
use fudj_repro::types::{FudjError, Row, Value};
use std::sync::Arc;

const RECORDS: usize = 60;
const WORKERS: usize = 2;
/// Workload seed, fixed across fault seeds so cache behavior (hits,
/// invalidations) is identical in every chaos run.
const WORKLOAD_SEED: u64 = 9;

/// Seed matrix for the chaos differential (CI pins five seeds via
/// `CHAOS_SEEDS`; the default matches that matrix).
fn seeds() -> Vec<u64> {
    match std::env::var("CHAOS_SEEDS") {
        Ok(s) => s
            .split(',')
            .map(|t| t.trim().parse().expect("CHAOS_SEEDS must be u64s"))
            .collect(),
        Err(_) => vec![101, 202, 303, 404, 505],
    }
}

/// Two identically-seeded engines: the tier's (caches on) and the
/// cache-free oracle's, optionally both under the same fault seed.
fn engines(fault_seed: Option<u64>) -> (ServingTier, Arc<Session>) {
    let mut tiered = sample_session(RECORDS, WORKERS).expect("sample session");
    let mut oracle = sample_session(RECORDS, WORKERS).expect("sample session");
    if let Some(seed) = fault_seed {
        tiered.set_faults(Some(FaultConfig::chaos(seed)));
        oracle.set_faults(Some(FaultConfig::chaos(seed)));
    }
    (ServingTier::new(Arc::new(tiered)), Arc::new(oracle))
}

/// Append one deterministic row to `NYCTaxi` (the most popular shape
/// family's table) in one engine.
fn ingest(session: &Session, step: u64) {
    let taxi = session.catalog().get("NYCTaxi").expect("sample table");
    let mut values = taxi.all_rows()[0].clone().into_values();
    values[0] = Value::Uuid(u128::from(0x5e21_0000 + step));
    taxi.insert(Row::new(values)).expect("append");
}

/// Serve every workload statement through the tier and through the
/// oracle, ingesting into both engines every eighth statement, and demand
/// bit-identical responses throughout.
fn differential(fault_seed: Option<u64>) {
    let (tier, oracle) = engines(fault_seed);
    let ops = generate(&WorkloadConfig {
        tenants: 6,
        ops: 48,
        seed: WORKLOAD_SEED,
        profile: MixProfile::ShapeSkewed(1.1),
        priority_classes: 3,
    });

    for (i, op) in ops.iter().enumerate() {
        if i % 8 == 7 {
            ingest(tier.session(), i as u64);
            ingest(&oracle, i as u64);
        }
        let served = tier
            .serve_with_priority(op.tenant, op.priority, &op.sql)
            .unwrap_or_else(|e| panic!("tier failed op {i} ({}): {e}", op.sql));
        let direct = oracle
            .execute(&op.sql)
            .unwrap_or_else(|e| panic!("oracle failed op {i} ({}): {e}", op.sql));
        match (served, direct) {
            (QueryOutput::Rows(sb, ss), QueryOutput::Rows(ob, os)) => {
                assert_eq!(
                    sb.rows(),
                    ob.rows(),
                    "op {i} ({}) rows diverged from the oracle under seed {fault_seed:?}",
                    op.sql
                );
                let mut sf = ss.fingerprint();
                let mut of = os.fingerprint();
                sf.serving = Default::default();
                of.serving = Default::default();
                assert_eq!(
                    sf, of,
                    "op {i} ({}) execution counters diverged under seed {fault_seed:?}",
                    op.sql
                );
            }
            _ => panic!("op {i} ({}) did not return rows", op.sql),
        }
    }

    // The run must be non-vacuous: the caches answered some statements,
    // and the interleaved ingest forced real invalidations.
    let stats = tier.stats();
    assert!(
        stats.result_cache_hits > 0,
        "differential never hit the result cache: {stats:?}"
    );
    assert!(
        stats.result_cache_invalidations > 0,
        "ingest never invalidated a cached result: {stats:?}"
    );
    assert_eq!(stats.rejections, 0, "no statement may be rejected");
    assert_eq!(
        stats.admissions + stats.result_cache_hits,
        ops.len() as u64,
        "every statement was either executed or served from cache"
    );
}

/// Fault-free differential under continuous ingest.
#[test]
fn cached_serving_matches_uncached_oracle_under_ingest() {
    differential(None);
}

/// The same differential under every pinned chaos seed: injected faults
/// and their recoveries stay invisible through the caches too.
#[test]
fn cached_serving_matches_oracle_under_chaos_seeds() {
    for seed in seeds() {
        differential(Some(seed));
    }
}

/// The no-stale-read guarantee, end to end: an ingest between two
/// identical statements forces a recompute whose answer matches the
/// oracle, with the hit/invalidation counters proving the cache actually
/// participated (warm hit before, invalidation after, no stale hit).
#[test]
fn ingest_between_identical_queries_is_never_stale() {
    let (tier, oracle) = engines(None);
    let sql = "SELECT COUNT(*) AS c FROM NYCTaxi n";
    let count = |out: &QueryOutput| match out {
        QueryOutput::Rows(b, _) => b.rows()[0].get(0).as_i64().unwrap(),
        other => panic!("{other:?}"),
    };

    tier.serve(3, sql).unwrap();
    let warm = tier.serve(3, sql).unwrap();
    assert_eq!(tier.stats().result_cache_hits, 1, "second serve must hit");

    ingest(tier.session(), 1);
    ingest(&oracle, 1);

    let recomputed = tier.serve(3, sql).unwrap();
    let direct = oracle.execute(sql).unwrap();
    assert_eq!(count(&recomputed), count(&direct), "stale read");
    assert_eq!(count(&recomputed), count(&warm) + 1, "new row visible");

    let stats = tier.stats();
    assert_eq!(stats.result_cache_hits, 1, "stale entry must not hit");
    assert_eq!(stats.result_cache_invalidations, 1, "epoch move detected");
    assert_eq!(stats.plan_cache_hits, 1, "recompute reused the cached plan");
}

/// Kill the tier's process mid-workload and restart it: the journaled
/// in-flight EXECUTE is delivered exactly once through `take_resumed`,
/// the recovered epochs admit zero stale result-cache hits (the first
/// post-restart serve recomputes over WAL-recovered data, ingest and
/// all), and the plan cache repopulates on the first re-execution.
#[test]
fn tier_kill_and_restart_resumes_in_flight_execute_without_stale_reads() {
    const PREPARE: &str =
        "PREPARE by_vendor AS SELECT COUNT(*) AS c FROM NYCTaxi n WHERE n.Vendor = $1";
    const COUNT_SQL: &str = "SELECT COUNT(*) AS c FROM NYCTaxi n";
    const EXECUTE_SQL: &str = "EXECUTE by_vendor(1)";
    let count = |out: &QueryOutput| match out {
        QueryOutput::Rows(b, _) => b.rows()[0].get(0).as_i64().unwrap(),
        other => panic!("{other:?}"),
    };

    // Crash on the *second* QuerySubmitted append: the first SELECT seals
    // normally, the EXECUTE's journal entry lands durably but the process
    // dies before the statement runs — the in-flight window the journal
    // exists for.
    let fs = FaultFs::new(StorageFaultConfig::crash_at(7, "journal:submit", 2));
    let dir = "/serve-kill-resume";

    let first = sample_session(RECORDS, WORKERS).expect("sample session");
    first.execute(PREPARE).unwrap();
    first.execute("SET checkpoint_durable = on").unwrap();
    first.open_wal_with(dir, fs.clone()).unwrap();
    let tier = ServingTier::new(Arc::new(first));

    let warm = tier.serve(3, COUNT_SQL).unwrap();
    tier.serve(3, COUNT_SQL).unwrap();
    assert_eq!(
        tier.stats().result_cache_hits,
        1,
        "warm hit before the kill"
    );
    ingest(tier.session(), 1);
    let killed = tier.serve(5, EXECUTE_SQL);
    assert!(
        matches!(killed, Err(FudjError::Crash(_))),
        "the armed journal:finish crash must kill the in-flight EXECUTE: {killed:?}"
    );
    drop(tier);

    // Restart: rebuild the session, re-PREPARE the deployment's templates
    // *before* reopening (journaled EXECUTEs resolve by name), reopen the
    // same virtual disk, and stand up a fresh tier over it.
    fs.reopen_after_crash();
    let second = sample_session(RECORDS, WORKERS).expect("sample session");
    second.execute(PREPARE).unwrap();
    second.execute("SET checkpoint_durable = on").unwrap();
    second.open_wal_with(dir, fs).unwrap();
    let tier = ServingTier::new(Arc::new(second));

    // The in-flight EXECUTE comes back exactly once, with the answer an
    // uninterrupted oracle (same data, same ingest) computes.
    let oracle = sample_session(RECORDS, WORKERS).expect("sample session");
    oracle.execute(PREPARE).unwrap();
    ingest(&oracle, 1);
    let want = oracle.execute(EXECUTE_SQL).unwrap();
    let resumed = tier.take_resumed();
    assert_eq!(
        resumed.len(),
        1,
        "exactly the one unfinished EXECUTE resumes"
    );
    assert_eq!(resumed[0].sql, EXECUTE_SQL);
    let (batch, _) = resumed[0].result.as_ref().expect("resume must succeed");
    assert_eq!(
        batch.rows(),
        want.batch().rows(),
        "resumed EXECUTE diverges"
    );

    // Zero stale reads: the restarted tier's caches are cold, so the first
    // serve recomputes — over recovered data that includes the pre-crash
    // ingest — instead of replaying the pre-crash cached answer.
    let recomputed = tier.serve(3, COUNT_SQL).unwrap();
    assert_eq!(
        count(&recomputed),
        count(&warm) + 1,
        "restart must not lose the journaled ingest"
    );
    assert_eq!(
        tier.stats().result_cache_hits,
        0,
        "a pre-crash cache entry leaked across the restart"
    );
    tier.serve(3, COUNT_SQL).unwrap();
    assert_eq!(tier.stats().result_cache_hits, 1, "fresh cache works again");

    // Plan-cache repopulation: the first EXECUTE re-execution caches its
    // plan; after an ingest invalidates the result entry, the recompute
    // reuses that plan instead of re-planning from scratch.
    tier.serve(5, EXECUTE_SQL).unwrap();
    ingest(tier.session(), 2);
    tier.serve(5, EXECUTE_SQL).unwrap();
    let stats = tier.stats();
    assert!(
        stats.result_cache_invalidations >= 1,
        "post-restart ingest must invalidate the cached result: {stats:?}"
    );
    assert_eq!(
        stats.plan_cache_hits, 1,
        "first re-execution must repopulate the plan cache: {stats:?}"
    );
}
