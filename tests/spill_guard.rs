//! Spill-file hygiene under failure: a join that dies mid-spill (a UDF
//! violation under the fail-fast guard policy) must leave no
//! `fudj-spill-*` litter in the temp directory. The RAII guards inside
//! the hybrid-hash COMBINE own every file from the moment it is created,
//! so cleanup holds on *every* error path, not just the happy one.
//!
//! This suite deliberately lives in its own test binary: spill file
//! names embed the process id, so scanning the temp dir filtered by this
//! process's pid cannot race with spill files created by other
//! concurrently running test binaries.

use fudj_repro::core::{
    EngineJoin, FudjEngineJoin, GuardConfig, GuardedJoin, JoinAlgorithm, UdfPolicy,
};
use fudj_repro::exec::{Cluster, FudjJoinNode, PhysicalPlan};
use fudj_repro::joins::evil::{EqualityFudj, EvilJoin, EvilMode, EvilPhase};
use fudj_repro::joins::poisoned;
use fudj_repro::storage::DatasetBuilder;
use fudj_repro::types::{ext, DataType, Field, FudjError, Row, Schema, Value};
use std::sync::Arc;

const WORKERS: usize = 3;
const BUDGET: usize = 16;

/// Spill files created by *this* process and still present on disk.
fn spill_litter() -> Vec<String> {
    let prefix = format!("fudj-spill-{}-", std::process::id());
    std::fs::read_dir(std::env::temp_dir())
        .expect("temp dir must be listable")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|name| name.starts_with(&prefix))
        .collect()
}

fn keys() -> Vec<Value> {
    // Repeating longs: plenty of equality matches, and (by construction
    // of the evil fixtures) roughly one key in eight is poisoned.
    (0..240).map(|v: i64| Value::Int64(v % 60)).collect()
}

fn dataset(name: &str, keys: &[Value]) -> Arc<fudj_repro::storage::Dataset> {
    let schema = Schema::shared(vec![
        Field::new("id", DataType::Int64),
        Field::new("k", DataType::Int64),
    ]);
    let d = DatasetBuilder::new(name, schema)
        .partitions(WORKERS)
        .build()
        .unwrap();
    for (i, k) in keys.iter().enumerate() {
        d.insert(Row::new(vec![Value::Int64(i as i64), k.clone()]))
            .unwrap();
    }
    Arc::new(d)
}

/// An equality-join plan over-budget enough to spill, with the inner
/// algorithm misbehaving per `mode` under the fail-fast guard.
fn spilling_plan(mode: EvilMode, tag: &str) -> PhysicalPlan {
    let evil: Arc<dyn JoinAlgorithm> = Arc::new(EvilJoin::new(Arc::new(EqualityFudj), mode));
    let engine: Arc<dyn EngineJoin> = Arc::new(FudjEngineJoin::new(Arc::new(GuardedJoin::new(
        evil,
        GuardConfig::with_policy(UdfPolicy::FailFast),
    ))));
    let ks = keys();
    let mut node = FudjJoinNode::new(
        PhysicalPlan::Scan {
            dataset: dataset(&format!("l_{tag}"), &ks),
        },
        PhysicalPlan::Scan {
            dataset: dataset(&format!("r_{tag}"), &ks),
        },
        engine,
        1,
        1,
        vec![],
    );
    node.memory_budget_rows = Some(BUDGET);
    PhysicalPlan::FudjJoin(node)
}

/// Regression for the leak: an injected UDF violation in `verify` —
/// i.e. in the middle of the spilling COMBINE, while sub-partition files
/// are live on disk — must fail the query *and* leave the temp dir clean.
#[test]
fn failfast_violation_mid_spill_leaves_no_litter() {
    // The workload must contain poisoned keys, or the evil join never
    // fires and the test proves nothing.
    assert!(
        keys()
            .iter()
            .any(|k| poisoned(&ext::to_external(k).unwrap())),
        "fixture drifted: no poisoned keys in the workload"
    );

    // Control: the same plan with a well-behaved inner join both spills
    // and cleans up after itself — so the evil run below really does die
    // while spill files exist.
    let cluster = Cluster::new(WORKERS);
    let (batch, metrics) = cluster
        .execute(&spilling_plan(EvilMode::Tame, "tame"))
        .unwrap();
    assert!(!batch.is_empty());
    let snap = metrics.snapshot();
    assert!(
        snap.spilled_rows > 0,
        "budget {BUDGET} must spill: {snap:?}"
    );
    assert_eq!(spill_litter(), Vec::<String>::new());

    // The actual regression: panic inside `verify` on poisoned keys.
    let err = match cluster.execute(&spilling_plan(
        EvilMode::PanicIn(EvilPhase::Verify),
        "verify",
    )) {
        Ok(_) => panic!("fail-fast must surface the verify violation"),
        Err(e) => e,
    };
    assert!(
        matches!(&err, FudjError::UdfViolation { phase, .. } if phase == "verify"),
        "unexpected error: {err:?}"
    );
    assert_eq!(
        spill_litter(),
        Vec::<String>::new(),
        "mid-spill failure leaked spill files"
    );
}

/// The same guarantee on a second, earlier failure point: a violation in
/// `assign` aborts the COMBINE while write buffers are still streaming.
#[test]
fn failfast_assign_violation_also_leaves_no_litter() {
    let cluster = Cluster::new(WORKERS);
    let err = match cluster.execute(&spilling_plan(
        EvilMode::PanicIn(EvilPhase::Assign),
        "assign",
    )) {
        Ok(_) => panic!("fail-fast must surface the assign violation"),
        Err(e) => e,
    };
    assert!(
        matches!(&err, FudjError::UdfViolation { phase, .. } if phase == "assign"),
        "unexpected error: {err:?}"
    );
    assert_eq!(
        spill_litter(),
        Vec::<String>::new(),
        "assign failure leaked spill files"
    );
}
