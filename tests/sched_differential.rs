//! Scheduler differential suite: the tentpole invariant of the concurrent
//! query scheduler is that scheduled concurrent execution is **result- and
//! per-query-metrics-identical** to running the same queries serially.
//! Every counter the engine exposes ([`CounterFingerprint`]) must be a
//! function of (query, data, seed) alone — never of how queries were
//! interleaved over the shared worker pool.
//!
//! The mixed workload covers the three paper libraries (spatial in both
//! dedup modes, interval, text similarity), a plain equality FUDJ, and a
//! Quarantine-guarded evil join that panics inside `assign` — so guard
//! accounting is exercised under interleaving too. The chaos variant
//! re-runs the differential under seeded fault injection
//! (`CHAOS_SEEDS=1,2,3` overrides the default matrix).

use fudj_repro::core::{
    EngineJoin, FudjEngineJoin, GuardConfig, GuardedJoin, JoinAlgorithm, ProxyJoin, UdfPolicy,
};
use fudj_repro::exec::{Cluster, CounterFingerprint, FaultConfig, FudjJoinNode, PhysicalPlan};
use fudj_repro::geo::{Point, Polygon, Rect};
use fudj_repro::joins::evil::{EqualityFudj, EvilJoin, EvilMode, EvilPhase};
use fudj_repro::joins::{IntervalFudj, SpatialDedup, SpatialFudj, TextSimilarityFudj};
use fudj_repro::sched::{JobState, QuerySpec, Scheduler, SchedulerConfig};
use fudj_repro::storage::DatasetBuilder;
use fudj_repro::temporal::Interval;
use fudj_repro::types::{DataType, Field, Row, Schema, Value};
use std::sync::Arc;

const WORKERS: usize = 3;

/// Seed matrix for the chaos differential (CI pins five seeds via
/// `CHAOS_SEEDS`; the default matches that matrix).
fn seeds() -> Vec<u64> {
    match std::env::var("CHAOS_SEEDS") {
        Ok(s) => s
            .split(',')
            .map(|t| t.trim().parse().expect("CHAOS_SEEDS must be u64s"))
            .collect(),
        Err(_) => vec![101, 202, 303, 404, 505],
    }
}

/// Deterministic data generator (xorshift64*), same idiom as the chaos
/// differential: data must be identical across runs.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (self.next() >> 11) as f64 / (1u64 << 53) as f64 * (hi - lo)
    }

    fn i64_in(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next() % (hi - lo) as u64) as i64
    }
}

fn polygons(n: usize) -> Vec<Value> {
    let mut g = Gen(11);
    (0..n)
        .map(|_| {
            let (x, y) = (g.f64_in(0.0, 90.0), g.f64_in(0.0, 90.0));
            let (w, h) = (g.f64_in(0.5, 12.0), g.f64_in(0.5, 12.0));
            Value::polygon(Polygon::from_rect(&Rect::new(x, y, x + w, y + h)))
        })
        .collect()
}

fn points(n: usize) -> Vec<Value> {
    let mut g = Gen(22);
    (0..n)
        .map(|_| Value::Point(Point::new(g.f64_in(0.0, 100.0), g.f64_in(0.0, 100.0))))
        .collect()
}

fn intervals(n: usize, salt: u64) -> Vec<Value> {
    let mut g = Gen(33 + salt);
    (0..n)
        .map(|_| {
            let s = g.i64_in(0, 50_000);
            Value::Interval(Interval::new(s, s + g.i64_in(0, 3_000)))
        })
        .collect()
}

fn texts(n: usize, salt: u64) -> Vec<Value> {
    const WORDS: [&str; 7] = ["river", "peak", "camp", "view", "rock", "fern", "lake"];
    let mut g = Gen(44 + salt);
    (0..n)
        .map(|_| {
            let k = 1 + (g.next() % 5) as usize;
            let ws: Vec<&str> = (0..k).map(|_| WORDS[(g.next() % 7) as usize]).collect();
            Value::str(ws.join(" "))
        })
        .collect()
}

fn longs(n: usize, modulo: i64, salt: u64) -> Vec<Value> {
    let mut g = Gen(55 + salt);
    (0..n).map(|_| Value::Int64(g.i64_in(0, modulo))).collect()
}

fn dataset(name: &str, keys: &[Value]) -> Arc<fudj_repro::storage::Dataset> {
    let dt = keys
        .first()
        .map(Value::data_type)
        .unwrap_or(DataType::Int64);
    let schema = Schema::shared(vec![Field::new("id", DataType::Int64), Field::new("k", dt)]);
    let d = DatasetBuilder::new(name, schema)
        .partitions(WORKERS)
        .build()
        .unwrap();
    for (i, k) in keys.iter().enumerate() {
        d.insert(Row::new(vec![Value::Int64(i as i64), k.clone()]))
            .unwrap();
    }
    Arc::new(d)
}

/// One workload: a label and a factory producing a *fresh* plan per run.
/// Fresh because the guard wrapper is stateful (violation-site dedup) —
/// serial and scheduled runs must not share a guard handle.
struct Workload {
    name: &'static str,
    make_plan: Box<dyn Fn() -> PhysicalPlan + Send + Sync>,
}

fn join_plan(
    engine: Arc<dyn EngineJoin>,
    left: &[Value],
    right: &[Value],
    params: Vec<Value>,
) -> PhysicalPlan {
    PhysicalPlan::FudjJoin(FudjJoinNode::new(
        PhysicalPlan::Scan {
            dataset: dataset("l", left),
        },
        PhysicalPlan::Scan {
            dataset: dataset("r", right),
        },
        engine,
        1,
        1,
        params,
    ))
}

/// The mixed query batch: ≥8 queries over four predicate families plus a
/// guarded evil join.
fn workloads() -> Vec<Workload> {
    let mut out: Vec<Workload> = Vec::new();
    for (name, dedup) in [
        ("spatial/avoidance", SpatialDedup::FrameworkAvoidance),
        ("spatial/elimination", SpatialDedup::Elimination),
    ] {
        out.push(Workload {
            name,
            make_plan: Box::new(move || {
                let alg = Arc::new(ProxyJoin::new(SpatialFudj::with_dedup(dedup)));
                join_plan(
                    Arc::new(FudjEngineJoin::new(alg)),
                    &polygons(24),
                    &points(40),
                    vec![Value::Int64(8)],
                )
            }),
        });
    }
    for (name, salt) in [("interval/a", 0), ("interval/b", 4)] {
        out.push(Workload {
            name,
            make_plan: Box::new(move || {
                let alg = Arc::new(ProxyJoin::new(IntervalFudj::new()));
                join_plan(
                    Arc::new(FudjEngineJoin::new(alg)),
                    &intervals(30, salt),
                    &intervals(30, salt + 1),
                    vec![Value::Int64(50)],
                )
            }),
        });
    }
    for (name, salt) in [("text/a", 0), ("text/b", 6)] {
        out.push(Workload {
            name,
            make_plan: Box::new(move || {
                let alg = Arc::new(ProxyJoin::new(TextSimilarityFudj::new()));
                join_plan(
                    Arc::new(FudjEngineJoin::new(alg)),
                    &texts(18, salt),
                    &texts(18, salt + 1),
                    vec![Value::Float64(0.5)],
                )
            }),
        });
    }
    for (name, salt) in [("equality/a", 0), ("equality/b", 2)] {
        out.push(Workload {
            name,
            make_plan: Box::new(move || {
                join_plan(
                    Arc::new(FudjEngineJoin::new(Arc::new(EqualityFudj))),
                    &longs(80, 30, salt),
                    &longs(80, 30, salt + 1),
                    vec![],
                )
            }),
        });
    }
    out.push(Workload {
        name: "evil/quarantined-assign-panic",
        make_plan: Box::new(|| {
            let evil: Arc<dyn JoinAlgorithm> = Arc::new(EvilJoin::new(
                Arc::new(EqualityFudj),
                EvilMode::PanicIn(EvilPhase::Assign),
            ));
            let guarded = Arc::new(GuardedJoin::new(
                evil,
                GuardConfig::with_policy(UdfPolicy::Quarantine),
            ));
            join_plan(
                Arc::new(FudjEngineJoin::new(guarded)),
                &longs(120, 40, 8),
                &longs(120, 40, 9),
                vec![],
            )
        }),
    });
    out
}

type RunResult = (Vec<Row>, CounterFingerprint);

/// Serial baseline: one query at a time on a dedicated cluster.
fn run_serial(cluster: &Cluster, w: &Workload) -> RunResult {
    let (batch, metrics) = cluster.execute(&(w.make_plan)()).unwrap();
    (batch.rows().to_vec(), metrics.snapshot().fingerprint())
}

fn cluster_for(seed: Option<u64>) -> Cluster {
    match seed {
        Some(s) => Cluster::with_faults(WORKERS, FaultConfig::chaos(s)),
        None => Cluster::new(WORKERS),
    }
}

/// The differential: serial results/fingerprints vs fully concurrent
/// scheduled execution of the same batch, on the given fault seed.
fn differential(seed: Option<u64>) {
    let batch = workloads();
    assert!(batch.len() >= 8, "mixed batch must be at least 8 queries");

    let serial: Vec<RunResult> = {
        let cluster = cluster_for(seed);
        batch.iter().map(|w| run_serial(&cluster, w)).collect()
    };

    let scheduler = Scheduler::with_config(
        cluster_for(seed),
        SchedulerConfig {
            max_inflight: 4,
            queue_limit: batch.len(),
            memory_quota_rows: None,
            stage_slots: 2,
        },
    );
    let handles: Vec<_> = batch
        .iter()
        .enumerate()
        .map(|(i, w)| {
            let spec =
                QuerySpec::new(Arc::new((w.make_plan)()), w.name).with_priority(1 + (i % 3) as u32);
            scheduler.submit(spec).unwrap()
        })
        .collect();

    for ((handle, w), (rows, fingerprint)) in handles.into_iter().zip(&batch).zip(&serial) {
        let id = handle.id();
        let (out, metrics) = handle.wait().unwrap_or_else(|e| {
            panic!("{}: scheduled run failed under seed {seed:?}: {e}", w.name)
        });
        assert_eq!(
            out.rows(),
            &rows[..],
            "{}: scheduled rows diverged from serial under seed {seed:?}",
            w.name
        );
        assert_eq!(
            &metrics.fingerprint(),
            fingerprint,
            "{}: scheduled metrics diverged from serial under seed {seed:?}",
            w.name
        );
        assert_eq!(
            scheduler.job(id).unwrap().state,
            JobState::Done,
            "{}: job not marked done",
            w.name
        );
    }
}

/// Fault-free differential over the whole mixed batch.
#[test]
fn concurrent_scheduled_execution_matches_serial() {
    differential(None);
}

/// The same differential under seeded chaos: injected faults and their
/// recoveries are per-query-deterministic, so the fingerprints (which
/// include the fault counters) still match exactly.
#[test]
fn concurrent_matches_serial_under_chaos_seeds() {
    for seed in seeds() {
        differential(Some(seed));
    }
}

/// Pool hygiene: a deadlined query and a cancelled query — both running
/// the guarded evil join, so guard panics are in flight when the query
/// dies — must leave the shared pool fully usable, and later queries'
/// counters identical to a fresh cluster's.
#[test]
fn killed_queries_leave_the_pool_and_counters_clean() {
    let batch = workloads();
    let evil = &batch[batch.len() - 1];
    let cluster = Cluster::new(WORKERS);
    let scheduler = Scheduler::new(cluster.clone());

    // A deadline that trips at the first batch boundary (SIM_TASK_MS=100).
    let doomed = scheduler
        .submit(QuerySpec::new(Arc::new((evil.make_plan)()), "doomed").with_deadline_ms(50))
        .unwrap();
    let doomed_id = doomed.id();
    let err = doomed.wait().unwrap_err();
    assert!(err.to_string().contains("deadline"), "{err}");
    assert_eq!(
        scheduler.job(doomed_id).unwrap().state,
        JobState::DeadlineExceeded
    );

    // A cancellation racing the query from submission; either it lands
    // (Cancelled) or the query wins (Done) — both must leave the pool
    // clean.
    let raced = scheduler
        .submit(QuerySpec::new(Arc::new((evil.make_plan)()), "raced"))
        .unwrap();
    raced.cancel();
    let raced_state = match raced.wait() {
        Ok(_) => JobState::Done,
        Err(e) => {
            assert!(e.to_string().contains("cancelled"), "{e}");
            JobState::Cancelled
        }
    };
    let raced_info = scheduler.jobs().into_iter().nth(1).unwrap();
    assert_eq!(raced_info.state, raced_state);

    // Every workload still runs on the shared cluster and produces the
    // exact counters a fresh, never-abused cluster produces.
    let fresh = Cluster::new(WORKERS);
    for w in &batch {
        let (rows, fingerprint) = run_serial(&cluster, w);
        let (fresh_rows, fresh_fingerprint) = run_serial(&fresh, w);
        assert_eq!(rows, fresh_rows, "{}: rows corrupted after kills", w.name);
        assert_eq!(
            fingerprint, fresh_fingerprint,
            "{}: counters corrupted after kills",
            w.name
        );
    }
}
