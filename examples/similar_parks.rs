//! Query 2: recommend alternative parks by tag similarity.
//!
//! A text-similarity FUDJ (prefix filtering) over the `tags` field of the
//! Parks dataset — a self-join, so the optimizer's summarize-once rewrite
//! (§VI-C) kicks in. We also compare against the on-top NLJ baseline to
//! show both the identical answers and the speed difference.
//!
//! ```text
//! cargo run --release --example similar_parks
//! ```

use fudj_repro::datagen::{parks, GeneratorConfig};
use fudj_repro::joins::standard_library;
use fudj_repro::planner::PlanOptions;
use fudj_repro::sql::{QueryOutput, Session};
use std::time::Instant;

const SQL: &str = "SELECT a.id, b.id AS other_id \
                   FROM Parks a, Parks b \
                   WHERE a.id <> b.id \
                     AND jaccard_similarity(a.tags, b.tags) >= 0.8 \
                   ORDER BY a.id LIMIT 2000000";

fn build_session(workers: usize, on_top: bool) -> Result<Session, Box<dyn std::error::Error>> {
    let mut session = Session::new(workers);
    session.register_dataset(parks(GeneratorConfig::new(1_500, 7, workers))?)?;
    session.install_library(standard_library());
    session.execute(
        r#"CREATE JOIN jaccard_similarity(a: string, b: string, t: double)
           RETURNS boolean AS "setsimilarity.SetSimilarityJoin" AT flexiblejoins"#,
    )?;
    if on_top {
        session.set_options(PlanOptions {
            force_on_top: true,
            ..Default::default()
        });
    }
    Ok(session)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fudj_session = build_session(4, false)?;

    if let QueryOutput::Plan(plan) = fudj_session.execute(&format!("EXPLAIN {SQL}"))? {
        println!("=== FUDJ plan (note the self-join summarize-once) ===\n{plan}");
    }

    let t = Instant::now();
    let fudj = fudj_session.query(SQL)?;
    let fudj_time = t.elapsed();

    let ontop_session = build_session(4, true)?;
    let t = Instant::now();
    let ontop = ontop_session.query(SQL)?;
    let ontop_time = t.elapsed();

    println!("FUDJ:   {} similar pairs in {fudj_time:?}", fudj.len());
    println!("on-top: {} similar pairs in {ontop_time:?}", ontop.len());
    assert_eq!(fudj.len(), ontop.len(), "both plans return the same pairs");

    println!("\nsample recommendations:");
    for row in fudj.rows().iter().take(8) {
        println!("  park {} ↔ park {}", row.get(0), row.get(1));
    }
    println!(
        "\nspeedup: {:.1}x",
        ontop_time.as_secs_f64() / fudj_time.as_secs_f64().max(1e-9)
    );
    Ok(())
}
