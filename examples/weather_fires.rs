//! Query 3: average temperature around each wildfire inside a park — a
//! three-way join combining a *spatial* FUDJ and an *interval* FUDJ in one
//! query, the case the paper argues no DBMS optimizes today (§I-A).
//!
//! The optimizer detects both FUDJ predicates independently: the inner
//! (Wildfires × Parks) join becomes a hash-matched spatial FudjJoin, the
//! outer join against Weather becomes a theta-matched interval FudjJoin,
//! and the `ST_Distance < 1` conjunct stays as a residual filter.
//!
//! ```text
//! cargo run --release --example weather_fires
//! ```

use fudj_repro::datagen::{parks, weather, wildfires, GeneratorConfig};
use fudj_repro::joins::standard_library;
use fudj_repro::sql::{QueryOutput, Session};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let session = Session::new(4);
    session.register_dataset(wildfires(GeneratorConfig::new(1_500, 11, 4))?)?;
    session.register_dataset(parks(GeneratorConfig::new(800, 12, 4))?)?;
    session.register_dataset(weather(GeneratorConfig::new(2_000, 13, 4))?)?;

    session.install_library(standard_library());
    session.execute(
        r#"CREATE JOIN st_contains(a: polygon, b: point)
           RETURNS boolean AS "spatial.SpatialJoin" AT flexiblejoins"#,
    )?;
    session.execute(
        r#"CREATE JOIN overlapping_interval(a: interval, b: interval)
           RETURNS boolean AS "interval.OverlappingIntervalJoin" AT flexiblejoins"#,
    )?;

    let sql = "SELECT f.id, COUNT(w.id) AS readings, AVG(w.temp) AS avg_temp \
               FROM Wildfires f, Parks p, Weather w \
               WHERE ST_Contains(p.boundary, f.location) \
                 AND overlapping_interval(interval(f.fire_start, f.fire_end), w.reading_interval) \
                 AND ST_Distance(f.location, w.location) < 3 \
               GROUP BY f.id \
               ORDER BY readings DESC LIMIT 15";

    if let QueryOutput::Plan(plan) = session.execute(&format!("EXPLAIN {sql}"))? {
        println!("=== optimized plan: two FUDJs in one query ===\n{plan}");
        assert!(plan.contains("spatial_join"), "inner spatial FUDJ detected");
        assert!(
            plan.contains("interval_join"),
            "outer interval FUDJ detected"
        );
    }

    let start = std::time::Instant::now();
    let out = session.execute(sql)?;
    let QueryOutput::Rows(batch, metrics) = out else {
        unreachable!()
    };

    println!(
        "=== fires in parks with nearby overlapping weather readings ({} rows, {:?}) ===",
        batch.len(),
        start.elapsed()
    );
    for row in batch.rows() {
        println!(
            "  fire {} — {} readings, avg temp {}",
            row.get(0),
            row.get(1),
            row.get(2)
        );
    }
    println!(
        "\nnetwork: {} bytes shuffled, {} bytes broadcast (theta join broadcasts one side)",
        metrics.bytes_shuffled, metrics.bytes_broadcast
    );
    Ok(())
}
