//! Writing a brand-new distributed join in ~80 lines — the paper's central
//! promise. This example implements a 2-D *distance join* ("all point pairs
//! within ε") as a FUDJ library from scratch, uploads it, `CREATE JOIN`s
//! it, and runs it through SQL. No engine code was touched.
//!
//! The algorithm: summarize each side's MBR; divide the joint extent into
//! ε-sized cells; single-assign each point to its cell, packing the cell's
//! (row, col) into the bucket id; *theta*-match cells whose rows and
//! columns both differ by at most 1; verify with the exact Euclidean
//! distance. Single-assign ⇒ no duplicate handling needed.
//!
//! ```text
//! cargo run --release --example custom_join
//! ```

use fudj_repro::core::{BucketId, DedupMode, FlexibleJoin, JoinLibrary, ProxyJoin};
use fudj_repro::datagen::{weather, wildfires, GeneratorConfig};
use fudj_repro::geo::Rect;
use fudj_repro::sql::{QueryOutput, Session};
use fudj_repro::types::{ExtValue, FudjError, Result as FudjResult};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The entire user-written join: one struct, one `PPlan`, one trait impl.
#[derive(Clone, Debug, Default)]
struct DistanceJoin;

/// ε-sized cells over the joint extent.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
struct CellPlan {
    min_x: f64,
    min_y: f64,
    eps: f64,
}

impl CellPlan {
    /// Bucket id: cell row in the high half, cell column in the low half.
    fn bucket(&self, x: f64, y: f64) -> BucketId {
        let col = (((x - self.min_x) / self.eps).floor().max(0.0) as u64).min(u32::MAX as u64);
        let row = (((y - self.min_y) / self.eps).floor().max(0.0) as u64).min(u32::MAX as u64);
        (row << 32) | col
    }
}

impl FlexibleJoin for DistanceJoin {
    type Summary = Rect;
    type PPlan = CellPlan;

    fn name(&self) -> &str {
        "distance_join"
    }

    fn summarize(&self, key: &ExtValue, s: &mut Rect) -> FudjResult<()> {
        s.expand_rect(&key.as_coords_mbr()?);
        Ok(())
    }

    fn merge_summaries(&self, a: Rect, b: Rect) -> Rect {
        a.union(&b)
    }

    fn divide(&self, l: &Rect, r: &Rect, params: &[ExtValue]) -> FudjResult<CellPlan> {
        let eps = params
            .first()
            .ok_or_else(|| FudjError::JoinLibrary("distance join needs an epsilon".into()))?
            .as_double()?;
        if eps <= 0.0 {
            return Err(FudjError::JoinLibrary(format!(
                "epsilon must be > 0, got {eps}"
            )));
        }
        let extent = l.union(r);
        Ok(CellPlan {
            min_x: extent.min_x,
            min_y: extent.min_y,
            eps,
        })
    }

    fn assign(&self, key: &ExtValue, plan: &CellPlan, out: &mut Vec<BucketId>) -> FudjResult<()> {
        let c = key.as_double_array()?;
        out.push(plan.bucket(c[0], c[1]));
        Ok(())
    }

    /// Theta match: 8-neighborhood of cells (Chebyshev distance ≤ 1).
    fn matches(&self, b1: BucketId, b2: BucketId) -> bool {
        let (r1, c1) = ((b1 >> 32) as i64, (b1 & 0xFFFF_FFFF) as i64);
        let (r2, c2) = ((b2 >> 32) as i64, (b2 & 0xFFFF_FFFF) as i64);
        (r1 - r2).abs() <= 1 && (c1 - c2).abs() <= 1
    }

    fn uses_default_match(&self) -> bool {
        false // custom theta match ⇒ multi-join
    }

    fn verify(&self, k1: &ExtValue, k2: &ExtValue, plan: &CellPlan) -> FudjResult<bool> {
        let a = k1.as_double_array()?;
        let b = k2.as_double_array()?;
        let (dx, dy) = (a[0] - b[0], a[1] - b[1]);
        Ok((dx * dx + dy * dy).sqrt() <= plan.eps)
    }

    fn dedup_mode(&self) -> DedupMode {
        DedupMode::None // single-assign cannot duplicate
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let session = Session::new(4);
    session.register_dataset(wildfires(GeneratorConfig::new(1_200, 5, 4))?)?;
    session.register_dataset(weather(GeneratorConfig::new(1_200, 6, 4))?)?;

    // Upload OUR library — self-contained, defined in this file.
    let library = JoinLibrary::builder("mylib")
        .with_class("geo.DistanceJoin", || {
            Arc::new(ProxyJoin::new(DistanceJoin))
        })
        .build();
    session.install_library(library);

    session.execute(
        r#"CREATE JOIN within_distance(a: point, b: point, eps: double)
           RETURNS boolean AS "geo.DistanceJoin" AT mylib"#,
    )?;

    let sql = "SELECT COUNT(*) AS pairs \
               FROM Wildfires f, Weather w \
               WHERE within_distance(f.location, w.location, 0.5)";

    if let QueryOutput::Plan(plan) = session.execute(&format!("EXPLAIN {sql}"))? {
        println!("=== plan for the brand-new join ===\n{plan}");
        assert!(
            plan.contains("theta-nlj"),
            "neighbor-cell match is a theta join"
        );
    }

    let start = std::time::Instant::now();
    let count = session.query(sql)?.rows()[0].get(0).as_i64()?;
    let fudj_time = start.elapsed();
    println!("wildfire/weather-station pairs within 0.5°: {count} ({fudj_time:?})");

    // Cross-check against the exhaustive on-top answer.
    let start = std::time::Instant::now();
    let brute = session.query(
        "SELECT COUNT(*) AS pairs FROM Wildfires f, Weather w \
         WHERE ST_Distance(f.location, w.location) <= 0.5",
    )?;
    let brute_time = start.elapsed();
    assert_eq!(
        count,
        brute.rows()[0].get(0).as_i64()?,
        "same answer as brute force"
    );
    println!("verified against brute-force NLJ ({brute_time:?}) ✔");
    Ok(())
}
