//! Quickstart: install a join library, `CREATE JOIN`, and run the paper's
//! motivating spatial query (Query 1) — which parks burned last year?
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fudj_repro::datagen::{parks, wildfires, GeneratorConfig};
use fudj_repro::joins::standard_library;
use fudj_repro::sql::{QueryOutput, Session};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 4-worker simulated shared-nothing cluster.
    let session = Session::new(4);

    // Load synthetic stand-ins for the paper's Parks / Wildfires datasets.
    session.register_dataset(parks(GeneratorConfig::new(2_000, 1, 4))?)?;
    session.register_dataset(wildfires(GeneratorConfig::new(5_000, 2, 4))?)?;

    // Upload the join library and create the spatial join — the paper's
    // CREATE JOIN statement (§VI-A). No engine rebuild, no restart.
    session.install_library(standard_library());
    session.execute(
        r#"CREATE JOIN st_contains(a: polygon, b: point)
           RETURNS boolean AS "spatial.SpatialJoin" AT flexiblejoins"#,
    )?;

    // Query 1: recently damaged parks, with grouping and ordering around
    // the FUDJ — the optimizer integrates everything into one plan.
    let sql = "SELECT p.id, p.tags, COUNT(w.id) AS num_fires \
               FROM Parks p, Wildfires w \
               WHERE ST_Contains(p.boundary, w.location) \
                 AND w.fire_start >= parse_date('01/01/2022', 'M/D/Y') \
               GROUP BY p.id, p.tags \
               ORDER BY num_fires DESC LIMIT 10";

    // Show the optimized plan: the join runs as a FudjJoin operator with
    // hash bucket matching, not a nested loop.
    if let QueryOutput::Plan(plan) = session.execute(&format!("EXPLAIN {sql}"))? {
        println!("=== optimized plan ===\n{plan}");
    }

    let start = std::time::Instant::now();
    let out = session.execute(sql)?;
    let QueryOutput::Rows(batch, metrics) = out else {
        unreachable!()
    };

    println!(
        "=== top damaged parks ({} rows, {:?}) ===",
        batch.len(),
        start.elapsed()
    );
    for row in batch.rows() {
        println!("  {row:?}");
    }
    println!(
        "\nshuffled {} rows / {} bytes across workers; {} verify calls",
        metrics.rows_shuffled, metrics.bytes_shuffled, metrics.verify_calls
    );
    Ok(())
}
