//! The paper's §VI-D-2 workflow: develop and debug a join library with the
//! *standalone single-machine runner* — no engine, no cluster, no SQL —
//! then drop the identical implementation into the distributed engine.
//!
//! This example walks a buggy-then-fixed interval join through that loop:
//!
//! 1. run the candidate library standalone against a brute-force oracle;
//! 2. inspect the runner's statistics to understand partitioning behavior;
//! 3. once standalone-correct, execute the same object distributed and
//!    confirm the answers match.
//!
//! ```text
//! cargo run --release --example standalone_debug
//! ```

use fudj_repro::core::standalone::{run_standalone_with_stats, StandaloneStats};
use fudj_repro::core::{
    reference_execute, BucketId, DedupMode, FlexibleJoin, FudjEngineJoin, ProxyJoin,
};
use fudj_repro::exec::{Cluster, FudjJoinNode, PhysicalPlan};
use fudj_repro::storage::DatasetBuilder;
use fudj_repro::temporal::{GranuleTimeline, Interval, IntervalSummary};
use fudj_repro::types::{DataType, ExtValue, Field, Result as FudjResult, Row, Schema, Value};
use std::sync::Arc;

/// A from-scratch interval join someone is developing. The `BUGGY` flag
/// recreates a classic partitioning mistake: matching buckets on *equality*
/// (like a hash join would) even though interval buckets must theta-match
/// on granule-range overlap.
#[derive(Clone, Debug, Default)]
struct MyIntervalJoin {
    buggy: bool,
}

impl FlexibleJoin for MyIntervalJoin {
    type Summary = IntervalSummary;
    type PPlan = GranuleTimeline;

    fn name(&self) -> &str {
        "my_interval_join"
    }

    fn summarize(&self, key: &ExtValue, s: &mut IntervalSummary) -> FudjResult<()> {
        s.observe(&key.as_interval()?);
        Ok(())
    }

    fn merge_summaries(&self, a: IntervalSummary, b: IntervalSummary) -> IntervalSummary {
        a.merge(&b)
    }

    fn divide(
        &self,
        l: &IntervalSummary,
        r: &IntervalSummary,
        _params: &[ExtValue],
    ) -> FudjResult<GranuleTimeline> {
        let range = l.merge(r).range().unwrap_or_else(|| Interval::new(0, 0));
        Ok(GranuleTimeline::new(range, 64))
    }

    fn assign(
        &self,
        key: &ExtValue,
        plan: &GranuleTimeline,
        out: &mut Vec<BucketId>,
    ) -> FudjResult<()> {
        out.push(plan.assign(&key.as_interval()?));
        Ok(())
    }

    fn matches(&self, b1: BucketId, b2: BucketId) -> bool {
        if self.buggy {
            b1 == b2 // WRONG: drops pairs whose granule ranges differ
        } else {
            fudj_repro::temporal::granule::buckets_overlap(b1, b2)
        }
    }

    fn uses_default_match(&self) -> bool {
        false
    }

    fn verify(&self, k1: &ExtValue, k2: &ExtValue, _p: &GranuleTimeline) -> FudjResult<bool> {
        Ok(k1.as_interval()?.overlaps(&k2.as_interval()?))
    }

    fn dedup_mode(&self) -> DedupMode {
        DedupMode::None
    }
}

fn workload(n: usize, seed: u64) -> Vec<Interval> {
    use rand::{rngs::SmallRng, Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let s = rng.gen_range(0i64..100_000);
            Interval::new(s, s + rng.gen_range(0i64..4_000))
        })
        .collect()
}

fn oracle(l: &[Interval], r: &[Interval]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for (i, a) in l.iter().enumerate() {
        for (j, b) in r.iter().enumerate() {
            if a.overlaps(b) {
                out.push((i, j));
            }
        }
    }
    out
}

fn standalone(
    join: MyIntervalJoin,
    l: &[Interval],
    r: &[Interval],
) -> (Vec<(usize, usize)>, StandaloneStats) {
    let alg = ProxyJoin::new(join);
    let le: Vec<ExtValue> = l
        .iter()
        .map(|iv| ExtValue::LongArray(vec![iv.start, iv.end]))
        .collect();
    let re: Vec<ExtValue> = r
        .iter()
        .map(|iv| ExtValue::LongArray(vec![iv.start, iv.end]))
        .collect();
    run_standalone_with_stats(&alg, &le, &re, &[]).expect("standalone run")
}

fn main() {
    let left = workload(300, 1);
    let right = workload(250, 2);
    let truth = oracle(&left, &right);
    println!("oracle: {} overlapping pairs\n", truth.len());

    // --- Step 1: the buggy candidate, standalone -------------------------
    let (buggy_pairs, stats) = standalone(MyIntervalJoin { buggy: true }, &left, &right);
    println!(
        "buggy library (equality match): {} pairs — {} MISSING",
        buggy_pairs.len(),
        truth.len() - buggy_pairs.len()
    );
    println!(
        "  runner stats: {} left buckets, {} right buckets, {} bucket pairs matched",
        stats.left_buckets, stats.right_buckets, stats.matched_bucket_pairs
    );
    println!("  → too few matched bucket pairs for a theta join: match() is wrong\n");
    assert!(buggy_pairs.len() < truth.len());

    // --- Step 2: the fix, standalone ------------------------------------
    let (fixed_pairs, stats) = standalone(MyIntervalJoin { buggy: false }, &left, &right);
    println!(
        "fixed library (granule-overlap match): {} pairs — exact ✔",
        fixed_pairs.len()
    );
    println!(
        "  runner stats: {} bucket pairs matched, {} pairs verified",
        stats.matched_bucket_pairs, stats.verified_pairs
    );
    assert_eq!(fixed_pairs, truth);

    // --- Step 3: the same object, distributed ---------------------------
    let schema = Schema::shared(vec![
        Field::new("id", DataType::Int64),
        Field::new("iv", DataType::Interval),
    ]);
    let make_ds = |name: &str, ivs: &[Interval]| {
        let d = DatasetBuilder::new(name, schema.clone())
            .partitions(4)
            .build()
            .unwrap();
        for (i, iv) in ivs.iter().enumerate() {
            d.insert(Row::new(vec![Value::Int64(i as i64), Value::Interval(*iv)]))
                .unwrap();
        }
        Arc::new(d)
    };
    let engine_join = Arc::new(FudjEngineJoin::new(Arc::new(ProxyJoin::new(
        MyIntervalJoin { buggy: false },
    ))));

    // Sequential engine reference first (another §VI-D-2 debugging layer)...
    let lv: Vec<Value> = left.iter().map(|iv| Value::Interval(*iv)).collect();
    let rv: Vec<Value> = right.iter().map(|iv| Value::Interval(*iv)).collect();
    let reference = reference_execute(engine_join.as_ref(), &lv, &rv, &[]).unwrap();
    assert_eq!(reference, truth);

    // ...then the real 4-worker cluster.
    let plan = PhysicalPlan::FudjJoin(FudjJoinNode::new(
        PhysicalPlan::Scan {
            dataset: make_ds("l", &left),
        },
        PhysicalPlan::Scan {
            dataset: make_ds("r", &right),
        },
        engine_join,
        1,
        1,
        vec![],
    ));
    let (batch, metrics) = Cluster::new(4).execute(&plan).unwrap();
    assert_eq!(batch.len(), truth.len());
    println!(
        "\ndistributed on 4 workers: {} pairs — matches standalone exactly ✔",
        batch.len()
    );
    println!(
        "  (theta join broadcast {} row-copies between workers)",
        metrics.snapshot().rows_broadcast
    );
}
