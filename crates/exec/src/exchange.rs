//! Exchange operators: how rows move between workers.
//!
//! Rows that stay on their worker are passed through untouched; rows that
//! cross workers are serialized with the wire format, counted against the
//! metrics, and deserialized at the destination — so the byte counters
//! reflect exactly the traffic a real shared-nothing cluster would put on
//! the network, and the CPU cost of (de)serialization is genuinely paid.
//!
//! Faithful to a real cluster, that serialization work happens *in
//! parallel*: every source worker encodes its own outgoing traffic and
//! every destination worker decodes its own incoming traffic on its own
//! [`WorkerPool`] thread. (An earlier serial implementation made exchanges
//! a coordinator bottleneck and produced anti-scaling worker sweeps; a
//! later one spawned fresh OS threads per exchange stage, which is why the
//! pool now comes in as a parameter.)
//!
//! The number of exchange destinations is always the pool size — one
//! partition per simulated worker.
//!
//! **Fault tolerance.** When the metrics carry an armed
//! [`crate::fault::FaultContext`], every remote buffer delivery consults
//! the fault plan: a *dropped* delivery is retransmitted (with simulated
//! backoff) until it arrives or the retry budget escalates, and a
//! *duplicated* delivery reaches the receiver twice — receivers dedup by
//! source id (each source sends at most one buffer per destination per
//! exchange, so the source id is the sequence number) and discard the
//! extra copy. Retransmissions and duplicates are tracked in
//! [`crate::fault::FaultStats`]; the canonical rows/bytes counters keep
//! describing the *logical* traffic, so a fault plan never distorts the
//! wire-size accounting that experiments pin.

use crate::fault::FaultContext;
use crate::metrics::QueryMetrics;
use crate::mode::ExecMode;
use crate::pool::WorkerPool;
use bytes::{Bytes, BytesMut};
use fudj_types::{wire, ColumnReader, Result, Row};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Rows, one vector per worker.
pub type Parts = Vec<Vec<Row>>;

/// Hash of a routing key, stable across the process.
pub fn route_hash<T: Hash + ?Sized>(key: &T) -> u64 {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    h.finish()
}

/// What one source worker produced: rows staying local plus one encoded
/// buffer per remote destination.
struct Outbox {
    src: usize,
    local: Vec<Row>,
    remote: Vec<Bytes>, // indexed by destination; empty for dst == src
}

/// One destination's inbox: `(dst, rows staying local, inbound buffers
/// tagged with their source id)`.
type Inbox = (usize, Vec<Row>, Vec<(usize, Bytes)>);

fn decode_all(buf: &mut Bytes, out: &mut Vec<Row>) -> Result<usize> {
    let mut n = 0;
    while !buf.is_empty() {
        out.push(wire::decode_row(buf)?);
        n += 1;
    }
    Ok(n)
}

/// The armed fault context (if any) plus a dispatch step claimed for one
/// exchange — the deterministic key space for its delivery decisions.
fn delivery_site(metrics: &QueryMetrics) -> Option<(Arc<FaultContext>, u64)> {
    metrics.fault().map(|ctx| (ctx.clone(), ctx.next_step()))
}

/// How many copies of the `src → dst` buffer arrive (1 without faults;
/// 2 under a duplicate; drops retransmit internally or escalate).
fn delivered_copies(
    site: &Option<(Arc<FaultContext>, u64)>,
    src: usize,
    dst: usize,
) -> Result<u32> {
    match site {
        Some((ctx, step)) => ctx.deliver(*step, src, dst),
        None => Ok(1),
    }
}

/// Repartition by an arbitrary routing function `route(row) → destination`.
pub fn shuffle_by(
    parts: Parts,
    pool: &WorkerPool,
    metrics: &QueryMetrics,
    route: impl Fn(&Row) -> usize + Sync,
) -> Result<Parts> {
    shuffle_routed(parts, pool, metrics, |_src, _j, row| route(row))
}

/// Repartition with a *positional* routing function `route(src, j, row)`,
/// where `j` is the row's index within its source partition. This lets
/// position-based exchanges (rebalance) pick destinations without
/// smuggling a routing tag through the wire format — only the row's real
/// payload is serialized and counted.
fn shuffle_routed(
    parts: Parts,
    pool: &WorkerPool,
    metrics: &QueryMetrics,
    route: impl Fn(usize, usize, &Row) -> usize + Sync,
) -> Result<Parts> {
    let workers = pool.size();
    // Stage 1 (parallel per source): route and encode outgoing rows.
    let indexed: Vec<(usize, Vec<Row>)> = parts.into_iter().enumerate().collect();
    let outboxes = pool.run_metered(indexed, Some(metrics), |_, (src, rows)| {
        let mut local = Vec::new();
        let mut buffers: Vec<BytesMut> = vec![BytesMut::new(); workers];
        for (j, row) in rows.into_iter().enumerate() {
            let dst = route(src, j, &row) % workers;
            if dst == src {
                local.push(row);
            } else {
                wire::encode_row(&row, &mut buffers[dst]);
            }
        }
        Ok(Outbox {
            src,
            local,
            remote: buffers.into_iter().map(BytesMut::freeze).collect(),
        })
    })?;

    let moved_bytes: u64 = outboxes
        .iter()
        .flat_map(|o| o.remote.iter().map(|b| b.len() as u64))
        .sum();

    // Deliver each remote buffer under the fault plan (coordinator side,
    // deterministic order). A dropped buffer is retransmitted by
    // `deliver`; a duplicated one lands in the inbox twice, tagged with
    // its source id so the receiver can discard the extra copy.
    let site = delivery_site(metrics);
    let mut inboxes: Vec<Inbox> = (0..workers)
        .map(|dst| (dst, Vec::new(), Vec::new()))
        .collect();
    for outbox in outboxes {
        inboxes[outbox.src].1 = outbox.local;
        for (dst, buf) in outbox.remote.into_iter().enumerate() {
            if !buf.is_empty() {
                for _ in 0..delivered_copies(&site, outbox.src, dst)? {
                    inboxes[dst].2.push((outbox.src, buf.clone()));
                }
            }
        }
    }
    let decoded = pool.run_metered(inboxes, Some(metrics), |_, (dst, local, bufs)| {
        // Dedup by source sequence before paying for anything: duplicate
        // copies are discarded at the receiving NIC, and the canonical
        // byte counters describe the logical traffic only.
        let mut seen = vec![false; workers];
        let mut unique: Vec<Bytes> = Vec::with_capacity(bufs.len());
        for (src, buf) in bufs {
            if std::mem::replace(&mut seen[src], true) {
                if let Some((ctx, _)) = &site {
                    ctx.note_duplicate_discarded();
                }
                continue;
            }
            unique.push(buf);
        }
        // Each destination worker pays for the bytes it receives.
        let inbound: u64 = unique.iter().map(|b| b.len() as u64).sum();
        metrics.charge_network(inbound);
        let mut rows = local;
        let mut n = 0usize;
        for mut buf in unique {
            n += decode_all(&mut buf, &mut rows)?;
        }
        metrics.charge_worker_io(dst, n as u64, inbound);
        Ok((rows, n))
    })?;

    let mut out = Vec::with_capacity(workers);
    let mut moved_rows = 0u64;
    for (rows, n) in decoded {
        moved_rows += n as u64;
        out.push(rows);
    }
    metrics.record_shuffle(moved_rows, moved_bytes);
    Ok(out)
}

/// Hash-partition by one column's value.
pub fn shuffle_by_column(
    parts: Parts,
    pool: &WorkerPool,
    column: usize,
    metrics: &QueryMetrics,
) -> Result<Parts> {
    let workers = pool.size();
    shuffle_by(parts, pool, metrics, move |row| {
        (route_hash(row.get(column)) as usize) % workers
    })
}

/// Hash-partition by the whole row (used by duplicate elimination).
pub fn shuffle_by_row(parts: Parts, pool: &WorkerPool, metrics: &QueryMetrics) -> Result<Parts> {
    let workers = pool.size();
    shuffle_by(parts, pool, metrics, move |row| {
        (route_hash(row) as usize) % workers
    })
}

/// Deliver every row to every worker. Each row is serialized once by its
/// source; every remote receiver decodes its own copy.
pub fn broadcast(parts: Parts, pool: &WorkerPool, metrics: &QueryMetrics) -> Result<Parts> {
    let workers = pool.size();
    // Stage 1 (parallel per source): encode the partition once.
    let encoded = pool.run_metered(
        parts.into_iter().collect::<Vec<_>>(),
        Some(metrics),
        |_, rows| {
            let mut buf = BytesMut::with_capacity(rows.len() * 32);
            for row in &rows {
                wire::encode_row(row, &mut buf);
            }
            Ok((rows, buf.freeze()))
        },
    )?;

    let mut delivered_rows = 0u64;
    let mut delivered_bytes = 0u64;
    for (rows, buf) in encoded.iter() {
        let receivers = workers.saturating_sub(1) as u64;
        delivered_rows += rows.len() as u64 * receivers;
        delivered_bytes += buf.len() as u64 * receivers;
    }

    // Resolve every src → dst delivery on the coordinator, in a fixed
    // order, before the parallel decode stage: copies[dst][src] is the
    // number of arrived copies (drops retransmit inside `deliver`).
    let site = delivery_site(metrics);
    let mut copies: Vec<Vec<u32>> = vec![vec![1; workers]; workers];
    for (dst, row) in copies.iter_mut().enumerate() {
        for (src, (_, buf)) in encoded.iter().enumerate() {
            if src != dst && !buf.is_empty() {
                row[src] = delivered_copies(&site, src, dst)?;
            }
        }
    }

    // Stage 2 (parallel per destination): local clone + decode all
    // remotes. Each source contributes one buffer, so a duplicated
    // delivery is recognized by its source id and decoded only once.
    let out = pool.run_metered(
        (0..workers).collect::<Vec<usize>>(),
        Some(metrics),
        |_, dst| {
            let inbound: u64 = encoded
                .iter()
                .enumerate()
                .filter(|(src, _)| *src != dst)
                .map(|(_, (_, buf))| buf.len() as u64)
                .sum();
            metrics.charge_network(inbound);
            let mut rows = Vec::new();
            let mut received = 0usize;
            for (src, (local, buf)) in encoded.iter().enumerate() {
                if src == dst {
                    rows.extend(local.iter().cloned());
                } else {
                    if let Some((ctx, _)) = &site {
                        for _ in 1..copies[dst][src] {
                            ctx.note_duplicate_discarded();
                        }
                    }
                    let mut b = buf.clone();
                    received += decode_all(&mut b, &mut rows)?;
                }
            }
            metrics.charge_worker_io(dst, received as u64, inbound);
            Ok(rows)
        },
    )?;

    metrics.record_broadcast(delivered_rows, delivered_bytes);
    Ok(out)
}

/// Move everything to worker 0 (final result collection, global sort).
/// Sources encode in parallel; the coordinator decodes.
pub fn gather(parts: Parts, pool: &WorkerPool, metrics: &QueryMetrics) -> Result<Vec<Row>> {
    let indexed: Vec<(usize, Vec<Row>)> = parts.into_iter().enumerate().collect();
    let encoded = pool.run_metered(indexed, Some(metrics), |_, (src, rows)| {
        if src == 0 {
            Ok((rows, Bytes::new()))
        } else {
            let mut buf = BytesMut::with_capacity(rows.len() * 32);
            for row in &rows {
                wire::encode_row(row, &mut buf);
            }
            Ok((Vec::new(), buf.freeze()))
        }
    })?;

    // The coordinator pulls each worker's buffer under the fault plan:
    // drops retransmit inside `deliver`, and a duplicated buffer is
    // recognized by its source id and decoded only once.
    let site = delivery_site(metrics);
    let mut out = Vec::new();
    let mut moved_rows = 0u64;
    let mut moved_bytes = 0u64;
    for (src, (local, buf)) in encoded.into_iter().enumerate() {
        out.extend(local);
        if buf.is_empty() {
            continue;
        }
        for _ in 1..delivered_copies(&site, src, 0)? {
            if let Some((ctx, _)) = &site {
                ctx.note_duplicate_discarded();
            }
        }
        moved_bytes += buf.len() as u64;
        let mut b = buf;
        // Columnar mode rebuilds each inbound stream as typed columns
        // through the zero-copy reader; same bytes, same rows, same
        // order — the counters cannot tell the difference.
        moved_rows += match metrics.exec_mode() {
            ExecMode::Columnar => {
                let mut reader = ColumnReader::new();
                reader.read_stream(&mut b)?;
                let n = reader.rows();
                out.extend(reader.finish().to_rows());
                n as u64
            }
            ExecMode::Row => decode_all(&mut b, &mut out)? as u64,
        };
    }
    // The coordinator receives everything over its single link.
    metrics.charge_network(moved_bytes);
    metrics.charge_worker_io(0, moved_rows, moved_bytes);
    metrics.record_shuffle(moved_rows, moved_bytes);
    Ok(out)
}

/// Round-robin rows into one partition per worker (random/rebalancing
/// exchange — what the engine does when a theta join needs *some*
/// partitioning). Deterministic *global* round-robin: row `j` of source
/// partition `i` goes to worker `(offset_i + j) % workers` where
/// `offset_i` counts the rows of all earlier sources — so the output is
/// level (sizes differ by at most 1) no matter how skewed the input is.
/// (Per-source round-robin `(i + j) % workers` could stack up to one
/// extra row per source on the same worker.)
///
/// Routing is purely positional — no destination tag is appended to the
/// row, so the shuffle serializes (and the metrics count) exactly the
/// row's real payload. An earlier implementation smuggled the destination
/// through a temporary `Int64` column, inflating `bytes_shuffled` by 9
/// bytes per crossing row.
pub fn rebalance(parts: Parts, pool: &WorkerPool, metrics: &QueryMetrics) -> Result<Parts> {
    let workers = pool.size();
    let mut offsets = Vec::with_capacity(parts.len());
    let mut total = 0usize;
    for p in &parts {
        offsets.push(total);
        total += p.len();
    }
    shuffle_routed(parts, pool, metrics, move |src, j, _row| {
        (offsets[src] + j) % workers
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fudj_types::Value;

    fn rows_of(vals: &[i64]) -> Vec<Row> {
        vals.iter()
            .map(|&v| Row::new(vec![Value::Int64(v)]))
            .collect()
    }

    fn flatten_sorted(parts: Parts) -> Vec<Row> {
        let mut all: Vec<Row> = parts.into_iter().flatten().collect();
        all.sort();
        all
    }

    #[test]
    fn shuffle_preserves_multiset() {
        let parts = vec![rows_of(&[1, 2, 3]), rows_of(&[4, 5]), rows_of(&[6])];
        let m = QueryMetrics::new();
        let pool = WorkerPool::new(4);
        let out = shuffle_by_column(parts, &pool, 0, &m).unwrap();
        assert_eq!(out.len(), 4);
        assert_eq!(flatten_sorted(out), rows_of(&[1, 2, 3, 4, 5, 6]));
    }

    #[test]
    fn shuffle_routes_equal_keys_together() {
        let parts = vec![rows_of(&[7, 8]), rows_of(&[7, 9, 7])];
        let m = QueryMetrics::new();
        let pool = WorkerPool::new(3);
        let out = shuffle_by_column(parts, &pool, 0, &m).unwrap();
        let with_sevens: Vec<usize> = out
            .iter()
            .enumerate()
            .filter(|(_, p)| p.iter().any(|r| r.get(0) == &Value::Int64(7)))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(with_sevens.len(), 1, "all 7s on one worker");
        assert_eq!(
            out[with_sevens[0]]
                .iter()
                .filter(|r| r.get(0) == &Value::Int64(7))
                .count(),
            3
        );
    }

    #[test]
    fn local_rows_do_not_count_as_network() {
        // One worker: nothing can cross the network.
        let parts = vec![rows_of(&[1, 2, 3])];
        let m = QueryMetrics::new();
        let pool = WorkerPool::new(1);
        shuffle_by_column(parts, &pool, 0, &m).unwrap();
        assert_eq!(m.snapshot().bytes_shuffled, 0);
    }

    #[test]
    fn cross_worker_rows_are_counted() {
        let parts = vec![rows_of(&[1]), rows_of(&[2])];
        let m = QueryMetrics::new();
        let pool = WorkerPool::new(2);
        // Route everything to worker 0: the row from worker 1 crosses.
        shuffle_by(parts, &pool, &m, |_| 0).unwrap();
        let s = m.snapshot();
        assert_eq!(s.rows_shuffled, 1);
        // i64 row: 4 (width) + 1 (tag) + 8 (payload) = 13 bytes.
        assert_eq!(s.bytes_shuffled, 13);
        // The receiving worker's per-worker counters see the same row.
        assert_eq!(s.per_worker[0].rows, 1);
        assert_eq!(s.per_worker[0].bytes, 13);
    }

    #[test]
    fn broadcast_replicates_everywhere() {
        let parts = vec![rows_of(&[1]), rows_of(&[2]), Vec::new()];
        let m = QueryMetrics::new();
        let pool = WorkerPool::new(3);
        let out = broadcast(parts, &pool, &m).unwrap();
        for p in &out {
            assert_eq!(flatten_sorted(vec![p.clone()]), rows_of(&[1, 2]));
        }
        // 2 rows × 2 remote receivers each.
        assert_eq!(m.snapshot().rows_broadcast, 4);
    }

    #[test]
    fn gather_collects_all() {
        let parts = vec![rows_of(&[3]), rows_of(&[1]), rows_of(&[2])];
        let m = QueryMetrics::new();
        let pool = WorkerPool::new(3);
        let mut all = gather(parts, &pool, &m).unwrap();
        all.sort();
        assert_eq!(all, rows_of(&[1, 2, 3]));
        let s = m.snapshot();
        assert_eq!(s.rows_shuffled, 2, "worker 0's row is local");
        assert_eq!(
            s.per_worker[0].rows, 2,
            "gathered rows land on the coordinator"
        );
    }

    #[test]
    fn rebalance_levels_partitions() {
        let parts = vec![rows_of(&(0..10).collect::<Vec<_>>()), Vec::new()];
        let m = QueryMetrics::new();
        let pool = WorkerPool::new(2);
        let out = rebalance(parts, &pool, &m).unwrap();
        assert_eq!(out[0].len(), 5);
        assert_eq!(out[1].len(), 5);
        // Routing is positional: rows keep exactly their original column.
        assert!(out.iter().flatten().all(|r| r.len() == 1));
    }

    #[test]
    fn rebalance_levels_skewed_multi_source_input() {
        // Per-source round-robin `(src + j) % workers` would give worker 1
        // two rows and worker 3 none here; global round-robin levels it.
        let parts = vec![rows_of(&[1, 2]), rows_of(&[3, 4]), Vec::new(), Vec::new()];
        let m = QueryMetrics::new();
        let pool = WorkerPool::new(4);
        let out = rebalance(parts, &pool, &m).unwrap();
        assert!(out.iter().all(|p| p.len() == 1), "{out:?}");
    }

    #[test]
    fn rebalance_counts_untagged_wire_bytes() {
        // Regression: rebalance used to append an Int64 routing column
        // before the shuffle, so every crossing row was serialized 9
        // bytes (1 tag + 8 payload) too large. Row 1 of source 0 goes to
        // worker (0 + 1) % 2 = 1 — exactly one single-column i64 row
        // crosses, and it must be counted at its real wire size:
        // 4 (width) + 1 (tag) + 8 (payload) = 13 bytes, not 22.
        let parts = vec![rows_of(&[1, 2]), Vec::new()];
        let m = QueryMetrics::new();
        let pool = WorkerPool::new(2);
        let out = rebalance(parts, &pool, &m).unwrap();
        assert_eq!(flatten_sorted(out), rows_of(&[1, 2]));
        let s = m.snapshot();
        assert_eq!(s.rows_shuffled, 1);
        assert_eq!(s.bytes_shuffled, 13);
    }

    #[test]
    fn empty_input_shuffles_to_empty() {
        let m = QueryMetrics::new();
        let pool = WorkerPool::new(3);
        let out = shuffle_by(vec![Vec::new(); 3], &pool, &m, |_| 0).unwrap();
        assert!(out.iter().all(Vec::is_empty));
        assert_eq!(m.snapshot().rows_shuffled, 0);
    }
}
