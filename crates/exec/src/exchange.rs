//! Exchange operators: how rows move between workers.
//!
//! Rows that stay on their worker are passed through untouched; rows that
//! cross workers are serialized with the wire format, counted against the
//! metrics, and deserialized at the destination — so the byte counters
//! reflect exactly the traffic a real shared-nothing cluster would put on
//! the network, and the CPU cost of (de)serialization is genuinely paid.
//!
//! Faithful to a real cluster, that serialization work happens *in
//! parallel*: every source worker encodes its own outgoing traffic and
//! every destination worker decodes its own incoming traffic on its own
//! [`WorkerPool`] thread. (An earlier serial implementation made exchanges
//! a coordinator bottleneck and produced anti-scaling worker sweeps; a
//! later one spawned fresh OS threads per exchange stage, which is why the
//! pool now comes in as a parameter.)
//!
//! The number of exchange destinations is always the pool size — one
//! partition per simulated worker.

use crate::metrics::QueryMetrics;
use crate::pool::WorkerPool;
use bytes::{Bytes, BytesMut};
use fudj_types::{wire, Result, Row};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Rows, one vector per worker.
pub type Parts = Vec<Vec<Row>>;

/// Hash of a routing key, stable across the process.
pub fn route_hash<T: Hash + ?Sized>(key: &T) -> u64 {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    h.finish()
}

/// What one source worker produced: rows staying local plus one encoded
/// buffer per remote destination.
struct Outbox {
    src: usize,
    local: Vec<Row>,
    remote: Vec<Bytes>, // indexed by destination; empty for dst == src
}

fn decode_all(buf: &mut Bytes, out: &mut Vec<Row>) -> Result<usize> {
    let mut n = 0;
    while !buf.is_empty() {
        out.push(wire::decode_row(buf)?);
        n += 1;
    }
    Ok(n)
}

/// Repartition by an arbitrary routing function `route(row) → destination`.
pub fn shuffle_by(
    parts: Parts,
    pool: &WorkerPool,
    metrics: &QueryMetrics,
    route: impl Fn(&Row) -> usize + Sync,
) -> Result<Parts> {
    shuffle_routed(parts, pool, metrics, |_src, _j, row| route(row))
}

/// Repartition with a *positional* routing function `route(src, j, row)`,
/// where `j` is the row's index within its source partition. This lets
/// position-based exchanges (rebalance) pick destinations without
/// smuggling a routing tag through the wire format — only the row's real
/// payload is serialized and counted.
fn shuffle_routed(
    parts: Parts,
    pool: &WorkerPool,
    metrics: &QueryMetrics,
    route: impl Fn(usize, usize, &Row) -> usize + Sync,
) -> Result<Parts> {
    let workers = pool.size();
    // Stage 1 (parallel per source): route and encode outgoing rows.
    let indexed: Vec<(usize, Vec<Row>)> = parts.into_iter().enumerate().collect();
    let outboxes = pool.run_metered(indexed, Some(metrics), |_, (src, rows)| {
        let mut local = Vec::new();
        let mut buffers: Vec<BytesMut> = vec![BytesMut::new(); workers];
        for (j, row) in rows.into_iter().enumerate() {
            let dst = route(src, j, &row) % workers;
            if dst == src {
                local.push(row);
            } else {
                wire::encode_row(&row, &mut buffers[dst]);
            }
        }
        Ok(Outbox {
            src,
            local,
            remote: buffers.into_iter().map(BytesMut::freeze).collect(),
        })
    })?;

    let moved_bytes: u64 = outboxes
        .iter()
        .flat_map(|o| o.remote.iter().map(|b| b.len() as u64))
        .sum();

    // Stage 2 (parallel per destination): adopt local rows, decode inbound.
    let mut inboxes: Vec<(usize, Vec<Row>, Vec<Bytes>)> = (0..workers)
        .map(|dst| (dst, Vec::new(), Vec::new()))
        .collect();
    for outbox in outboxes {
        inboxes[outbox.src].1 = outbox.local;
        for (dst, buf) in outbox.remote.into_iter().enumerate() {
            if !buf.is_empty() {
                inboxes[dst].2.push(buf);
            }
        }
    }
    let decoded = pool.run_metered(inboxes, Some(metrics), |_, (dst, local, bufs)| {
        // Each destination worker pays for the bytes it receives.
        let inbound: u64 = bufs.iter().map(|b| b.len() as u64).sum();
        metrics.charge_network(inbound);
        let mut rows = local;
        let mut n = 0usize;
        for mut buf in bufs {
            n += decode_all(&mut buf, &mut rows)?;
        }
        metrics.charge_worker_io(dst, n as u64, inbound);
        Ok((rows, n))
    })?;

    let mut out = Vec::with_capacity(workers);
    let mut moved_rows = 0u64;
    for (rows, n) in decoded {
        moved_rows += n as u64;
        out.push(rows);
    }
    metrics.record_shuffle(moved_rows, moved_bytes);
    Ok(out)
}

/// Hash-partition by one column's value.
pub fn shuffle_by_column(
    parts: Parts,
    pool: &WorkerPool,
    column: usize,
    metrics: &QueryMetrics,
) -> Result<Parts> {
    let workers = pool.size();
    shuffle_by(parts, pool, metrics, move |row| {
        (route_hash(row.get(column)) as usize) % workers
    })
}

/// Hash-partition by the whole row (used by duplicate elimination).
pub fn shuffle_by_row(parts: Parts, pool: &WorkerPool, metrics: &QueryMetrics) -> Result<Parts> {
    let workers = pool.size();
    shuffle_by(parts, pool, metrics, move |row| {
        (route_hash(row) as usize) % workers
    })
}

/// Deliver every row to every worker. Each row is serialized once by its
/// source; every remote receiver decodes its own copy.
pub fn broadcast(parts: Parts, pool: &WorkerPool, metrics: &QueryMetrics) -> Result<Parts> {
    let workers = pool.size();
    // Stage 1 (parallel per source): encode the partition once.
    let encoded = pool.run_metered(
        parts.into_iter().collect::<Vec<_>>(),
        Some(metrics),
        |_, rows| {
            let mut buf = BytesMut::with_capacity(rows.len() * 32);
            for row in &rows {
                wire::encode_row(row, &mut buf);
            }
            Ok((rows, buf.freeze()))
        },
    )?;

    let mut delivered_rows = 0u64;
    let mut delivered_bytes = 0u64;
    for (rows, buf) in encoded.iter() {
        let receivers = workers.saturating_sub(1) as u64;
        delivered_rows += rows.len() as u64 * receivers;
        delivered_bytes += buf.len() as u64 * receivers;
    }

    // Stage 2 (parallel per destination): local clone + decode all remotes.
    let out = pool.run_metered(
        (0..workers).collect::<Vec<usize>>(),
        Some(metrics),
        |_, dst| {
            let inbound: u64 = encoded
                .iter()
                .enumerate()
                .filter(|(src, _)| *src != dst)
                .map(|(_, (_, buf))| buf.len() as u64)
                .sum();
            metrics.charge_network(inbound);
            let mut rows = Vec::new();
            let mut received = 0usize;
            for (src, (local, buf)) in encoded.iter().enumerate() {
                if src == dst {
                    rows.extend(local.iter().cloned());
                } else {
                    let mut b = buf.clone();
                    received += decode_all(&mut b, &mut rows)?;
                }
            }
            metrics.charge_worker_io(dst, received as u64, inbound);
            Ok(rows)
        },
    )?;

    metrics.record_broadcast(delivered_rows, delivered_bytes);
    Ok(out)
}

/// Move everything to worker 0 (final result collection, global sort).
/// Sources encode in parallel; the coordinator decodes.
pub fn gather(parts: Parts, pool: &WorkerPool, metrics: &QueryMetrics) -> Result<Vec<Row>> {
    let indexed: Vec<(usize, Vec<Row>)> = parts.into_iter().enumerate().collect();
    let encoded = pool.run_metered(indexed, Some(metrics), |_, (src, rows)| {
        if src == 0 {
            Ok((rows, Bytes::new()))
        } else {
            let mut buf = BytesMut::with_capacity(rows.len() * 32);
            for row in &rows {
                wire::encode_row(row, &mut buf);
            }
            Ok((Vec::new(), buf.freeze()))
        }
    })?;

    let mut out = Vec::new();
    let mut moved_rows = 0u64;
    let mut moved_bytes = 0u64;
    for (local, buf) in encoded {
        out.extend(local);
        moved_bytes += buf.len() as u64;
        let mut b = buf;
        moved_rows += decode_all(&mut b, &mut out)? as u64;
    }
    // The coordinator receives everything over its single link.
    metrics.charge_network(moved_bytes);
    metrics.charge_worker_io(0, moved_rows, moved_bytes);
    metrics.record_shuffle(moved_rows, moved_bytes);
    Ok(out)
}

/// Round-robin rows into one partition per worker (random/rebalancing
/// exchange — what the engine does when a theta join needs *some*
/// partitioning). Deterministic: row `j` of source partition `i` goes to
/// worker `(i + j) % workers`.
///
/// Routing is purely positional — no destination tag is appended to the
/// row, so the shuffle serializes (and the metrics count) exactly the
/// row's real payload. An earlier implementation smuggled the destination
/// through a temporary `Int64` column, inflating `bytes_shuffled` by 9
/// bytes per crossing row.
pub fn rebalance(parts: Parts, pool: &WorkerPool, metrics: &QueryMetrics) -> Result<Parts> {
    let workers = pool.size();
    shuffle_routed(parts, pool, metrics, |src, j, _row| (src + j) % workers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fudj_types::Value;

    fn rows_of(vals: &[i64]) -> Vec<Row> {
        vals.iter()
            .map(|&v| Row::new(vec![Value::Int64(v)]))
            .collect()
    }

    fn flatten_sorted(parts: Parts) -> Vec<Row> {
        let mut all: Vec<Row> = parts.into_iter().flatten().collect();
        all.sort();
        all
    }

    #[test]
    fn shuffle_preserves_multiset() {
        let parts = vec![rows_of(&[1, 2, 3]), rows_of(&[4, 5]), rows_of(&[6])];
        let m = QueryMetrics::new();
        let pool = WorkerPool::new(4);
        let out = shuffle_by_column(parts, &pool, 0, &m).unwrap();
        assert_eq!(out.len(), 4);
        assert_eq!(flatten_sorted(out), rows_of(&[1, 2, 3, 4, 5, 6]));
    }

    #[test]
    fn shuffle_routes_equal_keys_together() {
        let parts = vec![rows_of(&[7, 8]), rows_of(&[7, 9, 7])];
        let m = QueryMetrics::new();
        let pool = WorkerPool::new(3);
        let out = shuffle_by_column(parts, &pool, 0, &m).unwrap();
        let with_sevens: Vec<usize> = out
            .iter()
            .enumerate()
            .filter(|(_, p)| p.iter().any(|r| r.get(0) == &Value::Int64(7)))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(with_sevens.len(), 1, "all 7s on one worker");
        assert_eq!(
            out[with_sevens[0]]
                .iter()
                .filter(|r| r.get(0) == &Value::Int64(7))
                .count(),
            3
        );
    }

    #[test]
    fn local_rows_do_not_count_as_network() {
        // One worker: nothing can cross the network.
        let parts = vec![rows_of(&[1, 2, 3])];
        let m = QueryMetrics::new();
        let pool = WorkerPool::new(1);
        shuffle_by_column(parts, &pool, 0, &m).unwrap();
        assert_eq!(m.snapshot().bytes_shuffled, 0);
    }

    #[test]
    fn cross_worker_rows_are_counted() {
        let parts = vec![rows_of(&[1]), rows_of(&[2])];
        let m = QueryMetrics::new();
        let pool = WorkerPool::new(2);
        // Route everything to worker 0: the row from worker 1 crosses.
        shuffle_by(parts, &pool, &m, |_| 0).unwrap();
        let s = m.snapshot();
        assert_eq!(s.rows_shuffled, 1);
        // i64 row: 4 (width) + 1 (tag) + 8 (payload) = 13 bytes.
        assert_eq!(s.bytes_shuffled, 13);
        // The receiving worker's per-worker counters see the same row.
        assert_eq!(s.per_worker[0].rows, 1);
        assert_eq!(s.per_worker[0].bytes, 13);
    }

    #[test]
    fn broadcast_replicates_everywhere() {
        let parts = vec![rows_of(&[1]), rows_of(&[2]), Vec::new()];
        let m = QueryMetrics::new();
        let pool = WorkerPool::new(3);
        let out = broadcast(parts, &pool, &m).unwrap();
        for p in &out {
            assert_eq!(flatten_sorted(vec![p.clone()]), rows_of(&[1, 2]));
        }
        // 2 rows × 2 remote receivers each.
        assert_eq!(m.snapshot().rows_broadcast, 4);
    }

    #[test]
    fn gather_collects_all() {
        let parts = vec![rows_of(&[3]), rows_of(&[1]), rows_of(&[2])];
        let m = QueryMetrics::new();
        let pool = WorkerPool::new(3);
        let mut all = gather(parts, &pool, &m).unwrap();
        all.sort();
        assert_eq!(all, rows_of(&[1, 2, 3]));
        let s = m.snapshot();
        assert_eq!(s.rows_shuffled, 2, "worker 0's row is local");
        assert_eq!(
            s.per_worker[0].rows, 2,
            "gathered rows land on the coordinator"
        );
    }

    #[test]
    fn rebalance_levels_partitions() {
        let parts = vec![rows_of(&(0..10).collect::<Vec<_>>()), Vec::new()];
        let m = QueryMetrics::new();
        let pool = WorkerPool::new(2);
        let out = rebalance(parts, &pool, &m).unwrap();
        assert_eq!(out[0].len(), 5);
        assert_eq!(out[1].len(), 5);
        // Routing is positional: rows keep exactly their original column.
        assert!(out.iter().flatten().all(|r| r.len() == 1));
    }

    #[test]
    fn rebalance_counts_untagged_wire_bytes() {
        // Regression: rebalance used to append an Int64 routing column
        // before the shuffle, so every crossing row was serialized 9
        // bytes (1 tag + 8 payload) too large. Row 1 of source 0 goes to
        // worker (0 + 1) % 2 = 1 — exactly one single-column i64 row
        // crosses, and it must be counted at its real wire size:
        // 4 (width) + 1 (tag) + 8 (payload) = 13 bytes, not 22.
        let parts = vec![rows_of(&[1, 2]), Vec::new()];
        let m = QueryMetrics::new();
        let pool = WorkerPool::new(2);
        let out = rebalance(parts, &pool, &m).unwrap();
        assert_eq!(flatten_sorted(out), rows_of(&[1, 2]));
        let s = m.snapshot();
        assert_eq!(s.rows_shuffled, 1);
        assert_eq!(s.bytes_shuffled, 13);
    }

    #[test]
    fn empty_input_shuffles_to_empty() {
        let m = QueryMetrics::new();
        let pool = WorkerPool::new(3);
        let out = shuffle_by(vec![Vec::new(); 3], &pool, &m, |_| 0).unwrap();
        assert!(out.iter().all(Vec::is_empty));
        assert_eq!(m.snapshot().rows_shuffled, 0);
    }
}
