//! Columnar evaluation kernels — the stride implementations behind
//! [`ExecMode::Columnar`].
//!
//! Every kernel here has a row-mode twin and must agree with it
//! bit-for-bit: same output rows, same errors, same accumulator states
//! (f64 sums are order-sensitive, so strides fold values in row order
//! within each group, exactly as the row path does). The typed fast paths
//! mirror [`Value`]'s total order — same-variant `Int64` comparison goes
//! through f64 `total_cmp` because the numeric variants share one number
//! line — so a stride can never disagree with the interpreted comparison.
//! `tests/columnar_differential.rs` pins all of this against the row path.

use crate::aggregate::Accumulator;
use crate::mode::ExecMode;
use crate::plan::{AggFunc, Aggregate, ColumnCompare};
use fudj_types::{Result, Row, SelectionBitmap, Value};
use std::collections::HashMap;

/// Apply a compiled conjunction of column comparisons to one partition.
pub fn filter_rows(rows: Vec<Row>, compares: &[ColumnCompare], mode: ExecMode) -> Vec<Row> {
    match mode {
        ExecMode::Row => rows
            .into_iter()
            .filter(|r| compares.iter().all(|c| c.eval_row(r)))
            .collect(),
        ExecMode::Columnar => filter_columnar(rows, compares),
    }
}

fn filter_columnar(rows: Vec<Row>, compares: &[ColumnCompare]) -> Vec<Row> {
    if rows.is_empty() || compares.is_empty() {
        return rows;
    }
    // A lone comparison needs no selection bitmap: fuse the typed
    // evaluation with the materialization so the batch is traversed once
    // instead of twice (bitmap pass + gather pass).
    if let [only] = compares {
        return filter_single(rows, only);
    }
    let mut sel = compare_bitmap(&rows, &compares[0]);
    for cmp in &compares[1..] {
        if sel.count_ones() == 0 {
            break;
        }
        refine_bitmap(&rows, cmp, &mut sel);
    }
    if sel.count_ones() == rows.len() {
        return rows;
    }
    let mut out = Vec::with_capacity(sel.count_ones());
    for (i, row) in rows.into_iter().enumerate() {
        if sel.get(i) {
            out.push(row);
        }
    }
    out
}

/// Single-comparison filter, fused with materialization. The typed arm
/// and the interpreted arm decide identically (`Value`'s numeric order
/// is the same f64 `total_cmp` widening), so mixing them per row is
/// safe — there is no cross-row state.
fn filter_single(rows: Vec<Row>, cmp: &ColumnCompare) -> Vec<Row> {
    let col = cmp.column;
    let mut out = Vec::with_capacity(rows.len());
    match &cmp.literal {
        Value::Int64(lit) => {
            let litf = *lit as f64;
            for row in rows {
                let keep = match row.get(col) {
                    Value::Int64(x) => cmp.op.matches((*x as f64).total_cmp(&litf)),
                    v => cmp.op.matches(v.cmp(&cmp.literal)),
                };
                if keep {
                    out.push(row);
                }
            }
        }
        _ => {
            for row in rows {
                if cmp.op.matches(row.get(col).cmp(&cmp.literal)) {
                    out.push(row);
                }
            }
        }
    }
    out
}

/// One comparison over a whole column stride. The typed loops are
/// optimistic: the first value of an unexpected variant abandons the
/// stride and the whole column re-runs through the interpreted loop, so
/// the common all-one-type column pays exactly one pass (no separate
/// type-scan) and a mixed column costs at most one wasted partial pass.
fn compare_bitmap(rows: &[Row], cmp: &ColumnCompare) -> SelectionBitmap {
    let col = cmp.column;
    match &cmp.literal {
        // Int64 stride: `Value`'s numeric variants compare through f64
        // `total_cmp`, so the typed loop must widen exactly the same way.
        Value::Int64(lit) => {
            let litf = *lit as f64;
            let mut sel = SelectionBitmap::new();
            for row in rows {
                let Value::Int64(x) = row.get(col) else {
                    return interpreted_bitmap(rows, cmp);
                };
                sel.push(cmp.op.matches((*x as f64).total_cmp(&litf)));
            }
            sel
        }
        Value::Float64(lit) => {
            let mut sel = SelectionBitmap::new();
            for row in rows {
                let Value::Float64(x) = row.get(col) else {
                    return interpreted_bitmap(rows, cmp);
                };
                sel.push(cmp.op.matches(x.total_cmp(lit)));
            }
            sel
        }
        Value::Str(lit) => {
            let mut sel = SelectionBitmap::new();
            for row in rows {
                let Value::Str(x) = row.get(col) else {
                    return interpreted_bitmap(rows, cmp);
                };
                sel.push(cmp.op.matches(x.as_ref().cmp(lit.as_ref())));
            }
            sel
        }
        _ => interpreted_bitmap(rows, cmp),
    }
}

/// Interpreted per-row comparison — the fallback for mixed columns and
/// exotic literals, and the semantic reference the typed strides mirror.
fn interpreted_bitmap(rows: &[Row], cmp: &ColumnCompare) -> SelectionBitmap {
    let mut sel = SelectionBitmap::new();
    for row in rows {
        sel.push(cmp.op.matches(row.get(cmp.column).cmp(&cmp.literal)));
    }
    sel
}

/// AND one more comparison into an existing selection, evaluating only
/// rows that are still selected. A conjunction is order-insensitive, so
/// skipping dead rows cannot change the result — it only avoids the
/// comparisons the row engine's short-circuit would also skip.
fn refine_bitmap(rows: &[Row], cmp: &ColumnCompare, sel: &mut SelectionBitmap) {
    let col = cmp.column;
    let mut next = SelectionBitmap::new();
    match &cmp.literal {
        Value::Int64(lit) => {
            let litf = *lit as f64;
            for (i, row) in rows.iter().enumerate() {
                let keep = sel.get(i) && {
                    let Value::Int64(x) = row.get(col) else {
                        sel.and_with(&interpreted_bitmap(rows, cmp));
                        return;
                    };
                    cmp.op.matches((*x as f64).total_cmp(&litf))
                };
                next.push(keep);
            }
        }
        _ => {
            for (i, row) in rows.iter().enumerate() {
                next.push(sel.get(i) && cmp.op.matches(row.get(col).cmp(&cmp.literal)));
            }
        }
    }
    *sel = next;
}

/// Pure column projection. A row projection is already a column gather
/// (no expression evaluation), so both modes share this implementation;
/// the variant exists so the planner can skip closure compilation.
pub fn project_rows(rows: Vec<Row>, columns: &[usize]) -> Vec<Row> {
    rows.into_iter().map(|r| r.project(columns)).collect()
}

/// Vectorized partial-aggregation fast path: a single all-`Int64` group
/// key column. Returns `None` when the shape doesn't qualify (zero or
/// several group columns, or any non-`Int64` key) — the caller falls back
/// to the row path.
///
/// The win over the row path is the key handling: one `i64` map probe per
/// row instead of allocating, hashing, and comparing a `Vec<Value>` key,
/// plus one sequential stride per aggregate instead of a strided walk
/// over every group's accumulator vector.
pub fn partial_aggregate(
    rows: &[Row],
    group_by: &[usize],
    aggregates: &[Aggregate],
    float_sum: &[bool],
) -> Option<Result<Vec<Row>>> {
    let [key_col] = group_by else {
        return None;
    };
    // Pass 1: slot per row through an i64-keyed map. Groups are numbered
    // in first-appearance order, so per-group folds below happen in row
    // order — bit-identical f64 sums to the row path. The key-type check
    // is folded into this pass (no separate type scan): the first
    // non-`Int64` key disqualifies the fast path and the caller falls
    // back to the row engine.
    let mut slot_of: HashMap<i64, u32> = HashMap::new();
    let mut keys: Vec<i64> = Vec::new();
    let mut slots: Vec<u32> = Vec::with_capacity(rows.len());
    for row in rows {
        let Value::Int64(k) = row.get(*key_col) else {
            return None;
        };
        let next = keys.len() as u32;
        let slot = *slot_of.entry(*k).or_insert_with(|| {
            keys.push(*k);
            next
        });
        slots.push(slot);
    }
    Some(fold_strides(rows, &keys, &slots, aggregates, float_sum))
}

/// The row path's exact fold for one aggregate: `Accumulator::update`
/// per row, in row order. Used when a typed stride bails mid-column —
/// the accumulators are reset first, so a partial optimistic pass can
/// never double-count.
fn generic_fold(
    rows: &[Row],
    slots: &[u32],
    agg: &Aggregate,
    float_sum: bool,
    input: Option<usize>,
    accs: &mut [Accumulator],
) -> Result<()> {
    for a in accs.iter_mut() {
        *a = Accumulator::new(agg, float_sum);
    }
    for (row, &s) in rows.iter().zip(slots) {
        accs[s as usize].update(input.map(|i| row.get(i)))?;
    }
    Ok(())
}

/// Fold every aggregate over the slotted rows and emit the partials.
fn fold_strides(
    rows: &[Row],
    keys: &[i64],
    slots: &[u32],
    aggregates: &[Aggregate],
    float_sum: &[bool],
) -> Result<Vec<Row>> {
    // Pass 2: one sequential stride per aggregate. Typed strides cover
    // the hot kinds; everything else folds through the shared
    // `Accumulator::update`, which is the row path's exact semantics.
    let mut agg_cols: Vec<Vec<Accumulator>> = Vec::with_capacity(aggregates.len());
    for (agg, &fs) in aggregates.iter().zip(float_sum) {
        let mut accs: Vec<Accumulator> =
            (0..keys.len()).map(|_| Accumulator::new(agg, fs)).collect();
        match (agg.func, agg.input) {
            (AggFunc::Count, None) => {
                for &s in slots {
                    if let Accumulator::Count(c) = &mut accs[s as usize] {
                        *c += 1;
                    }
                }
            }
            // SUM(int column): the row path is `s += v.as_i64()?` per
            // non-null value; an all-Int64 column makes that `s += x` in
            // the same order (same overflow behavior included). The
            // stride is optimistic — the first non-Int64 value rewinds
            // the whole aggregate through the generic fold, so the
            // common case pays no separate type scan.
            (AggFunc::Sum, Some(i)) if !fs => {
                let typed = rows.iter().zip(slots).all(|(row, &s)| {
                    let Value::Int64(x) = row.get(i) else {
                        return false;
                    };
                    if let Accumulator::SumInt(sum) = &mut accs[s as usize] {
                        *sum += *x;
                    }
                    true
                });
                if !typed {
                    generic_fold(rows, slots, agg, fs, Some(i), &mut accs)?;
                }
            }
            // AVG(int column): row path is `sum += v.as_f64()?` — the
            // same `x as f64` widening, in the same order.
            (AggFunc::Avg, Some(i)) => {
                let typed = rows.iter().zip(slots).all(|(row, &s)| {
                    let Value::Int64(x) = row.get(i) else {
                        return false;
                    };
                    if let Accumulator::Avg { sum, count } = &mut accs[s as usize] {
                        *sum += *x as f64;
                        *count += 1;
                    }
                    true
                });
                if !typed {
                    generic_fold(rows, slots, agg, fs, Some(i), &mut accs)?;
                }
            }
            (_, input) => generic_fold(rows, slots, agg, fs, input, &mut accs)?,
        }
        agg_cols.push(accs);
    }

    // Emit: group key then one partial per aggregate — the row path's
    // layout. Emission order is first-appearance instead of the row
    // path's map order, which only the shuffle sees, and it routes by
    // key hash, not position.
    let mut out = Vec::with_capacity(keys.len());
    for (g, key) in keys.iter().enumerate() {
        let mut values = Vec::with_capacity(1 + aggregates.len());
        values.push(Value::Int64(*key));
        values.extend(agg_cols.iter().map(|col| col[g].partial_value()));
        out.push(Row::new(values));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::CmpOp;

    fn rows_of(vals: &[i64]) -> Vec<Row> {
        vals.iter()
            .map(|&v| Row::new(vec![Value::Int64(v), Value::Int64(v * 10)]))
            .collect()
    }

    fn cmp(column: usize, op: CmpOp, lit: Value) -> ColumnCompare {
        ColumnCompare {
            column,
            op,
            literal: lit,
        }
    }

    #[test]
    fn filter_modes_agree_on_typed_and_mixed_columns() {
        let mut rows = rows_of(&[1, 5, 3, 9, 5, -2]);
        rows.push(Row::new(vec![Value::Float64(4.5), Value::Null]));
        rows.push(Row::new(vec![Value::Null, Value::Null]));
        for op in [
            CmpOp::Eq,
            CmpOp::NotEq,
            CmpOp::Lt,
            CmpOp::LtEq,
            CmpOp::Gt,
            CmpOp::GtEq,
        ] {
            let compares = vec![cmp(0, op, Value::Int64(4))];
            let r = filter_rows(rows.clone(), &compares, ExecMode::Row);
            let c = filter_rows(rows.clone(), &compares, ExecMode::Columnar);
            assert_eq!(r, c, "op {op:?}");
        }
    }

    #[test]
    fn conjunction_filters_like_sequential_application() {
        let rows = rows_of(&[1, 5, 3, 9, 5, -2, 7]);
        let compares = vec![
            cmp(0, CmpOp::Gt, Value::Int64(2)),
            cmp(1, CmpOp::Lt, Value::Int64(80)),
        ];
        let got = filter_rows(rows.clone(), &compares, ExecMode::Columnar);
        let want: Vec<Row> = rows
            .into_iter()
            .filter(|r| compares.iter().all(|c| c.eval_row(r)))
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn string_stride_matches_value_order() {
        let rows: Vec<Row> = ["apple", "pear", "fig"]
            .iter()
            .map(|s| Row::new(vec![Value::str(*s)]))
            .collect();
        let compares = vec![cmp(0, CmpOp::GtEq, Value::str("fig"))];
        let r = filter_rows(rows.clone(), &compares, ExecMode::Row);
        let c = filter_rows(rows, &compares, ExecMode::Columnar);
        assert_eq!(r, c);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn partial_aggregate_matches_row_path_states() {
        let rows: Vec<Row> = (0..40)
            .map(|i| Row::new(vec![Value::Int64(i % 4), Value::Int64(i * 3)]))
            .collect();
        let aggregates = vec![
            Aggregate::count_star("c"),
            Aggregate::on(AggFunc::Sum, 1, "s"),
            Aggregate::on(AggFunc::Avg, 1, "a"),
            Aggregate::on(AggFunc::Min, 1, "mn"),
            Aggregate::on(AggFunc::Max, 1, "mx"),
        ];
        let float_sum = vec![false; aggregates.len()];
        let mut fast = partial_aggregate(&rows, &[0], &aggregates, &float_sum)
            .expect("all-i64 key qualifies")
            .unwrap();

        // Row-path reference, re-implemented literally.
        let mut groups: HashMap<Vec<Value>, Vec<Accumulator>> = HashMap::new();
        for row in &rows {
            let key = vec![row.get(0).clone()];
            let accs = groups.entry(key).or_insert_with(|| {
                aggregates
                    .iter()
                    .zip(&float_sum)
                    .map(|(a, &fs)| Accumulator::new(a, fs))
                    .collect()
            });
            for (acc, agg) in accs.iter_mut().zip(&aggregates) {
                acc.update(agg.input.map(|i| row.get(i))).unwrap();
            }
        }
        let mut slow: Vec<Row> = groups
            .into_iter()
            .map(|(key, accs)| {
                let mut values = key;
                values.extend(accs.iter().map(Accumulator::partial_value));
                Row::new(values)
            })
            .collect();
        fast.sort();
        slow.sort();
        assert_eq!(fast, slow);
    }

    #[test]
    fn partial_aggregate_declines_awkward_shapes() {
        let rows = rows_of(&[1, 2]);
        let aggregates = vec![Aggregate::count_star("c")];
        assert!(partial_aggregate(&rows, &[], &aggregates, &[false]).is_none());
        assert!(partial_aggregate(&rows, &[0, 1], &aggregates, &[false]).is_none());
        let mixed = vec![Row::new(vec![Value::str("k"), Value::Int64(1)])];
        assert!(partial_aggregate(&mixed, &[0], &aggregates, &[false]).is_none());
    }
}
