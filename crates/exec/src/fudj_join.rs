//! Distributed execution of the FUDJ join — the physical Fig. 8 plan.
//!
//! Phase by phase:
//!
//! 1. **SUMMARIZE** — each worker folds its partition's keys into a local
//!    summary in parallel; local summaries are gathered to the coordinator
//!    (their serialized size is charged to the network) and merged with
//!    `global_aggregate`. A self-join on a symmetric algorithm summarizes
//!    one side only and reuses the result (§VI-C).
//! 2. **DIVIDE** — the coordinator combines both summaries and the query
//!    parameters into the `PPlan`, then broadcasts it to every worker.
//! 3. **PARTITION** — each worker runs `assign` on each local row and tags
//!    the row with each returned bucket id (the UNNEST of the logical plan).
//!    *Default-match* joins hash-shuffle both sides by bucket — the hash
//!    partitioning the optimizer unlocks when `match` is untouched.
//!    *Theta* joins (interval, band) cannot hash-partition: the left side is
//!    rebalanced and the right side broadcast, the strategy AsterixDB falls
//!    back to and the cause of the interval join's scaling ceiling (§VII-C).
//! 4. **COMBINE** — each worker groups its rows by bucket (hash map, or a
//!    bucket-sorted merge under [`crate::CombineStrategy::SortMerge`]),
//!    matches bucket pairs (map lookup for default match, NLJ over bucket
//!    ids for theta), and runs the strategy's local join (`verify` inside)
//!    plus duplicate avoidance. Duplicate *elimination* instead costs one
//!    more shuffle of the joined output followed by a distinct pass — the
//!    delta Fig. 12a measures. Workers whose inputs exceed
//!    [`FudjJoinNode::memory_budget_rows`] grace-partition to temporary
//!    files first (§III-B spilling).
//!
//! Every phase runs on the cluster's fault-aware substrate: when a seeded
//! [`fudj_core::FaultConfig`] is armed, the worker pool retries injected
//! task failures (panics, transients, lost workers) with simulated
//! backoff and speculatively re-executes stragglers, while the exchanges
//! retransmit dropped partition deliveries and dedup duplicated ones —
//! so a join under chaos produces exactly the multiset of rows a
//! fault-free run produces, with the recovery work visible in
//! [`crate::fault::FaultStats`]. The phase driver itself needs no
//! fault-specific code: recovery lives entirely below the phase
//! boundary, in [`crate::pool::WorkerPool`] and [`crate::exchange`].

use crate::exchange;
use crate::executor::{Cluster, PartitionedData};
use crate::metrics::QueryMetrics;
use crate::plan::FudjJoinNode;
use crate::recovery;
use fudj_core::{BucketId, DedupMode, EngineJoin, PPlanState, Side, SummaryState, UdfPolicy};
use fudj_types::{FudjError, Result, Row, Value};
use std::collections::{HashMap, HashSet};

/// Rows with their tag column stripped, plus a bucket → row-index map.
type GroupedRows = (Vec<Row>, HashMap<BucketId, Vec<usize>>);

/// Rows with their tag column stripped, plus `(bucket, row index)` pairs
/// sorted by bucket (the merge order for [`sort_merge_partition`]).
type SortedRows = (Vec<Row>, Vec<(BucketId, usize)>);

/// Execute one FUDJ join node.
///
/// When the node's join is guarded, this is also the policy seat for
/// [`UdfPolicy::FallbackEquality`]: a [`FudjError::UdfViolation`] from a
/// default-equality-match join degrades the whole node to a plain
/// hash-equality join on the raw keys (re-evaluating the inputs), and the
/// guard's counters are folded into the query metrics either way.
pub fn execute(
    cluster: &Cluster,
    node: &FudjJoinNode,
    metrics: &QueryMetrics,
) -> Result<PartitionedData> {
    let result = execute_flexible(cluster, node, metrics);
    let Some(guard) = node.join.guard() else {
        return result;
    };
    let result = match result {
        Err(FudjError::UdfViolation { .. })
            if guard.policy() == UdfPolicy::FallbackEquality && node.join.uses_default_match() =>
        {
            guard.note_fallback();
            equality_fallback(cluster, node, metrics)
        }
        other => other,
    };
    metrics.record_udf(&guard.stats());
    result
}

/// The degraded path of [`UdfPolicy::FallbackEquality`]: hash-shuffle both
/// sides by raw key value and equality-join locally — no user callbacks at
/// all. Sound only because the planner arms this policy exclusively for
/// joins whose match predicate is declared to be plain key equality.
fn equality_fallback(
    cluster: &Cluster,
    node: &FudjJoinNode,
    metrics: &QueryMetrics,
) -> Result<PartitionedData> {
    metrics.phase("fallback", || -> Result<PartitionedData> {
        let workers = cluster.workers();
        let left_parts = cluster.execute_partitioned(&node.left, metrics)?;
        let right_parts = if node.self_join {
            left_parts.clone()
        } else {
            cluster.execute_partitioned(&node.right, metrics)?
        };
        let lkey = node.left_key;
        let rkey = node.right_key;
        let l = exchange::shuffle_by(left_parts, cluster.pool(), metrics, |row| {
            (exchange::route_hash(row.get(lkey)) as usize) % workers
        })?;
        let r = exchange::shuffle_by(right_parts, cluster.pool(), metrics, |row| {
            (exchange::route_hash(row.get(rkey)) as usize) % workers
        })?;
        let zipped: Vec<(Vec<Row>, Vec<Row>)> = l.into_iter().zip(r).collect();
        cluster.parallel_map(metrics, zipped, |(lrows, rrows)| {
            let mut table: HashMap<Value, Vec<Row>> = HashMap::new();
            for row in lrows {
                table.entry(row.get(lkey).clone()).or_default().push(row);
            }
            let mut out = Vec::new();
            for rrow in rrows {
                if let Some(ls) = table.get(rrow.get(rkey)) {
                    for lrow in ls {
                        out.push(lrow.concat(&rrow));
                    }
                }
            }
            Ok(out)
        })
    })
}

/// Execute one FUDJ join node through the full flexible-join flow.
fn execute_flexible(
    cluster: &Cluster,
    node: &FudjJoinNode,
    metrics: &QueryMetrics,
) -> Result<PartitionedData> {
    let join = node.join.as_ref();
    let workers = cluster.workers();

    // Crash-restart resume: a durably committed `join:combine` boundary
    // means the joined output survives on disk — skip input evaluation and
    // SUMMARIZE / DIVIDE / PARTITION / COMBINE entirely, re-running only
    // the post-boundary work (duplicate elimination and the guard check).
    // A partly covered boundary falls back to the full flow, which is
    // always correct.
    if let Some(mut datasets) = metrics
        .recovery()
        .and_then(|r| r.try_resume("join:combine", &["joined"], workers))
    {
        let joined = datasets.pop().unwrap_or_default();
        return finish_join(cluster, join, joined, metrics);
    }

    // Evaluate inputs (self-join: once).
    let left_parts = cluster.execute_partitioned(&node.left, metrics)?;
    let right_parts = if node.self_join {
        left_parts.clone()
    } else {
        cluster.execute_partitioned(&node.right, metrics)?
    };

    // ---- SUMMARIZE -----------------------------------------------------
    let summarize_once = node.self_join && join.symmetric();
    let (left_summary, right_summary) = metrics.phase("summarize", || -> Result<_> {
        let ls = summarize_side(
            cluster,
            join,
            Side::Left,
            &left_parts,
            node.left_key,
            metrics,
        )?;
        let rs = if summarize_once {
            ls.clone()
        } else {
            summarize_side(
                cluster,
                join,
                Side::Right,
                &right_parts,
                node.right_key,
                metrics,
            )?
        };
        Ok((ls, rs))
    })?;

    // ---- DIVIDE ----------------------------------------------------------
    let pplan = metrics.phase("divide", || -> Result<PPlanState> {
        let plan = join.divide(&left_summary, &right_summary, &node.params)?;
        // Broadcast of the PPlan to every remote worker.
        metrics.record_state_bytes(plan.serialized_len() as u64 * workers.saturating_sub(1) as u64);
        Ok(plan)
    })?;

    // ---- PARTITION -------------------------------------------------------
    let default_match = join.uses_default_match();
    let run_partition =
        |lp: PartitionedData, rp: PartitionedData| -> Result<(PartitionedData, PartitionedData)> {
            let lt = assign_and_tag(
                cluster,
                join,
                Side::Left,
                lp,
                node.left_key,
                &pplan,
                metrics,
            )?;
            let rt = assign_and_tag(
                cluster,
                join,
                Side::Right,
                rp,
                node.right_key,
                &pplan,
                metrics,
            )?;
            if default_match {
                // Hash partitioning by bucket id: matching buckets
                // co-locate. Total over any row shape — an untagged row
                // (impossible after assign_and_tag, but not worth a panic
                // on the query path) routes to worker 0.
                let bucket_col = |row: &Row| match row.values().last() {
                    Some(bucket) => (exchange::route_hash(bucket) as usize) % workers,
                    None => 0,
                };
                let l = exchange::shuffle_by(lt, cluster.pool(), metrics, bucket_col)?;
                let r = exchange::shuffle_by(rt, cluster.pool(), metrics, bucket_col)?;
                Ok((l, r))
            } else {
                // Theta multi-join: no partitioning scheme applies.
                // Rebalance one side, broadcast the other.
                let l = exchange::rebalance(lt, cluster.pool(), metrics)?;
                let r = exchange::broadcast(rt, cluster.pool(), metrics)?;
                Ok((l, r))
            }
        };
    // Full-stage replay after a worker death needs the stage *inputs*;
    // retain them only when deaths can actually strike.
    let deaths_armed = metrics
        .recovery()
        .map(|r| r.deaths_armed())
        .unwrap_or(false);
    let partition_src = deaths_armed.then(|| (left_parts.clone(), right_parts.clone()));
    let (mut left_tagged, mut right_tagged) =
        metrics.phase("partition", || run_partition(left_parts, right_parts))?;
    recovery::stage_boundary(
        metrics,
        "join:partition",
        &mut [("left", &mut left_tagged), ("right", &mut right_tagged)],
        || {
            let (lp, rp) = partition_src.clone().ok_or_else(|| {
                FudjError::Execution(
                    "join:partition replay requested without retained inputs".into(),
                )
            })?;
            let (l, r) = run_partition(lp, rp)?;
            Ok(vec![l, r])
        },
    )?;

    // ---- COMBINE -----------------------------------------------------------
    let dedup_mode = join.dedup_mode();
    let run_combine = |lt: PartitionedData, rt: PartitionedData| -> Result<PartitionedData> {
        let zipped: Vec<(Vec<Row>, Vec<Row>)> = lt.into_iter().zip(rt).collect();
        let ctx = CombineContext {
            join,
            left_key: node.left_key,
            right_key: node.right_key,
            pplan: &pplan,
            default_match,
            dedup_mode,
            combine: node.combine,
            metrics,
        };
        cluster.parallel_map(metrics, zipped, |(lrows, rrows)| {
            // Avoidance dedup re-invokes `assign`; each combine task gets
            // its own guard fan-out window.
            if let Some(g) = join.guard() {
                g.begin_partition();
            }
            // §III-B spilling: a worker whose tagged inputs exceed the
            // memory budget spills. Default-match joins grace-partition
            // through the memory-adaptive hybrid-hash COMBINE; theta
            // joins (matches span bucket-hash partitions, so hash
            // partitioning is unsound) stream both sides to disk and
            // join block-nested within the budget.
            match node.memory_budget_rows {
                Some(budget) if lrows.len() + rrows.len() > budget => {
                    if default_match {
                        crate::spill::hybrid_hash_join(&ctx, lrows, rrows, budget, &node.spill)
                    } else {
                        crate::spill::theta_bnl_join(&ctx, lrows, rrows, budget, &node.spill)
                    }
                }
                _ => join_worker_partition(&ctx, lrows, rrows),
            }
        })
    };
    let combine_src = deaths_armed.then(|| (left_tagged.clone(), right_tagged.clone()));
    let mut joined = metrics.phase("join", || run_combine(left_tagged, right_tagged))?;
    recovery::stage_boundary(
        metrics,
        "join:combine",
        &mut [("joined", &mut joined)],
        || {
            let (lt, rt) = combine_src.clone().ok_or_else(|| {
                FudjError::Execution("join:combine replay requested without retained inputs".into())
            })?;
            Ok(vec![run_combine(lt, rt)?])
        },
    )?;

    finish_join(cluster, join, joined, metrics)
}

/// The post-COMBINE tail of the flexible-join flow: the optional duplicate
/// *elimination* stage (one more shuffle + distinct) and the deferred
/// guard-violation check. Split out so a crash-restart resume can enter
/// here directly with the joined output restored from durable checkpoints.
fn finish_join(
    cluster: &Cluster,
    join: &dyn EngineJoin,
    joined: PartitionedData,
    metrics: &QueryMetrics,
) -> Result<PartitionedData> {
    let result = if join.dedup_mode() == DedupMode::Elimination {
        metrics.phase("dedup", || -> Result<PartitionedData> {
            let shuffled = exchange::shuffle_by_row(joined, cluster.pool(), metrics)?;
            cluster.parallel_map(metrics, shuffled, |rows| {
                let before = rows.len();
                let mut seen: HashSet<Row> = HashSet::with_capacity(rows.len());
                let mut out = Vec::with_capacity(rows.len());
                for row in rows {
                    if seen.insert(row.clone()) {
                        out.push(row);
                    }
                }
                metrics.record_dedup_rejections((before - out.len()) as u64);
                Ok(out)
            })
        })?
    } else {
        joined
    };

    // Surface any violation deferred by a callback with no `Result` channel
    // (a panicking theta `matches`) — nothing gets silently swallowed.
    if let Some(g) = join.guard() {
        g.check()?;
    }
    Ok(result)
}

/// SUMMARIZE one side: parallel local aggregation, gather, global merge.
fn summarize_side(
    cluster: &Cluster,
    join: &dyn EngineJoin,
    side: Side,
    parts: &PartitionedData,
    key_col: usize,
    metrics: &QueryMetrics,
) -> Result<SummaryState> {
    let locals: Vec<SummaryState> =
        cluster.parallel_map(metrics, parts.iter().collect::<Vec<&Vec<Row>>>(), |rows| {
            let mut summary = join.new_summary(side);
            for row in rows {
                join.local_aggregate(side, row.get(key_col), &mut summary)?;
            }
            Ok(summary)
        })?;
    // Gathering local summaries to the coordinator costs their bytes
    // (all but the coordinator's own).
    let state_bytes: u64 = locals
        .iter()
        .skip(1)
        .map(|s| s.serialized_len() as u64)
        .sum();
    metrics.record_state_bytes(state_bytes);

    let mut iter = locals.into_iter();
    let first = iter
        .next()
        .ok_or_else(|| FudjError::Execution("no partitions to summarize".into()))?;
    iter.try_fold(first, |acc, s| join.global_aggregate(side, acc, s))
}

/// ASSIGN/UNNEST one side: each row becomes one tagged row per bucket id,
/// with the bucket appended as a trailing `Int64` column (bit-preserving).
fn assign_and_tag(
    cluster: &Cluster,
    join: &dyn EngineJoin,
    side: Side,
    parts: PartitionedData,
    key_col: usize,
    pplan: &PPlanState,
    metrics: &QueryMetrics,
) -> Result<PartitionedData> {
    let mode = metrics.exec_mode();
    cluster.parallel_map(metrics, parts, |rows| {
        // One task = one partition: open a fresh fan-out window for the
        // guard's per-partition assign budget.
        if let Some(g) = join.guard() {
            g.begin_partition();
        }
        let mut out = Vec::with_capacity(rows.len());
        match mode {
            crate::mode::ExecMode::Columnar => {
                // Stride path: slice out the key column and cross the UDF
                // boundary once per partition via `assign_slice` — the
                // batch-level amortization of the per-call overhead. The
                // callback sees sorted, deduplicated buckets per key, so
                // the tagged output is identical to the row path's.
                let keys: Vec<&Value> = rows.iter().map(|r| r.get(key_col)).collect();
                join.assign_slice(side, &keys, pplan, &mut |i, buckets| {
                    for &b in buckets {
                        out.push(rows[i].with_appended(Value::Int64(b as i64)));
                    }
                })?;
            }
            crate::mode::ExecMode::Row => {
                let mut buckets: Vec<BucketId> = Vec::new();
                for row in rows {
                    buckets.clear();
                    join.assign(side, row.get(key_col), pplan, &mut buckets)?;
                    buckets.sort_unstable();
                    buckets.dedup();
                    for &b in &buckets {
                        out.push(row.with_appended(Value::Int64(b as i64)));
                    }
                }
            }
        }
        Ok(out)
    })
}

/// Bucket id from a tagged row's trailing column. A malformed row is an
/// execution error, not a panic — this sits on the query path and a
/// misbehaving UDF must not take the process down.
#[inline]
pub(crate) fn bucket_of(row: &Row) -> Result<BucketId> {
    match row.values().last() {
        Some(Value::Int64(b)) => Ok(*b as BucketId),
        other => Err(FudjError::Execution(format!(
            "tagged row must end with an Int64 bucket, got {other:?}"
        ))),
    }
}

/// Group tagged rows by bucket; strip the tag.
fn group_by_bucket(rows: Vec<Row>) -> Result<GroupedRows> {
    let mut stripped = Vec::with_capacity(rows.len());
    let mut groups: HashMap<BucketId, Vec<usize>> = HashMap::new();
    for row in rows {
        let b = bucket_of(&row)?;
        groups.entry(b).or_default().push(stripped.len());
        stripped.push(row.prefix(row.len() - 1));
    }
    Ok((stripped, groups))
}

/// Everything one worker's COMBINE needs, bundled to keep signatures sane.
pub(crate) struct CombineContext<'a> {
    pub(crate) join: &'a dyn EngineJoin,
    pub(crate) left_key: usize,
    pub(crate) right_key: usize,
    pub(crate) pplan: &'a PPlanState,
    pub(crate) default_match: bool,
    pub(crate) dedup_mode: DedupMode,
    pub(crate) combine: crate::plan::CombineStrategy,
    pub(crate) metrics: &'a QueryMetrics,
}

/// COMBINE on one worker: match local bucket pairs, run local joins, dedup.
pub(crate) fn join_worker_partition(
    ctx: &CombineContext<'_>,
    lrows: Vec<Row>,
    rrows: Vec<Row>,
) -> Result<Vec<Row>> {
    if ctx.combine == crate::plan::CombineStrategy::SortMerge && ctx.default_match {
        return sort_merge_partition(ctx, lrows, rrows);
    }
    let (lrows, lgroups) = group_by_bucket(lrows)?;
    let (rrows, rgroups) = group_by_bucket(rrows)?;

    // Matched bucket pairs, deterministic order.
    let mut matched: Vec<(BucketId, BucketId)> = if ctx.default_match {
        lgroups
            .keys()
            .filter(|b| rgroups.contains_key(b))
            .map(|&b| (b, b))
            .collect()
    } else {
        let mut v = Vec::new();
        for &b1 in lgroups.keys() {
            for &b2 in rgroups.keys() {
                if ctx.join.matches(b1, b2) {
                    v.push((b1, b2));
                }
            }
        }
        v
    };
    matched.sort_unstable();

    let mut out = Vec::new();
    for (b1, b2) in matched {
        let lidx = &lgroups[&b1];
        let ridx = &rgroups[&b2];
        join_bucket_pair(ctx, b1, &lrows, lidx, b2, &rrows, ridx, &mut out)?;
    }
    Ok(out)
}

/// Sort-merge COMBINE (default-match only): sort both sides by bucket id and
/// merge equal runs — no hash table, sequential access (§VIII future work).
fn sort_merge_partition(
    ctx: &CombineContext<'_>,
    lrows: Vec<Row>,
    rrows: Vec<Row>,
) -> Result<Vec<Row>> {
    let strip = |rows: Vec<Row>| -> Result<SortedRows> {
        let mut stripped = Vec::with_capacity(rows.len());
        let mut tagged = Vec::with_capacity(rows.len());
        for row in rows {
            let b = bucket_of(&row)?;
            tagged.push((b, stripped.len()));
            stripped.push(row.prefix(row.len() - 1));
        }
        tagged.sort_unstable();
        Ok((stripped, tagged))
    };
    let (lrows, lsorted) = strip(lrows)?;
    let (rrows, rsorted) = strip(rrows)?;

    let mut out = Vec::new();
    let mut l = 0usize;
    let mut r = 0usize;
    while l < lsorted.len() && r < rsorted.len() {
        let lb = lsorted[l].0;
        let rb = rsorted[r].0;
        match lb.cmp(&rb) {
            std::cmp::Ordering::Less => l += 1,
            std::cmp::Ordering::Greater => r += 1,
            std::cmp::Ordering::Equal => {
                let le = lsorted[l..].iter().take_while(|(b, _)| *b == lb).count() + l;
                let re = rsorted[r..].iter().take_while(|(b, _)| *b == rb).count() + r;
                let lidx: Vec<usize> = lsorted[l..le].iter().map(|(_, i)| *i).collect();
                let ridx: Vec<usize> = rsorted[r..re].iter().map(|(_, j)| *j).collect();
                join_bucket_pair(ctx, lb, &lrows, &lidx, rb, &rrows, &ridx, &mut out)?;
                l = le;
                r = re;
            }
        }
    }
    Ok(out)
}

/// Local join of one matched bucket pair: run the strategy's local join
/// (`verify` inside), then duplicate handling; append joined rows to `out`.
#[allow(clippy::too_many_arguments)]
fn join_bucket_pair(
    ctx: &CombineContext<'_>,
    b1: BucketId,
    lrows: &[Row],
    lidx: &[usize],
    b2: BucketId,
    rrows: &[Row],
    ridx: &[usize],
    out: &mut Vec<Row>,
) -> Result<()> {
    let lkeys: Vec<Value> = lidx
        .iter()
        .map(|&i| lrows[i].get(ctx.left_key).clone())
        .collect();
    let rkeys: Vec<Value> = ridx
        .iter()
        .map(|&j| rrows[j].get(ctx.right_key).clone())
        .collect();
    ctx.metrics
        .record_verify_calls((lkeys.len() * rkeys.len()) as u64);

    let mut verified: Vec<(usize, usize)> = Vec::new();
    ctx.join
        .local_join_pairs(b1, &lkeys, b2, &rkeys, ctx.pplan, &mut |i, j| {
            verified.push((i, j));
        })?;

    // Framework duplicate avoidance, engine-side: each key's bucket list is
    // computed once per bucket group, not once per verified pair — for text
    // joins, per-pair re-assignment means re-tokenizing both records and is
    // the difference between avoidance beating or losing to elimination.
    let mut lassign: Vec<Option<Vec<BucketId>>> = vec![None; lkeys.len()];
    let mut rassign: Vec<Option<Vec<BucketId>>> = vec![None; rkeys.len()];
    let cached_assign = |side: Side,
                         keys: &[Value],
                         cache: &mut Vec<Option<Vec<BucketId>>>,
                         k: usize|
     -> Result<Vec<BucketId>> {
        if let Some(cached) = &cache[k] {
            return Ok(cached.clone());
        }
        let mut buckets = Vec::new();
        ctx.join.assign(side, &keys[k], ctx.pplan, &mut buckets)?;
        buckets.sort_unstable();
        buckets.dedup();
        cache[k] = Some(buckets.clone());
        Ok(buckets)
    };

    let mut rejections = 0u64;
    for (i, j) in verified {
        let keep = match ctx.dedup_mode {
            DedupMode::None | DedupMode::Elimination => true,
            DedupMode::Custom => ctx.join.dedup(b1, &lkeys[i], b2, &rkeys[j], ctx.pplan)?,
            DedupMode::Avoidance => {
                // Accept only from the first matching bucket pair — the
                // same canonical order as `fudj_core::avoidance_accepts`.
                let lb = cached_assign(Side::Left, &lkeys, &mut lassign, i)?;
                let rb = cached_assign(Side::Right, &rkeys, &mut rassign, j)?;
                let mut first = None;
                'outer: for &x in &lb {
                    for &y in &rb {
                        if ctx.join.matches(x, y) {
                            first = Some((x, y));
                            break 'outer;
                        }
                    }
                }
                first == Some((b1, b2))
            }
        };
        if keep {
            out.push(lrows[lidx[i]].concat(&rrows[ridx[j]]));
        } else {
            rejections += 1;
        }
    }
    ctx.metrics.record_dedup_rejections(rejections);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PhysicalPlan;
    use fudj_core::{reference_execute, FudjEngineJoin, ProxyJoin};
    use fudj_geo::{Point, Polygon, Rect};
    use fudj_joins::builtin::{AdvancedSpatialJoin, BuiltinIntervalJoin, BuiltinSpatialJoin};
    use fudj_joins::{IntervalFudj, SpatialFudj, TextSimilarityFudj};
    use fudj_storage::DatasetBuilder;
    use fudj_temporal::Interval;
    use fudj_types::{DataType, Field, Schema};
    use rand::{rngs::SmallRng, Rng, SeedableRng};
    use std::sync::Arc;

    fn geo_dataset(name: &str, rows: Vec<Value>, parts: usize) -> Arc<fudj_storage::Dataset> {
        let dt = rows
            .first()
            .map(Value::data_type)
            .unwrap_or(DataType::Point);
        let schema = Schema::shared(vec![
            Field::new("id", DataType::Int64),
            Field::new("geom", dt),
        ]);
        let d = DatasetBuilder::new(name, schema)
            .partitions(parts)
            .build()
            .unwrap();
        for (i, g) in rows.into_iter().enumerate() {
            d.insert(Row::new(vec![Value::Int64(i as i64), g])).unwrap();
        }
        Arc::new(d)
    }

    fn spatial_values(seed: u64, polys: usize, pts: usize) -> (Vec<Value>, Vec<Value>) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let parks: Vec<Value> = (0..polys)
            .map(|_| {
                let x = rng.gen_range(0.0..90.0);
                let y = rng.gen_range(0.0..90.0);
                Value::polygon(Polygon::from_rect(&Rect::new(
                    x,
                    y,
                    x + rng.gen_range(0.5..10.0),
                    y + rng.gen_range(0.5..10.0),
                )))
            })
            .collect();
        let fires: Vec<Value> = (0..pts)
            .map(|_| {
                Value::Point(Point::new(
                    rng.gen_range(0.0..100.0),
                    rng.gen_range(0.0..100.0),
                ))
            })
            .collect();
        (parks, fires)
    }

    /// Extract (left_id, right_id) pairs from a joined batch.
    fn id_pairs(batch: &fudj_types::Batch) -> Vec<(i64, i64)> {
        let mut v: Vec<(i64, i64)> = batch
            .rows()
            .iter()
            .map(|r| (r.get(0).as_i64().unwrap(), r.get(2).as_i64().unwrap()))
            .collect();
        v.sort_unstable();
        v
    }

    fn fudj_plan(
        left: Arc<fudj_storage::Dataset>,
        right: Arc<fudj_storage::Dataset>,
        join: Arc<dyn EngineJoin>,
        params: Vec<Value>,
    ) -> PhysicalPlan {
        PhysicalPlan::FudjJoin(FudjJoinNode::new(
            PhysicalPlan::Scan { dataset: left },
            PhysicalPlan::Scan { dataset: right },
            join,
            1,
            1,
            params,
        ))
    }

    /// The central correctness claim: for every join strategy and any worker
    /// count, the distributed execution equals the sequential reference.
    #[test]
    fn distributed_spatial_equals_reference_all_worker_counts() {
        let (parks, fires) = spatial_values(42, 30, 60);
        let reference = {
            let ej = FudjEngineJoin::new(Arc::new(ProxyJoin::new(SpatialFudj::new())));
            reference_execute(&ej, &parks, &fires, &[Value::Int64(8)]).unwrap()
        };
        assert!(!reference.is_empty());
        let expected: Vec<(i64, i64)> = reference
            .iter()
            .map(|&(i, j)| (i as i64, j as i64))
            .collect();

        for workers in [1, 2, 4, 7] {
            let cluster = Cluster::new(workers);
            let plan = fudj_plan(
                geo_dataset("parks", parks.clone(), 4),
                geo_dataset("fires", fires.clone(), 4),
                Arc::new(FudjEngineJoin::new(Arc::new(ProxyJoin::new(
                    SpatialFudj::new(),
                )))),
                vec![Value::Int64(8)],
            );
            let (batch, _) = cluster.execute(&plan).unwrap();
            assert_eq!(id_pairs(&batch), expected, "workers={workers}");
        }
    }

    #[test]
    fn distributed_builtin_and_advanced_spatial_agree() {
        let (parks, fires) = spatial_values(11, 25, 50);
        let cluster = Cluster::new(3);
        let mk = |join: Arc<dyn EngineJoin>| {
            fudj_plan(
                geo_dataset("parks", parks.clone(), 3),
                geo_dataset("fires", fires.clone(), 3),
                join,
                vec![Value::Int64(6)],
            )
        };
        let (b1, _) = cluster
            .execute(&mk(Arc::new(BuiltinSpatialJoin::new())))
            .unwrap();
        let (b2, _) = cluster
            .execute(&mk(Arc::new(AdvancedSpatialJoin::new())))
            .unwrap();
        let (b3, _) = cluster
            .execute(&mk(Arc::new(FudjEngineJoin::new(Arc::new(
                ProxyJoin::new(SpatialFudj::new()),
            )))))
            .unwrap();
        assert_eq!(id_pairs(&b1), id_pairs(&b2));
        assert_eq!(id_pairs(&b1), id_pairs(&b3));
        assert!(!b1.is_empty());
    }

    #[test]
    fn theta_interval_join_broadcasts_and_matches_reference() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut side = |n: usize| -> Vec<Value> {
            (0..n)
                .map(|_| {
                    let s = rng.gen_range(0i64..20_000);
                    Value::Interval(Interval::new(s, s + rng.gen_range(0i64..1500)))
                })
                .collect()
        };
        let l = side(60);
        let r = side(40);
        let reference = {
            let ej = FudjEngineJoin::new(Arc::new(ProxyJoin::new(IntervalFudj::new())));
            reference_execute(&ej, &l, &r, &[Value::Int64(32)]).unwrap()
        };
        let expected: Vec<(i64, i64)> = reference
            .iter()
            .map(|&(i, j)| (i as i64, j as i64))
            .collect();

        let cluster = Cluster::new(4);
        let plan = fudj_plan(
            geo_dataset("rides_a", l, 4),
            geo_dataset("rides_b", r, 4),
            Arc::new(FudjEngineJoin::new(Arc::new(ProxyJoin::new(
                IntervalFudj::new(),
            )))),
            vec![Value::Int64(32)],
        );
        let (batch, metrics) = cluster.execute(&plan).unwrap();
        assert_eq!(id_pairs(&batch), expected);
        assert!(
            metrics.snapshot().rows_broadcast > 0,
            "theta join must broadcast one side"
        );
        // Builtin agrees too.
        let plan2 = fudj_plan(
            geo_dataset(
                "rides_a2",
                {
                    let mut rng = SmallRng::seed_from_u64(9);
                    (0..60)
                        .map(|_| {
                            let s = rng.gen_range(0i64..20_000);
                            Value::Interval(Interval::new(s, s + rng.gen_range(0i64..1500)))
                        })
                        .collect()
                },
                4,
            ),
            geo_dataset(
                "rides_b2",
                {
                    let mut rng = SmallRng::seed_from_u64(9);
                    let _: Vec<Value> = (0..60)
                        .map(|_| {
                            let s = rng.gen_range(0i64..20_000);
                            Value::Interval(Interval::new(s, s + rng.gen_range(0i64..1500)))
                        })
                        .collect();
                    (0..40)
                        .map(|_| {
                            let s = rng.gen_range(0i64..20_000);
                            Value::Interval(Interval::new(s, s + rng.gen_range(0i64..1500)))
                        })
                        .collect()
                },
                4,
            ),
            Arc::new(BuiltinIntervalJoin::new()),
            vec![Value::Int64(32)],
        );
        let (batch2, _) = cluster.execute(&plan2).unwrap();
        assert_eq!(id_pairs(&batch2), expected);
    }

    #[test]
    fn text_similarity_distributed_matches_reference() {
        let vocab = ["river", "trail", "lake", "peak", "camp", "view", "rock"];
        let mut rng = SmallRng::seed_from_u64(2);
        let mut side = |n: usize| -> Vec<Value> {
            (0..n)
                .map(|_| {
                    let len = rng.gen_range(2..6);
                    Value::str(
                        (0..len)
                            .map(|_| vocab[rng.gen_range(0..vocab.len())])
                            .collect::<Vec<_>>()
                            .join(" "),
                    )
                })
                .collect()
        };
        let l = side(40);
        let r = side(30);
        let reference = {
            let ej = FudjEngineJoin::new(Arc::new(ProxyJoin::new(TextSimilarityFudj::new())));
            reference_execute(&ej, &l, &r, &[Value::Float64(0.6)]).unwrap()
        };
        let expected: Vec<(i64, i64)> = reference
            .iter()
            .map(|&(i, j)| (i as i64, j as i64))
            .collect();

        let cluster = Cluster::new(3);
        let plan = fudj_plan(
            geo_dataset("rev_a", l, 3),
            geo_dataset("rev_b", r, 3),
            Arc::new(FudjEngineJoin::new(Arc::new(ProxyJoin::new(
                TextSimilarityFudj::new(),
            )))),
            vec![Value::Float64(0.6)],
        );
        let (batch, _) = cluster.execute(&plan).unwrap();
        assert_eq!(id_pairs(&batch), expected);
    }

    #[test]
    fn elimination_mode_runs_extra_stage_same_result() {
        use fudj_joins::{SpatialDedup, TextDedup};
        let _ = TextDedup::Avoidance; // silence unused import paths in some cfgs
        let (parks, fires) = spatial_values(5, 20, 40);
        let cluster = Cluster::new(3);
        let avoid = fudj_plan(
            geo_dataset("p1", parks.clone(), 3),
            geo_dataset("f1", fires.clone(), 3),
            Arc::new(FudjEngineJoin::new(Arc::new(ProxyJoin::new(
                SpatialFudj::new(),
            )))),
            vec![Value::Int64(10)],
        );
        let elim = fudj_plan(
            geo_dataset("p2", parks, 3),
            geo_dataset("f2", fires, 3),
            Arc::new(FudjEngineJoin::new(Arc::new(ProxyJoin::new(
                SpatialFudj::with_dedup(SpatialDedup::Elimination),
            )))),
            vec![Value::Int64(10)],
        );
        let (b1, m1) = cluster.execute(&avoid).unwrap();
        let (b2, m2) = cluster.execute(&elim).unwrap();
        assert_eq!(id_pairs(&b1), id_pairs(&b2));
        // Elimination pays an extra dedup stage with its own shuffle.
        assert!(m2.snapshot().phase_total("dedup") > std::time::Duration::ZERO);
        assert_eq!(
            m1.snapshot().phase_total("dedup"),
            std::time::Duration::ZERO
        );
    }

    #[test]
    fn self_join_summarizes_once() {
        let (parks, _) = spatial_values(1, 25, 0);
        let ds = geo_dataset("parks_self", parks, 3);
        let cluster = Cluster::new(3);
        let mut node = FudjJoinNode::new(
            PhysicalPlan::Scan {
                dataset: ds.clone(),
            },
            PhysicalPlan::Scan {
                dataset: ds.clone(),
            },
            Arc::new(FudjEngineJoin::new(Arc::new(ProxyJoin::new(
                SpatialFudj::new(),
            )))),
            1,
            1,
            vec![Value::Int64(8)],
        );
        let (plain, _) = cluster.execute(&PhysicalPlan::FudjJoin(node)).unwrap();

        node = FudjJoinNode::new(
            PhysicalPlan::Scan {
                dataset: ds.clone(),
            },
            PhysicalPlan::Scan { dataset: ds },
            Arc::new(FudjEngineJoin::new(Arc::new(ProxyJoin::new(
                SpatialFudj::new(),
            )))),
            1,
            1,
            vec![Value::Int64(8)],
        );
        node.self_join = true;
        let (optimized, m_opt) = cluster.execute(&PhysicalPlan::FudjJoin(node)).unwrap();
        assert_eq!(id_pairs(&plain), id_pairs(&optimized));
        // A self-join includes every (i, i) pair.
        assert!(id_pairs(&optimized).iter().filter(|(a, b)| a == b).count() >= 25);
        assert!(m_opt.snapshot().phase_total("summarize") > std::time::Duration::ZERO);
    }

    #[test]
    fn sort_merge_combine_equals_hash_combine() {
        let (parks, fires) = spatial_values(77, 35, 70);
        let cluster = Cluster::new(3);
        let mk = |combine: crate::plan::CombineStrategy| {
            let mut node = FudjJoinNode::new(
                PhysicalPlan::Scan {
                    dataset: geo_dataset(&format!("p_{combine:?}"), parks.clone(), 3),
                },
                PhysicalPlan::Scan {
                    dataset: geo_dataset(&format!("f_{combine:?}"), fires.clone(), 3),
                },
                Arc::new(FudjEngineJoin::new(Arc::new(ProxyJoin::new(
                    SpatialFudj::new(),
                )))),
                1,
                1,
                vec![Value::Int64(10)],
            );
            node.combine = combine;
            PhysicalPlan::FudjJoin(node)
        };
        let (hash, _) = cluster
            .execute(&mk(crate::plan::CombineStrategy::HashGroup))
            .unwrap();
        let (merge, _) = cluster
            .execute(&mk(crate::plan::CombineStrategy::SortMerge))
            .unwrap();
        assert_eq!(id_pairs(&hash), id_pairs(&merge));
        assert!(!hash.is_empty());
    }

    #[test]
    fn spilling_join_equals_in_memory_join() {
        let (parks, fires) = spatial_values(55, 40, 80);
        let cluster = Cluster::new(2);
        let mk = |budget: Option<usize>| {
            let mut node = FudjJoinNode::new(
                PhysicalPlan::Scan {
                    dataset: geo_dataset(&format!("ps_{budget:?}"), parks.clone(), 2),
                },
                PhysicalPlan::Scan {
                    dataset: geo_dataset(&format!("fs_{budget:?}"), fires.clone(), 2),
                },
                Arc::new(FudjEngineJoin::new(Arc::new(ProxyJoin::new(
                    SpatialFudj::new(),
                )))),
                1,
                1,
                vec![Value::Int64(8)],
            );
            node.memory_budget_rows = budget;
            PhysicalPlan::FudjJoin(node)
        };
        let (in_memory, m1) = cluster.execute(&mk(None)).unwrap();
        // A budget far below the input size forces grace partitioning.
        let (spilled, m2) = cluster.execute(&mk(Some(10))).unwrap();
        assert_eq!(id_pairs(&in_memory), id_pairs(&spilled));
        assert!(!in_memory.is_empty());
        assert_eq!(m1.snapshot().spilled_rows, 0);
        assert!(m2.snapshot().spilled_rows > 0, "budget 10 must spill");
        assert!(m2.snapshot().spilled_bytes > 0);
    }

    #[test]
    fn spill_working_set_stays_within_budget_plus_one_row() {
        // Regression: the old grace path buffered every encoded row of both
        // sides in memory before writing a single byte. The hybrid-hash
        // COMBINE streams through bounded write buffers, so the peak
        // resident working set of a spilling task must never exceed the
        // budget by more than the row that triggered the eviction.
        let (parks, fires) = spatial_values(77, 60, 160);
        let budget = 24usize;
        let cluster = Cluster::new(2);
        let mk = |budget: Option<usize>| {
            let mut node = FudjJoinNode::new(
                PhysicalPlan::Scan {
                    dataset: geo_dataset(&format!("wp_{budget:?}"), parks.clone(), 2),
                },
                PhysicalPlan::Scan {
                    dataset: geo_dataset(&format!("wf_{budget:?}"), fires.clone(), 2),
                },
                Arc::new(FudjEngineJoin::new(Arc::new(ProxyJoin::new(
                    SpatialFudj::new(),
                )))),
                1,
                1,
                vec![Value::Int64(8)],
            );
            node.memory_budget_rows = budget;
            PhysicalPlan::FudjJoin(node)
        };
        let (in_memory, _) = cluster.execute(&mk(None)).unwrap();
        let (spilled, metrics) = cluster.execute(&mk(Some(budget))).unwrap();
        assert_eq!(id_pairs(&in_memory), id_pairs(&spilled));
        let s = metrics.snapshot();
        assert!(s.spilled_rows > 0, "workload must actually spill: {s:?}");
        assert!(s.spill_peak_resident_rows > 0);
        assert!(
            s.spill_peak_resident_rows <= budget as u64 + 1,
            "peak resident {} rows exceeds budget {budget} + 1",
            s.spill_peak_resident_rows,
        );
    }

    #[test]
    fn tiny_budget_recurses_instead_of_overflowing_fanout() {
        // Regression: the old path clamped its fan-out and then joined
        // whatever landed in each sub-partition in memory, silently
        // blowing the budget on a tiny budget with a large input. The
        // hybrid-hash COMBINE must recursively repartition instead (and
        // still produce exactly the in-memory result).
        let (parks, fires) = spatial_values(91, 80, 240);
        let cluster = Cluster::new(1);
        let mk = |budget: Option<usize>, fanout: usize| {
            let mut node = FudjJoinNode::new(
                PhysicalPlan::Scan {
                    dataset: geo_dataset(&format!("rp_{budget:?}"), parks.clone(), 1),
                },
                PhysicalPlan::Scan {
                    dataset: geo_dataset(&format!("rf_{budget:?}"), fires.clone(), 1),
                },
                Arc::new(FudjEngineJoin::new(Arc::new(ProxyJoin::new(
                    SpatialFudj::new(),
                )))),
                1,
                1,
                vec![Value::Int64(8)],
            );
            node.memory_budget_rows = budget;
            node.spill.fanout = fanout;
            PhysicalPlan::FudjJoin(node)
        };
        let (in_memory, _) = cluster.execute(&mk(None, 16)).unwrap();
        // Fan-out 2 with budget 6: the first pass cannot come close to
        // budget-sized sub-partitions, so correctness depends on recursion.
        let (spilled, metrics) = cluster.execute(&mk(Some(6), 2)).unwrap();
        assert_eq!(id_pairs(&in_memory), id_pairs(&spilled));
        assert!(!in_memory.is_empty());
        let s = metrics.snapshot();
        assert!(s.spilled_rows > 0);
        assert!(
            s.spill_recursion_depth >= 1,
            "tiny budget + fanout 2 must recurse: {s:?}"
        );
        assert!(s.spill_passes >= 3, "recursion implies extra passes: {s:?}");
        assert!(
            s.spill_peak_resident_rows <= 6 + 1,
            "recursion must not blow the budget: {s:?}"
        );
    }

    #[test]
    fn theta_join_over_budget_spills_block_nested_and_matches_in_memory() {
        // Theta joins cannot grace-partition (matches span bucket-hash
        // sub-partitions), so an over-budget theta worker streams both
        // sides to disk and joins block-nested — same answer, bounded
        // memory, spill counters visible.
        let mut rng = SmallRng::seed_from_u64(31);
        let ivs: Vec<Value> = (0..50)
            .map(|_| {
                let s = rng.gen_range(0i64..5_000);
                Value::Interval(Interval::new(s, s + rng.gen_range(0i64..800)))
            })
            .collect();
        let cluster = Cluster::new(2);
        let mk = |budget: Option<usize>| {
            let mut node = FudjJoinNode::new(
                PhysicalPlan::Scan {
                    dataset: geo_dataset(&format!("iv_a_{budget:?}"), ivs.clone(), 2),
                },
                PhysicalPlan::Scan {
                    dataset: geo_dataset(&format!("iv_b_{budget:?}"), ivs.clone(), 2),
                },
                Arc::new(FudjEngineJoin::new(Arc::new(ProxyJoin::new(
                    IntervalFudj::new(),
                )))),
                1,
                1,
                vec![Value::Int64(32)],
            );
            node.memory_budget_rows = budget;
            PhysicalPlan::FudjJoin(node)
        };
        let (in_memory, m1) = cluster.execute(&mk(None)).unwrap();
        let (spilled, m2) = cluster.execute(&mk(Some(5))).unwrap();
        assert!(!in_memory.is_empty());
        assert_eq!(id_pairs(&in_memory), id_pairs(&spilled));
        assert_eq!(m1.snapshot().spilled_rows, 0);
        let s = m2.snapshot();
        assert!(s.spilled_rows > 0, "budget 5 must spill: {s:?}");
        assert!(
            s.spill_bnl_fallbacks > 0,
            "theta spill is block-nested: {s:?}"
        );
        assert!(
            s.spill_peak_resident_rows <= 5 + 1,
            "block pairs must respect the budget: {s:?}"
        );
    }

    #[test]
    fn default_match_join_shuffles_not_broadcasts() {
        let (parks, fires) = spatial_values(3, 20, 30);
        let cluster = Cluster::new(4);
        let plan = fudj_plan(
            geo_dataset("p", parks, 4),
            geo_dataset("f", fires, 4),
            Arc::new(FudjEngineJoin::new(Arc::new(ProxyJoin::new(
                SpatialFudj::new(),
            )))),
            vec![Value::Int64(12)],
        );
        let (_, metrics) = cluster.execute(&plan).unwrap();
        let s = metrics.snapshot();
        assert!(s.rows_shuffled > 0, "hash partitioning shuffles rows");
        assert_eq!(s.rows_broadcast, 0, "single-join never broadcasts rows");
        assert!(s.state_bytes > 0, "summaries and pplan cross the wire");
    }
}
