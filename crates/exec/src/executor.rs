//! The cluster executor.

use crate::aggregate::Accumulator;
use crate::columnar;
use crate::exchange;
use crate::metrics::QueryMetrics;
use crate::mode::ExecMode;
use crate::plan::{Aggregate, PhysicalPlan, SortKey};
use crate::pool::WorkerPool;
use crate::recovery::{self, ClusterRecovery, Membership, WorkerInfo};
use fudj_storage::{CheckpointPolicy, CheckpointStore};
use fudj_types::{Batch, DataType, FudjError, Result, Row, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// Rows, one vector per worker — the unit of data flow between operators.
pub type PartitionedData = Vec<Vec<Row>>;

/// A simulated shared-nothing cluster: `workers` nodes, each a persistent
/// [`WorkerPool`] thread spawned once here and reused by every phase of
/// every query, optionally connected by a
/// [`crate::metrics::NetworkModel`] that charges wall-clock time for
/// exchanged bytes. Cloning a `Cluster` shares the pool — clones are the
/// same simulated cluster, not a new one.
#[derive(Clone, Debug)]
pub struct Cluster {
    workers: usize,
    network: Option<crate::metrics::NetworkModel>,
    faults: Option<fudj_core::FaultConfig>,
    pool: Arc<WorkerPool>,
    recovery: Arc<ClusterRecovery>,
}

impl Cluster {
    /// Cluster with `workers` nodes and a free (zero-cost) network.
    ///
    /// # Panics
    /// Panics when `workers` is zero.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "cluster needs at least one worker");
        Cluster {
            workers,
            network: None,
            faults: None,
            pool: Arc::new(WorkerPool::new(workers)),
            recovery: Arc::new(ClusterRecovery::new(workers)),
        }
    }

    /// Cluster whose exchanges pay for their bytes under `network`.
    pub fn with_network(workers: usize, network: crate::metrics::NetworkModel) -> Self {
        let mut c = Cluster::new(workers);
        c.network = Some(network);
        c
    }

    /// Cluster whose queries run under the seeded fault plan `config`:
    /// every query draws a fresh deterministic schedule of injected
    /// failures (and recoveries) from the config's seed.
    pub fn with_faults(workers: usize, config: fudj_core::FaultConfig) -> Self {
        let mut c = Cluster::new(workers);
        c.faults = Some(config);
        c
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The network model, if any.
    pub fn network(&self) -> Option<crate::metrics::NetworkModel> {
        self.network
    }

    /// Swap the network model without recreating the cluster — the worker
    /// pool (and thus worker thread identity) is preserved.
    pub fn set_network(&mut self, network: Option<crate::metrics::NetworkModel>) {
        self.network = network;
    }

    /// The armed fault plan, if any.
    pub fn faults(&self) -> Option<fudj_core::FaultConfig> {
        self.faults
    }

    /// Arm (or disarm, with `None`) a seeded fault plan. Like
    /// [`Cluster::set_network`], the worker pool is preserved.
    pub fn set_faults(&mut self, faults: Option<fudj_core::FaultConfig>) {
        self.faults = faults;
    }

    /// The persistent worker pool backing this cluster.
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// The shared stage-checkpoint store (clones share one store).
    pub fn checkpoints(&self) -> &Arc<CheckpointStore> {
        self.recovery.store()
    }

    /// The shared worker membership (clones share one membership).
    pub fn membership(&self) -> &Arc<Membership> {
        self.recovery.membership()
    }

    /// Choose which stage outputs get checkpointed. `Off` (the default)
    /// writes nothing; `All` snapshots every checkpointable boundary;
    /// `Stages` restricts to the named stage base names.
    pub fn set_checkpoint_policy(&self, policy: CheckpointPolicy) {
        self.recovery.set_policy(policy);
    }

    /// The current checkpoint policy.
    pub fn checkpoint_policy(&self) -> CheckpointPolicy {
        self.recovery.policy()
    }

    /// Bound the checkpoint store (`None` = unlimited). Shrinking evicts
    /// oldest-first immediately.
    pub fn set_checkpoint_budget(&self, budget_bytes: Option<u64>) {
        self.recovery.store().set_budget(budget_bytes);
    }

    /// Set the per-worker failure-count quarantine threshold (0 disables
    /// the circuit breaker).
    pub fn set_quarantine_threshold(&self, threshold: u64) {
        self.membership().set_quarantine_threshold(threshold);
    }

    /// Administratively remove worker `w` from new task grants. Its
    /// partitions reroute to survivors (rendezvous-hashed, so unaffected
    /// partitions don't move); the pool thread stays parked in its slot.
    pub fn decommission_worker(&self, w: usize) -> Result<()> {
        self.membership().decommission(w)
    }

    /// Bring a replacement worker into the first inactive slot (dead,
    /// quarantined, or decommissioned) and return its id. The pool's
    /// provisioned size is the elasticity ceiling.
    pub fn add_worker(&self) -> Result<usize> {
        self.membership().add()
    }

    /// Per-slot membership state + failure counters, for `\workers`.
    pub fn workers_status(&self) -> Vec<WorkerInfo> {
        self.membership().snapshot()
    }

    /// Execute a plan and gather the result on the coordinator. The
    /// evaluation strategy comes from [`ExecMode::from_env`] (columnar
    /// unless `FUDJ_EXEC_MODE=row`).
    pub fn execute(&self, plan: &PhysicalPlan) -> Result<(Batch, QueryMetrics)> {
        self.execute_with(plan, None, None)
    }

    /// Execute a plan under an explicit evaluation strategy. `None` means
    /// the environment default — what `SET exec_mode` leaves in place when
    /// the session never touched the knob.
    pub fn execute_mode(
        &self,
        plan: &PhysicalPlan,
        mode: Option<ExecMode>,
    ) -> Result<(Batch, QueryMetrics)> {
        self.execute_with_mode(plan, None, None, mode.unwrap_or_else(ExecMode::from_env))
    }

    /// Execute a plan under scheduler control: `control` carries the
    /// query's cancel token and simulated-clock deadline, `gate` is the
    /// scheduler's dispatch gate (consulted by the pool before every
    /// batch). Both `None` is exactly [`Cluster::execute`].
    pub fn execute_with(
        &self,
        plan: &PhysicalPlan,
        control: Option<Arc<crate::control::QueryControl>>,
        gate: Option<Arc<dyn crate::control::DispatchGate>>,
    ) -> Result<(Batch, QueryMetrics)> {
        self.execute_with_mode(plan, control, gate, ExecMode::from_env())
    }

    /// The full execution entry point: scheduler control plus an explicit
    /// evaluation strategy.
    pub fn execute_with_mode(
        &self,
        plan: &PhysicalPlan,
        control: Option<Arc<crate::control::QueryControl>>,
        gate: Option<Arc<dyn crate::control::DispatchGate>>,
        mode: ExecMode,
    ) -> Result<(Batch, QueryMetrics)> {
        self.execute_with_opts(plan, control, gate, mode, None)
    }

    /// [`Cluster::execute_with_mode`] plus an optional [`QueryTag`]: the
    /// crash-tolerance identity of a journaled query (stable checkpoint
    /// namespace, `StageCommitted` journal sink, and — when re-running a
    /// crashed query — the resume point recovered from the journal).
    pub fn execute_with_opts(
        &self,
        plan: &PhysicalPlan,
        control: Option<Arc<crate::control::QueryControl>>,
        gate: Option<Arc<dyn crate::control::DispatchGate>>,
        mode: ExecMode,
        tag: Option<crate::recovery::QueryTag>,
    ) -> Result<(Batch, QueryMetrics)> {
        let mut metrics = QueryMetrics::with_config(self.network, self.faults);
        metrics.set_exec_mode(mode);
        if let Some(ctrl) = control {
            metrics.attach_control(ctrl, gate);
        }
        if let Some(rec) = self
            .recovery
            .attach_tagged(self.faults.as_ref(), tag.as_ref())
        {
            metrics.attach_recovery(rec);
        }
        let rows = (|| {
            let parts = self.execute_partitioned(plan, &metrics)?;
            exchange::gather(parts, &self.pool, &metrics)
        })();
        if let Some(rec) = metrics.recovery() {
            // The query's lineage is complete (or abandoned): its
            // checkpoints can never be needed again.
            rec.finish();
        }
        Ok((Batch::new(plan.schema(), rows?), metrics))
    }

    /// Execute a plan, leaving the result partitioned across workers.
    pub fn execute_partitioned(
        &self,
        plan: &PhysicalPlan,
        metrics: &QueryMetrics,
    ) -> Result<PartitionedData> {
        match plan {
            PhysicalPlan::Scan { dataset } => {
                // Map storage partitions onto workers round-robin: local
                // disk reads, no network cost. Each worker materializes
                // its own partitions in parallel — the read was serial on
                // the coordinator once, which Amdahl-capped every
                // downstream operator's scaling.
                let mut assigned: Vec<Vec<usize>> = vec![Vec::new(); self.workers];
                for p in 0..dataset.partition_count() {
                    assigned[p % self.workers].push(p);
                }
                self.parallel_map(metrics, assigned, |ps| {
                    let mut rows = Vec::new();
                    for p in ps {
                        rows.extend(dataset.partition_rows(p));
                    }
                    Ok(rows)
                })
            }

            PhysicalPlan::Filter { input, predicate } => {
                let parts = self.execute_partitioned(input, metrics)?;
                self.parallel_map(metrics, parts, |rows| {
                    let mut out = Vec::with_capacity(rows.len() / 2);
                    for row in rows {
                        if predicate(&row)? {
                            out.push(row);
                        }
                    }
                    Ok(out)
                })
            }

            PhysicalPlan::VecFilter { input, compares } => {
                let parts = self.execute_partitioned(input, metrics)?;
                let mode = metrics.exec_mode();
                self.parallel_map(metrics, parts, |rows| {
                    Ok(columnar::filter_rows(rows, compares, mode))
                })
            }

            PhysicalPlan::VecProject { input, columns, .. } => {
                let parts = self.execute_partitioned(input, metrics)?;
                self.parallel_map(metrics, parts, |rows| {
                    Ok(columnar::project_rows(rows, columns))
                })
            }

            PhysicalPlan::Project { input, mapper, .. } => {
                let parts = self.execute_partitioned(input, metrics)?;
                self.parallel_map(metrics, parts, |rows| {
                    rows.iter().map(|r| mapper(r)).collect::<Result<Vec<Row>>>()
                })
            }

            PhysicalPlan::FudjJoin(node) => crate::fudj_join::execute(self, node, metrics),

            PhysicalPlan::NlJoin {
                left,
                right,
                predicate,
            } => {
                // On-top plan: broadcast the right side, nested-loop with
                // the UDF predicate on every worker.
                let left_parts = self.execute_partitioned(left, metrics)?;
                let right_parts = self.execute_partitioned(right, metrics)?;
                let right_all = exchange::broadcast(right_parts, &self.pool, metrics)?;
                let zipped: Vec<(Vec<Row>, Vec<Row>)> =
                    left_parts.into_iter().zip(right_all).collect();
                self.parallel_map(metrics, zipped, |(lrows, rrows)| {
                    let mut out = Vec::new();
                    for l in &lrows {
                        for r in &rrows {
                            if predicate(l, r)? {
                                out.push(l.concat(r));
                            }
                        }
                    }
                    Ok(out)
                })
            }

            PhysicalPlan::HashAggregate {
                input,
                group_by,
                aggregates,
            } => self.execute_aggregate(input, group_by, aggregates, metrics),

            PhysicalPlan::Sort { input, keys } => {
                let parts = self.execute_partitioned(input, metrics)?;
                let mut rows = exchange::gather(parts, &self.pool, metrics)?;
                sort_rows(&mut rows, keys);
                let mut out: PartitionedData = vec![Vec::new(); self.workers];
                out[0] = rows;
                Ok(out)
            }

            PhysicalPlan::Limit { input, limit } => {
                let parts = self.execute_partitioned(input, metrics)?;
                let mut rows = exchange::gather(parts, &self.pool, metrics)?;
                rows.truncate(*limit);
                let mut out: PartitionedData = vec![Vec::new(); self.workers];
                out[0] = rows;
                Ok(out)
            }
        }
    }

    /// Run `f` over every partition on the persistent worker pool
    /// (partition `i` on worker `i`), charging each worker's busy time to
    /// the metrics' active phase.
    pub(crate) fn parallel_map<T: Send, R: Send>(
        &self,
        metrics: &QueryMetrics,
        parts: Vec<T>,
        f: impl Fn(T) -> Result<R> + Sync,
    ) -> Result<Vec<R>> {
        self.pool
            .run_metered(parts, Some(metrics), |_, part| f(part))
    }

    fn execute_aggregate(
        &self,
        input: &PhysicalPlan,
        group_by: &[usize],
        aggregates: &[Aggregate],
        metrics: &QueryMetrics,
    ) -> Result<PartitionedData> {
        let in_schema = input.schema();
        let float_sum: Vec<bool> = aggregates
            .iter()
            .map(|a| {
                matches!(
                    a.input.map(|i| &in_schema.fields()[i].data_type),
                    Some(DataType::Float64)
                )
            })
            .collect();
        // Crash-restart resume: a durably committed `agg:shuffle` boundary
        // means the shuffled partials survive on disk — skip input
        // evaluation, partial aggregation, and the shuffle entirely and go
        // straight to merge/finalize. A partly covered boundary falls back
        // to the full path below, which is always correct.
        if let Some(mut datasets) = metrics
            .recovery()
            .and_then(|r| r.try_resume("agg:shuffle", &["partials"], self.workers))
        {
            let shuffled = datasets.pop().unwrap_or_default();
            return self.merge_partials(shuffled, group_by, aggregates, &float_sum, metrics);
        }

        let parts = self.execute_partitioned(input, metrics)?;
        let mode = metrics.exec_mode();

        // Step 1: per-worker partial aggregation.
        let partials = self.parallel_map(metrics, parts, |rows| {
            if mode == ExecMode::Columnar {
                // Stride fast path: single-i64-key grouping with typed
                // accumulation; declines (→ row path) on other shapes.
                if let Some(out) =
                    columnar::partial_aggregate(&rows, group_by, aggregates, &float_sum)
                {
                    return out;
                }
            }
            let mut groups: HashMap<Vec<Value>, Vec<Accumulator>> = HashMap::new();
            for row in &rows {
                let key: Vec<Value> = group_by.iter().map(|&i| row.get(i).clone()).collect();
                let accs = groups.entry(key).or_insert_with(|| {
                    aggregates
                        .iter()
                        .zip(&float_sum)
                        .map(|(a, &fs)| Accumulator::new(a, fs))
                        .collect()
                });
                for (acc, agg) in accs.iter_mut().zip(aggregates) {
                    acc.update(agg.input.map(|i| row.get(i)))?;
                }
            }
            // Partial rows: group values then one partial value per agg.
            let mut out = Vec::with_capacity(groups.len());
            for (key, accs) in groups {
                let mut values = key;
                values.extend(accs.iter().map(Accumulator::partial_value));
                out.push(Row::new(values));
            }
            Ok(out)
        })?;

        // Step 2: shuffle partials by group key, merge, finalize.
        let width = group_by.len();
        let router =
            |row: &Row| (exchange::route_hash(&row.values()[..width]) as usize) % self.workers;
        // A worker death at the post-shuffle boundary loses that worker's
        // partial groups; without a checkpoint the whole shuffle replays
        // from the (still partition-local) partials.
        let replay_src = match metrics.recovery() {
            Some(r) if r.deaths_armed() => Some(partials.clone()),
            _ => None,
        };
        let mut shuffled = exchange::shuffle_by(partials, &self.pool, metrics, router)?;
        recovery::stage_boundary(
            metrics,
            "agg:shuffle",
            &mut [("partials", &mut shuffled)],
            || {
                let src = replay_src.clone().ok_or_else(|| {
                    FudjError::Execution(
                        "agg:shuffle replay requested without retained inputs".into(),
                    )
                })?;
                Ok(vec![exchange::shuffle_by(
                    src, &self.pool, metrics, router,
                )?])
            },
        )?;
        self.merge_partials(shuffled, group_by, aggregates, &float_sum, metrics)
    }

    /// Step 2 of the hash aggregate: merge shuffled partial rows per
    /// group and finalize. Split out so a crash-restart resume can enter
    /// here directly with partials restored from durable checkpoints.
    fn merge_partials(
        &self,
        shuffled: PartitionedData,
        group_by: &[usize],
        aggregates: &[Aggregate],
        float_sum: &[bool],
        metrics: &QueryMetrics,
    ) -> Result<PartitionedData> {
        let width = group_by.len();
        self.parallel_map(metrics, shuffled, |rows| {
            let mut groups: HashMap<Vec<Value>, Vec<Accumulator>> = HashMap::new();
            for row in &rows {
                let key = row.values()[..width].to_vec();
                let accs = groups.entry(key).or_insert_with(|| {
                    aggregates
                        .iter()
                        .zip(float_sum)
                        .map(|(a, &fs)| Accumulator::new(a, fs))
                        .collect()
                });
                for (i, acc) in accs.iter_mut().enumerate() {
                    acc.merge_partial(row.get(width + i))?;
                }
            }
            let mut out = Vec::with_capacity(groups.len());
            for (key, accs) in groups {
                let mut values = key;
                values.extend(accs.iter().map(Accumulator::finalize));
                out.push(Row::new(values));
            }
            Ok(out)
        })
    }
}

/// Sort rows by the key list (stable between equal keys).
pub fn sort_rows(rows: &mut [Row], keys: &[SortKey]) {
    rows.sort_by(|a, b| {
        for k in keys {
            let ord = a.get(k.column).cmp(b.get(k.column));
            let ord = if k.descending { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::AggFunc;
    use fudj_storage::DatasetBuilder;
    use fudj_types::{Field, Schema};
    use std::sync::Arc;

    fn dataset(rows: usize, partitions: usize) -> Arc<fudj_storage::Dataset> {
        let schema = Schema::shared(vec![
            Field::new("id", DataType::Int64),
            Field::new("grp", DataType::Int64),
            Field::new("v", DataType::Int64),
        ]);
        let d = DatasetBuilder::new("t", schema)
            .primary_key("id")
            .partitions(partitions)
            .build()
            .unwrap();
        for i in 0..rows {
            d.insert(Row::new(vec![
                Value::Int64(i as i64),
                Value::Int64((i % 3) as i64),
                Value::Int64((i * 2) as i64),
            ]))
            .unwrap();
        }
        Arc::new(d)
    }

    fn scan(rows: usize, parts: usize) -> PhysicalPlan {
        PhysicalPlan::Scan {
            dataset: dataset(rows, parts),
        }
    }

    #[test]
    fn scan_round_robins_partitions() {
        let cluster = Cluster::new(2);
        let (batch, _) = cluster.execute(&scan(100, 8)).unwrap();
        assert_eq!(batch.len(), 100);
    }

    #[test]
    fn filter_and_project() {
        let cluster = Cluster::new(4);
        let plan = PhysicalPlan::Project {
            input: Box::new(PhysicalPlan::Filter {
                input: Box::new(scan(50, 4)),
                predicate: Arc::new(|row| Ok(row.get(0).as_i64()? < 10)),
            }),
            mapper: Arc::new(|row| Ok(Row::new(vec![row.get(0).clone()]))),
            schema: Schema::shared(vec![Field::new("id", DataType::Int64)]),
        };
        let (batch, _) = cluster.execute(&plan).unwrap();
        assert_eq!(batch.len(), 10);
        assert!(batch.rows().iter().all(|r| r.len() == 1));
    }

    #[test]
    fn filter_error_propagates_from_worker_threads() {
        let cluster = Cluster::new(4);
        let plan = PhysicalPlan::Filter {
            input: Box::new(scan(50, 4)),
            predicate: Arc::new(|row| row.get(0).as_str().map(|_| true)), // type error
        };
        assert!(cluster.execute(&plan).is_err());
    }

    #[test]
    fn aggregate_group_by_matches_sequential() {
        for workers in [1, 2, 5] {
            let cluster = Cluster::new(workers);
            let plan = PhysicalPlan::HashAggregate {
                input: Box::new(scan(90, 4)),
                group_by: vec![1],
                aggregates: vec![
                    Aggregate::count_star("c"),
                    Aggregate::on(AggFunc::Sum, 2, "s"),
                    Aggregate::on(AggFunc::Avg, 2, "a"),
                    Aggregate::on(AggFunc::Min, 0, "mn"),
                    Aggregate::on(AggFunc::Max, 0, "mx"),
                ],
            };
            let (batch, _) = cluster.execute(&plan).unwrap();
            assert_eq!(batch.len(), 3, "workers={workers}");
            for row in batch.rows() {
                let g = row.get(0).as_i64().unwrap();
                assert_eq!(row.get(1), &Value::Int64(30)); // count per group
                                                           // ids g, g+3, ..., g+87; v = 2*id.
                let ids: Vec<i64> = (0..30).map(|k| g + 3 * k).collect();
                let sum: i64 = ids.iter().map(|i| i * 2).sum();
                assert_eq!(row.get(2), &Value::Int64(sum));
                assert_eq!(row.get(3), &Value::Float64(sum as f64 / 30.0));
                assert_eq!(row.get(4), &Value::Int64(g));
                assert_eq!(row.get(5), &Value::Int64(g + 87));
            }
        }
    }

    #[test]
    fn global_aggregate_without_groups() {
        let cluster = Cluster::new(3);
        let plan = PhysicalPlan::HashAggregate {
            input: Box::new(scan(25, 2)),
            group_by: vec![],
            aggregates: vec![Aggregate::count_star("c")],
        };
        let (batch, _) = cluster.execute(&plan).unwrap();
        assert_eq!(batch.len(), 1);
        assert_eq!(batch.rows()[0].get(0), &Value::Int64(25));
    }

    #[test]
    fn sort_and_limit() {
        let cluster = Cluster::new(4);
        let plan = PhysicalPlan::Limit {
            input: Box::new(PhysicalPlan::Sort {
                input: Box::new(scan(30, 4)),
                keys: vec![SortKey::desc(0)],
            }),
            limit: 5,
        };
        let (batch, _) = cluster.execute(&plan).unwrap();
        let ids: Vec<i64> = batch
            .rows()
            .iter()
            .map(|r| r.get(0).as_i64().unwrap())
            .collect();
        assert_eq!(ids, vec![29, 28, 27, 26, 25]);
    }

    #[test]
    fn nl_join_on_top() {
        let cluster = Cluster::new(3);
        let plan = PhysicalPlan::NlJoin {
            left: Box::new(scan(12, 2)),
            right: Box::new(scan(12, 2)),
            predicate: Arc::new(|l, r| {
                Ok(l.get(0).as_i64()? == r.get(0).as_i64()? && l.get(1).as_i64()? == 0)
            }),
        };
        let (batch, metrics) = cluster.execute(&plan).unwrap();
        // ids ≡ 0 mod 3: 0, 3, 6, 9 → 4 matches.
        assert_eq!(batch.len(), 4);
        assert_eq!(batch.schema().len(), 6);
        assert!(
            metrics.snapshot().rows_broadcast > 0,
            "on-top broadcasts a side"
        );
    }

    #[test]
    fn sort_rows_multi_key() {
        let mut rows = vec![
            Row::new(vec![Value::Int64(1), Value::str("b")]),
            Row::new(vec![Value::Int64(1), Value::str("a")]),
            Row::new(vec![Value::Int64(0), Value::str("z")]),
        ];
        sort_rows(&mut rows, &[SortKey::asc(0), SortKey::asc(1)]);
        assert_eq!(rows[0].get(1), &Value::str("z"));
        assert_eq!(rows[1].get(1), &Value::str("a"));
        assert_eq!(rows[2].get(1), &Value::str("b"));
    }
}
