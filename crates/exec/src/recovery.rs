//! Whole-worker death, stage checkpointing, and elastic membership.
//!
//! PR 2's fault layer recovers *tasks*: an injected panic, transient
//! error, or worker loss re-executes one attempt and the worker keeps
//! serving. This module makes the failure of a whole worker — permanent,
//! with its resident partitions gone — a first-class, survivable event:
//!
//! * **Stage checkpointing.** At each exchange-producing stage boundary
//!   of the flexible-join pipeline (post-assign shuffle buckets, match
//!   output, the aggregate shuffle), [`stage_boundary`] optionally
//!   snapshots every partition into the cluster's shared
//!   [`CheckpointStore`] (serialized through the wire protocol, keyed by
//!   query/stage/partition, bounded by a byte budget with FIFO eviction).
//! * **Lineage-scoped partial recovery.** A deterministic
//!   `WorkerDeath` roll (one per boundary, only when
//!   `worker_death_prob > 0`, so death-free fault schedules stay
//!   bit-identical) kills one active worker. The partitions it held are
//!   genuinely dropped, then restored by decoding their checkpoints —
//!   recovery cost proportional to what was lost. Only when no
//!   checkpoint covers a lost partition does the boundary fall back to a
//!   full-stage replay of the producing computation.
//! * **Elastic membership + health.** [`Membership`] tracks each worker
//!   slot's state (active / dead / quarantined / decommissioned) and
//!   routes partition `p` to its home worker `p % n` while that home is
//!   active, else to a rendezvous-hash pick among the survivors — so
//!   unaffected partitions never move when the active set changes. A
//!   per-worker failure counter feeds a circuit breaker: a worker whose
//!   injected-fault count crosses `worker_quarantine_threshold` is
//!   quarantined from new task grants at the next batch boundary
//!   (membership state only changes on the coordinator thread, between
//!   batches, which is what keeps schedules reproducible).
//!
//! Everything here is observable: [`RecoveryStats`] (checkpoints
//! written/read/evicted, partitions restored vs. recomputed, deaths
//! survived, quarantines) folds into
//! [`crate::MetricsSnapshot`] and the deterministic counter fingerprint.

use crate::executor::PartitionedData;
use crate::metrics::QueryMetrics;
use fudj_storage::{CheckpointPolicy, CheckpointStore, PutOutcome};
use fudj_types::{FudjError, Result};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Counters for the checkpoint/recovery work of one query. Deterministic
/// per fault seed, like [`crate::FaultStats`]; all zero unless the query
/// ran with a [`RecoveryContext`] attached.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Stage partitions snapshotted into the checkpoint store.
    pub checkpoints_written: u64,
    /// Serialized bytes those snapshots occupy.
    pub checkpoint_bytes_written: u64,
    /// Checkpoints decoded to restore lost partitions.
    pub checkpoints_read: u64,
    /// Checkpoints evicted under byte-budget pressure during this query.
    pub checkpoints_evicted: u64,
    /// Lost partitions restored from checkpoints (no recomputation).
    pub partitions_restored: u64,
    /// Partitions recomputed because no checkpoint covered a loss.
    pub partitions_recomputed: u64,
    /// Stage boundaries that fell back to replaying the whole stage.
    pub full_stage_replays: u64,
    /// Permanent worker deaths injected and survived.
    pub deaths_survived: u64,
    /// Workers quarantined by the failure-rate circuit breaker.
    pub workers_quarantined: u64,
    /// Stage boundaries this query resumed from (durable checkpoints
    /// restored instead of re-executing everything upstream).
    pub stages_resumed: u64,
    /// Rows restored from durable checkpoints by crash-restart resume.
    pub resume_rows_restored: u64,
    /// Resumes that fell back to full replay because some partition of
    /// the committed stage had no decodable durable checkpoint.
    pub resume_full_replays: u64,
}

impl RecoveryStats {
    /// Whether any counter is non-zero.
    pub fn any(&self) -> bool {
        *self != RecoveryStats::default()
    }
}

#[derive(Default)]
struct RecoveryCells {
    checkpoints_written: AtomicU64,
    checkpoint_bytes_written: AtomicU64,
    checkpoints_read: AtomicU64,
    checkpoints_evicted: AtomicU64,
    partitions_restored: AtomicU64,
    partitions_recomputed: AtomicU64,
    full_stage_replays: AtomicU64,
    deaths_survived: AtomicU64,
    workers_quarantined: AtomicU64,
    stages_resumed: AtomicU64,
    resume_rows_restored: AtomicU64,
    resume_full_replays: AtomicU64,
}

/// Logical counter values captured at a durably committed stage boundary.
/// When a crashed query resumes past that boundary, the skipped upstream
/// work's counters are seeded from here so the resumed run's final
/// [`crate::CounterFingerprint`] matches an uninterrupted execution.
/// Fault/UDF guardrail counters are deliberately not seeded: resume runs
/// under the storage fault plan (whole-process crashes), not the task
/// fault plan, so both sides of the restart differential see zeros there.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CounterSeed {
    /// `(counter name, value)` pairs — see
    /// [`crate::metrics::flatten_counters`] for the names.
    pub counters: Vec<(String, u64)>,
    /// Phase names completed before the boundary, in completion order.
    pub phases: Vec<String>,
}

/// Where a resumed query restarts: the last durably committed stage
/// boundary plus the counter seed journaled with it.
#[derive(Clone, Debug)]
pub struct ResumeSpec {
    /// Stage name of the committed boundary (e.g. `join:combine`).
    pub stage: String,
    /// Counters journaled at that boundary.
    pub seed: CounterSeed,
}

/// Sink for durable query-journal records emitted at stage boundaries.
/// Implemented over the session's [`fudj_storage::DurableStore`]; a write
/// failure (including an injected crash) aborts the query so a boundary
/// is never treated as committed without the record on disk.
pub trait QueryJournal: Send + Sync {
    /// Durably record that `stage` of the query named by `fingerprint`
    /// committed, with the logical counters observed at the boundary.
    fn stage_committed(
        &self,
        fingerprint: u64,
        stage: &str,
        counters: &[(String, u64)],
        phases: &[String],
    ) -> Result<()>;
}

/// Identity and crash-tolerance state of one journaled query: its stable
/// statement fingerprint (the checkpoint namespace, so durable frames
/// survive a process restart under the same key), the journal sink, and
/// an optional resume point recovered from the journal.
#[derive(Clone)]
pub struct QueryTag {
    /// Stable statement fingerprint — the durable checkpoint namespace.
    pub fingerprint: u64,
    /// Journal sink for `StageCommitted` records (`None` = checkpoint
    /// durably but journal nothing).
    pub journal: Option<Arc<dyn QueryJournal>>,
    /// Resume point, when this execution re-runs a crashed query.
    pub resume: Option<ResumeSpec>,
}

impl std::fmt::Debug for QueryTag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryTag")
            .field("fingerprint", &self.fingerprint)
            .field("journal", &self.journal.is_some())
            .field("resume", &self.resume)
            .finish()
    }
}

/// Lifecycle state of one worker slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkerState {
    /// Serving tasks.
    Active,
    /// Killed by an injected [`FaultContext::worker_death`]
    /// (permanent; resident partitions were lost).
    ///
    /// [`FaultContext::worker_death`]: crate::fault::FaultContext::worker_death
    Dead,
    /// Removed from task grants by the failure-rate circuit breaker.
    Quarantined,
    /// Administratively removed via [`crate::Cluster::decommission_worker`].
    Decommissioned,
}

/// One row of the `\workers` report.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkerInfo {
    /// Worker slot id (stable pool-thread identity).
    pub worker: usize,
    /// Current membership state.
    pub state: WorkerState,
    /// Injected task faults attributed to this worker since the cluster
    /// (or its replacement in this slot) started.
    pub failures: u64,
}

struct Slot {
    state: WorkerState,
    failures: u64,
    /// Set by worker threads when `failures` crosses the quarantine
    /// threshold; applied (state change) only on the coordinator thread
    /// at the next batch boundary, so in-flight batches keep a frozen
    /// view of the active set.
    pending_quarantine: bool,
}

/// The active-worker set of one cluster, shared by every query running on
/// it. Membership state (dead / quarantined / decommissioned) only
/// changes between pool batches, on the coordinator thread; worker
/// threads may only bump failure counters.
pub struct Membership {
    slots: Mutex<Vec<Slot>>,
    quarantine_threshold: AtomicU64,
}

impl std::fmt::Debug for Membership {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Membership")
            .field("workers", &self.snapshot())
            .finish()
    }
}

/// SplitMix64-style finalizer used for rendezvous (highest-random-weight)
/// routing — deliberately independent of the fault layer's site mixer.
fn hrw_hash(a: u64, b: u64) -> u64 {
    let mut h = a
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(b.rotate_left(31));
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

impl Membership {
    /// All `workers` slots active, quarantine disabled.
    pub fn new(workers: usize) -> Self {
        Membership {
            slots: Mutex::new(
                (0..workers)
                    .map(|_| Slot {
                        state: WorkerState::Active,
                        failures: 0,
                        pending_quarantine: false,
                    })
                    .collect(),
            ),
            quarantine_threshold: AtomicU64::new(0),
        }
    }

    /// Total worker slots (active or not) — the pool size.
    pub fn size(&self) -> usize {
        self.slots.lock().len()
    }

    /// Number of active workers.
    pub fn active_count(&self) -> usize {
        self.slots
            .lock()
            .iter()
            .filter(|s| s.state == WorkerState::Active)
            .count()
    }

    /// Whether slot `w` is serving tasks.
    pub fn is_active(&self, w: usize) -> bool {
        self.slots
            .lock()
            .get(w)
            .map(|s| s.state == WorkerState::Active)
            .unwrap_or(false)
    }

    /// Route partition `p` to a worker: its home slot `p % size` while
    /// that slot is active, else the rendezvous-hash (highest-random-
    /// weight) pick among active slots. Unaffected partitions never move
    /// when other slots leave or join.
    pub fn route(&self, p: usize) -> usize {
        let slots = self.slots.lock();
        let n = slots.len();
        let home = p % n;
        if slots[home].state == WorkerState::Active {
            return home;
        }
        slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.state == WorkerState::Active)
            .max_by_key(|(w, _)| hrw_hash(p as u64, *w as u64))
            .map(|(w, _)| w)
            .unwrap_or(home)
    }

    /// The next active slot after `w` in ring order (for worker-loss
    /// re-execution). Falls back to `w` itself when no other slot is
    /// active.
    pub fn next_active_after(&self, w: usize) -> usize {
        let slots = self.slots.lock();
        let n = slots.len();
        for d in 1..=n {
            let c = (w + d) % n;
            if slots[c].state == WorkerState::Active {
                return c;
            }
        }
        w
    }

    /// Map a deterministic victim-selector word onto the active set.
    /// Returns `None` when fewer than two workers are active — the last
    /// survivor is never killed.
    pub fn pick_victim(&self, selector: u64) -> Option<usize> {
        let slots = self.slots.lock();
        let actives: Vec<usize> = slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.state == WorkerState::Active)
            .map(|(w, _)| w)
            .collect();
        if actives.len() < 2 {
            return None;
        }
        Some(actives[(selector % actives.len() as u64) as usize])
    }

    /// Mark slot `w` permanently dead. Coordinator-thread only.
    pub fn mark_dead(&self, w: usize) {
        let mut slots = self.slots.lock();
        if let Some(s) = slots.get_mut(w) {
            s.state = WorkerState::Dead;
        }
    }

    /// Administratively remove slot `w` from task grants.
    pub fn decommission(&self, w: usize) -> Result<()> {
        let mut slots = self.slots.lock();
        let active = slots
            .iter()
            .filter(|s| s.state == WorkerState::Active)
            .count();
        match slots.get_mut(w) {
            None => Err(FudjError::Execution(format!(
                "no such worker: {w} (cluster has {} slots)",
                slots.len()
            ))),
            Some(s) if s.state != WorkerState::Active => Err(FudjError::Execution(format!(
                "worker {w} is not active ({:?})",
                s.state
            ))),
            Some(_) if active <= 1 => Err(FudjError::Execution(
                "cannot decommission the last active worker".into(),
            )),
            Some(s) => {
                s.state = WorkerState::Decommissioned;
                Ok(())
            }
        }
    }

    /// Bring a replacement worker into the first inactive slot (a new
    /// node adopting the failed node's identity, pool capacity is the
    /// upper bound). Returns the reactivated slot id.
    pub fn add(&self) -> Result<usize> {
        let mut slots = self.slots.lock();
        let slot = slots
            .iter_mut()
            .enumerate()
            .find(|(_, s)| s.state != WorkerState::Active);
        match slot {
            None => Err(FudjError::Execution(
                "every worker slot is already active".into(),
            )),
            Some((w, s)) => {
                s.state = WorkerState::Active;
                s.failures = 0;
                s.pending_quarantine = false;
                Ok(w)
            }
        }
    }

    /// Attribute one injected task fault to slot `w`. Worker-thread safe:
    /// only counters and the pending-quarantine flag change here; the
    /// state transition happens at the next [`Membership::apply_pending`].
    pub fn record_failure(&self, w: usize) {
        let threshold = self.quarantine_threshold.load(Ordering::Relaxed);
        let mut slots = self.slots.lock();
        if let Some(s) = slots.get_mut(w) {
            s.failures += 1;
            if threshold > 0 && s.failures >= threshold && s.state == WorkerState::Active {
                s.pending_quarantine = true;
            }
        }
    }

    /// Apply pending quarantines (coordinator thread, between batches).
    /// Never quarantines the last active worker. Returns how many workers
    /// were newly quarantined.
    pub fn apply_pending(&self) -> u64 {
        let mut slots = self.slots.lock();
        let mut active = slots
            .iter()
            .filter(|s| s.state == WorkerState::Active)
            .count();
        let mut applied = 0;
        for s in slots.iter_mut() {
            if s.pending_quarantine && s.state == WorkerState::Active && active > 1 {
                s.state = WorkerState::Quarantined;
                s.pending_quarantine = false;
                active -= 1;
                applied += 1;
            }
        }
        applied
    }

    /// Set the failure-count circuit-breaker threshold (0 disables).
    pub fn set_quarantine_threshold(&self, threshold: u64) {
        self.quarantine_threshold
            .store(threshold, Ordering::Relaxed);
    }

    /// The current circuit-breaker threshold (0 = disabled).
    pub fn quarantine_threshold(&self) -> u64 {
        self.quarantine_threshold.load(Ordering::Relaxed)
    }

    /// Point-in-time view of every slot, for `\workers`.
    pub fn snapshot(&self) -> Vec<WorkerInfo> {
        self.slots
            .lock()
            .iter()
            .enumerate()
            .map(|(worker, s)| WorkerInfo {
                worker,
                state: s.state,
                failures: s.failures,
            })
            .collect()
    }
}

/// Cluster-wide recovery state: the shared checkpoint store, the
/// checkpoint policy knobs, and the worker membership. Clones of a
/// [`crate::Cluster`] share one of these.
pub struct ClusterRecovery {
    store: Arc<CheckpointStore>,
    policy: Mutex<CheckpointPolicy>,
    membership: Arc<Membership>,
    query_seq: AtomicU64,
}

impl std::fmt::Debug for ClusterRecovery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterRecovery")
            .field("policy", &*self.policy.lock())
            .field("store", &self.store)
            .finish()
    }
}

impl ClusterRecovery {
    /// Fresh state for a cluster of `workers` slots: checkpointing off,
    /// unlimited budget, quarantine disabled.
    pub fn new(workers: usize) -> Self {
        ClusterRecovery {
            store: Arc::new(CheckpointStore::new()),
            policy: Mutex::new(CheckpointPolicy::Off),
            membership: Arc::new(Membership::new(workers)),
            query_seq: AtomicU64::new(0),
        }
    }

    /// The shared checkpoint store.
    pub fn store(&self) -> &Arc<CheckpointStore> {
        &self.store
    }

    /// The shared worker membership.
    pub fn membership(&self) -> &Arc<Membership> {
        &self.membership
    }

    /// Replace the checkpoint policy.
    pub fn set_policy(&self, policy: CheckpointPolicy) {
        *self.policy.lock() = policy;
    }

    /// The current checkpoint policy.
    pub fn policy(&self) -> CheckpointPolicy {
        self.policy.lock().clone()
    }

    /// Attach a per-query recovery context when there is anything for it
    /// to do: checkpointing enabled, deaths armed, quarantine armed, or
    /// any slot not active (routing must consult membership). Otherwise
    /// returns `None` and execution is bit-identical to a cluster without
    /// a recovery layer.
    pub fn attach(
        self: &Arc<Self>,
        faults: Option<&fudj_core::FaultConfig>,
    ) -> Option<Arc<RecoveryContext>> {
        self.attach_tagged(faults, None)
    }

    /// [`ClusterRecovery::attach`] for a journaled query: a tag always
    /// attaches (the journal and resume machinery need a context even when
    /// no fault plan is armed), and the tag's statement fingerprint
    /// replaces the per-cluster sequence number as the checkpoint
    /// namespace — stable across a process restart, which is what lets a
    /// resumed execution find the crashed run's durable frames.
    pub fn attach_tagged(
        self: &Arc<Self>,
        faults: Option<&fudj_core::FaultConfig>,
        tag: Option<&QueryTag>,
    ) -> Option<Arc<RecoveryContext>> {
        let deaths_armed = faults.map(|f| f.worker_death_prob > 0.0).unwrap_or(false);
        let needed = tag.is_some()
            || deaths_armed
            || self.policy.lock().enabled()
            || self.membership.quarantine_threshold() > 0
            || self.membership.active_count() < self.membership.size();
        if !needed {
            return None;
        }
        let query = match tag {
            Some(t) => t.fingerprint,
            None => self.query_seq.fetch_add(1, Ordering::Relaxed),
        };
        Some(Arc::new(RecoveryContext {
            shared: Arc::clone(self),
            query,
            deaths_armed,
            journal: tag.and_then(|t| t.journal.clone()),
            resume: Mutex::new(tag.and_then(|t| t.resume.clone())),
            consumed_seed: Mutex::new(None),
            cells: RecoveryCells::default(),
        }))
    }
}

/// One query's handle on the recovery subsystem: the shared store and
/// membership, this query's checkpoint namespace, and its counters.
pub struct RecoveryContext {
    shared: Arc<ClusterRecovery>,
    query: u64,
    deaths_armed: bool,
    /// Journal sink for `StageCommitted` records (journaled queries only).
    journal: Option<Arc<dyn QueryJournal>>,
    /// Pending resume point; taken by the first stage that matches it.
    resume: Mutex<Option<ResumeSpec>>,
    /// Counter seed of a consumed resume, applied at snapshot time.
    consumed_seed: Mutex<Option<CounterSeed>>,
    cells: RecoveryCells,
}

impl std::fmt::Debug for RecoveryContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecoveryContext")
            .field("query", &self.query)
            .field("deaths_armed", &self.deaths_armed)
            .field("stats", &self.stats())
            .finish()
    }
}

impl RecoveryContext {
    /// This query's checkpoint namespace.
    pub fn query(&self) -> u64 {
        self.query
    }

    /// Whether the armed fault plan can inject worker deaths.
    pub fn deaths_armed(&self) -> bool {
        self.deaths_armed
    }

    /// The cluster's shared membership.
    pub fn membership(&self) -> &Arc<Membership> {
        &self.shared.membership
    }

    /// The cluster's shared checkpoint store.
    pub fn store(&self) -> &Arc<CheckpointStore> {
        &self.shared.store
    }

    /// Whether the policy snapshots `stage`.
    pub fn policy_covers(&self, stage: &str) -> bool {
        self.shared.policy.lock().covers(stage)
    }

    /// Route partition `p` onto the active worker set.
    pub fn route(&self, p: usize) -> usize {
        self.shared.membership.route(p)
    }

    /// Coordinator-side batch hook: apply quarantines that worker threads
    /// flagged since the previous batch.
    pub fn on_batch_start(&self) {
        let applied = self.shared.membership.apply_pending();
        if applied > 0 {
            self.cells
                .workers_quarantined
                .fetch_add(applied, Ordering::Relaxed);
        }
    }

    /// Attribute one injected task fault to `worker` for the circuit
    /// breaker.
    pub fn note_task_failure(&self, worker: usize) {
        self.shared.membership.record_failure(worker);
    }

    /// Drop this query's checkpoints (its lineage is complete).
    pub fn finish(&self) {
        self.shared.store.remove_query(self.query);
    }

    /// The journal sink, when this query is journaled.
    pub fn journal(&self) -> Option<&Arc<dyn QueryJournal>> {
        self.journal.as_ref()
    }

    /// The counter seed of a consumed resume, if any — applied by
    /// [`crate::metrics::QueryMetrics::snapshot`] so the skipped upstream
    /// work still shows up in the final counters.
    pub fn seed(&self) -> Option<CounterSeed> {
        self.consumed_seed.lock().clone()
    }

    /// Attempt to resume execution at `stage`: when the pending resume
    /// point names this stage, restore every partition of every named
    /// dataset from the durable checkpoint tier. Returns the restored
    /// datasets (in `datasets` order, `nparts` partitions each) on
    /// success. A non-matching stage leaves the resume point pending for
    /// the site that owns it. A matching stage with any missing or
    /// undecodable partition consumes the resume point, counts a
    /// [`RecoveryStats::resume_full_replays`], and returns `None` — the
    /// caller re-executes from scratch, which is always correct.
    pub fn try_resume(
        &self,
        stage: &str,
        datasets: &[&str],
        nparts: usize,
    ) -> Option<Vec<PartitionedData>> {
        let spec = {
            let mut pending = self.resume.lock();
            match pending.as_ref() {
                Some(spec) if spec.stage == stage => pending.take()?,
                _ => return None,
            }
        };
        let mut restored: Vec<PartitionedData> = Vec::with_capacity(datasets.len());
        let mut rows_restored = 0u64;
        for name in datasets {
            let mut parts: PartitionedData = Vec::with_capacity(nparts);
            for p in 0..nparts {
                match self.store().get(self.query, &format!("{stage}/{name}"), p) {
                    Some(Ok(rows)) => {
                        rows_restored += rows.len() as u64;
                        parts.push(rows);
                    }
                    // A miss or a quarantined/undecodable frame: the
                    // committed boundary is not fully covered on disk
                    // (budget eviction or torn frames), so replay fully.
                    Some(Err(_)) | None => {
                        self.cells
                            .resume_full_replays
                            .fetch_add(1, Ordering::Relaxed);
                        return None;
                    }
                }
            }
            restored.push(parts);
        }
        self.cells.stages_resumed.fetch_add(1, Ordering::Relaxed);
        self.cells
            .checkpoints_read
            .fetch_add((datasets.len() * nparts) as u64, Ordering::Relaxed);
        self.cells
            .resume_rows_restored
            .fetch_add(rows_restored, Ordering::Relaxed);
        *self.consumed_seed.lock() = Some(spec.seed);
        Some(restored)
    }

    fn note_put(&self, outcome: PutOutcome) {
        self.cells
            .checkpoints_written
            .fetch_add(1, Ordering::Relaxed);
        self.cells
            .checkpoint_bytes_written
            .fetch_add(outcome.bytes, Ordering::Relaxed);
        self.cells
            .checkpoints_evicted
            .fetch_add(outcome.evicted, Ordering::Relaxed);
    }

    /// Copy out the counters.
    pub fn stats(&self) -> RecoveryStats {
        let c = &self.cells;
        let get = |cell: &AtomicU64| cell.load(Ordering::Relaxed);
        RecoveryStats {
            checkpoints_written: get(&c.checkpoints_written),
            checkpoint_bytes_written: get(&c.checkpoint_bytes_written),
            checkpoints_read: get(&c.checkpoints_read),
            checkpoints_evicted: get(&c.checkpoints_evicted),
            partitions_restored: get(&c.partitions_restored),
            partitions_recomputed: get(&c.partitions_recomputed),
            full_stage_replays: get(&c.full_stage_replays),
            deaths_survived: get(&c.deaths_survived),
            workers_quarantined: get(&c.workers_quarantined),
            stages_resumed: get(&c.stages_resumed),
            resume_rows_restored: get(&c.resume_rows_restored),
            resume_full_replays: get(&c.resume_full_replays),
        }
    }
}

/// One exchange-producing stage boundary: checkpoint the stage's
/// partitioned outputs (policy permitting), then roll for a permanent
/// worker death and recover from it.
///
/// `datasets` is the stage's output — one or more named partitioned
/// row sets (the join's partition stage produces two, `left` and
/// `right`); all share one death roll, because a dying worker loses its
/// resident partitions of *every* dataset at once. `replay` recomputes
/// the whole stage from its (still-live) inputs and is only invoked when
/// a death strikes and some lost partition has no covering checkpoint —
/// the full-stage fallback.
///
/// The death roll claims a fault-context dispatch step **only when
/// deaths are armed**, so the fault schedules of death-free configs are
/// bit-identical to clusters without a recovery layer.
pub fn stage_boundary(
    metrics: &QueryMetrics,
    stage: &str,
    datasets: &mut [(&str, &mut PartitionedData)],
    mut replay: impl FnMut() -> Result<Vec<PartitionedData>>,
) -> Result<()> {
    let Some(rec) = metrics.recovery() else {
        return Ok(());
    };

    // 1. Snapshot this stage's partitions, dataset by dataset. A put can
    // now fail (the durable tier write-through hits injected crash
    // sites); the error propagates so a crashed boundary is never
    // journaled as committed.
    if rec.policy_covers(stage) {
        for (name, parts) in datasets.iter() {
            for (p, rows) in parts.iter().enumerate() {
                let outcome = rec
                    .store()
                    .put(rec.query(), &format!("{stage}/{name}"), p, rows)?;
                rec.note_put(outcome);
            }
        }
        // 1b. Journal the boundary as durably committed — strictly after
        // every frame of the stage is on disk, so a `StageCommitted`
        // record always implies restorable coverage (modulo later budget
        // eviction, which resume detects and survives via full replay).
        if let Some(journal) = rec.journal() {
            let snap = metrics.snapshot();
            journal.stage_committed(
                rec.query(),
                stage,
                &crate::metrics::flatten_counters(&snap),
                &snap
                    .phases
                    .iter()
                    .map(|(n, _)| n.clone())
                    .collect::<Vec<_>>(),
            )?;
        }
    }

    // 2. Roll for a permanent worker death. The step is claimed only when
    // deaths can actually strike (see doc comment).
    if !rec.deaths_armed() {
        return Ok(());
    }
    let Some(fault) = metrics.fault() else {
        return Ok(());
    };
    let step = fault.next_step();
    let Some(selector) = fault.worker_death(step) else {
        return Ok(());
    };
    let membership = rec.membership();
    let Some(victim) = membership.pick_victim(selector) else {
        return Ok(()); // never kill the last survivor
    };

    // Partitions resident on the victim, under the routing that placed
    // this stage's outputs (victim still active).
    let nparts = datasets.iter().map(|(_, p)| p.len()).max().unwrap_or(0);
    let lost: Vec<usize> = (0..nparts)
        .filter(|&p| membership.route(p) == victim)
        .collect();
    membership.mark_dead(victim);
    rec.cells.deaths_survived.fetch_add(1, Ordering::Relaxed);

    // 3. Genuinely drop the victim's partitions, then restore each from
    // its checkpoint. Any uncovered loss forces the full-stage fallback.
    let mut uncovered = false;
    for (name, parts) in datasets.iter_mut() {
        for &p in &lost {
            if p >= parts.len() {
                continue;
            }
            parts[p] = Vec::new();
            match rec.store().get(rec.query(), &format!("{stage}/{name}"), p) {
                Some(rows) => {
                    parts[p] = rows?;
                    rec.cells.checkpoints_read.fetch_add(1, Ordering::Relaxed);
                    rec.cells
                        .partitions_restored
                        .fetch_add(1, Ordering::Relaxed);
                }
                None => uncovered = true,
            }
        }
    }
    if uncovered {
        let recomputed = replay()?;
        if recomputed.len() != datasets.len() {
            return Err(FudjError::Execution(format!(
                "stage {stage} replay produced {} datasets, expected {}",
                recomputed.len(),
                datasets.len()
            )));
        }
        let mut total = 0u64;
        for ((_, parts), fresh) in datasets.iter_mut().zip(recomputed) {
            total += fresh.len() as u64;
            **parts = fresh;
        }
        rec.cells
            .partitions_recomputed
            .fetch_add(total, Ordering::Relaxed);
        rec.cells.full_stage_replays.fetch_add(1, Ordering::Relaxed);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_identity_while_all_active() {
        let m = Membership::new(4);
        for p in 0..16 {
            assert_eq!(m.route(p), p % 4);
        }
        assert_eq!(m.active_count(), 4);
    }

    #[test]
    fn dead_home_reroutes_only_its_partitions() {
        let m = Membership::new(4);
        let before: Vec<usize> = (0..16).map(|p| m.route(p)).collect();
        m.mark_dead(2);
        for (p, &was) in before.iter().enumerate() {
            let now = m.route(p);
            if p % 4 == 2 {
                assert_ne!(now, 2, "partition {p} must leave the dead worker");
                assert!(m.is_active(now));
            } else {
                assert_eq!(now, was, "unaffected partition {p} must not move");
            }
        }
    }

    #[test]
    fn rerouting_is_stable_per_partition() {
        let m = Membership::new(5);
        m.mark_dead(1);
        let a: Vec<usize> = (0..20).map(|p| m.route(p)).collect();
        let b: Vec<usize> = (0..20).map(|p| m.route(p)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn decommission_guards_last_worker_and_unknown_slots() {
        let m = Membership::new(2);
        m.decommission(0).unwrap();
        let err = m.decommission(1).unwrap_err();
        assert!(err.to_string().contains("last active"), "{err}");
        assert!(m.decommission(7).is_err());
        assert!(m.decommission(0).is_err(), "already decommissioned");
    }

    #[test]
    fn add_reactivates_the_freed_slot() {
        let m = Membership::new(3);
        m.decommission(1).unwrap();
        assert_eq!(m.active_count(), 2);
        assert_eq!(m.add().unwrap(), 1, "replacement adopts the freed slot");
        assert_eq!(m.active_count(), 3);
        let err = m.add().unwrap_err();
        assert!(err.to_string().contains("already active"), "{err}");
    }

    #[test]
    fn victim_pick_spares_the_last_survivor() {
        let m = Membership::new(2);
        assert!(m.pick_victim(12345).is_some());
        m.mark_dead(0);
        assert_eq!(m.pick_victim(12345), None);
    }

    #[test]
    fn quarantine_applies_only_at_batch_boundaries() {
        let m = Membership::new(3);
        m.set_quarantine_threshold(2);
        m.record_failure(1);
        assert!(m.is_active(1), "below threshold");
        m.record_failure(1);
        assert!(m.is_active(1), "pending until the coordinator applies it");
        assert_eq!(m.apply_pending(), 1);
        assert!(!m.is_active(1));
        assert_eq!(
            m.snapshot()[1],
            WorkerInfo {
                worker: 1,
                state: WorkerState::Quarantined,
                failures: 2
            }
        );
        assert_eq!(m.apply_pending(), 0, "idempotent");
    }

    #[test]
    fn quarantine_never_empties_the_cluster() {
        let m = Membership::new(2);
        m.set_quarantine_threshold(1);
        m.record_failure(0);
        m.record_failure(1);
        assert_eq!(m.apply_pending(), 1, "one survivor is spared");
        assert_eq!(m.active_count(), 1);
    }

    #[test]
    fn zero_threshold_disables_the_breaker() {
        let m = Membership::new(2);
        for _ in 0..100 {
            m.record_failure(0);
        }
        assert_eq!(m.apply_pending(), 0);
        assert!(m.is_active(0));
        assert_eq!(m.snapshot()[0].failures, 100);
    }

    #[test]
    fn next_active_skips_inactive_slots() {
        let m = Membership::new(4);
        m.mark_dead(1);
        m.mark_dead(2);
        assert_eq!(m.next_active_after(0), 3);
        assert_eq!(m.next_active_after(3), 0);
    }

    #[test]
    fn attach_is_none_when_nothing_is_armed() {
        let shared = Arc::new(ClusterRecovery::new(3));
        assert!(shared.attach(None).is_none());
        assert!(
            shared
                .attach(Some(&fudj_core::FaultConfig::chaos(1)))
                .is_none(),
            "chaos without deaths needs no recovery layer"
        );
        assert!(shared
            .attach(Some(&fudj_core::FaultConfig::chaos_with_deaths(1)))
            .is_some());
        shared.set_policy(CheckpointPolicy::All);
        assert!(shared.attach(None).is_some());
    }

    #[test]
    fn attach_engages_once_membership_shrinks() {
        let shared = Arc::new(ClusterRecovery::new(3));
        shared.membership().decommission(2).unwrap();
        assert!(
            shared.attach(None).is_some(),
            "routing must consult membership after a decommission"
        );
    }
}
