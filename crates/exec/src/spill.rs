//! Memory-adaptive hybrid-hash spilling for the COMBINE phase.
//!
//! When a worker's tagged inputs exceed [`crate::FudjJoinNode`]'s
//! `memory_budget_rows`, the join grace-partitions them — but naive grace
//! partitioning (hash everything to disk, then join sub-partition by
//! sub-partition) pays a full write+read of both sides even when most of
//! the input would have fit in memory, and a fixed fan-out leaves
//! over-budget sub-partitions behind on skewed data. This module is the
//! dynamic hybrid hash join the AsterixDB lineage uses instead (*Design
//! Trade-offs for a Robust Dynamic Hybrid Hash Join*, see PAPERS.md):
//!
//! * **Adaptive resident set.** Rows are hashed by bucket id into
//!   [`SpillConfig::fanout`] sub-partitions which all start memory-
//!   resident. Whenever the working set (slot memory plus unflushed write
//!   buffers) exceeds the budget, the *largest* resident sub-partition is
//!   evicted to a spill file — so on a Zipf-skewed input the hot
//!   sub-partitions go to disk and the long tail stays in memory, and a
//!   budget just below the input size spills almost nothing.
//! * **Bounded write buffers.** Spilled rows stream through a per-file
//!   buffer flushed every [`SpillConfig::write_batch_rows`] rows. Nothing
//!   ever buffers a whole side: the working set is bounded by
//!   `budget + 1` rows at every step, by construction.
//! * **Recursive repartitioning.** A spilled sub-partition that still
//!   exceeds the budget is re-read and repartitioned with a depth-salted
//!   hash (so the same keys split differently at each level), up to
//!   [`SpillConfig::recursion_limit`] levels.
//! * **Block-nested-loop fallback.** At the depth cap — or when a
//!   sub-partition holds a single hot bucket that no rehashing can ever
//!   split — the pair is joined block-against-block in budget-sized
//!   chunks instead of erroring. Splitting a bucket's rows across blocks
//!   preserves the logical counters exactly: the matched bucket pairs are
//!   the same, and per pair Σᵢⱼ |L∩blockᵢ|·|R∩blockⱼ| = |L|·|R| `verify`
//!   calls, while dedup decisions are per-pair and thus unchanged.
//!
//! Every spill file is owned by an RAII [`SpillFile`] guard that unlinks
//! it on drop, so an error anywhere mid-join (a UDF violation under
//! FailFast, an I/O failure) leaves no `fudj-spill-*` litter behind.
//!
//! Only default-match joins take the hybrid-hash path: their matches
//! never cross bucket-hash sub-partitions, so the union of
//! per-sub-partition joins is exactly the in-memory join. Theta joins
//! (matches span partitions) spill through [`theta_bnl_join`] instead:
//! both sides stream to disk whole and join block against block, which
//! is sound for any match predicate.

use crate::exchange;
use crate::fudj_join::{bucket_of, join_worker_partition, CombineContext};
use bytes::{Buf, BytesMut};
use fudj_core::BucketId;
use fudj_types::{wire, FudjError, Result, Row};
use std::fs::File;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Tuning knobs of the hybrid-hash spill path. Defaults are deliberately
/// modest; `SET spill_fanout` / `SET spill_recursion_limit` override them
/// per session or per query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpillConfig {
    /// Sub-partitions per partitioning pass (minimum 2).
    pub fanout: usize,
    /// Maximum recursive repartitioning depth before the block-nested-loop
    /// fallback takes over (0 = never recurse).
    pub recursion_limit: usize,
    /// Rows accumulated in a spill-file write buffer before it is flushed.
    pub write_batch_rows: usize,
}

impl Default for SpillConfig {
    fn default() -> Self {
        SpillConfig {
            fanout: 16,
            recursion_limit: 4,
            write_batch_rows: 128,
        }
    }
}

/// Counters of one spilling COMBINE task, folded into
/// [`crate::metrics::QueryMetrics`] via `record_spill_run` on success.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpillStats {
    /// Rows written to spill files (eviction + streamed arrivals).
    pub spilled_rows: u64,
    /// Bytes written to spill files.
    pub spilled_bytes: u64,
    /// Sub-partitions that stayed memory-resident end to end.
    pub resident_partitions: u64,
    /// Sub-partitions that went to disk.
    pub spilled_partitions: u64,
    /// Partitioning passes (1 plus one per recursive repartition).
    pub passes: u64,
    /// Deepest recursion level reached (0 = first pass only).
    pub max_depth: u64,
    /// Sub-partitions joined by the block-nested-loop fallback.
    pub bnl_fallbacks: u64,
    /// High-water mark of rows held resident at once (slot memory plus
    /// unflushed write buffers, or one readback / block pair downstream).
    pub peak_resident_rows: u64,
}

/// Owns one spill file's path and unlinks it on drop — the cleanup guard
/// that makes every error path leak-free.
struct SpillFile {
    path: PathBuf,
}

impl Drop for SpillFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Process-unique sequence for spill file names.
static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

fn io_err(what: &str, e: std::io::Error) -> FudjError {
    FudjError::Execution(format!("spill {what} failed: {e}"))
}

/// One side's bounded spill writer: rows are length-prefix encoded into a
/// small buffer and flushed every [`SpillConfig::write_batch_rows`] rows
/// (or whenever the caller needs the working set reduced).
struct SideWriter {
    guard: SpillFile,
    file: File,
    buf: BytesMut,
    /// Rows currently encoded in `buf` but not yet on disk.
    buffered_rows: usize,
    /// Total rows written through this writer (buffered included).
    rows: u64,
    /// Total bytes flushed to disk so far.
    bytes: u64,
}

impl SideWriter {
    fn create(depth: usize, part: usize, side: usize) -> Result<Self> {
        let seq = SPILL_SEQ.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "fudj-spill-{}-{seq}-d{depth}-p{part}-s{side}.bin",
            std::process::id()
        ));
        let file = File::create(&path).map_err(|e| io_err("create", e))?;
        Ok(SideWriter {
            guard: SpillFile { path },
            file,
            buf: BytesMut::new(),
            buffered_rows: 0,
            rows: 0,
            bytes: 0,
        })
    }

    /// Append one row to the write buffer (length-prefixed so the reader
    /// can stream frames back without decoding partial rows).
    fn push(&mut self, row: &Row) {
        let start = self.buf.len();
        self.buf.extend_from_slice(&[0u8; 4]);
        wire::encode_row(row, &mut self.buf);
        let frame = (self.buf.len() - start - 4) as u32;
        self.buf[start..start + 4].copy_from_slice(&frame.to_le_bytes());
        self.buffered_rows += 1;
        self.rows += 1;
    }

    fn flush(&mut self) -> Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        self.file
            .write_all(&self.buf)
            .map_err(|e| io_err("write", e))?;
        self.bytes += self.buf.len() as u64;
        self.buf.clear();
        self.buffered_rows = 0;
        Ok(())
    }

    /// Flush and close, keeping the RAII guard (and totals) alive.
    fn finish(mut self) -> Result<ClosedSide> {
        self.flush()?;
        Ok(ClosedSide {
            guard: self.guard,
            rows: self.rows,
            bytes: self.bytes,
        })
    }
}

/// A finished spill file: totals plus the guard that deletes it on drop.
struct ClosedSide {
    guard: SpillFile,
    rows: u64,
    bytes: u64,
}

impl ClosedSide {
    fn path(&self) -> &Path {
        &self.guard.path
    }
}

/// Streaming reader over a spill file's length-prefixed frames — decodes
/// one row at a time from fixed-size read chunks, never the whole file.
struct SpillReader {
    file: File,
    buf: BytesMut,
}

const READ_CHUNK: usize = 64 * 1024;

impl SpillReader {
    fn open(path: &Path) -> Result<Self> {
        Ok(SpillReader {
            file: File::open(path).map_err(|e| io_err("open", e))?,
            buf: BytesMut::new(),
        })
    }

    /// Pull up to `n` rows into a vector (empty at end of file).
    fn read_block(&mut self, n: usize) -> Result<Vec<Row>> {
        let mut out = Vec::new();
        while out.len() < n {
            match self.next() {
                Some(row) => out.push(row?),
                None => break,
            }
        }
        Ok(out)
    }
}

impl Iterator for SpillReader {
    type Item = Result<Row>;

    fn next(&mut self) -> Option<Result<Row>> {
        loop {
            if self.buf.len() >= 4 {
                let frame = u32::from_le_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]])
                    as usize;
                if self.buf.len() >= 4 + frame {
                    let mut bytes = self.buf.split_to(4 + frame).freeze();
                    bytes.advance(4);
                    return Some(wire::decode_row(&mut bytes));
                }
            }
            let mut chunk = [0u8; READ_CHUNK];
            match self.file.read(&mut chunk) {
                Ok(0) => {
                    if self.buf.is_empty() {
                        return None;
                    }
                    return Some(Err(FudjError::Execution(
                        "spill file truncated mid-frame".into(),
                    )));
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) => return Some(Err(io_err("read", e))),
            }
        }
    }
}

/// Depth-salted sub-partition hash: each recursion level permutes the
/// bucket→slot mapping (a splitmix64 finalizer over the routing hash XOR a
/// level salt), so an over-budget sub-partition actually splits on the
/// next pass instead of rehashing into a single slot again.
fn part_hash(bucket: BucketId, depth: usize) -> u64 {
    let mut x =
        exchange::route_hash(&bucket) ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(depth as u64 + 1);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// One sub-partition's in-flight state during a partitioning pass.
struct Slot {
    /// Memory-resident rows, per side (left = 0, right = 1).
    mem: [Vec<Row>; 2],
    /// Writers once evicted; `None` while resident.
    writers: Option<[SideWriter; 2]>,
    /// First bucket id routed here, and whether a second one followed —
    /// a single-bucket sub-partition can never be split by rehashing, so
    /// it goes straight to the block-nested-loop fallback.
    bucket: Option<BucketId>,
    multi_bucket: bool,
}

impl Slot {
    fn new() -> Self {
        Slot {
            mem: [Vec::new(), Vec::new()],
            writers: None,
            bucket: None,
            multi_bucket: false,
        }
    }

    fn mem_rows(&self) -> usize {
        self.mem[0].len() + self.mem[1].len()
    }

    fn buffered_rows(&self) -> usize {
        self.writers
            .as_ref()
            .map(|ws| ws[0].buffered_rows + ws[1].buffered_rows)
            .unwrap_or(0)
    }
}

/// Entry point: hybrid-hash join one over-budget worker partition.
/// Records the task's spill counters into the metrics on success; on any
/// error the RAII guards have already unlinked every spill file.
pub(crate) fn hybrid_hash_join(
    ctx: &CombineContext<'_>,
    lrows: Vec<Row>,
    rrows: Vec<Row>,
    budget: usize,
    cfg: &SpillConfig,
) -> Result<Vec<Row>> {
    let mut stats = SpillStats::default();
    let mut out = Vec::new();
    pass(
        ctx,
        lrows.into_iter().map(Ok as fn(Row) -> Result<Row>),
        rrows.into_iter().map(Ok as fn(Row) -> Result<Row>),
        budget,
        0,
        cfg,
        &mut stats,
        &mut out,
    )?;
    ctx.metrics.record_spill_run(&stats);
    Ok(out)
}

/// Entry point for over-budget *theta* joins: matches span bucket-hash
/// sub-partitions, so hash grace-partitioning is unsound for them —
/// instead both sides stream to disk whole and join block against block
/// within the budget. Each (left row, right row) pair is considered in
/// exactly one block pair, so the union over blocks is exactly the
/// in-memory theta join and the logical counters are preserved (see
/// [`block_nested_join`]).
pub(crate) fn theta_bnl_join(
    ctx: &CombineContext<'_>,
    lrows: Vec<Row>,
    rrows: Vec<Row>,
    budget: usize,
    cfg: &SpillConfig,
) -> Result<Vec<Row>> {
    let batch = cfg.write_batch_rows.max(1);
    let spill_side = |rows: Vec<Row>, side: usize| -> Result<ClosedSide> {
        let mut w = SideWriter::create(0, 0, side)?;
        for row in rows {
            w.push(&row);
            if w.buffered_rows >= batch {
                w.flush()?;
            }
        }
        w.finish()
    };
    let lc = spill_side(lrows, 0)?;
    let rc = spill_side(rrows, 1)?;
    let mut stats = SpillStats {
        passes: 1,
        spilled_partitions: 1,
        spilled_rows: lc.rows + rc.rows,
        spilled_bytes: lc.bytes + rc.bytes,
        bnl_fallbacks: 1,
        ..SpillStats::default()
    };
    let mut out = Vec::new();
    if lc.rows > 0 && rc.rows > 0 {
        block_nested_join(ctx, &lc, &rc, budget, &mut stats, &mut out)?;
    }
    ctx.metrics.record_spill_run(&stats);
    Ok(out)
}

/// One partitioning pass at `depth`: stream both sides into fan-out
/// slots, evicting under budget pressure, then join resident slots in
/// memory and resolve spilled slots (direct readback, recursion, or the
/// block-nested-loop fallback).
#[allow(clippy::too_many_arguments)]
fn pass<I>(
    ctx: &CombineContext<'_>,
    left: I,
    right: I,
    budget: usize,
    depth: usize,
    cfg: &SpillConfig,
    stats: &mut SpillStats,
    out: &mut Vec<Row>,
) -> Result<()>
where
    I: Iterator<Item = Result<Row>>,
{
    stats.passes += 1;
    stats.max_depth = stats.max_depth.max(depth as u64);
    let fanout = cfg.fanout.max(2);
    let mut slots: Vec<Slot> = (0..fanout).map(|_| Slot::new()).collect();
    // Working-set accounting: `resident` rows live in slot memory,
    // `buffered` rows sit in unflushed write buffers. Their sum is what
    // the budget bounds.
    let mut resident = 0usize;
    let mut buffered = 0usize;

    for (side, rows) in [(0usize, left), (1usize, right)] {
        for row in rows {
            let row = row?;
            let b = bucket_of(&row)?;
            let p = (part_hash(b, depth) as usize) % fanout;
            {
                let slot = &mut slots[p];
                match slot.bucket {
                    None => slot.bucket = Some(b),
                    Some(first) if first != b => slot.multi_bucket = true,
                    _ => {}
                }
                if let Some(ws) = slot.writers.as_mut() {
                    ws[side].push(&row);
                    buffered += 1;
                } else {
                    slot.mem[side].push(row);
                    resident += 1;
                }
            }
            stats.peak_resident_rows = stats.peak_resident_rows.max((resident + buffered) as u64);
            // A spilled slot's buffer flushes once it holds a full batch.
            if slots[p].writers.is_some() && slots[p].buffered_rows() >= cfg.write_batch_rows {
                let ws = slots[p].writers.as_mut().expect("spilled slot has writers");
                buffered -= ws[0].buffered_rows + ws[1].buffered_rows;
                ws[0].flush()?;
                ws[1].flush()?;
            }
            // Shrink the working set back under the budget: evict the
            // largest resident slot first (skew-friendly — hot slots go
            // to disk, the tail stays resident), then flush the fullest
            // write buffer.
            while resident + buffered > budget {
                let victim = (0..fanout)
                    .filter(|&i| slots[i].writers.is_none() && slots[i].mem_rows() > 0)
                    .max_by_key(|&i| slots[i].mem_rows());
                if let Some(v) = victim {
                    resident -= evict(&mut slots[v], depth, v, cfg)?;
                } else {
                    let fullest = (0..fanout).max_by_key(|&i| slots[i].buffered_rows());
                    match fullest {
                        Some(f) if slots[f].buffered_rows() > 0 => {
                            let ws = slots[f]
                                .writers
                                .as_mut()
                                .expect("buffered slot has writers");
                            buffered -= ws[0].buffered_rows + ws[1].buffered_rows;
                            ws[0].flush()?;
                            ws[1].flush()?;
                        }
                        _ => break, // nothing left to shed
                    }
                }
            }
        }
    }

    // Resident slots: join in memory, the hybrid-hash payoff.
    for slot in slots.iter_mut().filter(|s| s.writers.is_none()) {
        if slot.mem_rows() == 0 {
            continue;
        }
        stats.resident_partitions += 1;
        let l = std::mem::take(&mut slot.mem[0]);
        let r = std::mem::take(&mut slot.mem[1]);
        if !l.is_empty() && !r.is_empty() {
            out.extend(join_worker_partition(ctx, l, r)?);
        }
    }

    // Spilled slots: read back within budget, recurse, or fall back.
    for slot in slots.iter_mut() {
        let Some([lw, rw]) = slot.writers.take() else {
            continue;
        };
        let lc = lw.finish()?;
        let rc = rw.finish()?;
        stats.spilled_partitions += 1;
        stats.spilled_rows += lc.rows + rc.rows;
        stats.spilled_bytes += lc.bytes + rc.bytes;
        if lc.rows == 0 || rc.rows == 0 {
            // Default-match: a side with no rows here matches nothing.
            continue;
        }
        let total = (lc.rows + rc.rows) as usize;
        if total <= budget.max(1) {
            let l = SpillReader::open(lc.path())?.read_block(usize::MAX)?;
            let r = SpillReader::open(rc.path())?.read_block(usize::MAX)?;
            stats.peak_resident_rows = stats.peak_resident_rows.max(total as u64);
            out.extend(join_worker_partition(ctx, l, r)?);
        } else if depth >= cfg.recursion_limit || !slot.multi_bucket {
            stats.bnl_fallbacks += 1;
            block_nested_join(ctx, &lc, &rc, budget, stats, out)?;
        } else {
            pass(
                ctx,
                SpillReader::open(lc.path())?,
                SpillReader::open(rc.path())?,
                budget,
                depth + 1,
                cfg,
                stats,
                out,
            )?;
        }
        // `lc`/`rc` drop here: both files unlinked.
    }
    Ok(())
}

/// Evict a resident slot to disk: create its writers and stream its rows
/// out in write-batch-sized flushes. Returns the number of rows freed.
fn evict(slot: &mut Slot, depth: usize, part: usize, cfg: &SpillConfig) -> Result<usize> {
    let mut writers = [
        SideWriter::create(depth, part, 0)?,
        SideWriter::create(depth, part, 1)?,
    ];
    let freed = slot.mem_rows();
    let batch = cfg.write_batch_rows.max(1);
    for (side, w) in writers.iter_mut().enumerate() {
        for row in slot.mem[side].drain(..) {
            w.push(&row);
            if w.buffered_rows >= batch {
                w.flush()?;
            }
        }
        w.flush()?;
    }
    slot.writers = Some(writers);
    Ok(freed)
}

/// Block-nested-loop fallback: join two over-budget spill files block
/// against block, each block at most half the budget. Correct for any
/// default-match join because matched bucket pairs and their group-size
/// products are preserved exactly across the block grid (see module docs).
fn block_nested_join(
    ctx: &CombineContext<'_>,
    lc: &ClosedSide,
    rc: &ClosedSide,
    budget: usize,
    stats: &mut SpillStats,
    out: &mut Vec<Row>,
) -> Result<()> {
    let block = (budget / 2).max(1);
    let mut lr = SpillReader::open(lc.path())?;
    loop {
        let lblock = lr.read_block(block)?;
        if lblock.is_empty() {
            break;
        }
        let mut rr = SpillReader::open(rc.path())?;
        loop {
            let rblock = rr.read_block(block)?;
            if rblock.is_empty() {
                break;
            }
            stats.peak_resident_rows = stats
                .peak_resident_rows
                .max((lblock.len() + rblock.len()) as u64);
            out.extend(join_worker_partition(ctx, lblock.clone(), rblock)?);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fudj_types::Value;

    fn tagged_row(id: i64, bucket: i64) -> Row {
        Row::new(vec![Value::Int64(id), Value::Int64(bucket)])
    }

    #[test]
    fn writer_reader_roundtrip_streams_frames() {
        let mut w = SideWriter::create(0, 0, 0).unwrap();
        let rows: Vec<Row> = (0..500).map(|i| tagged_row(i, i % 7)).collect();
        for row in &rows {
            w.push(row);
            if w.buffered_rows >= 64 {
                w.flush().unwrap();
            }
        }
        let closed = w.finish().unwrap();
        assert_eq!(closed.rows, 500);
        assert!(closed.bytes > 0);
        let back: Result<Vec<Row>> = SpillReader::open(closed.path()).unwrap().collect();
        assert_eq!(back.unwrap(), rows);
    }

    #[test]
    fn spill_file_guard_unlinks_on_drop() {
        let w = SideWriter::create(3, 1, 0).unwrap();
        let path = w.guard.path.clone();
        assert!(path.exists());
        drop(w);
        assert!(!path.exists(), "dropping the writer must unlink its file");
    }

    #[test]
    fn read_block_honors_limit_and_drains() {
        let mut w = SideWriter::create(0, 0, 1).unwrap();
        for i in 0..10 {
            w.push(&tagged_row(i, 0));
        }
        let closed = w.finish().unwrap();
        let mut r = SpillReader::open(closed.path()).unwrap();
        assert_eq!(r.read_block(4).unwrap().len(), 4);
        assert_eq!(r.read_block(4).unwrap().len(), 4);
        assert_eq!(r.read_block(4).unwrap().len(), 2);
        assert!(r.read_block(4).unwrap().is_empty());
    }

    #[test]
    fn depth_salt_changes_partitioning() {
        // The whole point of the salt: a set of buckets colliding into one
        // slot at depth d must spread at depth d+1.
        let fanout = 8usize;
        let buckets: Vec<BucketId> = (0..64).map(|b| b as BucketId).collect();
        let spread = |depth: usize| -> std::collections::HashSet<usize> {
            buckets
                .iter()
                .map(|&b| (part_hash(b, depth) as usize) % fanout)
                .collect()
        };
        let d0 = spread(0);
        let d1 = spread(1);
        assert!(d0.len() > 1 && d1.len() > 1);
        let moved = buckets
            .iter()
            .filter(|&&b| {
                (part_hash(b, 0) as usize) % fanout != (part_hash(b, 1) as usize) % fanout
            })
            .count();
        assert!(moved > 0, "depth salt must remap at least some buckets");
    }
}
