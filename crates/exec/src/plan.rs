//! Physical plans: the operator tree the [`crate::Cluster`] executes.
//!
//! Predicates, projections, and aggregate inputs arrive as compiled
//! closures: the planner crate lowers its expression trees into these, which
//! keeps this crate free of any expression language and the hot loops free
//! of interpretation overhead beyond one indirect call.

use fudj_core::EngineJoin;
use fudj_storage::Dataset;
use fudj_types::{DataType, Field, Result, Row, Schema, SchemaRef, Value};
use std::fmt;
use std::sync::Arc;

/// Compiled row predicate (filters, NLJ join conditions applied post-concat).
pub type RowPredicate = Arc<dyn Fn(&Row) -> Result<bool> + Send + Sync>;

/// Compiled row transformation (projections, computed columns).
pub type RowMapper = Arc<dyn Fn(&Row) -> Result<Row> + Send + Sync>;

/// Compiled two-row join predicate (the on-top NLJ's UDF condition).
pub type JoinPredicate = Arc<dyn Fn(&Row, &Row) -> Result<bool> + Send + Sync>;

/// Comparison operator of a vectorized filter kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
}

impl CmpOp {
    /// Whether an `Ordering` of `column <cmp> literal` satisfies this op.
    pub fn matches(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::NotEq => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::LtEq => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::GtEq => ord != Less,
        }
    }

    /// SQL-ish spelling, for EXPLAIN output.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::NotEq => "<>",
            CmpOp::Lt => "<",
            CmpOp::LtEq => "<=",
            CmpOp::Gt => ">",
            CmpOp::GtEq => ">=",
        }
    }
}

/// One `column <op> literal` comparison of a vectorized filter. Semantics
/// are [`Value`]'s total order — exactly what the planner's interpreted
/// `eval_binary` uses — so row and columnar evaluation agree bit-for-bit.
#[derive(Clone, Debug)]
pub struct ColumnCompare {
    pub column: usize,
    pub op: CmpOp,
    pub literal: Value,
}

impl ColumnCompare {
    /// Evaluate against one row (the row-mode kernel).
    pub fn eval_row(&self, row: &Row) -> bool {
        self.op.matches(row.get(self.column).cmp(&self.literal))
    }
}

/// Aggregate function kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(*)` when `input` is `None`, else `COUNT(col)` over non-nulls.
    Count,
    Sum,
    Min,
    Max,
    Avg,
}

/// One aggregate column spec.
#[derive(Clone, Debug)]
pub struct Aggregate {
    pub func: AggFunc,
    /// Input column index; `None` only for `Count` (star form).
    pub input: Option<usize>,
    /// Output column name.
    pub name: String,
}

impl Aggregate {
    /// `COUNT(*) AS name`.
    pub fn count_star(name: impl Into<String>) -> Self {
        Aggregate {
            func: AggFunc::Count,
            input: None,
            name: name.into(),
        }
    }

    /// `func(column) AS name`.
    pub fn on(func: AggFunc, column: usize, name: impl Into<String>) -> Self {
        Aggregate {
            func,
            input: Some(column),
            name: name.into(),
        }
    }

    /// Output type of this aggregate.
    pub fn output_type(&self, input_schema: &Schema) -> DataType {
        match self.func {
            AggFunc::Count => DataType::Int64,
            AggFunc::Avg => DataType::Float64,
            AggFunc::Sum => match self.input.map(|i| &input_schema.fields()[i].data_type) {
                Some(DataType::Float64) => DataType::Float64,
                _ => DataType::Int64,
            },
            AggFunc::Min | AggFunc::Max => self
                .input
                .map(|i| input_schema.fields()[i].data_type.clone())
                .unwrap_or(DataType::Null),
        }
    }
}

/// How a worker matches its local buckets during COMBINE (§III-B's local
/// optimization space; `SortMerge` is the paper's §VIII "sort-merge-based
/// joins" future work).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CombineStrategy {
    /// Group rows by bucket in a hash map (the default).
    #[default]
    HashGroup,
    /// Sort rows by bucket id and merge matching runs — no hash table,
    /// lower memory footprint, sequential access.
    SortMerge,
}

/// One sort key.
#[derive(Clone, Copy, Debug)]
pub struct SortKey {
    pub column: usize,
    pub descending: bool,
}

impl SortKey {
    /// Ascending sort on a column.
    pub fn asc(column: usize) -> Self {
        SortKey {
            column,
            descending: false,
        }
    }

    /// Descending sort on a column.
    pub fn desc(column: usize) -> Self {
        SortKey {
            column,
            descending: true,
        }
    }
}

/// The FUDJ distributed join node — the physical rendering of Fig. 8.
pub struct FudjJoinNode {
    pub left: Box<PhysicalPlan>,
    pub right: Box<PhysicalPlan>,
    /// The join strategy: a FUDJ library behind [`fudj_core::FudjEngineJoin`]
    /// or a hand-built operator.
    pub join: Arc<dyn EngineJoin>,
    /// Join-key column index in the left input.
    pub left_key: usize,
    /// Join-key column index in the right input.
    pub right_key: usize,
    /// Query-time parameters forwarded to `divide`.
    pub params: Vec<Value>,
    /// Set by the optimizer when both inputs are identical and the join is
    /// symmetric: evaluate and summarize the input once (§VI-C).
    pub self_join: bool,
    /// Local bucket-matching strategy.
    pub combine: CombineStrategy,
    /// When set, a worker whose tagged rows exceed this budget runs the
    /// memory-adaptive hybrid-hash COMBINE: as many sub-partitions as fit
    /// stay resident, the rest stream to spill files — §III-B's "memory
    /// budget-aware operators that can spill to the disk". Applies to
    /// default-match joins.
    pub memory_budget_rows: Option<usize>,
    /// Hybrid-hash tuning (fan-out, recursion cap, write batch).
    pub spill: crate::spill::SpillConfig,
    schema: SchemaRef,
}

impl FudjJoinNode {
    /// Build a FUDJ join node; the output schema is `left ⨝ right`.
    pub fn new(
        left: PhysicalPlan,
        right: PhysicalPlan,
        join: Arc<dyn EngineJoin>,
        left_key: usize,
        right_key: usize,
        params: Vec<Value>,
    ) -> Self {
        let schema = Arc::new(left.schema().join(&right.schema()));
        FudjJoinNode {
            left: Box::new(left),
            right: Box::new(right),
            join,
            left_key,
            right_key,
            params,
            self_join: false,
            combine: CombineStrategy::default(),
            memory_budget_rows: None,
            spill: crate::spill::SpillConfig::default(),
            schema,
        }
    }

    /// Output schema.
    pub fn schema(&self) -> SchemaRef {
        self.schema.clone()
    }
}

/// A physical operator tree.
pub enum PhysicalPlan {
    /// Scan a stored dataset.
    Scan { dataset: Arc<Dataset> },
    /// Keep rows satisfying the predicate.
    Filter {
        input: Box<PhysicalPlan>,
        predicate: RowPredicate,
    },
    /// Planner-compiled filter: a conjunction of `column <op> literal`
    /// comparisons. Row mode evaluates per row; columnar mode builds a
    /// selection bitmap over typed column strides. Both agree with the
    /// closure a [`PhysicalPlan::Filter`] would have carried.
    VecFilter {
        input: Box<PhysicalPlan>,
        compares: Vec<ColumnCompare>,
    },
    /// Planner-compiled projection: pure column selection/reorder with no
    /// computed expressions, vectorizable as whole-column moves.
    VecProject {
        input: Box<PhysicalPlan>,
        columns: Vec<usize>,
        schema: SchemaRef,
    },
    /// Map every row (projection / computed columns).
    Project {
        input: Box<PhysicalPlan>,
        mapper: RowMapper,
        schema: SchemaRef,
    },
    /// The FUDJ distributed join.
    FudjJoin(FudjJoinNode),
    /// On-top baseline: broadcast right side, nested loop with a predicate.
    NlJoin {
        left: Box<PhysicalPlan>,
        right: Box<PhysicalPlan>,
        predicate: JoinPredicate,
    },
    /// Two-step hash aggregation.
    HashAggregate {
        input: Box<PhysicalPlan>,
        group_by: Vec<usize>,
        aggregates: Vec<Aggregate>,
    },
    /// Global sort (gathers to one worker).
    Sort {
        input: Box<PhysicalPlan>,
        keys: Vec<SortKey>,
    },
    /// Keep the first `limit` rows (after any sort).
    Limit {
        input: Box<PhysicalPlan>,
        limit: usize,
    },
}

impl PhysicalPlan {
    /// The operator's output schema.
    pub fn schema(&self) -> SchemaRef {
        match self {
            PhysicalPlan::Scan { dataset } => dataset.schema().clone(),
            PhysicalPlan::Filter { input, .. } => input.schema(),
            PhysicalPlan::VecFilter { input, .. } => input.schema(),
            PhysicalPlan::VecProject { schema, .. } => schema.clone(),
            PhysicalPlan::Project { schema, .. } => schema.clone(),
            PhysicalPlan::FudjJoin(node) => node.schema(),
            PhysicalPlan::NlJoin { left, right, .. } => {
                Arc::new(left.schema().join(&right.schema()))
            }
            PhysicalPlan::HashAggregate {
                input,
                group_by,
                aggregates,
            } => {
                let in_schema = input.schema();
                let mut fields: Vec<Field> = group_by
                    .iter()
                    .map(|&i| in_schema.fields()[i].clone())
                    .collect();
                for agg in aggregates {
                    fields.push(Field::new(agg.name.clone(), agg.output_type(&in_schema)));
                }
                Arc::new(Schema::new(fields))
            }
            PhysicalPlan::Sort { input, .. } => input.schema(),
            PhysicalPlan::Limit { input, .. } => input.schema(),
        }
    }

    /// Render the plan tree, one operator per line (EXPLAIN-style).
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(0, &mut out);
        out
    }

    fn explain_into(&self, depth: usize, out: &mut String) {
        use std::fmt::Write;
        let pad = "  ".repeat(depth);
        match self {
            PhysicalPlan::Scan { dataset } => {
                let _ = writeln!(out, "{pad}DataScan [{}]", dataset.name());
            }
            PhysicalPlan::Filter { input, .. } => {
                let _ = writeln!(out, "{pad}Filter");
                input.explain_into(depth + 1, out);
            }
            PhysicalPlan::VecFilter { input, compares } => {
                let cs: Vec<String> = compares
                    .iter()
                    .map(|c| format!("#{} {} {}", c.column, c.op.symbol(), c.literal))
                    .collect();
                let _ = writeln!(out, "{pad}VecFilter [{}]", cs.join(" and "));
                input.explain_into(depth + 1, out);
            }
            PhysicalPlan::VecProject { input, columns, .. } => {
                let cs: Vec<String> = columns.iter().map(|c| format!("#{c}")).collect();
                let _ = writeln!(out, "{pad}VecProject [{}]", cs.join(", "));
                input.explain_into(depth + 1, out);
            }
            PhysicalPlan::Project { input, schema, .. } => {
                let _ = writeln!(out, "{pad}Project [{schema}]");
                input.explain_into(depth + 1, out);
            }
            PhysicalPlan::FudjJoin(node) => {
                let match_kind = if node.join.uses_default_match() {
                    "hash"
                } else {
                    "theta-nlj"
                };
                let _ = writeln!(
                    out,
                    "{pad}FudjJoin [{} | match: {match_kind} | dedup: {:?}{}]",
                    node.join.name(),
                    node.join.dedup_mode(),
                    if node.self_join {
                        " | self-join: summarize once"
                    } else {
                        ""
                    },
                );
                node.left.explain_into(depth + 1, out);
                node.right.explain_into(depth + 1, out);
            }
            PhysicalPlan::NlJoin { left, right, .. } => {
                let _ = writeln!(out, "{pad}NestedLoopJoin [on-top UDF predicate]");
                left.explain_into(depth + 1, out);
                right.explain_into(depth + 1, out);
            }
            PhysicalPlan::HashAggregate {
                input,
                group_by,
                aggregates,
            } => {
                let aggs: Vec<&str> = aggregates.iter().map(|a| a.name.as_str()).collect();
                let _ = writeln!(out, "{pad}HashAggregate [group by {group_by:?}; {aggs:?}]");
                input.explain_into(depth + 1, out);
            }
            PhysicalPlan::Sort { input, keys } => {
                let ks: Vec<String> = keys
                    .iter()
                    .map(|k| format!("#{}{}", k.column, if k.descending { " desc" } else { "" }))
                    .collect();
                let _ = writeln!(out, "{pad}Sort [{}]", ks.join(", "));
                input.explain_into(depth + 1, out);
            }
            PhysicalPlan::Limit { input, limit } => {
                let _ = writeln!(out, "{pad}Limit [{limit}]");
                input.explain_into(depth + 1, out);
            }
        }
    }
}

impl fmt::Debug for PhysicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.explain())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fudj_storage::DatasetBuilder;

    fn scan() -> PhysicalPlan {
        let schema = Schema::shared(vec![
            Field::new("id", DataType::Uuid),
            Field::new("v", DataType::Int64),
        ]);
        PhysicalPlan::Scan {
            dataset: Arc::new(DatasetBuilder::new("t", schema).build().unwrap()),
        }
    }

    #[test]
    fn aggregate_schema() {
        let plan = PhysicalPlan::HashAggregate {
            input: Box::new(scan()),
            group_by: vec![0],
            aggregates: vec![
                Aggregate::count_star("c"),
                Aggregate::on(AggFunc::Avg, 1, "avg_v"),
                Aggregate::on(AggFunc::Max, 1, "max_v"),
            ],
        };
        let s = plan.schema();
        assert_eq!(
            s.to_string(),
            "id: uuid, c: bigint, avg_v: double, max_v: bigint"
        );
    }

    #[test]
    fn filter_preserves_schema() {
        let plan = PhysicalPlan::Filter {
            input: Box::new(scan()),
            predicate: Arc::new(|_| Ok(true)),
        };
        assert_eq!(plan.schema().len(), 2);
    }

    #[test]
    fn explain_renders_tree() {
        let plan = PhysicalPlan::Limit {
            input: Box::new(PhysicalPlan::Sort {
                input: Box::new(scan()),
                keys: vec![SortKey::desc(1)],
            }),
            limit: 10,
        };
        let text = plan.explain();
        assert!(text.contains("Limit [10]"));
        assert!(text.contains("Sort [#1 desc]"));
        assert!(text.contains("DataScan [t]"));
    }
}
