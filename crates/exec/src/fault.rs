//! Deterministic fault injection + recovery bookkeeping for the exec layer.
//!
//! A [`FaultContext`] wraps a [`FaultConfig`] (the seed + probabilities +
//! [`RetryPolicy`] knobs defined in `fudj-core`) and answers one question
//! for every injection site: *does a fault happen here?* Sites are fully
//! identified by `(seed, step, worker, task-or-src/dst, attempt)`:
//!
//! * `step` is a per-query dispatch counter taken by the coordinator at
//!   the start of every pool batch and every exchange — the coordinator
//!   drives those sequentially, so the counter is reproducible;
//! * decisions are *pure functions* of the site (a fresh
//!   [`SmallRng`] seeded from the mixed site words), never draws from a
//!   shared stream — so worker-thread interleaving cannot perturb the
//!   schedule, and the same seed always yields the same faults, the same
//!   retries, and the same counters.
//!
//! The clock used by exponential backoff and straggler/speculation
//! accounting is *simulated* (a `u64` of milliseconds): recovery paths are
//! exercised without wall-clock sleeping, and no decision ever reads real
//! time or ambient randomness.
//!
//! Recovery itself lives where the work happens — the per-task retry loop
//! in [`crate::pool::WorkerPool::run_metered`], and
//! retransmission/sequence-dedup in the [`crate::exchange`] operators.
//! This module only decides and counts.

use fudj_core::FaultConfig;
use fudj_types::{FudjError, Result};
use rand::{rngs::SmallRng, Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};

/// Fault injected into one task attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TaskFault {
    /// The attempt panics (unwinds through the worker's catch path).
    Panic,
    /// The attempt fails with a retryable execution error.
    Transient,
    /// The worker running the attempt is lost; the task must be
    /// re-executed on a surviving worker.
    WorkerLoss,
}

/// Fault injected into one remote partition delivery attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeliveryFault {
    /// The partition never arrives (sender retransmits).
    Drop,
    /// The partition arrives twice (receiver discards the duplicate).
    Duplicate,
}

/// Counters for injected faults and the recovery work they triggered.
/// Deterministic per seed: two runs of the same query with the same
/// [`FaultConfig`] produce identical stats.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Task attempts that panicked by injection.
    pub injected_panics: u64,
    /// Task attempts that failed with an injected transient error.
    pub injected_transients: u64,
    /// Task attempts lost to an injected worker failure.
    pub injected_worker_losses: u64,
    /// Tasks slowed by an injected straggler delay.
    pub injected_stragglers: u64,
    /// Remote partition deliveries dropped by injection.
    pub dropped_deliveries: u64,
    /// Remote partition deliveries duplicated by injection.
    pub duplicated_deliveries: u64,
    /// Duplicate partition copies discarded by receiver sequence dedup.
    pub duplicates_discarded: u64,
    /// Task retries performed (all fault classes).
    pub task_retries: u64,
    /// Tasks re-executed on a different worker after a worker loss.
    pub reexecutions: u64,
    /// Tasks speculatively re-executed because they straggled past the
    /// policy threshold.
    pub speculations: u64,
    /// Partition retransmissions performed after drops.
    pub delivery_retries: u64,
    /// Failures that exhausted the retry budget and escalated.
    pub retry_exhaustions: u64,
    /// Simulated milliseconds spent in backoff + straggler delays.
    pub sim_clock_ms: u64,
}

impl FaultStats {
    /// Total faults injected across all classes.
    pub fn total_injected(&self) -> u64 {
        self.injected_panics
            + self.injected_transients
            + self.injected_worker_losses
            + self.injected_stragglers
            + self.dropped_deliveries
            + self.duplicated_deliveries
    }

    /// Total recovery actions taken (retries, re-executions, speculation,
    /// retransmissions).
    pub fn total_recoveries(&self) -> u64 {
        self.task_retries + self.reexecutions + self.speculations + self.delivery_retries
    }

    /// Whether any counter is non-zero.
    pub fn any(&self) -> bool {
        *self != FaultStats::default()
    }
}

/// Atomic accumulator behind one query's [`FaultStats`].
#[derive(Default)]
struct StatsCells {
    injected_panics: AtomicU64,
    injected_transients: AtomicU64,
    injected_worker_losses: AtomicU64,
    injected_stragglers: AtomicU64,
    dropped_deliveries: AtomicU64,
    duplicated_deliveries: AtomicU64,
    duplicates_discarded: AtomicU64,
    task_retries: AtomicU64,
    reexecutions: AtomicU64,
    speculations: AtomicU64,
    delivery_retries: AtomicU64,
    retry_exhaustions: AtomicU64,
    sim_clock_ms: AtomicU64,
}

/// Simulated base duration of one fault-free task, in milliseconds. Only
/// relative magnitudes matter: stragglers multiply this, and speculation
/// compares against the batch median.
pub const SIM_TASK_MS: u64 = 100;

/// Domain-separation salts so a task site and a delivery site with the
/// same numeric coordinates can never share a decision.
const SALT_TASK: u64 = 0x7461736b_66617532; // "task" / "fau2"
const SALT_STRAGGLER: u64 = 0x73747261_67676c65; // "straggle"
const SALT_DELIVERY: u64 = 0x64656c69_76657279; // "delivery"
const SALT_DEATH: u64 = 0x64656164_6e6f6465; // "deadnode"

/// One query's armed fault plan: configuration + deterministic decision
/// oracle + recovery counters + simulated clock.
pub struct FaultContext {
    config: FaultConfig,
    step: AtomicU64,
    stats: StatsCells,
}

impl std::fmt::Debug for FaultContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultContext")
            .field("config", &self.config)
            .field("stats", &self.stats())
            .finish()
    }
}

/// Mix site words into one seed (SplitMix64-style finalization per word).
fn mix(seed: u64, words: &[u64]) -> u64 {
    let mut h = seed;
    for &w in words {
        h ^= w
            .wrapping_add(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(h << 6)
            .wrapping_add(h >> 2);
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= h >> 31;
    }
    h
}

impl FaultContext {
    /// Arm a fault plan for one query execution.
    pub fn new(config: FaultConfig) -> Self {
        FaultContext {
            config,
            step: AtomicU64::new(0),
            stats: StatsCells::default(),
        }
    }

    /// The configuration this context was armed with.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Claim the next dispatch step. Called by the coordinator at the
    /// start of every pool batch / exchange, so the sequence is identical
    /// across runs of the same query.
    pub fn next_step(&self) -> u64 {
        self.step.fetch_add(1, Ordering::Relaxed)
    }

    /// Uniform `[0, 1)` roll for one site — a pure function of
    /// `(seed, salt, words)`.
    fn roll(&self, salt: u64, words: &[u64]) -> f64 {
        let mut rng = SmallRng::seed_from_u64(mix(self.config.seed ^ salt, words));
        rng.gen::<f64>()
    }

    /// Fault (if any) injected into attempt `attempt` of task `task` of
    /// dispatch `step`, running on `worker`. At most one fault per
    /// attempt; the classes partition one roll so their probabilities are
    /// exact and mutually exclusive.
    pub fn task_fault(
        &self,
        step: u64,
        worker: usize,
        task: usize,
        attempt: u32,
    ) -> Option<TaskFault> {
        let c = &self.config;
        let r = self.roll(
            SALT_TASK,
            &[step, worker as u64, task as u64, attempt as u64],
        );
        if r < c.panic_prob {
            Some(TaskFault::Panic)
        } else if r < c.panic_prob + c.worker_loss_prob {
            Some(TaskFault::WorkerLoss)
        } else if r < c.panic_prob + c.worker_loss_prob + c.transient_prob {
            Some(TaskFault::Transient)
        } else {
            None
        }
    }

    /// Whether a *permanent* worker death strikes at the stage boundary
    /// that claimed dispatch `step`. Unlike [`TaskFault::WorkerLoss`]
    /// (transient: the task re-executes and the worker keeps serving),
    /// a death removes the worker and its resident partitions for good —
    /// the recovery layer (`crate::recovery`) restores the lost
    /// partitions from checkpoints or replays the stage.
    ///
    /// Returns a deterministic victim-selector word when a death strikes;
    /// callers map it onto the currently-active worker set. Callers must
    /// only claim a dispatch step for this site when
    /// `worker_death_prob > 0`, so fault schedules of death-free configs
    /// stay bit-identical to earlier revisions.
    pub fn worker_death(&self, step: u64) -> Option<u64> {
        let p = self.config.worker_death_prob;
        if p <= 0.0 || self.roll(SALT_DEATH, &[step]) >= p {
            return None;
        }
        Some(mix(self.config.seed ^ SALT_DEATH, &[step, u64::MAX]))
    }

    /// Whether the (successful) execution of `task` on `worker` straggles.
    pub fn straggles(&self, step: u64, worker: usize, task: usize) -> bool {
        self.config.straggler_prob > 0.0
            && self.roll(SALT_STRAGGLER, &[step, worker as u64, task as u64])
                < self.config.straggler_prob
    }

    /// Fault (if any) injected into delivery attempt `attempt` of the
    /// partition travelling `src → dst` in dispatch `step`.
    pub fn delivery_fault(
        &self,
        step: u64,
        src: usize,
        dst: usize,
        attempt: u32,
    ) -> Option<DeliveryFault> {
        let c = &self.config;
        let r = self.roll(
            SALT_DELIVERY,
            &[step, src as u64, dst as u64, attempt as u64],
        );
        if r < c.drop_prob {
            Some(DeliveryFault::Drop)
        } else if r < c.drop_prob + c.duplicate_prob {
            Some(DeliveryFault::Duplicate)
        } else {
            None
        }
    }

    /// Resolve one remote partition delivery with recovery: dropped
    /// deliveries are retransmitted (with simulated backoff) until they
    /// arrive or the retry budget runs out; a duplicated delivery yields
    /// two copies for the receiver to dedup. Returns how many copies
    /// arrive (1 or 2).
    pub fn deliver(&self, step: u64, src: usize, dst: usize) -> Result<u32> {
        let mut attempt = 0u32;
        loop {
            match self.delivery_fault(step, src, dst, attempt) {
                Some(DeliveryFault::Drop) => {
                    self.count(&self.stats.dropped_deliveries);
                    if attempt >= self.config.retry.max_retries {
                        self.count(&self.stats.retry_exhaustions);
                        return Err(FudjError::Execution(format!(
                            "injected fault: partition {src} → {dst} lost; \
                             retry budget exhausted after {} retransmissions",
                            attempt
                        )));
                    }
                    self.count(&self.stats.delivery_retries);
                    self.backoff(attempt);
                    attempt += 1;
                }
                Some(DeliveryFault::Duplicate) => {
                    self.count(&self.stats.duplicated_deliveries);
                    return Ok(2);
                }
                None => return Ok(1),
            }
        }
    }

    /// Advance the simulated clock by the exponential backoff of `attempt`.
    /// Returns the simulated milliseconds added, so callers that track a
    /// per-query clock (scheduler deadlines) can mirror the advance.
    pub fn backoff(&self, attempt: u32) -> u64 {
        let ms = self
            .config
            .retry
            .backoff_base_ms
            .saturating_mul(1u64 << attempt.min(20));
        self.stats.sim_clock_ms.fetch_add(ms, Ordering::Relaxed);
        ms
    }

    /// Advance the simulated clock by `ms` milliseconds.
    pub fn advance_sim_clock(&self, ms: u64) {
        self.stats.sim_clock_ms.fetch_add(ms, Ordering::Relaxed);
    }

    fn count(&self, cell: &AtomicU64) {
        cell.fetch_add(1, Ordering::Relaxed);
    }

    /// Record an injected task fault of the given kind.
    pub fn note_task_fault(&self, fault: TaskFault) {
        match fault {
            TaskFault::Panic => self.count(&self.stats.injected_panics),
            TaskFault::Transient => self.count(&self.stats.injected_transients),
            TaskFault::WorkerLoss => self.count(&self.stats.injected_worker_losses),
        }
    }

    /// Record one task retry.
    pub fn note_task_retry(&self) {
        self.count(&self.stats.task_retries);
    }

    /// Record a re-execution on a surviving worker.
    pub fn note_reexecution(&self) {
        self.count(&self.stats.reexecutions);
    }

    /// Record an injected straggler.
    pub fn note_straggler(&self) {
        self.count(&self.stats.injected_stragglers);
    }

    /// Record a speculative re-execution.
    pub fn note_speculation(&self) {
        self.count(&self.stats.speculations);
    }

    /// Record a duplicate partition copy discarded by a receiver.
    pub fn note_duplicate_discarded(&self) {
        self.count(&self.stats.duplicates_discarded);
    }

    /// Record a retry-budget exhaustion (escalated failure).
    pub fn note_exhaustion(&self) {
        self.count(&self.stats.retry_exhaustions);
    }

    /// Copy out the counters.
    pub fn stats(&self) -> FaultStats {
        let s = &self.stats;
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        FaultStats {
            injected_panics: get(&s.injected_panics),
            injected_transients: get(&s.injected_transients),
            injected_worker_losses: get(&s.injected_worker_losses),
            injected_stragglers: get(&s.injected_stragglers),
            dropped_deliveries: get(&s.dropped_deliveries),
            duplicated_deliveries: get(&s.duplicated_deliveries),
            duplicates_discarded: get(&s.duplicates_discarded),
            task_retries: get(&s.task_retries),
            reexecutions: get(&s.reexecutions),
            speculations: get(&s.speculations),
            delivery_retries: get(&s.delivery_retries),
            retry_exhaustions: get(&s.retry_exhaustions),
            sim_clock_ms: get(&s.sim_clock_ms),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fudj_core::RetryPolicy;

    #[test]
    fn decisions_are_pure_functions_of_the_site() {
        let a = FaultContext::new(FaultConfig::chaos(42));
        let b = FaultContext::new(FaultConfig::chaos(42));
        for step in 0..50u64 {
            for worker in 0..4 {
                for task in 0..8 {
                    for attempt in 0..3 {
                        assert_eq!(
                            a.task_fault(step, worker, task, attempt),
                            b.task_fault(step, worker, task, attempt)
                        );
                        assert_eq!(
                            a.delivery_fault(step, worker, task, attempt),
                            b.delivery_fault(step, worker, task, attempt)
                        );
                    }
                    assert_eq!(
                        a.straggles(step, worker, task),
                        b.straggles(step, worker, task)
                    );
                }
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultContext::new(FaultConfig::chaos(1));
        let b = FaultContext::new(FaultConfig::chaos(2));
        let schedule = |c: &FaultContext| -> Vec<Option<TaskFault>> {
            (0..200u64)
                .map(|s| c.task_fault(s, (s % 4) as usize, (s % 8) as usize, 0))
                .collect()
        };
        assert_ne!(schedule(&a), schedule(&b));
    }

    #[test]
    fn quiet_config_never_injects() {
        let c = FaultContext::new(FaultConfig::quiet(99));
        assert!(!c.config().is_active());
        for step in 0..100u64 {
            assert_eq!(c.task_fault(step, 0, 0, 0), None);
            assert_eq!(c.delivery_fault(step, 0, 1, 0), None);
            assert!(!c.straggles(step, 0, 0));
        }
        assert_eq!(c.stats(), FaultStats::default());
        assert!(!c.stats().any());
    }

    #[test]
    fn chaos_config_injects_roughly_at_rate() {
        let c = FaultContext::new(FaultConfig::chaos(7));
        let n = 20_000u64;
        let hits = (0..n)
            .filter(|&s| c.task_fault(s, 0, 0, 0).is_some())
            .count() as f64;
        // panic + loss + transient = 0.13 of all attempts.
        let rate = hits / n as f64;
        assert!((0.10..0.16).contains(&rate), "rate={rate}");
    }

    #[test]
    fn dropped_delivery_retransmits_until_arrival() {
        let c = FaultContext::new(FaultConfig {
            drop_prob: 0.5,
            duplicate_prob: 0.0,
            ..FaultConfig::quiet(3)
        });
        let mut copies = 0u32;
        for step in 0..200 {
            copies += c.deliver(step, 1, 0).unwrap();
        }
        assert_eq!(copies, 200, "every delivery eventually arrives once");
        let s = c.stats();
        assert!(s.dropped_deliveries > 0);
        assert_eq!(s.delivery_retries, s.dropped_deliveries);
        assert!(s.sim_clock_ms > 0, "backoff advanced the simulated clock");
    }

    #[test]
    fn certain_drop_exhausts_budget_and_escalates() {
        let c = FaultContext::new(FaultConfig {
            drop_prob: 1.0,
            retry: RetryPolicy {
                max_retries: 3,
                ..RetryPolicy::default()
            },
            ..FaultConfig::quiet(5)
        });
        let err = c.deliver(0, 2, 0).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("retry budget exhausted"), "{msg}");
        assert_eq!(c.stats().retry_exhaustions, 1);
        assert_eq!(c.stats().dropped_deliveries, 4, "initial + 3 retries");
    }

    #[test]
    fn duplicate_delivery_yields_two_copies() {
        let c = FaultContext::new(FaultConfig {
            duplicate_prob: 1.0,
            ..FaultConfig::quiet(8)
        });
        assert_eq!(c.deliver(0, 1, 0).unwrap(), 2);
        assert_eq!(c.stats().duplicated_deliveries, 1);
    }

    #[test]
    fn steps_count_up() {
        let c = FaultContext::new(FaultConfig::quiet(0));
        assert_eq!(c.next_step(), 0);
        assert_eq!(c.next_step(), 1);
        assert_eq!(c.next_step(), 2);
    }

    #[test]
    fn stats_totals_sum_classes() {
        let s = FaultStats {
            injected_panics: 1,
            injected_transients: 2,
            injected_worker_losses: 3,
            injected_stragglers: 4,
            dropped_deliveries: 5,
            duplicated_deliveries: 6,
            task_retries: 7,
            reexecutions: 8,
            speculations: 9,
            delivery_retries: 10,
            ..FaultStats::default()
        };
        assert_eq!(s.total_injected(), 21);
        assert_eq!(s.total_recoveries(), 34);
        assert!(s.any());
    }
}
