//! Simulated shared-nothing execution engine.
//!
//! The paper evaluates FUDJ on a 12-node AsterixDB cluster. This crate
//! stands in for that substrate: a [`Cluster`] of N workers (OS threads),
//! each owning one horizontal partition of every intermediate result, with
//! explicit [`exchange`] operators moving rows between them. Every row that
//! crosses workers is serialized through the wire format and the bytes are
//! accounted in [`QueryMetrics`] — the network cost that drives the paper's
//! partitioning design discussion stays visible even though the "network"
//! is a memcpy.
//!
//! Physical operators ([`plan::PhysicalPlan`]):
//!
//! * `Scan`, `Filter`, `Project`, `HashAggregate` (two-step: partial →
//!   shuffle by group → final), `Sort`, `Limit` — the relational scaffolding
//!   the paper's Queries 1–3 and 5 need around their joins;
//! * [`plan::FudjJoinNode`] — the Fig. 8 plan: SUMMARIZE (parallel local
//!   aggregate + gather + global aggregate), DIVIDE (coordinator) +
//!   broadcast of the `PPlan`, ASSIGN/UNNEST + shuffle (hash by bucket for
//!   default-match joins, broadcast of one side for theta multi-joins),
//!   local bucket join with `verify`, and duplicate handling (avoidance
//!   inline, elimination as an extra shuffle + distinct);
//! * `NlJoin` — the *on-top* baseline: broadcast one side, nested-loop with
//!   a UDF predicate.
//!
//! Execution is stage-synchronous (operators materialize partitioned
//! results), matching how these plans execute as aggregation/repartition
//! stages in the original system.

//! Workers are *persistent*: a [`Cluster`] owns a [`pool::WorkerPool`]
//! spawned once at construction, and every phase of every query runs
//! partition `i` on the same pool thread `i` — so per-worker counters in
//! [`MetricsSnapshot::per_worker`] describe stable node identities.
//!
//! The cluster can run under a deterministic *fault plan* ([`fault`]):
//! a seeded [`FaultConfig`] injects task panics, transient errors, worker
//! loss, stragglers, and dropped/duplicated deliveries, and the pool and
//! exchanges recover via bounded retries with simulated-clock backoff,
//! re-execution on surviving workers, and speculative re-execution — all
//! reproducible from the single seed.
//!
//! On top of transient faults sits the [`recovery`] layer: optional stage
//! checkpointing into a [`fudj_storage::CheckpointStore`], lineage-scoped
//! partial recovery from permanent *worker deaths* (recompute only the lost
//! partitions, restore the rest from checkpoints), and elastic worker
//! [`Membership`] with decommission/add and a failure-rate quarantine
//! circuit breaker.

pub mod aggregate;
pub mod columnar;
pub mod control;
pub mod exchange;
pub mod executor;
pub mod fault;
pub mod fudj_join;
pub mod metrics;
pub mod mode;
pub mod plan;
pub mod pool;
pub mod recovery;
pub mod spill;

pub use control::{DispatchGate, QueryControl};
pub use executor::{Cluster, PartitionedData};
pub use fault::{DeliveryFault, FaultContext, FaultStats, TaskFault};
pub use fudj_core::{
    FaultConfig, GuardConfig, GuardMode, GuardedJoin, RetryPolicy, UdfLimits, UdfPolicy, UdfStats,
};
pub use metrics::{apply_seed, flatten_counters};
pub use metrics::{
    CounterFingerprint, MetricsSnapshot, NetworkModel, PhaseSkew, QueryMetrics, ServingStats,
    WorkerStats,
};
pub use mode::ExecMode;
pub use plan::{
    AggFunc, Aggregate, CmpOp, ColumnCompare, CombineStrategy, FudjJoinNode, JoinPredicate,
    PhysicalPlan, RowMapper, RowPredicate, SortKey,
};
pub use pool::WorkerPool;
pub use recovery::{
    ClusterRecovery, CounterSeed, Membership, QueryJournal, QueryTag, RecoveryContext,
    RecoveryStats, ResumeSpec, WorkerInfo, WorkerState,
};
pub use spill::{SpillConfig, SpillStats};
