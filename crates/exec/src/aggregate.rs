//! Aggregate accumulators for the two-step hash aggregation.
//!
//! Partial states travel between workers as regular [`Value`]s (`Avg`
//! carries a `[sum, count]` list), matching how the paper treats aggregate
//! state as ordinary records.

use crate::plan::{AggFunc, Aggregate};
use fudj_types::{FudjError, Result, Value};

/// Accumulator for one aggregate column.
#[derive(Clone, Debug)]
pub enum Accumulator {
    Count(i64),
    SumInt(i64),
    SumFloat(f64),
    Min(Option<Value>),
    Max(Option<Value>),
    Avg { sum: f64, count: i64 },
}

impl Accumulator {
    /// Fresh accumulator for a spec (input type decides int vs float sum).
    pub fn new(agg: &Aggregate, input_type_is_float: bool) -> Self {
        match agg.func {
            AggFunc::Count => Accumulator::Count(0),
            AggFunc::Sum if input_type_is_float => Accumulator::SumFloat(0.0),
            AggFunc::Sum => Accumulator::SumInt(0),
            AggFunc::Min => Accumulator::Min(None),
            AggFunc::Max => Accumulator::Max(None),
            AggFunc::Avg => Accumulator::Avg { sum: 0.0, count: 0 },
        }
    }

    /// Fold one input value. `None` means `COUNT(*)` (no input column).
    pub fn update(&mut self, value: Option<&Value>) -> Result<()> {
        match self {
            Accumulator::Count(c) => {
                // COUNT(*) counts rows; COUNT(col) counts non-null values.
                if value.is_none_or_nonnull() {
                    *c += 1;
                }
            }
            Accumulator::SumInt(s) => {
                if let Some(v) = non_null(value) {
                    *s += v.as_i64()?;
                }
            }
            Accumulator::SumFloat(s) => {
                if let Some(v) = non_null(value) {
                    *s += v.as_f64()?;
                }
            }
            Accumulator::Min(cur) => {
                if let Some(v) = non_null(value) {
                    if cur.as_ref().is_none_or(|c| v < c) {
                        *cur = Some(v.clone());
                    }
                }
            }
            Accumulator::Max(cur) => {
                if let Some(v) = non_null(value) {
                    if cur.as_ref().is_none_or(|c| v > c) {
                        *cur = Some(v.clone());
                    }
                }
            }
            Accumulator::Avg { sum, count } => {
                if let Some(v) = non_null(value) {
                    *sum += v.as_f64()?;
                    *count += 1;
                }
            }
        }
        Ok(())
    }

    /// Serialize the partial state into a `Value` for the shuffle.
    pub fn partial_value(&self) -> Value {
        match self {
            Accumulator::Count(c) => Value::Int64(*c),
            Accumulator::SumInt(s) => Value::Int64(*s),
            Accumulator::SumFloat(s) => Value::Float64(*s),
            Accumulator::Min(v) | Accumulator::Max(v) => v.clone().unwrap_or(Value::Null),
            Accumulator::Avg { sum, count } => {
                Value::list(vec![Value::Float64(*sum), Value::Int64(*count)])
            }
        }
    }

    /// Merge a partial state produced by [`Accumulator::partial_value`].
    pub fn merge_partial(&mut self, partial: &Value) -> Result<()> {
        match self {
            Accumulator::Count(c) => *c += partial.as_i64()?,
            Accumulator::SumInt(s) => *s += partial.as_i64()?,
            Accumulator::SumFloat(s) => *s += partial.as_f64()?,
            Accumulator::Min(cur) => {
                if !partial.is_null() && cur.as_ref().is_none_or(|c| partial < c) {
                    *cur = Some(partial.clone());
                }
            }
            Accumulator::Max(cur) => {
                if !partial.is_null() && cur.as_ref().is_none_or(|c| partial > c) {
                    *cur = Some(partial.clone());
                }
            }
            Accumulator::Avg { sum, count } => {
                let parts = partial.as_list()?;
                if parts.len() != 2 {
                    return Err(FudjError::Execution(format!(
                        "avg partial must be [sum, count], got {partial}"
                    )));
                }
                *sum += parts[0].as_f64()?;
                *count += parts[1].as_i64()?;
            }
        }
        Ok(())
    }

    /// Produce the final output value.
    pub fn finalize(&self) -> Value {
        match self {
            Accumulator::Count(c) => Value::Int64(*c),
            Accumulator::SumInt(s) => Value::Int64(*s),
            Accumulator::SumFloat(s) => Value::Float64(*s),
            Accumulator::Min(v) | Accumulator::Max(v) => v.clone().unwrap_or(Value::Null),
            Accumulator::Avg { sum, count } => {
                if *count == 0 {
                    Value::Null
                } else {
                    Value::Float64(*sum / *count as f64)
                }
            }
        }
    }
}

fn non_null(v: Option<&Value>) -> Option<&Value> {
    v.filter(|v| !v.is_null())
}

/// `Option<&Value>` helpers used by the COUNT semantics above.
trait CountInput {
    fn is_none_or_nonnull(&self) -> bool;
}

impl CountInput for Option<&Value> {
    fn is_none_or_nonnull(&self) -> bool {
        match self {
            None => true,            // COUNT(*)
            Some(v) => !v.is_null(), // COUNT(col)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn agg(func: AggFunc) -> Aggregate {
        Aggregate {
            func,
            input: Some(0),
            name: "a".into(),
        }
    }

    #[test]
    fn count_star_vs_count_col() {
        let mut star = Accumulator::new(&Aggregate::count_star("c"), false);
        let mut col = Accumulator::new(&agg(AggFunc::Count), false);
        star.update(None).unwrap();
        star.update(None).unwrap();
        col.update(Some(&Value::Int64(1))).unwrap();
        col.update(Some(&Value::Null)).unwrap();
        assert_eq!(star.finalize(), Value::Int64(2));
        assert_eq!(col.finalize(), Value::Int64(1));
    }

    #[test]
    fn sum_int_and_float() {
        let mut s = Accumulator::new(&agg(AggFunc::Sum), false);
        s.update(Some(&Value::Int64(3))).unwrap();
        s.update(Some(&Value::Int64(4))).unwrap();
        assert_eq!(s.finalize(), Value::Int64(7));

        let mut f = Accumulator::new(&agg(AggFunc::Sum), true);
        f.update(Some(&Value::Float64(0.5))).unwrap();
        f.update(Some(&Value::Int64(2))).unwrap();
        assert_eq!(f.finalize(), Value::Float64(2.5));
    }

    #[test]
    fn min_max_ignore_nulls() {
        let mut mn = Accumulator::new(&agg(AggFunc::Min), false);
        let mut mx = Accumulator::new(&agg(AggFunc::Max), false);
        for v in [
            Value::Int64(5),
            Value::Null,
            Value::Int64(2),
            Value::Int64(9),
        ] {
            mn.update(Some(&v)).unwrap();
            mx.update(Some(&v)).unwrap();
        }
        assert_eq!(mn.finalize(), Value::Int64(2));
        assert_eq!(mx.finalize(), Value::Int64(9));
    }

    #[test]
    fn avg_two_step_equals_one_step() {
        // Split {1..6} across two partial accumulators, merge, compare.
        let mut one = Accumulator::new(&agg(AggFunc::Avg), true);
        for v in 1..=6 {
            one.update(Some(&Value::Int64(v))).unwrap();
        }

        let mut p1 = Accumulator::new(&agg(AggFunc::Avg), true);
        let mut p2 = Accumulator::new(&agg(AggFunc::Avg), true);
        for v in 1..=3 {
            p1.update(Some(&Value::Int64(v))).unwrap();
        }
        for v in 4..=6 {
            p2.update(Some(&Value::Int64(v))).unwrap();
        }
        let mut merged = Accumulator::new(&agg(AggFunc::Avg), true);
        merged.merge_partial(&p1.partial_value()).unwrap();
        merged.merge_partial(&p2.partial_value()).unwrap();
        assert_eq!(merged.finalize(), one.finalize());
        assert_eq!(merged.finalize(), Value::Float64(3.5));
    }

    #[test]
    fn empty_avg_is_null() {
        let a = Accumulator::new(&agg(AggFunc::Avg), true);
        assert_eq!(a.finalize(), Value::Null);
    }

    #[test]
    fn merge_partial_count_and_minmax() {
        let mut c = Accumulator::Count(2);
        c.merge_partial(&Value::Int64(3)).unwrap();
        assert_eq!(c.finalize(), Value::Int64(5));

        let mut mn = Accumulator::Min(Some(Value::Int64(4)));
        mn.merge_partial(&Value::Int64(1)).unwrap();
        mn.merge_partial(&Value::Null).unwrap();
        assert_eq!(mn.finalize(), Value::Int64(1));
    }
}
