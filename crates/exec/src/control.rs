//! Per-query control plane: cancellation, simulated-clock deadlines, and
//! the dispatch gate the scheduler uses to interleave queries.
//!
//! A [`QueryControl`] is attached to a query's [`crate::QueryMetrics`]
//! handle before execution. The worker pool consults it at every task
//! boundary — the start of each batch, each retry attempt, and after each
//! simulated backoff — so a cancelled or deadlined query stops at the next
//! boundary without leaving tasks stranded: the batch that observes the
//! stop signal still drains all its in-flight completions before
//! returning, which is what keeps the shared pool reusable afterwards.
//!
//! The clock that deadlines are measured against is *simulated* (the same
//! millisecond clock the fault layer uses): each pool batch advances it by
//! the batch's simulated makespan, and fault-injection backoff mirrors its
//! delays into it. No wall-clock time is read, so deadline tests are
//! exactly reproducible.

use fudj_types::{FudjError, Result};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Cancellation token + simulated-clock deadline for one query execution.
#[derive(Debug, Default)]
pub struct QueryControl {
    label: String,
    cancelled: AtomicBool,
    deadline_ms: Option<u64>,
    sim_clock_ms: AtomicU64,
}

impl QueryControl {
    /// Control block for a query labelled `label` (used in error
    /// messages), with an optional simulated-millisecond deadline.
    pub fn new(label: impl Into<String>, deadline_ms: Option<u64>) -> Self {
        QueryControl {
            label: label.into(),
            cancelled: AtomicBool::new(false),
            deadline_ms,
            sim_clock_ms: AtomicU64::new(0),
        }
    }

    /// The query label this control block was created with.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Request cancellation. Idempotent; takes effect at the next task
    /// boundary that calls [`QueryControl::check`].
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }

    /// The simulated-millisecond deadline, if any.
    pub fn deadline_ms(&self) -> Option<u64> {
        self.deadline_ms
    }

    /// Current simulated clock reading for this query.
    pub fn sim_clock_ms(&self) -> u64 {
        self.sim_clock_ms.load(Ordering::Relaxed)
    }

    /// Advance this query's simulated clock by `ms` milliseconds.
    pub fn advance(&self, ms: u64) {
        self.sim_clock_ms.fetch_add(ms, Ordering::Relaxed);
    }

    /// Fail if the query has been cancelled or its deadline has passed.
    pub fn check(&self) -> Result<()> {
        if self.is_cancelled() {
            return Err(FudjError::Cancelled(self.label.clone()));
        }
        if let Some(deadline) = self.deadline_ms {
            let now = self.sim_clock_ms();
            if now >= deadline {
                return Err(FudjError::Deadline(format!(
                    "{}: simulated clock {now} ms passed deadline {deadline} ms",
                    self.label
                )));
            }
        }
        Ok(())
    }
}

/// Scheduler hook around every pool batch. `enter` blocks until the
/// scheduler grants this query a dispatch slot (or fails with
/// `Cancelled`/`Deadline` if the query is stopped while waiting); `exit`
/// releases the slot. The pool guarantees `exit` is called exactly once
/// per successful `enter`, and never acquires the gate re-entrantly on
/// one thread.
pub trait DispatchGate: Send + Sync {
    /// Wait for permission to dispatch a batch of `tasks` tasks.
    fn enter(&self, tasks: usize) -> Result<()>;
    /// Release the slot taken by `enter`.
    fn exit(&self, tasks: usize);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_passes_then_fails_after_cancel() {
        let c = QueryControl::new("q1", None);
        assert!(c.check().is_ok());
        c.cancel();
        let err = c.check().unwrap_err();
        assert!(
            matches!(err, FudjError::Cancelled(ref l) if l == "q1"),
            "{err}"
        );
        // Idempotent.
        c.cancel();
        assert!(c.is_cancelled());
    }

    #[test]
    fn deadline_trips_when_sim_clock_reaches_it() {
        let c = QueryControl::new("slow", Some(500));
        assert!(c.check().is_ok());
        c.advance(499);
        assert!(c.check().is_ok());
        c.advance(1);
        let err = c.check().unwrap_err();
        assert!(matches!(err, FudjError::Deadline(_)), "{err}");
        assert!(err.to_string().contains("500"), "{err}");
    }

    #[test]
    fn no_deadline_means_only_cancellation_stops_it() {
        let c = QueryControl::new("free", None);
        c.advance(u64::MAX / 2);
        assert!(c.check().is_ok());
    }
}
