//! Row vs. columnar execution mode.
//!
//! The planner emits one plan; the mode only selects the *evaluation
//! strategy* inside the executor (per-row closure calls vs. typed-column
//! kernels over [`fudj_types::ColumnVec`] strides). Both strategies are
//! required to produce bit-identical results and identical logical
//! rows/bytes counters — `tests/columnar_differential.rs` pins that.

use std::fmt;

/// Which evaluation strategy the executor uses for vectorizable operators.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ExecMode {
    /// Per-row closure evaluation (the original pipeline).
    Row,
    /// Typed-column kernels with selection bitmaps (the default).
    #[default]
    Columnar,
}

impl ExecMode {
    /// Parse a user-facing mode name (`SET exec_mode = row|columnar`).
    pub fn parse(s: &str) -> Option<ExecMode> {
        match s.to_ascii_lowercase().as_str() {
            "row" => Some(ExecMode::Row),
            "columnar" => Some(ExecMode::Columnar),
            _ => None,
        }
    }

    /// The user-facing mode name.
    pub fn as_str(self) -> &'static str {
        match self {
            ExecMode::Row => "row",
            ExecMode::Columnar => "columnar",
        }
    }

    /// Process-wide default: `FUDJ_EXEC_MODE` when set to a valid mode
    /// (CI's chaos matrix uses this to re-run whole suites columnar or
    /// row-wise), else [`ExecMode::Columnar`].
    pub fn from_env() -> ExecMode {
        std::env::var("FUDJ_EXEC_MODE")
            .ok()
            .and_then(|v| ExecMode::parse(&v))
            .unwrap_or_default()
    }
}

impl fmt::Display for ExecMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_both_modes_case_insensitively() {
        assert_eq!(ExecMode::parse("row"), Some(ExecMode::Row));
        assert_eq!(ExecMode::parse("Columnar"), Some(ExecMode::Columnar));
        assert_eq!(ExecMode::parse("vectorized"), None);
    }

    #[test]
    fn default_is_columnar() {
        assert_eq!(ExecMode::default(), ExecMode::Columnar);
        assert_eq!(ExecMode::Columnar.to_string(), "columnar");
    }
}
