//! Persistent worker pool — the cluster's long-lived "nodes".
//!
//! Earlier revisions spawned a fresh batch of OS threads (via
//! `std::thread::scope`) for every exchange stage and every per-partition
//! operator, so a single FUDJ join created dozens of short-lived threads
//! and no thread identity survived from one phase to the next. The pool
//! replaces that: [`WorkerPool::new`] spawns one thread per simulated
//! worker exactly once (when the [`crate::Cluster`] is built), and every
//! phase of every query dispatches partition `i` to worker `i % size` —
//! the same OS thread plays the same cluster node for the lifetime of the
//! cluster, which is also what makes per-worker busy-time metrics
//! meaningful.
//!
//! Scheduling contract: tasks submitted by one [`WorkerPool::run`] call
//! must not themselves call back into the pool — there is no work
//! stealing, so a worker blocking on sub-tasks queued behind itself would
//! deadlock. Re-entrant calls are detected with a thread-local flag and
//! degrade to inline (sequential) execution instead.
//!
//! A panicking task is caught on the worker, surfaced to the caller as
//! [`FudjError::Execution`], and leaves the worker thread alive — one
//! poisoned query cannot take down the cluster.

use crate::control::{DispatchGate, QueryControl};
use crate::fault::{FaultContext, TaskFault, SIM_TASK_MS};
use crate::metrics::QueryMetrics;
use crate::recovery::RecoveryContext;
use crossbeam::channel::{unbounded, Sender};
use fudj_types::{FudjError, Result};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// A unit of work shipped to a worker thread.
type Task = Box<dyn FnOnce() + Send + 'static>;

thread_local! {
    /// Set while this thread is executing a pool task (re-entrancy guard).
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
    /// Number of dispatch-gate slots this (coordinator) thread currently
    /// holds. A batch nested inside a gated batch — e.g. an operator that
    /// fans out again from the coordinator — must not re-acquire the
    /// gate, or a single-slot scheduler would deadlock against itself.
    static GATE_DEPTH: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// RAII slot held on the scheduler's dispatch gate for one batch.
struct GateGuard {
    gate: Arc<dyn DispatchGate>,
    tasks: usize,
}

impl GateGuard {
    /// Acquire the gate for a batch of `tasks` tasks, unless this thread
    /// already holds a slot (nested batch) or is a worker thread.
    fn acquire(metrics: Option<&QueryMetrics>, tasks: usize) -> Result<Option<GateGuard>> {
        let Some(gate) = metrics.and_then(|m| m.gate().cloned()) else {
            return Ok(None);
        };
        if IN_WORKER.with(|g| g.get()) || GATE_DEPTH.with(|d| d.get()) > 0 {
            return Ok(None);
        }
        gate.enter(tasks)?;
        GATE_DEPTH.with(|d| d.set(d.get() + 1));
        Ok(Some(GateGuard { gate, tasks }))
    }
}

impl Drop for GateGuard {
    fn drop(&mut self) {
        GATE_DEPTH.with(|d| d.set(d.get() - 1));
        self.gate.exit(self.tasks);
    }
}

/// Fixed-size pool of long-lived worker threads, one per simulated
/// cluster node.
pub struct WorkerPool {
    senders: Vec<Sender<Task>>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.senders.len())
            .finish()
    }
}

impl WorkerPool {
    /// Spawn `workers` threads, named `fudj-worker-<i>`.
    ///
    /// # Panics
    /// Panics when `workers` is zero or the OS refuses to spawn a thread.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "worker pool needs at least one worker");
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let (tx, rx) = unbounded::<Task>();
            let handle = std::thread::Builder::new()
                .name(format!("fudj-worker-{w}"))
                .spawn(move || {
                    // Tasks catch their own panics, so this loop only ends
                    // when the pool drops its sender.
                    while let Ok(task) = rx.recv() {
                        task();
                    }
                })
                .expect("failed to spawn worker thread");
            senders.push(tx);
            handles.push(handle);
        }
        WorkerPool { senders, handles }
    }

    /// Number of workers.
    pub fn size(&self) -> usize {
        self.senders.len()
    }

    /// Run `f(i, item)` for every item, item `i` on worker `i % size`;
    /// blocks until all complete. Equivalent to [`Self::run_metered`]
    /// without metrics.
    pub fn run<T, R, F>(&self, items: Vec<T>, f: F) -> Result<Vec<R>>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> Result<R> + Sync,
    {
        self.run_metered(items, None, f)
    }

    /// Run `f(i, item)` for every item in parallel and, when metrics are
    /// given, charge each worker's busy time (attributed to the metrics'
    /// active phase). Results come back in item order. A task that
    /// panics yields `Err(FudjError::Execution)` for its slot without
    /// killing its worker thread.
    ///
    /// When the metrics carry an armed [`FaultContext`], every task runs
    /// inside a recovery loop: injected panics/transients are retried
    /// with simulated exponential backoff, an injected worker loss
    /// re-executes the task attributed to the next surviving worker, and
    /// an exhausted retry budget escalates as [`FudjError::Execution`].
    /// After the batch completes, tasks whose simulated duration exceeded
    /// the policy's multiple of the batch median are speculatively
    /// re-executed (the faster copy wins, in simulation).
    pub fn run_metered<T, R, F>(
        &self,
        items: Vec<T>,
        metrics: Option<&QueryMetrics>,
        f: F,
    ) -> Result<Vec<R>>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> Result<R> + Sync,
    {
        let n = items.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        // Scheduler control plane: stop at this batch boundary if the
        // query was cancelled or blew its deadline, then wait for a
        // dispatch slot (fair-share interleaving happens between batches).
        let ctrl: Option<Arc<QueryControl>> = metrics.and_then(|m| m.control().cloned());
        if let Some(c) = &ctrl {
            c.check()?;
        }
        let _gate = GateGuard::acquire(metrics, n)?;
        // One dispatch step per batch, claimed by the coordinator so the
        // fault schedule is identical across runs of the same query.
        let site: Option<FaultSite> =
            metrics
                .and_then(|m| m.fault().cloned())
                .map(|ctx| FaultSite {
                    step: ctx.next_step(),
                    ctx,
                });
        let size = self.size();
        // Membership-aware routing: partition i goes to its home worker
        // i % size while that worker is active, else to the recovery
        // layer's rendezvous pick among survivors. Quarantines flagged by
        // worker threads since the last batch are applied here, on the
        // coordinator, so the active set is frozen for the whole batch.
        let rec: Option<Arc<RecoveryContext>> = metrics.and_then(|m| m.recovery().cloned());
        if let Some(r) = &rec {
            r.on_batch_start();
        }
        let route = |i: usize| match &rec {
            Some(r) => r.route(i),
            None => i % size,
        };

        // Single partition, or already on a worker thread (re-entrant
        // call): execute inline. Dispatching one task buys nothing, and
        // re-entrant dispatch could deadlock (see module docs).
        if n == 1 || IN_WORKER.with(|g| g.get()) {
            let mut done: Vec<TaskDone<R>> = Vec::with_capacity(n);
            for (i, item) in items.into_iter().enumerate() {
                let start = Instant::now();
                let (worker, sim_ms, result) =
                    run_task_recovered(&site, &ctrl, &rec, &f, route(i), size, i, item);
                if let Some(m) = metrics {
                    m.charge_worker_busy(worker, start.elapsed());
                }
                done.push((i, worker, sim_ms, result));
            }
            return finish_batch(&site, &ctrl, n, done);
        }

        type Sent<R> = (TaskDone<R>, std::time::Duration);
        let (done_tx, done_rx) = unbounded::<Sent<R>>();
        for (i, item) in items.into_iter().enumerate() {
            let worker = route(i);
            let tx = done_tx.clone();
            let f = &f;
            let site = &site;
            let ctrl = &ctrl;
            let rec = &rec;
            let task: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                IN_WORKER.with(|g| g.set(true));
                let start = Instant::now();
                let (eff_worker, sim_ms, result) =
                    run_task_recovered(site, ctrl, rec, f, worker, size, i, item);
                IN_WORKER.with(|g| g.set(false));
                // The receiver outlives every task (see below), so this
                // send cannot fail while results are still awaited.
                let _ = tx.send(((i, eff_worker, sim_ms, result), start.elapsed()));
            });
            // SAFETY: the task borrows `f`/`site`/`ctrl`/`rec` and moves
            // `item`/`tx`,
            // all of which live for the rest of this call. Every submitted
            // task sends exactly one completion message and the loop below
            // blocks until all `n` messages arrive, so no task (and no
            // borrow inside it) outlives this stack frame. The worker
            // channels cannot drop tasks unexecuted while `&self` is
            // borrowed, because senders are only closed in `Drop`.
            let task: Task =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Task>(task) };
            self.senders[worker]
                .send(task)
                .unwrap_or_else(|_| unreachable!("worker channels live as long as the pool"));
        }
        drop(done_tx);

        let mut done: Vec<TaskDone<R>> = Vec::with_capacity(n);
        for _ in 0..n {
            // Cannot disconnect before `n` sends: every task sends once
            // and workers cannot exit while the pool is alive. Must not
            // return before all tasks finish (safety invariant above).
            let (completed, busy) = done_rx
                .recv()
                .expect("every dispatched task reports completion");
            if let Some(m) = metrics {
                // Busy time goes to the *effective* worker — under an
                // injected worker loss the re-executed task's work belongs
                // to the surviving worker that ran it.
                m.charge_worker_busy(completed.1, busy);
            }
            done.push(completed);
        }
        finish_batch(&site, &ctrl, n, done)
    }
}

/// `(slot, effective worker, simulated duration ms, result)` of one task.
type TaskDone<R> = (usize, usize, u64, Result<R>);

/// A batch's fault-injection site: the armed context plus the dispatch
/// step the coordinator claimed for this batch.
struct FaultSite {
    ctx: Arc<FaultContext>,
    step: u64,
}

/// Post-process one batch: apply the speculation policy to simulated
/// straggler durations, advance the simulated clock (both the fault
/// layer's and the control plane's) by the batch makespan, and collect
/// results in slot order.
fn finish_batch<R>(
    site: &Option<FaultSite>,
    ctrl: &Option<Arc<QueryControl>>,
    n: usize,
    done: Vec<TaskDone<R>>,
) -> Result<Vec<R>> {
    let mut slots: Vec<Option<Result<R>>> = (0..n).map(|_| None).collect();
    if let Some(site) = site {
        let policy = site.ctx.config().retry;
        let mut sims: Vec<u64> = done.iter().map(|(_, _, sim, _)| *sim).collect();
        sims.sort_unstable();
        let median = sims[sims.len() / 2].max(1);
        let threshold = median.saturating_mul(policy.straggler_multiple.max(1) as u64);
        let mut makespan = 0u64;
        for (i, _, sim, result) in done {
            let effective = if sim > threshold {
                // Speculative copy launched on another worker; the
                // non-delayed copy finishes first and wins.
                site.ctx.note_speculation();
                SIM_TASK_MS
            } else {
                sim
            };
            makespan = makespan.max(effective);
            slots[i] = Some(result);
        }
        site.ctx.advance_sim_clock(makespan);
        if let Some(c) = ctrl {
            c.advance(makespan);
        }
    } else {
        for (i, _, _, result) in done {
            slots[i] = Some(result);
        }
        if let Some(c) = ctrl {
            // Fault-free batches still take one simulated task round, so
            // deadlines mean something without an armed fault plan.
            c.advance(SIM_TASK_MS);
        }
    }
    slots
        .into_iter()
        .map(|s| {
            s.unwrap_or_else(|| {
                Err(FudjError::Execution(
                    "worker batch lost a task completion (slot never filled)".into(),
                ))
            })
        })
        .collect()
}

/// Execute one task under the recovery loop. Injected faults happen
/// *before* the single real execution of `f` (a lost or panicked attempt
/// never consumed the item), so retrying needs no `Clone` bound and the
/// real work runs exactly once. Returns the effective worker (changes
/// under worker loss), the simulated duration, and the result.
///
/// An attached [`QueryControl`] is checked at the start of every attempt
/// and again after every simulated backoff, so a cancellation or a
/// deadline expiring *inside* the retry loop stops the task there instead
/// of burning the rest of the retry budget.
#[allow(clippy::too_many_arguments)] // internal helper: three optional attachments + task identity
fn run_task_recovered<T, R, F>(
    site: &Option<FaultSite>,
    ctrl: &Option<Arc<QueryControl>>,
    rec: &Option<Arc<RecoveryContext>>,
    f: &F,
    worker: usize,
    pool_size: usize,
    i: usize,
    item: T,
) -> (usize, u64, Result<R>)
where
    F: Fn(usize, T) -> Result<R>,
{
    let Some(site) = site else {
        if let Some(c) = ctrl {
            if let Err(e) = c.check() {
                return (worker, SIM_TASK_MS, Err(e));
            }
        }
        return (worker, SIM_TASK_MS, run_task(f, i, item));
    };
    let ctx = &site.ctx;
    let policy = ctx.config().retry;
    let mut w = worker;
    let mut attempt: u32 = 0;
    loop {
        if let Some(c) = ctrl {
            if let Err(e) = c.check() {
                return (w, SIM_TASK_MS, Err(e));
            }
        }
        let Some(fault) = ctx.task_fault(site.step, w, i, attempt) else {
            // Healthy attempt: run the real task, straggling if injected.
            let sim_ms = if ctx.straggles(site.step, w, i) {
                ctx.note_straggler();
                SIM_TASK_MS * policy.straggler_factor.max(1) as u64
            } else {
                SIM_TASK_MS
            };
            return (w, sim_ms, run_task(f, i, item));
        };
        ctx.note_task_fault(fault);
        if let Some(r) = rec {
            // Health tracking: the injected fault counts against the
            // worker it struck (circuit-breaker input). State changes are
            // deferred to the next batch boundary.
            r.note_task_failure(w);
        }
        let failure = match fault {
            TaskFault::Panic => {
                // Genuinely unwind through the worker's catch path so the
                // panic-isolation machinery is exercised, not simulated.
                match run_task(
                    &|_, _: ()| -> Result<R> {
                        panic!("injected fault: task {i} on worker {w} (attempt {attempt})")
                    },
                    i,
                    (),
                ) {
                    Err(e) => e,
                    Ok(_) => unreachable!("injected panic must surface as an error"),
                }
            }
            TaskFault::Transient => FudjError::Execution(format!(
                "injected fault: transient failure of task {i} on worker {w} (attempt {attempt})"
            )),
            TaskFault::WorkerLoss => FudjError::Execution(format!(
                "injected fault: worker {w} lost while running task {i} (attempt {attempt})"
            )),
        };
        if attempt >= policy.max_retries {
            ctx.note_exhaustion();
            return (
                w,
                SIM_TASK_MS,
                Err(FudjError::Execution(format!(
                    "retry budget exhausted after {} attempts: {failure}",
                    attempt + 1
                ))),
            );
        }
        if fault == TaskFault::WorkerLoss {
            // Re-execute on the next surviving worker — skipping dead or
            // quarantined slots when membership is tracked.
            w = match rec {
                Some(r) => r.membership().next_active_after(w),
                None => (w + 1) % pool_size,
            };
            ctx.note_reexecution();
        }
        let waited_ms = ctx.backoff(attempt);
        if let Some(c) = ctrl {
            // Backoff burns simulated time against this query's deadline.
            c.advance(waited_ms);
        }
        ctx.note_task_retry();
        attempt += 1;
    }
}

/// Run one task body, converting a panic into an execution error.
fn run_task<T, R, F>(f: &F, i: usize, item: T) -> Result<R>
where
    F: Fn(usize, T) -> Result<R>,
{
    catch_unwind(AssertUnwindSafe(|| f(i, item))).unwrap_or_else(|payload| {
        // `&*payload`: downcast the payload itself, not the `Box<dyn Any>`
        // (which is `'static + Sized`, hence itself `Any`, and would
        // shadow the inner string under plain `&payload` coercion).
        Err(FudjError::Execution(format!(
            "worker task panicked: {}",
            panic_message(&*payload)
        )))
    })
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "<non-string panic payload>"
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channels ends each worker's recv loop.
        self.senders.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_items_in_order_preserving_slots() {
        let pool = WorkerPool::new(4);
        let out = pool
            .run((0..20).collect(), |i, x: i32| Ok((i as i32, x * 2)))
            .unwrap();
        for (i, (idx, doubled)) in out.iter().enumerate() {
            assert_eq!(*idx, i as i32);
            assert_eq!(*doubled, 2 * i as i32);
        }
    }

    #[test]
    fn same_threads_serve_across_calls() {
        // The whole point of the pool: worker i is the same OS thread in
        // every phase of every query on this cluster.
        let pool = WorkerPool::new(3);
        let names = |_: ()| {
            pool.run(vec![0usize, 1, 2], |_, _| {
                Ok(std::thread::current().name().unwrap_or_default().to_owned())
            })
            .unwrap()
        };
        let first = names(());
        let second = names(());
        assert_eq!(first, second);
        assert_eq!(first.len(), 3);
        assert_eq!(
            first.iter().collect::<HashSet<_>>().len(),
            3,
            "three distinct workers"
        );
        assert!(
            first.iter().all(|n| n.starts_with("fudj-worker-")),
            "{first:?}"
        );
    }

    #[test]
    fn borrows_from_caller_stack_work() {
        let pool = WorkerPool::new(2);
        let data = vec![10i64, 20, 30, 40];
        let data_ref = &data;
        let out = pool
            .run(vec![0usize, 1, 2, 3], |_, i| Ok(data_ref[i] + 1))
            .unwrap();
        assert_eq!(out, vec![11, 21, 31, 41]);
    }

    #[test]
    fn panic_surfaces_as_error_without_poisoning_pool() {
        let pool = WorkerPool::new(2);
        let err = pool
            .run(vec![0, 1, 2, 3], |_, x: i32| {
                if x == 2 {
                    panic!("boom on {x}");
                }
                Ok(x)
            })
            .unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("panicked") && msg.contains("boom on 2"),
            "{msg}"
        );

        // The pool keeps working after the panic — no dead worker, no
        // poisoned lock.
        let ok = pool.run(vec![1, 2, 3], |_, x: i32| Ok(x * 10)).unwrap();
        assert_eq!(ok, vec![10, 20, 30]);
    }

    #[test]
    fn error_results_propagate_without_cancelling_other_items() {
        let pool = WorkerPool::new(2);
        let completed = AtomicUsize::new(0);
        let result = pool.run(vec![0, 1, 2, 3], |_, x: i32| {
            if x == 1 {
                Err(FudjError::Execution("bad item".into()))
            } else {
                completed.fetch_add(1, Ordering::SeqCst);
                Ok(x)
            }
        });
        assert!(result.is_err());
        assert_eq!(completed.load(Ordering::SeqCst), 3, "other items still ran");
    }

    #[test]
    fn reentrant_use_degrades_to_inline_not_deadlock() {
        let pool = WorkerPool::new(2);
        // A task that (incorrectly) fans out again: must complete, inline.
        let out = pool
            .run(vec![0usize, 1], |_, _| {
                let inner = pool.run(vec![10i64, 20], |_, v| Ok(v))?;
                Ok(inner.into_iter().sum::<i64>())
            })
            .unwrap();
        assert_eq!(out, vec![30, 30]);
    }

    #[test]
    fn injected_panic_exhaustion_escalates_with_message_and_pool_survives() {
        let pool = WorkerPool::new(2);
        let mut config = fudj_core::FaultConfig::quiet(99);
        config.panic_prob = 1.0;
        config.retry.max_retries = 2;
        let m = QueryMetrics::with_config(None, Some(config));
        let err = pool
            .run_metered(vec![0, 1, 2], Some(&m), |_, x: i32| Ok(x))
            .unwrap_err();
        let msg = err.to_string();
        // The escalation wraps the last underlying failure, so the panic
        // message survives all the way to the caller.
        assert!(
            msg.contains("retry budget exhausted after 3 attempts"),
            "{msg}"
        );
        assert!(msg.contains("panicked"), "{msg}");
        assert!(msg.contains("injected fault"), "{msg}");
        let f = m.snapshot().fault;
        assert_eq!(f.injected_panics, 9, "3 tasks x 3 attempts: {f:?}");
        assert_eq!(f.task_retries, 6);
        assert_eq!(f.retry_exhaustions, 3);

        // Every injected panic genuinely unwound on a worker thread, and
        // the pool is immediately reusable afterwards.
        let ok = pool.run(vec![1, 2, 3], |_, x: i32| Ok(x * 10)).unwrap();
        assert_eq!(ok, vec![10, 20, 30]);
    }

    #[test]
    fn injected_faults_recover_and_counters_reproduce_per_seed() {
        let pool = WorkerPool::new(3);
        let mut config = fudj_core::FaultConfig::chaos(4242);
        config.retry.max_retries = 16; // never exhaust at chaos rates
        let run = || {
            let m = QueryMetrics::with_config(None, Some(config));
            let out = pool
                .run_metered((0..40).collect(), Some(&m), |_, x: i64| Ok(x * 3))
                .unwrap();
            (out, m.snapshot().fault)
        };
        let (out, f) = run();
        assert_eq!(out, (0..40).map(|x| x * 3).collect::<Vec<_>>());
        assert!(f.total_injected() > 0, "chaos must inject: {f:?}");
        assert_eq!(f.retry_exhaustions, 0, "{f:?}");
        // Every non-escalated task fault costs exactly one retry, and
        // every worker loss re-executes on a survivor.
        assert_eq!(
            f.task_retries,
            f.injected_panics + f.injected_transients + f.injected_worker_losses,
            "{f:?}"
        );
        assert_eq!(f.reexecutions, f.injected_worker_losses, "{f:?}");

        // Same seed, fresh context: bit-identical schedule and counters.
        let (out2, f2) = run();
        assert_eq!(out, out2);
        assert_eq!(f, f2);
    }

    #[test]
    fn stragglers_get_speculated_and_advance_the_simulated_clock() {
        let pool = WorkerPool::new(2);
        let mut config = fudj_core::FaultConfig::quiet(7);
        config.straggler_prob = 0.25;
        let m = QueryMetrics::with_config(None, Some(config));
        pool.run_metered((0..32).collect(), Some(&m), |_, x: i32| Ok(x))
            .unwrap();
        let f = m.snapshot().fault;
        assert!(f.injected_stragglers > 0, "{f:?}");
        // At this rate the batch median is a healthy task, so every
        // straggler (10x median) crosses the 3x speculation threshold.
        assert_eq!(f.speculations, f.injected_stragglers, "{f:?}");
        assert!(f.sim_clock_ms >= SIM_TASK_MS, "{f:?}");
    }

    #[test]
    fn empty_and_single_item_fast_paths() {
        let pool = WorkerPool::new(4);
        assert!(pool
            .run(Vec::<i32>::new(), |_, x| Ok(x))
            .unwrap()
            .is_empty());
        assert_eq!(pool.run(vec![7], |_, x: i32| Ok(x + 1)).unwrap(), vec![8]);
    }
}
