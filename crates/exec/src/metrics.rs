//! Query execution metrics.
//!
//! Exchanges report shuffled/broadcast rows and bytes; the FUDJ join
//! operator reports phase timings and verify/dedup counters. A
//! [`QueryMetrics`] is a cheap cloneable handle shared by every operator of
//! one query execution.

use crate::control::{DispatchGate, QueryControl};
use crate::fault::{FaultContext, FaultStats};
use crate::mode::ExecMode;
use crate::recovery::{RecoveryContext, RecoveryStats};
use fudj_core::{FaultConfig, UdfStats};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A simulated network: exchanges charge wall-clock time for the bytes they
/// move, per receiving worker, on that worker's thread — modelling one NIC
/// per node. Without a model (the default), moving bytes costs only their
/// serialization CPU, which understates the paper's cluster-scale effects
/// (e.g. the price of duplicate elimination's extra shuffle).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NetworkModel {
    /// Link bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: u64,
    /// Fixed per-transfer latency (charged once per non-empty receive).
    pub latency: Duration,
}

impl NetworkModel {
    /// 1 GbE with 100 µs latency — a typical cluster interconnect.
    pub fn gigabit() -> Self {
        NetworkModel {
            bandwidth_bytes_per_sec: 125_000_000,
            latency: Duration::from_micros(100),
        }
    }

    /// 100 Mb Ethernet with 200 µs latency — the paper's era of shared
    /// cluster links, useful to magnify shuffle costs in experiments.
    pub fn fast_ethernet() -> Self {
        NetworkModel {
            bandwidth_bytes_per_sec: 12_500_000,
            latency: Duration::from_micros(200),
        }
    }

    /// Transfer time of `bytes` bytes over this link.
    pub fn transfer_time(&self, bytes: u64) -> Duration {
        if bytes == 0 {
            return Duration::ZERO;
        }
        self.latency + Duration::from_secs_f64(bytes as f64 / self.bandwidth_bytes_per_sec as f64)
    }
}

/// Per-worker activity counters. Worker identity is stable for the
/// lifetime of a [`crate::Cluster`] (one persistent pool thread per
/// worker), so these accumulate across all phases of all queries run
/// against one metrics handle.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Rows this worker received from exchanges (shuffle destinations,
    /// broadcast receivers, the gather coordinator).
    pub rows: u64,
    /// Serialized bytes this worker received from exchanges.
    pub bytes: u64,
    /// Wall-clock time this worker spent executing tasks.
    pub busy: Duration,
}

/// Load-balance summary for one named phase: how the busiest worker
/// compares to the average (paper Fig. 10 territory — skew is what
/// DIVIDE's balancing objectives exist to fight).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseSkew {
    /// Phase name (e.g. `partition`, `join`).
    pub phase: String,
    /// Busy time of the most-loaded worker.
    pub max: Duration,
    /// Mean busy time across workers that participated.
    pub mean: Duration,
    /// Number of workers that did any work in this phase.
    pub workers: usize,
}

impl PhaseSkew {
    /// `max / mean` — 1.0 is perfectly balanced; higher means one
    /// straggler dominates the phase's wall-clock time.
    pub fn ratio(&self) -> f64 {
        if self.mean.is_zero() {
            1.0
        } else {
            self.max.as_secs_f64() / self.mean.as_secs_f64()
        }
    }
}

/// Serving-tier counters: plan/result cache effectiveness and admission
/// outcomes, accumulated per tier (one tier outlives many queries, like
/// the durable store behind [`fudj_storage::DurabilityStats`]). All zero
/// unless the query went through `fudj-serve`, which stamps its counters
/// into each response snapshot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServingStats {
    /// Statements the tier admitted and ran (or answered from cache).
    pub admissions: u64,
    /// Statements rejected by scheduler admission control.
    pub rejections: u64,
    /// Statements that reused a cached physical plan (no bind/plan).
    pub plan_cache_hits: u64,
    /// Statements that had to bind + plan.
    pub plan_cache_misses: u64,
    /// Plans evicted by the plan cache's LRU bound.
    pub plan_cache_evictions: u64,
    /// Statements answered from the result cache (no execution).
    pub result_cache_hits: u64,
    /// Statements that had to execute (no usable cached result).
    pub result_cache_misses: u64,
    /// Cached results discarded because a table/DDL epoch moved on.
    pub result_cache_invalidations: u64,
    /// Results evicted by the result cache's LRU bound.
    pub result_cache_evictions: u64,
    /// Deepest scheduler queue observed while the tier submitted work.
    pub queue_depth_high_water: u64,
}

impl ServingStats {
    /// Whether any serving work was recorded.
    pub fn any(&self) -> bool {
        *self != ServingStats::default()
    }
}

/// Point-in-time copy of the counters.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Rows that crossed worker boundaries in hash/random shuffles.
    pub rows_shuffled: u64,
    /// Serialized bytes of those rows.
    pub bytes_shuffled: u64,
    /// Row deliveries performed by broadcasts (rows × receivers).
    pub rows_broadcast: u64,
    /// Serialized bytes delivered by broadcasts.
    pub bytes_broadcast: u64,
    /// Bytes of join state (summaries, PPlans) moved between workers.
    pub state_bytes: u64,
    /// `verify` invocations in join operators.
    pub verify_calls: u64,
    /// Output pairs dropped by duplicate handling.
    pub dedup_rejections: u64,
    /// Rows spilled to temporary files by memory-budgeted joins.
    pub spilled_rows: u64,
    /// Bytes written to spill files.
    pub spilled_bytes: u64,
    /// Sub-partitions the hybrid-hash COMBINE kept memory-resident.
    pub spill_resident_partitions: u64,
    /// Sub-partitions the hybrid-hash COMBINE streamed to disk.
    pub spill_spilled_partitions: u64,
    /// Partitioning passes run by spilling joins (1 per spill plus 1 per
    /// recursive repartitioning of an over-budget sub-partition).
    pub spill_passes: u64,
    /// Deepest recursive repartitioning level reached (0 = first pass).
    pub spill_recursion_depth: u64,
    /// Sub-partitions joined by the block-nested-loop fallback (recursion
    /// depth cap hit, or a single hot bucket that rehashing cannot split).
    pub spill_bnl_fallbacks: u64,
    /// Largest row working set a spilling COMBINE task ever held resident
    /// (slot memory plus unflushed write buffers); bounded by the budget
    /// plus one write batch.
    pub spill_peak_resident_rows: u64,
    /// Named phase durations, in completion order (phases repeat per join).
    pub phases: Vec<(String, Duration)>,
    /// Per-worker counters, indexed by worker id. Grows on demand to the
    /// highest worker that reported activity.
    pub per_worker: Vec<WorkerStats>,
    /// Per-phase, per-worker busy time: one entry per phase name (in
    /// first-completion order), each holding a worker-indexed vector.
    /// Repeated phases with the same name accumulate into one entry.
    pub phase_worker_busy: Vec<(String, Vec<Duration>)>,
    /// Injected-fault and recovery counters (all zero unless the query ran
    /// with an armed [`crate::fault::FaultContext`]).
    pub fault: FaultStats,
    /// UDF guardrail counters (all zero unless a guarded join caught a
    /// misbehaving callback).
    pub udf: UdfStats,
    /// Checkpoint/recovery counters (all zero unless the query ran with a
    /// [`crate::recovery::RecoveryContext`] attached).
    pub recovery: RecoveryStats,
    /// Durability counters (all zero unless the session has a durable
    /// store open — stamped by the session after execution, since the WAL
    /// lives at session scope, not query scope).
    pub durability: fudj_storage::DurabilityStats,
    /// Serving-tier counters (all zero unless the statement went through
    /// `fudj-serve`, which stamps its tier-scoped counters into each
    /// response snapshot — like durability, serving outlives one query).
    pub serving: ServingStats,
    /// Simulated milliseconds of query execution: the control-plane clock
    /// when a [`QueryControl`] was attached (every pool batch advances
    /// it), else the fault layer's backoff/straggler clock.
    pub sim_clock_ms: u64,
    /// Evaluation strategy the query ran under. Display-only: it is
    /// deliberately *not* part of [`CounterFingerprint`], because the whole
    /// point of the columnar differential oracle is that both modes produce
    /// identical logical counters.
    pub exec_mode: ExecMode,
}

impl MetricsSnapshot {
    /// Total duration of all phases with the given name.
    pub fn phase_total(&self, name: &str) -> Duration {
        self.phases
            .iter()
            .filter(|(n, _)| n == name)
            .map(|(_, d)| *d)
            .sum()
    }

    /// Total bytes that touched the simulated network.
    pub fn network_bytes(&self) -> u64 {
        self.bytes_shuffled + self.bytes_broadcast + self.state_bytes
    }

    /// The deterministic-counter fingerprint of this snapshot — see
    /// [`CounterFingerprint`].
    pub fn fingerprint(&self) -> CounterFingerprint {
        CounterFingerprint {
            rows_shuffled: self.rows_shuffled,
            bytes_shuffled: self.bytes_shuffled,
            rows_broadcast: self.rows_broadcast,
            bytes_broadcast: self.bytes_broadcast,
            state_bytes: self.state_bytes,
            verify_calls: self.verify_calls,
            dedup_rejections: self.dedup_rejections,
            spilled_rows: self.spilled_rows,
            spilled_bytes: self.spilled_bytes,
            spill_resident_partitions: self.spill_resident_partitions,
            spill_spilled_partitions: self.spill_spilled_partitions,
            spill_passes: self.spill_passes,
            spill_recursion_depth: self.spill_recursion_depth,
            spill_bnl_fallbacks: self.spill_bnl_fallbacks,
            spill_peak_resident_rows: self.spill_peak_resident_rows,
            phases: self.phases.iter().map(|(n, _)| n.clone()).collect(),
            fault: self.fault,
            udf: self.udf,
            recovery: self.recovery,
            durability: self.durability,
            serving: self.serving,
        }
    }

    /// Per-phase max/mean worker busy time, in first-completion order.
    /// Only workers with non-zero busy time in a phase count toward the
    /// mean — a phase that fanned out to 2 of 8 workers reports 2.
    pub fn skew_report(&self) -> Vec<PhaseSkew> {
        self.phase_worker_busy
            .iter()
            .map(|(phase, busy)| {
                let active: Vec<Duration> = busy.iter().copied().filter(|d| !d.is_zero()).collect();
                let workers = active.len();
                let max = active.iter().copied().max().unwrap_or(Duration::ZERO);
                let total: Duration = active.iter().sum();
                let mean = if workers == 0 {
                    Duration::ZERO
                } else {
                    total / workers as u32
                };
                PhaseSkew {
                    phase: phase.clone(),
                    max,
                    mean,
                    workers,
                }
            })
            .collect()
    }
}

/// The deterministic subset of a [`MetricsSnapshot`]: every counter that
/// must be bit-identical between a serial and a concurrent (scheduled)
/// execution of the same query, plus the phase-name sequence. Wall-clock
/// durations, per-worker busy splits, and the control-plane clock are
/// deliberately excluded — they legitimately vary with machine load and
/// interleaving. This is what the scheduler's differential tests compare.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CounterFingerprint {
    /// Rows that crossed worker boundaries in hash/random shuffles.
    pub rows_shuffled: u64,
    /// Serialized bytes of those rows.
    pub bytes_shuffled: u64,
    /// Row deliveries performed by broadcasts.
    pub rows_broadcast: u64,
    /// Serialized bytes delivered by broadcasts.
    pub bytes_broadcast: u64,
    /// Bytes of join state moved between workers.
    pub state_bytes: u64,
    /// `verify` invocations in join operators.
    pub verify_calls: u64,
    /// Output pairs dropped by duplicate handling.
    pub dedup_rejections: u64,
    /// Rows spilled by memory-budgeted joins.
    pub spilled_rows: u64,
    /// Bytes written to spill files.
    pub spilled_bytes: u64,
    /// Sub-partitions kept memory-resident by the hybrid-hash COMBINE.
    pub spill_resident_partitions: u64,
    /// Sub-partitions streamed to disk by the hybrid-hash COMBINE.
    pub spill_spilled_partitions: u64,
    /// Partitioning passes run by spilling joins.
    pub spill_passes: u64,
    /// Deepest recursive repartitioning level reached.
    pub spill_recursion_depth: u64,
    /// Sub-partitions joined by the block-nested-loop fallback.
    pub spill_bnl_fallbacks: u64,
    /// Largest resident row working set of any spilling COMBINE task.
    pub spill_peak_resident_rows: u64,
    /// Phase names in completion order (durations excluded).
    pub phases: Vec<String>,
    /// Injected-fault and recovery counters.
    pub fault: FaultStats,
    /// UDF guardrail counters.
    pub udf: UdfStats,
    /// Checkpoint/recovery counters.
    pub recovery: RecoveryStats,
    /// Durability counters (WAL/snapshot/recovery work plus injected
    /// storage faults). Zero-by-default, so suites that never arm
    /// durability keep their fingerprints unchanged.
    pub durability: fudj_storage::DurabilityStats,
    /// Serving-tier counters. Zero-by-default like durability; note they
    /// are *tier*-scoped, so differentials comparing a cached tier against
    /// a cache-off oracle zero this field before comparing.
    pub serving: ServingStats,
}

/// Flatten a snapshot's logical counters into `(name, value)` pairs —
/// the payload of a journaled `StageCommitted` record. Covers every
/// numeric [`CounterFingerprint`] counter plus the recovery counters
/// (`recovery.` prefix); fault, UDF, durability, and serving counters are
/// deliberately excluded — the first two are zero under the storage-only
/// crash fault plan, the last two are stamped at session/tier scope after
/// execution and normalized by the restart differential.
pub fn flatten_counters(snap: &MetricsSnapshot) -> Vec<(String, u64)> {
    let r = &snap.recovery;
    vec![
        ("rows_shuffled".into(), snap.rows_shuffled),
        ("bytes_shuffled".into(), snap.bytes_shuffled),
        ("rows_broadcast".into(), snap.rows_broadcast),
        ("bytes_broadcast".into(), snap.bytes_broadcast),
        ("state_bytes".into(), snap.state_bytes),
        ("verify_calls".into(), snap.verify_calls),
        ("dedup_rejections".into(), snap.dedup_rejections),
        ("spilled_rows".into(), snap.spilled_rows),
        ("spilled_bytes".into(), snap.spilled_bytes),
        (
            "spill_resident_partitions".into(),
            snap.spill_resident_partitions,
        ),
        (
            "spill_spilled_partitions".into(),
            snap.spill_spilled_partitions,
        ),
        ("spill_passes".into(), snap.spill_passes),
        ("spill_recursion_depth".into(), snap.spill_recursion_depth),
        ("spill_bnl_fallbacks".into(), snap.spill_bnl_fallbacks),
        (
            "spill_peak_resident_rows".into(),
            snap.spill_peak_resident_rows,
        ),
        ("recovery.checkpoints_written".into(), r.checkpoints_written),
        (
            "recovery.checkpoint_bytes_written".into(),
            r.checkpoint_bytes_written,
        ),
        ("recovery.checkpoints_read".into(), r.checkpoints_read),
        ("recovery.checkpoints_evicted".into(), r.checkpoints_evicted),
        ("recovery.partitions_restored".into(), r.partitions_restored),
        (
            "recovery.partitions_recomputed".into(),
            r.partitions_recomputed,
        ),
        ("recovery.full_stage_replays".into(), r.full_stage_replays),
        ("recovery.deaths_survived".into(), r.deaths_survived),
        ("recovery.workers_quarantined".into(), r.workers_quarantined),
        ("recovery.stages_resumed".into(), r.stages_resumed),
        (
            "recovery.resume_rows_restored".into(),
            r.resume_rows_restored,
        ),
        ("recovery.resume_full_replays".into(), r.resume_full_replays),
    ]
}

/// Apply a resume's counter seed to a snapshot: the journaled values of
/// the skipped upstream work fold into this run's counters (sums for
/// volume counters, `max` for the two high-water marks), and the skipped
/// phases are prepended with zero durations so the phase-name sequence —
/// part of the fingerprint — matches an uninterrupted run. Unknown names
/// are ignored (journals written by a newer build replay cleanly).
pub fn apply_seed(snap: &mut MetricsSnapshot, seed: &crate::recovery::CounterSeed) {
    for (name, v) in &seed.counters {
        let v = *v;
        let r = &mut snap.recovery;
        match name.as_str() {
            "rows_shuffled" => snap.rows_shuffled += v,
            "bytes_shuffled" => snap.bytes_shuffled += v,
            "rows_broadcast" => snap.rows_broadcast += v,
            "bytes_broadcast" => snap.bytes_broadcast += v,
            "state_bytes" => snap.state_bytes += v,
            "verify_calls" => snap.verify_calls += v,
            "dedup_rejections" => snap.dedup_rejections += v,
            "spilled_rows" => snap.spilled_rows += v,
            "spilled_bytes" => snap.spilled_bytes += v,
            "spill_resident_partitions" => snap.spill_resident_partitions += v,
            "spill_spilled_partitions" => snap.spill_spilled_partitions += v,
            "spill_passes" => snap.spill_passes += v,
            "spill_recursion_depth" => {
                snap.spill_recursion_depth = snap.spill_recursion_depth.max(v)
            }
            "spill_bnl_fallbacks" => snap.spill_bnl_fallbacks += v,
            "spill_peak_resident_rows" => {
                snap.spill_peak_resident_rows = snap.spill_peak_resident_rows.max(v)
            }
            "recovery.checkpoints_written" => r.checkpoints_written += v,
            "recovery.checkpoint_bytes_written" => r.checkpoint_bytes_written += v,
            "recovery.checkpoints_read" => r.checkpoints_read += v,
            "recovery.checkpoints_evicted" => r.checkpoints_evicted += v,
            "recovery.partitions_restored" => r.partitions_restored += v,
            "recovery.partitions_recomputed" => r.partitions_recomputed += v,
            "recovery.full_stage_replays" => r.full_stage_replays += v,
            "recovery.deaths_survived" => r.deaths_survived += v,
            "recovery.workers_quarantined" => r.workers_quarantined += v,
            "recovery.stages_resumed" => r.stages_resumed += v,
            "recovery.resume_rows_restored" => r.resume_rows_restored += v,
            "recovery.resume_full_replays" => r.resume_full_replays += v,
            _ => {}
        }
    }
    let mut phases: Vec<(String, Duration)> = seed
        .phases
        .iter()
        .map(|n| (n.clone(), Duration::ZERO))
        .collect();
    phases.append(&mut snap.phases);
    snap.phases = phases;
}

/// Mutable metrics state behind the lock: the public snapshot plus the
/// stack of currently-open phases (used to attribute worker busy time).
#[derive(Default)]
struct MetricsState {
    snap: MetricsSnapshot,
    phase_stack: Vec<String>,
}

/// Shared, thread-safe metrics handle.
#[derive(Clone, Default)]
pub struct QueryMetrics {
    inner: Arc<Mutex<MetricsState>>,
    network: Option<NetworkModel>,
    fault: Option<Arc<FaultContext>>,
    recovery: Option<Arc<RecoveryContext>>,
    control: Option<Arc<QueryControl>>,
    gate: Option<Arc<dyn DispatchGate>>,
    exec_mode: ExecMode,
}

impl QueryMetrics {
    /// Fresh, zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Metrics whose exchanges charge time against a network model.
    pub fn with_network(network: Option<NetworkModel>) -> Self {
        Self::with_config(network, None)
    }

    /// Metrics armed with an optional network model and an optional
    /// deterministic fault plan. A `faults` of `None` (or a quiet config)
    /// makes this identical to [`Self::with_network`].
    pub fn with_config(network: Option<NetworkModel>, faults: Option<FaultConfig>) -> Self {
        QueryMetrics {
            inner: Arc::default(),
            network,
            fault: faults
                .filter(FaultConfig::is_active)
                .map(|c| Arc::new(FaultContext::new(c))),
            recovery: None,
            control: None,
            gate: None,
            exec_mode: ExecMode::default(),
        }
    }

    /// Stamp the evaluation strategy this query runs under. Set once by
    /// the cluster before execution starts; it only labels snapshots.
    pub fn set_exec_mode(&mut self, mode: ExecMode) {
        self.exec_mode = mode;
    }

    /// The evaluation strategy operators should use for vectorizable work.
    pub fn exec_mode(&self) -> ExecMode {
        self.exec_mode
    }

    /// Attach a per-query recovery context (checkpointing, worker-death
    /// survival, membership-aware routing). Attached by the cluster when
    /// its recovery layer has anything to do; plain execution leaves it
    /// unset and behaves exactly as before.
    pub fn attach_recovery(&mut self, recovery: Arc<RecoveryContext>) {
        self.recovery = Some(recovery);
    }

    /// The attached recovery context, if any. The worker pool consults it
    /// for partition routing and failure attribution; stage boundaries
    /// consult it for checkpointing and death injection.
    pub fn recovery(&self) -> Option<&Arc<RecoveryContext>> {
        self.recovery.as_ref()
    }

    /// Attach a scheduler control plane: a per-query cancel/deadline
    /// token and an optional dispatch gate the pool must pass through
    /// before every batch. Used by the query scheduler; the plain
    /// blocking path leaves both unset.
    pub fn attach_control(
        &mut self,
        control: Arc<QueryControl>,
        gate: Option<Arc<dyn DispatchGate>>,
    ) {
        self.control = Some(control);
        self.gate = gate;
    }

    /// The attached cancel/deadline token, if any.
    pub fn control(&self) -> Option<&Arc<QueryControl>> {
        self.control.as_ref()
    }

    /// The attached dispatch gate, if any.
    pub fn gate(&self) -> Option<&Arc<dyn DispatchGate>> {
        self.gate.as_ref()
    }

    /// The active network model, if any.
    pub fn network(&self) -> Option<NetworkModel> {
        self.network
    }

    /// The armed fault context, if any. The worker pool and the exchange
    /// operators consult this at every dispatch.
    pub fn fault(&self) -> Option<&Arc<FaultContext>> {
        self.fault.as_ref()
    }

    /// The innermost currently-open phase name, if any (used to label
    /// fault-injection sites).
    pub fn current_phase(&self) -> Option<String> {
        self.inner.lock().phase_stack.last().cloned()
    }

    /// Charge the simulated network for one worker's receive of `bytes`
    /// bytes: blocks the calling (worker) thread for the transfer time.
    pub fn charge_network(&self, bytes: u64) {
        if let Some(model) = self.network {
            let t = model.transfer_time(bytes);
            if !t.is_zero() {
                std::thread::sleep(t);
            }
        }
    }

    /// Record a shuffle of `rows` rows totalling `bytes` serialized bytes.
    pub fn record_shuffle(&self, rows: u64, bytes: u64) {
        let mut m = self.inner.lock();
        m.snap.rows_shuffled += rows;
        m.snap.bytes_shuffled += bytes;
    }

    /// Record a broadcast delivering `rows` row-copies / `bytes` bytes.
    pub fn record_broadcast(&self, rows: u64, bytes: u64) {
        let mut m = self.inner.lock();
        m.snap.rows_broadcast += rows;
        m.snap.bytes_broadcast += bytes;
    }

    /// Record movement of join state (summary/PPlan) bytes.
    pub fn record_state_bytes(&self, bytes: u64) {
        self.inner.lock().snap.state_bytes += bytes;
    }

    /// Count `n` verify calls.
    pub fn record_verify_calls(&self, n: u64) {
        self.inner.lock().snap.verify_calls += n;
    }

    /// Count `n` pairs dropped by dedup.
    pub fn record_dedup_rejections(&self, n: u64) {
        self.inner.lock().snap.dedup_rejections += n;
    }

    /// Record rows/bytes written to spill files.
    pub fn record_spill(&self, rows: u64, bytes: u64) {
        let mut m = self.inner.lock();
        m.snap.spilled_rows += rows;
        m.snap.spilled_bytes += bytes;
    }

    /// Fold one hybrid-hash spill run's counters into the query totals.
    /// Called once per spilling COMBINE task, after it succeeds — volume
    /// and partition counters accumulate, depth and peak-working-set are
    /// high-water marks across tasks.
    pub fn record_spill_run(&self, stats: &crate::spill::SpillStats) {
        let mut m = self.inner.lock();
        let s = &mut m.snap;
        s.spilled_rows += stats.spilled_rows;
        s.spilled_bytes += stats.spilled_bytes;
        s.spill_resident_partitions += stats.resident_partitions;
        s.spill_spilled_partitions += stats.spilled_partitions;
        s.spill_passes += stats.passes;
        s.spill_recursion_depth = s.spill_recursion_depth.max(stats.max_depth);
        s.spill_bnl_fallbacks += stats.bnl_fallbacks;
        s.spill_peak_resident_rows = s.spill_peak_resident_rows.max(stats.peak_resident_rows);
    }

    /// Fold one guarded join's guardrail counters into the query totals.
    /// Called by the FUDJ join operator when a guarded join finishes (or
    /// aborts) — once per join, with that guard's final snapshot.
    pub fn record_udf(&self, stats: &UdfStats) {
        self.inner.lock().snap.udf.merge(stats);
    }

    /// Time a phase and record it under `name`. While `f` runs, worker
    /// busy time reported via [`Self::charge_worker_busy`] is attributed
    /// to this phase (innermost phase wins when nested).
    pub fn phase<R>(&self, name: &str, f: impl FnOnce() -> R) -> R {
        self.inner.lock().phase_stack.push(name.to_owned());
        let start = Instant::now();
        let out = f();
        let elapsed = start.elapsed();
        let mut m = self.inner.lock();
        m.phase_stack.pop();
        m.snap.phases.push((name.to_owned(), elapsed));
        out
    }

    /// Attribute `busy` wall-clock task time to `worker`, both in the
    /// lifetime per-worker totals and under the currently-open phase (if
    /// any). Called by the worker pool after each task completes.
    pub fn charge_worker_busy(&self, worker: usize, busy: Duration) {
        let mut m = self.inner.lock();
        if m.snap.per_worker.len() <= worker {
            m.snap.per_worker.resize(worker + 1, WorkerStats::default());
        }
        m.snap.per_worker[worker].busy += busy;
        if let Some(phase) = m.phase_stack.last().cloned() {
            let idx = match m
                .snap
                .phase_worker_busy
                .iter()
                .position(|(n, _)| *n == phase)
            {
                Some(i) => i,
                None => {
                    m.snap.phase_worker_busy.push((phase, Vec::new()));
                    m.snap.phase_worker_busy.len() - 1
                }
            };
            let entry = &mut m.snap.phase_worker_busy[idx].1;
            if entry.len() <= worker {
                entry.resize(worker + 1, Duration::ZERO);
            }
            entry[worker] += busy;
        }
    }

    /// Record that `worker` received `rows` rows / `bytes` serialized
    /// bytes from an exchange. Called at shuffle/broadcast destinations
    /// and by the gather coordinator.
    pub fn charge_worker_io(&self, worker: usize, rows: u64, bytes: u64) {
        let mut m = self.inner.lock();
        if m.snap.per_worker.len() <= worker {
            m.snap.per_worker.resize(worker + 1, WorkerStats::default());
        }
        m.snap.per_worker[worker].rows += rows;
        m.snap.per_worker[worker].bytes += bytes;
    }

    /// Copy out the counters (fault/recovery counters included).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.inner.lock().snap.clone();
        if let Some(fault) = &self.fault {
            snap.fault = fault.stats();
        }
        if let Some(recovery) = &self.recovery {
            snap.recovery = recovery.stats();
            // A resumed query seeds the counters of the skipped upstream
            // work, so the final fingerprint matches an uninterrupted run.
            if let Some(seed) = recovery.seed() {
                apply_seed(&mut snap, &seed);
            }
        }
        snap.sim_clock_ms = match &self.control {
            Some(ctrl) => ctrl.sim_clock_ms(),
            None => snap.fault.sim_clock_ms,
        };
        snap.exec_mode = self.exec_mode;
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = QueryMetrics::new();
        m.record_shuffle(10, 100);
        m.record_shuffle(5, 50);
        m.record_broadcast(3, 30);
        m.record_state_bytes(7);
        m.record_verify_calls(2);
        m.record_dedup_rejections(1);
        let s = m.snapshot();
        assert_eq!(s.rows_shuffled, 15);
        assert_eq!(s.bytes_shuffled, 150);
        assert_eq!(s.rows_broadcast, 3);
        assert_eq!(s.network_bytes(), 150 + 30 + 7);
        assert_eq!(s.verify_calls, 2);
        assert_eq!(s.dedup_rejections, 1);
    }

    #[test]
    fn phases_record_and_sum() {
        let m = QueryMetrics::new();
        let slept = Duration::from_millis(5);
        let v = m.phase("summarize", || {
            std::thread::sleep(slept);
            42
        });
        assert_eq!(v, 42);
        m.phase("summarize", || std::thread::sleep(slept));
        m.phase("join", || ());
        let s = m.snapshot();
        assert_eq!(s.phases.len(), 3);
        // The two timed "summarize" phases each slept 5 ms, so their sum
        // must measure at least that — a zero reading would mean the
        // timer never ran.
        assert!(
            s.phase_total("summarize") >= slept * 2,
            "expected >= {:?}, got {:?}",
            slept * 2,
            s.phase_total("summarize")
        );
        assert!(s.phase_total("summarize") > s.phase_total("join"));
        assert_eq!(s.phase_total("missing"), Duration::ZERO);
    }

    #[test]
    fn worker_busy_attributed_to_open_phase() {
        let m = QueryMetrics::new();
        m.phase("partition", || {
            m.charge_worker_busy(0, Duration::from_millis(30));
            m.charge_worker_busy(2, Duration::from_millis(10));
        });
        m.phase("join", || {
            m.charge_worker_busy(0, Duration::from_millis(8));
        });
        // Outside any phase: counted in lifetime totals only.
        m.charge_worker_busy(1, Duration::from_millis(4));

        let s = m.snapshot();
        assert_eq!(s.per_worker.len(), 3);
        assert_eq!(s.per_worker[0].busy, Duration::from_millis(38));
        assert_eq!(s.per_worker[1].busy, Duration::from_millis(4));
        assert_eq!(s.per_worker[2].busy, Duration::from_millis(10));

        let skew = s.skew_report();
        assert_eq!(skew.len(), 2);
        assert_eq!(skew[0].phase, "partition");
        assert_eq!(skew[0].workers, 2, "worker 1 was idle in partition");
        assert_eq!(skew[0].max, Duration::from_millis(30));
        assert_eq!(skew[0].mean, Duration::from_millis(20));
        assert!((skew[0].ratio() - 1.5).abs() < 1e-9);
        assert_eq!(skew[1].phase, "join");
        assert_eq!(skew[1].workers, 1);
        assert!((skew[1].ratio() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn repeated_phases_accumulate_worker_busy() {
        let m = QueryMetrics::new();
        for _ in 0..2 {
            m.phase("join", || m.charge_worker_busy(1, Duration::from_millis(3)));
        }
        let s = m.snapshot();
        assert_eq!(
            s.phase_worker_busy.len(),
            1,
            "same-named phases share an entry"
        );
        assert_eq!(s.phase_worker_busy[0].1[1], Duration::from_millis(6));
    }

    #[test]
    fn worker_io_counters_accumulate() {
        let m = QueryMetrics::new();
        m.charge_worker_io(1, 10, 130);
        m.charge_worker_io(1, 5, 65);
        m.charge_worker_io(0, 1, 13);
        let s = m.snapshot();
        assert_eq!(
            s.per_worker[1],
            WorkerStats {
                rows: 15,
                bytes: 195,
                busy: Duration::ZERO
            }
        );
        assert_eq!(s.per_worker[0].rows, 1);
    }

    #[test]
    fn network_model_times() {
        let m = NetworkModel::gigabit();
        assert_eq!(m.transfer_time(0), Duration::ZERO);
        // 125 MB at 125 MB/s = 1 s + latency.
        let t = m.transfer_time(125_000_000);
        assert!(t >= Duration::from_secs(1));
        assert!(t < Duration::from_millis(1_001));
    }

    #[test]
    fn charge_network_without_model_is_free() {
        let m = QueryMetrics::new();
        let start = Instant::now();
        m.charge_network(u64::MAX / 2);
        assert!(start.elapsed() < Duration::from_millis(50));
    }

    #[test]
    fn clones_share_state() {
        let m = QueryMetrics::new();
        let m2 = m.clone();
        m2.record_shuffle(1, 1);
        assert_eq!(m.snapshot().rows_shuffled, 1);
    }
}
