//! Query execution metrics.
//!
//! Exchanges report shuffled/broadcast rows and bytes; the FUDJ join
//! operator reports phase timings and verify/dedup counters. A
//! [`QueryMetrics`] is a cheap cloneable handle shared by every operator of
//! one query execution.

use parking_lot::Mutex;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A simulated network: exchanges charge wall-clock time for the bytes they
/// move, per receiving worker, on that worker's thread — modelling one NIC
/// per node. Without a model (the default), moving bytes costs only their
/// serialization CPU, which understates the paper's cluster-scale effects
/// (e.g. the price of duplicate elimination's extra shuffle).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NetworkModel {
    /// Link bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: u64,
    /// Fixed per-transfer latency (charged once per non-empty receive).
    pub latency: Duration,
}

impl NetworkModel {
    /// 1 GbE with 100 µs latency — a typical cluster interconnect.
    pub fn gigabit() -> Self {
        NetworkModel {
            bandwidth_bytes_per_sec: 125_000_000,
            latency: Duration::from_micros(100),
        }
    }

    /// 100 Mb Ethernet with 200 µs latency — the paper's era of shared
    /// cluster links, useful to magnify shuffle costs in experiments.
    pub fn fast_ethernet() -> Self {
        NetworkModel {
            bandwidth_bytes_per_sec: 12_500_000,
            latency: Duration::from_micros(200),
        }
    }

    /// Transfer time of `bytes` bytes over this link.
    pub fn transfer_time(&self, bytes: u64) -> Duration {
        if bytes == 0 {
            return Duration::ZERO;
        }
        self.latency
            + Duration::from_secs_f64(bytes as f64 / self.bandwidth_bytes_per_sec as f64)
    }
}

/// Point-in-time copy of the counters.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Rows that crossed worker boundaries in hash/random shuffles.
    pub rows_shuffled: u64,
    /// Serialized bytes of those rows.
    pub bytes_shuffled: u64,
    /// Row deliveries performed by broadcasts (rows × receivers).
    pub rows_broadcast: u64,
    /// Serialized bytes delivered by broadcasts.
    pub bytes_broadcast: u64,
    /// Bytes of join state (summaries, PPlans) moved between workers.
    pub state_bytes: u64,
    /// `verify` invocations in join operators.
    pub verify_calls: u64,
    /// Output pairs dropped by duplicate handling.
    pub dedup_rejections: u64,
    /// Rows spilled to temporary files by memory-budgeted joins.
    pub spilled_rows: u64,
    /// Bytes written to spill files.
    pub spilled_bytes: u64,
    /// Named phase durations, in completion order (phases repeat per join).
    pub phases: Vec<(String, Duration)>,
}

impl MetricsSnapshot {
    /// Total duration of all phases with the given name.
    pub fn phase_total(&self, name: &str) -> Duration {
        self.phases.iter().filter(|(n, _)| n == name).map(|(_, d)| *d).sum()
    }

    /// Total bytes that touched the simulated network.
    pub fn network_bytes(&self) -> u64 {
        self.bytes_shuffled + self.bytes_broadcast + self.state_bytes
    }
}

/// Shared, thread-safe metrics handle.
#[derive(Clone, Default)]
pub struct QueryMetrics {
    inner: Arc<Mutex<MetricsSnapshot>>,
    network: Option<NetworkModel>,
}

impl QueryMetrics {
    /// Fresh, zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Metrics whose exchanges charge time against a network model.
    pub fn with_network(network: Option<NetworkModel>) -> Self {
        QueryMetrics { inner: Arc::default(), network }
    }

    /// The active network model, if any.
    pub fn network(&self) -> Option<NetworkModel> {
        self.network
    }

    /// Charge the simulated network for one worker's receive of `bytes`
    /// bytes: blocks the calling (worker) thread for the transfer time.
    pub fn charge_network(&self, bytes: u64) {
        if let Some(model) = self.network {
            let t = model.transfer_time(bytes);
            if !t.is_zero() {
                std::thread::sleep(t);
            }
        }
    }

    /// Record a shuffle of `rows` rows totalling `bytes` serialized bytes.
    pub fn record_shuffle(&self, rows: u64, bytes: u64) {
        let mut m = self.inner.lock();
        m.rows_shuffled += rows;
        m.bytes_shuffled += bytes;
    }

    /// Record a broadcast delivering `rows` row-copies / `bytes` bytes.
    pub fn record_broadcast(&self, rows: u64, bytes: u64) {
        let mut m = self.inner.lock();
        m.rows_broadcast += rows;
        m.bytes_broadcast += bytes;
    }

    /// Record movement of join state (summary/PPlan) bytes.
    pub fn record_state_bytes(&self, bytes: u64) {
        self.inner.lock().state_bytes += bytes;
    }

    /// Count `n` verify calls.
    pub fn record_verify_calls(&self, n: u64) {
        self.inner.lock().verify_calls += n;
    }

    /// Count `n` pairs dropped by dedup.
    pub fn record_dedup_rejections(&self, n: u64) {
        self.inner.lock().dedup_rejections += n;
    }

    /// Record rows/bytes written to spill files.
    pub fn record_spill(&self, rows: u64, bytes: u64) {
        let mut m = self.inner.lock();
        m.spilled_rows += rows;
        m.spilled_bytes += bytes;
    }

    /// Time a phase and record it under `name`.
    pub fn phase<R>(&self, name: &str, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        self.inner.lock().phases.push((name.to_owned(), start.elapsed()));
        out
    }

    /// Copy out the counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.inner.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = QueryMetrics::new();
        m.record_shuffle(10, 100);
        m.record_shuffle(5, 50);
        m.record_broadcast(3, 30);
        m.record_state_bytes(7);
        m.record_verify_calls(2);
        m.record_dedup_rejections(1);
        let s = m.snapshot();
        assert_eq!(s.rows_shuffled, 15);
        assert_eq!(s.bytes_shuffled, 150);
        assert_eq!(s.rows_broadcast, 3);
        assert_eq!(s.network_bytes(), 150 + 30 + 7);
        assert_eq!(s.verify_calls, 2);
        assert_eq!(s.dedup_rejections, 1);
    }

    #[test]
    fn phases_record_and_sum() {
        let m = QueryMetrics::new();
        let v = m.phase("summarize", || 42);
        assert_eq!(v, 42);
        m.phase("summarize", || ());
        m.phase("join", || ());
        let s = m.snapshot();
        assert_eq!(s.phases.len(), 3);
        assert!(s.phase_total("summarize") >= Duration::ZERO);
        assert_eq!(s.phase_total("missing"), Duration::ZERO);
    }

    #[test]
    fn network_model_times() {
        let m = NetworkModel::gigabit();
        assert_eq!(m.transfer_time(0), Duration::ZERO);
        // 125 MB at 125 MB/s = 1 s + latency.
        let t = m.transfer_time(125_000_000);
        assert!(t >= Duration::from_secs(1));
        assert!(t < Duration::from_millis(1_001));
    }

    #[test]
    fn charge_network_without_model_is_free() {
        let m = QueryMetrics::new();
        let start = Instant::now();
        m.charge_network(u64::MAX / 2);
        assert!(start.elapsed() < Duration::from_millis(50));
    }

    #[test]
    fn clones_share_state() {
        let m = QueryMetrics::new();
        let m2 = m.clone();
        m2.record_shuffle(1, 1);
        assert_eq!(m.snapshot().rows_shuffled, 1);
    }
}
