//! Property tests: every relational operator, executed on a multi-worker
//! cluster, agrees with a straightforward sequential oracle — and the
//! exchange primitives keep their contracts when the fault plan drops or
//! duplicates partition deliveries (recovery is supposed to be invisible
//! at the result level).

use fudj_core::{FudjEngineJoin, GuardConfig, GuardedJoin, JoinAlgorithm, UdfPolicy};
use fudj_exec::exchange::{gather, rebalance, route_hash, shuffle_by};
use fudj_exec::{
    AggFunc, Aggregate, Cluster, FaultConfig, FudjJoinNode, PhysicalPlan, QueryMetrics, SortKey,
    WorkerPool,
};
use fudj_joins::evil::{EqualityFudj, EvilJoin, EvilMode, EvilPhase};
use fudj_joins::poisoned;
use fudj_storage::DatasetBuilder;
use fudj_types::{DataType, ExtValue, Field, FudjError, Row, Schema, Value};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

fn dataset(rows: &[(i64, i64, i64)], partitions: usize) -> Arc<fudj_storage::Dataset> {
    let schema = Schema::shared(vec![
        Field::new("id", DataType::Int64),
        Field::new("grp", DataType::Int64),
        Field::new("v", DataType::Int64),
    ]);
    let d = DatasetBuilder::new("t", schema)
        .partitions(partitions)
        .build()
        .unwrap();
    for &(id, grp, v) in rows {
        d.insert(Row::new(vec![
            Value::Int64(id),
            Value::Int64(grp),
            Value::Int64(v),
        ]))
        .unwrap();
    }
    Arc::new(d)
}

fn arb_rows() -> impl Strategy<Value = Vec<(i64, i64, i64)>> {
    prop::collection::vec((0i64..1000, 0i64..7, -100i64..100), 0..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Filter keeps exactly the rows the predicate accepts, on any cluster.
    #[test]
    fn filter_matches_oracle(rows in arb_rows(), threshold in -100i64..100, workers in 1usize..5) {
        let plan = PhysicalPlan::Filter {
            input: Box::new(PhysicalPlan::Scan { dataset: dataset(&rows, 3) }),
            predicate: Arc::new(move |row| Ok(row.get(2).as_i64()? >= threshold)),
        };
        let (batch, _) = Cluster::new(workers).execute(&plan).unwrap();
        let expected = rows.iter().filter(|r| r.2 >= threshold).count();
        prop_assert_eq!(batch.len(), expected);
    }

    /// Two-step grouped aggregation equals a sequential group-by.
    #[test]
    fn aggregate_matches_oracle(rows in arb_rows(), workers in 1usize..5) {
        let plan = PhysicalPlan::HashAggregate {
            input: Box::new(PhysicalPlan::Scan { dataset: dataset(&rows, 4) }),
            group_by: vec![1],
            aggregates: vec![
                Aggregate::count_star("c"),
                Aggregate::on(AggFunc::Sum, 2, "s"),
                Aggregate::on(AggFunc::Min, 2, "mn"),
                Aggregate::on(AggFunc::Max, 2, "mx"),
                Aggregate::on(AggFunc::Avg, 2, "a"),
            ],
        };
        let (batch, _) = Cluster::new(workers).execute(&plan).unwrap();

        let mut oracle: HashMap<i64, (i64, i64, i64, i64)> = HashMap::new();
        for &(_, g, v) in &rows {
            let e = oracle.entry(g).or_insert((0, 0, i64::MAX, i64::MIN));
            e.0 += 1;
            e.1 += v;
            e.2 = e.2.min(v);
            e.3 = e.3.max(v);
        }
        prop_assert_eq!(batch.len(), oracle.len());
        for row in batch.rows() {
            let g = row.get(0).as_i64().unwrap();
            let (c, s, mn, mx) = oracle[&g];
            prop_assert_eq!(row.get(1), &Value::Int64(c));
            prop_assert_eq!(row.get(2), &Value::Int64(s));
            prop_assert_eq!(row.get(3), &Value::Int64(mn));
            prop_assert_eq!(row.get(4), &Value::Int64(mx));
            prop_assert_eq!(row.get(5), &Value::Float64(s as f64 / c as f64));
        }
    }

    /// Sort produces a totally ordered result regardless of partitioning.
    #[test]
    fn sort_matches_oracle(rows in arb_rows(), workers in 1usize..5, desc in any::<bool>()) {
        let plan = PhysicalPlan::Sort {
            input: Box::new(PhysicalPlan::Scan { dataset: dataset(&rows, 5) }),
            keys: vec![SortKey { column: 2, descending: desc }],
        };
        let (batch, _) = Cluster::new(workers).execute(&plan).unwrap();
        let got: Vec<i64> = batch.rows().iter().map(|r| r.get(2).as_i64().unwrap()).collect();
        let mut expected: Vec<i64> = rows.iter().map(|r| r.2).collect();
        expected.sort_unstable();
        if desc {
            expected.reverse();
        }
        prop_assert_eq!(got, expected);
    }

    /// Limit truncates after a sort deterministically.
    #[test]
    fn limit_truncates(rows in arb_rows(), n in 0usize..20, workers in 1usize..4) {
        let plan = PhysicalPlan::Limit {
            input: Box::new(PhysicalPlan::Sort {
                input: Box::new(PhysicalPlan::Scan { dataset: dataset(&rows, 2) }),
                keys: vec![SortKey::asc(0)],
            }),
            limit: n,
        };
        let (batch, _) = Cluster::new(workers).execute(&plan).unwrap();
        prop_assert_eq!(batch.len(), rows.len().min(n));
    }

    /// NLJ equi-predicate equals the brute-force count, and broadcast
    /// metrics reflect the right side.
    #[test]
    fn nl_join_matches_oracle(
        l in prop::collection::vec((0i64..400, 0i64..5, 0i64..10), 0..25),
        r in prop::collection::vec((0i64..400, 0i64..5, 0i64..10), 0..25),
        workers in 1usize..4,
    ) {
        let plan = PhysicalPlan::NlJoin {
            left: Box::new(PhysicalPlan::Scan { dataset: dataset(&l, 2) }),
            right: Box::new(PhysicalPlan::Scan { dataset: dataset(&r, 2) }),
            predicate: Arc::new(|a, b| Ok(a.get(1) == b.get(1))),
        };
        let (batch, _) = Cluster::new(workers).execute(&plan).unwrap();
        let expected: usize = l
            .iter()
            .map(|a| r.iter().filter(|b| a.1 == b.1).count())
            .sum();
        prop_assert_eq!(batch.len(), expected);
    }
}

// ---------------------------------------------------------------------------
// Guardrail properties.
//
// The guard layer must be invisible on well-behaved joins (same results,
// same deterministic execution counters) and must catch every injected
// violation with the right phase attribution on misbehaving ones.
// ---------------------------------------------------------------------------

/// `(id, k)` dataset of Long keys.
fn long_keys_dataset(keys: &[i64], partitions: usize) -> Arc<fudj_storage::Dataset> {
    let schema = Schema::shared(vec![
        Field::new("id", DataType::Int64),
        Field::new("k", DataType::Int64),
    ]);
    let d = DatasetBuilder::new("t", schema)
        .partitions(partitions)
        .build()
        .unwrap();
    for (i, &k) in keys.iter().enumerate() {
        d.insert(Row::new(vec![Value::Int64(i as i64), Value::Int64(k)]))
            .unwrap();
    }
    Arc::new(d)
}

fn equality_join_plan(left: &[i64], right: &[i64], alg: Arc<dyn JoinAlgorithm>) -> PhysicalPlan {
    PhysicalPlan::FudjJoin(FudjJoinNode::new(
        PhysicalPlan::Scan {
            dataset: long_keys_dataset(left, 3),
        },
        PhysicalPlan::Scan {
            dataset: long_keys_dataset(right, 3),
        },
        Arc::new(FudjEngineJoin::new(alg)),
        1,
        1,
        vec![],
    ))
}

fn sorted_id_pairs(batch: &fudj_types::Batch) -> Vec<(i64, i64)> {
    let mut pairs: Vec<(i64, i64)> = batch
        .rows()
        .iter()
        .map(|r| (r.get(0).as_i64().unwrap(), r.get(2).as_i64().unwrap()))
        .collect();
    pairs.sort_unstable();
    pairs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// On a well-behaved join, the guard is invisible: identical result
    /// pairs and identical deterministic execution counters.
    #[test]
    fn guarded_run_equals_unguarded_run_when_udfs_behave(
        left in prop::collection::vec(0i64..60, 1..50),
        right in prop::collection::vec(0i64..60, 1..50),
        workers in 2usize..5,
    ) {
        let unguarded: Arc<dyn JoinAlgorithm> = Arc::new(EqualityFudj);
        let guarded: Arc<dyn JoinAlgorithm> = Arc::new(GuardedJoin::new(
            Arc::new(EqualityFudj) as Arc<dyn JoinAlgorithm>,
            GuardConfig::default(),
        ));

        let (b1, m1) = Cluster::new(workers)
            .execute(&equality_join_plan(&left, &right, unguarded))
            .unwrap();
        let (b2, m2) = Cluster::new(workers)
            .execute(&equality_join_plan(&left, &right, guarded))
            .unwrap();

        prop_assert_eq!(sorted_id_pairs(&b1), sorted_id_pairs(&b2));
        let (s1, s2) = (m1.snapshot(), m2.snapshot());
        prop_assert_eq!(s1.rows_shuffled, s2.rows_shuffled);
        prop_assert_eq!(s1.bytes_shuffled, s2.bytes_shuffled);
        prop_assert_eq!(s1.rows_broadcast, s2.rows_broadcast);
        prop_assert_eq!(s1.bytes_broadcast, s2.bytes_broadcast);
        prop_assert_eq!(s1.state_bytes, s2.state_bytes);
        prop_assert_eq!(s1.verify_calls, s2.verify_calls);
        prop_assert_eq!(s1.dedup_rejections, s2.dedup_rejections);
        prop_assert!(!s2.udf.any(), "clean run recorded violations: {:?}", s2.udf);
    }

    /// Whatever way the library misbehaves, FailFast always surfaces a
    /// structured violation attributed to the right phase — never a wrong
    /// answer, never a poisoned pool.
    #[test]
    fn injected_violations_are_always_caught_with_the_right_phase(
        left in prop::collection::vec(0i64..60, 1..40),
        right in prop::collection::vec(0i64..60, 1..40),
        workers in 2usize..5,
        mode_idx in 0usize..8,
    ) {
        let (mode, expect_phase) = [
            (EvilMode::PanicIn(EvilPhase::Summarize), "summarize"),
            (EvilMode::PanicIn(EvilPhase::Divide), "divide"),
            (EvilMode::PanicIn(EvilPhase::Assign), "assign"),
            (EvilMode::PanicIn(EvilPhase::Verify), "verify"),
            (EvilMode::HangIn(EvilPhase::Summarize, 60_000), "summarize"),
            (EvilMode::HangIn(EvilPhase::Assign, 60_000), "assign"),
            (EvilMode::OutOfRangeBucket, "assign"),
            (EvilMode::OverReplicate(64), "assign"),
        ][mode_idx];

        // Guarantee the poison set is hit on both sides, and (for the
        // verify mode) that a poisoned pair actually reaches `verify`.
        let poison = (0..1000)
            .find(|v| poisoned(&ExtValue::Long(*v)))
            .unwrap();
        let mut left = left;
        let mut right = right;
        left.push(poison);
        right.push(poison);

        let mut config = GuardConfig::default();
        config.limits.max_buckets_per_key = 16;
        let guarded: Arc<dyn JoinAlgorithm> = Arc::new(GuardedJoin::new(
            Arc::new(EvilJoin::new(Arc::new(EqualityFudj), mode)) as Arc<dyn JoinAlgorithm>,
            config,
        ));
        let result = Cluster::new(workers)
            .execute(&equality_join_plan(&left, &right, guarded));
        match result {
            Err(FudjError::UdfViolation { ref phase, .. }) => {
                prop_assert_eq!(phase, expect_phase, "{:?}", mode)
            }
            Err(other) => {
                prop_assert!(false, "{:?}: expected a UDF violation, got {}", mode, other)
            }
            Ok(_) => prop_assert!(false, "{:?}: misbehaving join produced a result", mode),
        }
    }

    /// Quarantine under a misbehaving assign drops exactly the poisoned
    /// keys — the surviving multiset is the clean equality join minus them.
    #[test]
    fn quarantine_surviving_results_match_the_oracle(
        left in prop::collection::vec(0i64..60, 1..50),
        right in prop::collection::vec(0i64..60, 1..50),
        workers in 2usize..5,
    ) {
        let guarded: Arc<dyn JoinAlgorithm> = Arc::new(GuardedJoin::new(
            Arc::new(EvilJoin::new(
                Arc::new(EqualityFudj),
                EvilMode::PanicIn(EvilPhase::Assign),
            )) as Arc<dyn JoinAlgorithm>,
            GuardConfig::with_policy(UdfPolicy::Quarantine),
        ));
        let (batch, _) = Cluster::new(workers)
            .execute(&equality_join_plan(&left, &right, guarded))
            .unwrap();
        let mut expected: Vec<(i64, i64)> = Vec::new();
        for (i, l) in left.iter().enumerate() {
            for (j, r) in right.iter().enumerate() {
                if l == r && !poisoned(&ExtValue::Long(*l)) {
                    expected.push((i as i64, j as i64));
                }
            }
        }
        expected.sort_unstable();
        prop_assert_eq!(sorted_id_pairs(&batch), expected);
    }
}

// ---------------------------------------------------------------------------
// Exchange contracts under delivery faults.
//
// A fault plan with aggressive drop/duplicate rates hits the exchanges'
// retransmission and sequence-dedup paths on nearly every run; the
// properties below assert those recovery paths preserve each exchange's
// contract exactly.
// ---------------------------------------------------------------------------

/// A delivery-heavy fault plan: no task faults, lots of lost and
/// duplicated partition deliveries. The retry budget is raised so that
/// even a 30% drop rate cannot plausibly exhaust it (0.3^17 ≈ 1e-9) —
/// proptest draws fresh seeds every run, so the properties must hold for
/// *all* seeds, not just lucky ones.
fn lossy(seed: u64) -> FaultConfig {
    let mut config = FaultConfig::quiet(seed);
    config.drop_prob = 0.3;
    config.duplicate_prob = 0.3;
    config.retry.max_retries = 16;
    config
}

fn int_rows(vals: &[i64]) -> Vec<Row> {
    vals.iter()
        .map(|&v| Row::new(vec![Value::Int64(v)]))
        .collect()
}

/// Split `vals` into `parts` round-robin partitions of single-int rows.
fn partitioned(vals: &[i64], parts: usize) -> Vec<Vec<Row>> {
    let mut out = vec![Vec::new(); parts];
    for (j, &v) in vals.iter().enumerate() {
        out[j % parts].push(Row::new(vec![Value::Int64(v)]));
    }
    out
}

fn sorted_multiset(parts: Vec<Vec<Row>>) -> Vec<Row> {
    let mut all: Vec<Row> = parts.into_iter().flatten().collect();
    all.sort();
    all
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Under dropped and duplicated deliveries, `shuffle_by` still
    /// delivers exactly the input multiset, with every row on the worker
    /// its routing hash names.
    #[test]
    fn shuffle_recovers_multiset_and_routing_under_delivery_faults(
        vals in prop::collection::vec(-1000i64..1000, 0..80),
        workers in 2usize..6,
        seed in 0u64..1_000_000,
    ) {
        let pool = WorkerPool::new(workers);
        let m = QueryMetrics::with_config(None, Some(lossy(seed)));
        let out = shuffle_by(partitioned(&vals, workers), &pool, &m, |row| {
            (route_hash(row.get(0)) as usize) % workers
        }).unwrap();
        for (w, part) in out.iter().enumerate() {
            for row in part {
                prop_assert_eq!((route_hash(row.get(0)) as usize) % workers, w);
            }
        }
        let mut expected = int_rows(&vals);
        expected.sort();
        prop_assert_eq!(sorted_multiset(out), expected);
        // Recovery bookkeeping: every drop was either retransmitted or
        // escalated (and none escalated here), and every duplicated
        // delivery had exactly its extra copy discarded by the receiver.
        let f = m.snapshot().fault;
        prop_assert_eq!(f.retry_exhaustions, 0);
        prop_assert_eq!(f.delivery_retries, f.dropped_deliveries);
        prop_assert_eq!(f.duplicates_discarded, f.duplicated_deliveries);
    }

    /// Rebalance levels partitions (max − min ≤ 1) even when deliveries
    /// drop or duplicate.
    #[test]
    fn rebalance_levels_under_delivery_faults(
        vals in prop::collection::vec(-1000i64..1000, 0..80),
        src_parts in 1usize..5,
        workers in 2usize..6,
        seed in 0u64..1_000_000,
    ) {
        let pool = WorkerPool::new(workers);
        let m = QueryMetrics::with_config(None, Some(lossy(seed)));
        let out = rebalance(partitioned(&vals, src_parts.min(workers)), &pool, &m).unwrap();
        let sizes: Vec<usize> = out.iter().map(Vec::len).collect();
        let (mx, mn) = (sizes.iter().max().unwrap(), sizes.iter().min().unwrap());
        prop_assert!(mx - mn <= 1, "sizes {:?}", sizes);
        let mut expected = int_rows(&vals);
        expected.sort();
        prop_assert_eq!(sorted_multiset(out), expected);
    }

    /// Gather collects the exact multiset on the coordinator under
    /// delivery faults.
    #[test]
    fn gather_recovers_multiset_under_delivery_faults(
        vals in prop::collection::vec(-1000i64..1000, 0..80),
        workers in 2usize..6,
        seed in 0u64..1_000_000,
    ) {
        let pool = WorkerPool::new(workers);
        let m = QueryMetrics::with_config(None, Some(lossy(seed)));
        let mut out = gather(partitioned(&vals, workers), &pool, &m).unwrap();
        out.sort();
        let mut expected = int_rows(&vals);
        expected.sort();
        prop_assert_eq!(out, expected);
    }

    /// Task-fault injection (panics, transients, worker loss, stragglers)
    /// is recovered transparently: a filter under heavy task chaos equals
    /// the sequential oracle.
    #[test]
    fn filter_matches_oracle_under_task_faults(
        rows in arb_rows(),
        threshold in -100i64..100,
        workers in 2usize..5,
        seed in 0u64..1_000_000,
    ) {
        let plan = PhysicalPlan::Filter {
            input: Box::new(PhysicalPlan::Scan { dataset: dataset(&rows, 3) }),
            predicate: Arc::new(move |row| Ok(row.get(2).as_i64()? >= threshold)),
        };
        let mut cluster = Cluster::new(workers);
        cluster.set_faults(Some(FaultConfig::chaos(seed)));
        let (batch, _) = cluster.execute(&plan).unwrap();
        let expected = rows.iter().filter(|r| r.2 >= threshold).count();
        prop_assert_eq!(batch.len(), expected);
    }
}
