//! Property tests: every relational operator, executed on a multi-worker
//! cluster, agrees with a straightforward sequential oracle.

use fudj_exec::{AggFunc, Aggregate, Cluster, PhysicalPlan, SortKey};
use fudj_storage::DatasetBuilder;
use fudj_types::{DataType, Field, Row, Schema, Value};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

fn dataset(rows: &[(i64, i64, i64)], partitions: usize) -> Arc<fudj_storage::Dataset> {
    let schema = Schema::shared(vec![
        Field::new("id", DataType::Int64),
        Field::new("grp", DataType::Int64),
        Field::new("v", DataType::Int64),
    ]);
    let d = DatasetBuilder::new("t", schema)
        .partitions(partitions)
        .build()
        .unwrap();
    for &(id, grp, v) in rows {
        d.insert(Row::new(vec![
            Value::Int64(id),
            Value::Int64(grp),
            Value::Int64(v),
        ]))
        .unwrap();
    }
    Arc::new(d)
}

fn arb_rows() -> impl Strategy<Value = Vec<(i64, i64, i64)>> {
    prop::collection::vec((0i64..1000, 0i64..7, -100i64..100), 0..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Filter keeps exactly the rows the predicate accepts, on any cluster.
    #[test]
    fn filter_matches_oracle(rows in arb_rows(), threshold in -100i64..100, workers in 1usize..5) {
        let plan = PhysicalPlan::Filter {
            input: Box::new(PhysicalPlan::Scan { dataset: dataset(&rows, 3) }),
            predicate: Arc::new(move |row| Ok(row.get(2).as_i64()? >= threshold)),
        };
        let (batch, _) = Cluster::new(workers).execute(&plan).unwrap();
        let expected = rows.iter().filter(|r| r.2 >= threshold).count();
        prop_assert_eq!(batch.len(), expected);
    }

    /// Two-step grouped aggregation equals a sequential group-by.
    #[test]
    fn aggregate_matches_oracle(rows in arb_rows(), workers in 1usize..5) {
        let plan = PhysicalPlan::HashAggregate {
            input: Box::new(PhysicalPlan::Scan { dataset: dataset(&rows, 4) }),
            group_by: vec![1],
            aggregates: vec![
                Aggregate::count_star("c"),
                Aggregate::on(AggFunc::Sum, 2, "s"),
                Aggregate::on(AggFunc::Min, 2, "mn"),
                Aggregate::on(AggFunc::Max, 2, "mx"),
                Aggregate::on(AggFunc::Avg, 2, "a"),
            ],
        };
        let (batch, _) = Cluster::new(workers).execute(&plan).unwrap();

        let mut oracle: HashMap<i64, (i64, i64, i64, i64)> = HashMap::new();
        for &(_, g, v) in &rows {
            let e = oracle.entry(g).or_insert((0, 0, i64::MAX, i64::MIN));
            e.0 += 1;
            e.1 += v;
            e.2 = e.2.min(v);
            e.3 = e.3.max(v);
        }
        prop_assert_eq!(batch.len(), oracle.len());
        for row in batch.rows() {
            let g = row.get(0).as_i64().unwrap();
            let (c, s, mn, mx) = oracle[&g];
            prop_assert_eq!(row.get(1), &Value::Int64(c));
            prop_assert_eq!(row.get(2), &Value::Int64(s));
            prop_assert_eq!(row.get(3), &Value::Int64(mn));
            prop_assert_eq!(row.get(4), &Value::Int64(mx));
            prop_assert_eq!(row.get(5), &Value::Float64(s as f64 / c as f64));
        }
    }

    /// Sort produces a totally ordered result regardless of partitioning.
    #[test]
    fn sort_matches_oracle(rows in arb_rows(), workers in 1usize..5, desc in any::<bool>()) {
        let plan = PhysicalPlan::Sort {
            input: Box::new(PhysicalPlan::Scan { dataset: dataset(&rows, 5) }),
            keys: vec![SortKey { column: 2, descending: desc }],
        };
        let (batch, _) = Cluster::new(workers).execute(&plan).unwrap();
        let got: Vec<i64> = batch.rows().iter().map(|r| r.get(2).as_i64().unwrap()).collect();
        let mut expected: Vec<i64> = rows.iter().map(|r| r.2).collect();
        expected.sort_unstable();
        if desc {
            expected.reverse();
        }
        prop_assert_eq!(got, expected);
    }

    /// Limit truncates after a sort deterministically.
    #[test]
    fn limit_truncates(rows in arb_rows(), n in 0usize..20, workers in 1usize..4) {
        let plan = PhysicalPlan::Limit {
            input: Box::new(PhysicalPlan::Sort {
                input: Box::new(PhysicalPlan::Scan { dataset: dataset(&rows, 2) }),
                keys: vec![SortKey::asc(0)],
            }),
            limit: n,
        };
        let (batch, _) = Cluster::new(workers).execute(&plan).unwrap();
        prop_assert_eq!(batch.len(), rows.len().min(n));
    }

    /// NLJ equi-predicate equals the brute-force count, and broadcast
    /// metrics reflect the right side.
    #[test]
    fn nl_join_matches_oracle(
        l in prop::collection::vec((0i64..400, 0i64..5, 0i64..10), 0..25),
        r in prop::collection::vec((0i64..400, 0i64..5, 0i64..10), 0..25),
        workers in 1usize..4,
    ) {
        let plan = PhysicalPlan::NlJoin {
            left: Box::new(PhysicalPlan::Scan { dataset: dataset(&l, 2) }),
            right: Box::new(PhysicalPlan::Scan { dataset: dataset(&r, 2) }),
            predicate: Arc::new(|a, b| Ok(a.get(1) == b.get(1))),
        };
        let (batch, _) = Cluster::new(workers).execute(&plan).unwrap();
        let expected: usize = l
            .iter()
            .map(|a| r.iter().filter(|b| a.1 == b.1).count())
            .sum();
        prop_assert_eq!(batch.len(), expected);
    }
}
