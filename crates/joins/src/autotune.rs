//! Auto-tuned FUDJ variants — the paper's §VIII future work, implemented.
//!
//! > "we aim to automate the process of finding the optimum number of
//! > buckets by gathering more dataset statistics during the SUMMARIZE
//! > phase."
//!
//! Both variants enrich their `Summary` with record counts and average key
//! extents, then derive the bucket count in `divide` when the query passes
//! no explicit parameter (an explicit parameter still wins, so the swept
//! experiments keep working). The point being demonstrated is architectural
//! as much as algorithmic: the tuning lives entirely inside the join
//! library — the engine, planner, and SQL layer needed zero changes.

use crate::spatial::{decode_geom, geoms_intersect, SpatialPPlan};
use fudj_core::{BucketId, DedupMode, FlexibleJoin};
use fudj_geo::{Rect, UniformGrid};
use fudj_temporal::granule::MAX_GRANULES;
use fudj_temporal::{GranuleTimeline, Interval, IntervalSummary};
use fudj_types::{ExtValue, FudjError, Result};
use serde::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// Spatial
// ---------------------------------------------------------------------------

/// Spatial summary with tuning statistics: the MBR plus record count and
/// average key extents.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct SpatialStats {
    pub mbr: Rect,
    pub count: u64,
    pub sum_width: f64,
    pub sum_height: f64,
}

impl SpatialStats {
    fn merge(mut self, other: &SpatialStats) -> SpatialStats {
        self.mbr.expand_rect(&other.mbr);
        self.count += other.count;
        self.sum_width += other.sum_width;
        self.sum_height += other.sum_height;
        self
    }
}

/// PBSM with a self-tuned grid side
/// (`"spatial.SpatialJoinAuto"` in [`crate::standard_library`]).
#[derive(Clone, Debug, Default)]
pub struct SpatialFudjAuto;

/// Records-per-tile the tuner aims for. Small enough that per-tile nested
/// loops stay cheap, large enough that tile bookkeeping doesn't dominate.
const TARGET_RECORDS_PER_TILE: f64 = 12.0;

/// Pick the grid side from the gathered statistics:
///
/// * *density rule* — aim for `TARGET_RECORDS_PER_TILE` records per
///   occupied tile: `n ≈ sqrt(count / target)`;
/// * *duplication rule* — keep tiles at least ~2 average key extents wide,
///   or multi-assignment explodes (the rising right side of Fig. 11a).
///
/// The final side is the smaller of the two, clamped to `[1, 4096]`.
pub fn tuned_grid_side(extent: &Rect, count: u64, avg_w: f64, avg_h: f64) -> u32 {
    if count == 0 || extent.is_empty() {
        return 1;
    }
    let n_density = (count as f64 / TARGET_RECORDS_PER_TILE).sqrt().ceil();
    let min_tile_w = (2.0 * avg_w).max(f64::EPSILON);
    let min_tile_h = (2.0 * avg_h).max(f64::EPSILON);
    let n_dup = (extent.width() / min_tile_w)
        .min(extent.height() / min_tile_h)
        .floor()
        .max(1.0);
    n_density.min(n_dup).clamp(1.0, 4096.0) as u32
}

impl FlexibleJoin for SpatialFudjAuto {
    type Summary = SpatialStats;
    type PPlan = SpatialPPlan;

    fn name(&self) -> &str {
        "spatial_join_auto"
    }

    fn summarize(&self, key: &ExtValue, s: &mut SpatialStats) -> Result<()> {
        let mbr = key.as_coords_mbr()?;
        s.mbr.expand_rect(&mbr);
        s.count += 1;
        s.sum_width += mbr.width();
        s.sum_height += mbr.height();
        Ok(())
    }

    fn merge_summaries(&self, a: SpatialStats, b: SpatialStats) -> SpatialStats {
        a.merge(&b)
    }

    fn divide(
        &self,
        left: &SpatialStats,
        right: &SpatialStats,
        params: &[ExtValue],
    ) -> Result<SpatialPPlan> {
        let extent = left.mbr.intersection(&right.mbr);
        let n = match params.first() {
            Some(p) => {
                let n = p.as_long()?;
                if n <= 0 || n > u16::MAX as i64 {
                    return Err(FudjError::JoinLibrary(format!(
                        "grid side must be in 1..=65535, got {n}"
                    )));
                }
                n as u32
            }
            None => {
                let count = left.count + right.count;
                let avg_w = (left.sum_width + right.sum_width) / count.max(1) as f64;
                let avg_h = (left.sum_height + right.sum_height) / count.max(1) as f64;
                tuned_grid_side(&extent, count, avg_w, avg_h)
            }
        };
        Ok(SpatialPPlan {
            grid: UniformGrid::new(extent, n),
        })
    }

    fn assign(&self, key: &ExtValue, pplan: &SpatialPPlan, out: &mut Vec<BucketId>) -> Result<()> {
        let clipped = key.as_coords_mbr()?.intersection(&pplan.grid.extent());
        if !clipped.is_empty() {
            out.extend(pplan.grid.overlapping_tiles(&clipped));
        }
        Ok(())
    }

    fn verify(&self, k1: &ExtValue, k2: &ExtValue, _pplan: &SpatialPPlan) -> Result<bool> {
        Ok(geoms_intersect(&decode_geom(k1)?, &decode_geom(k2)?))
    }

    fn dedup_mode(&self) -> DedupMode {
        DedupMode::Avoidance
    }
}

// ---------------------------------------------------------------------------
// Interval
// ---------------------------------------------------------------------------

/// Interval summary with tuning statistics.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct IntervalStats {
    pub range: IntervalSummary,
    pub count: u64,
    pub sum_duration: i64,
}

/// OIP with a self-tuned granule count
/// (`"interval.OverlappingIntervalJoinAuto"` in [`crate::standard_library`]).
#[derive(Clone, Debug, Default)]
pub struct IntervalFudjAuto;

/// Pick the granule count: granules roughly one average interval duration
/// long make most intervals span one or two granules (low bucket fan-out at
/// match time) while keeping buckets selective. Capped by the record count
/// (finer granules than records buys nothing) and the packed-encoding
/// limit.
pub fn tuned_granules(span: i64, count: u64, avg_duration: i64) -> u32 {
    if count == 0 || span <= 0 {
        return 1;
    }
    let by_duration = span / avg_duration.max(1);
    let cap = (count as i64).min(MAX_GRANULES as i64 - 1);
    by_duration.clamp(1, cap.max(1)) as u32
}

impl FlexibleJoin for IntervalFudjAuto {
    type Summary = IntervalStats;
    type PPlan = GranuleTimeline;

    fn name(&self) -> &str {
        "interval_join_auto"
    }

    fn summarize(&self, key: &ExtValue, s: &mut IntervalStats) -> Result<()> {
        let iv = key.as_interval()?;
        s.range.observe(&iv);
        s.count += 1;
        s.sum_duration += iv.duration();
        Ok(())
    }

    fn merge_summaries(&self, a: IntervalStats, b: IntervalStats) -> IntervalStats {
        IntervalStats {
            range: a.range.merge(&b.range),
            count: a.count + b.count,
            sum_duration: a.sum_duration + b.sum_duration,
        }
    }

    fn divide(
        &self,
        left: &IntervalStats,
        right: &IntervalStats,
        params: &[ExtValue],
    ) -> Result<GranuleTimeline> {
        let merged = left.range.merge(&right.range);
        let range = merged.range().unwrap_or_else(|| Interval::new(0, 0));
        let n = match params.first() {
            Some(p) => {
                let n = p.as_long()?;
                if n <= 0 || n > MAX_GRANULES as i64 {
                    return Err(FudjError::JoinLibrary(format!(
                        "granule count must be in 1..={MAX_GRANULES}, got {n}"
                    )));
                }
                n as u32
            }
            None => {
                let count = left.count + right.count;
                let avg = (left.sum_duration + right.sum_duration) / count.max(1) as i64;
                tuned_granules(range.duration(), count, avg)
            }
        };
        Ok(GranuleTimeline::new(range, n))
    }

    fn assign(
        &self,
        key: &ExtValue,
        pplan: &GranuleTimeline,
        out: &mut Vec<BucketId>,
    ) -> Result<()> {
        out.push(pplan.assign(&key.as_interval()?));
        Ok(())
    }

    fn matches(&self, b1: BucketId, b2: BucketId) -> bool {
        fudj_temporal::granule::buckets_overlap(b1, b2)
    }

    fn uses_default_match(&self) -> bool {
        false
    }

    fn verify(&self, k1: &ExtValue, k2: &ExtValue, _pplan: &GranuleTimeline) -> Result<bool> {
        Ok(k1.as_interval()?.overlaps(&k2.as_interval()?))
    }

    fn dedup_mode(&self) -> DedupMode {
        DedupMode::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IntervalFudj, SpatialFudj};
    use fudj_core::standalone::run_standalone;
    use fudj_core::ProxyJoin;
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    fn squares(n: usize, seed: u64) -> Vec<ExtValue> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let x = rng.gen_range(0.0..90.0);
                let y = rng.gen_range(0.0..90.0);
                let s = rng.gen_range(0.5..6.0);
                ExtValue::DoubleArray(vec![x, y, x + s, y, x + s, y + s, x, y + s])
            })
            .collect()
    }

    fn intervals(n: usize, seed: u64) -> Vec<ExtValue> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let s = rng.gen_range(0i64..100_000);
                ExtValue::LongArray(vec![s, s + rng.gen_range(0i64..2_000)])
            })
            .collect()
    }

    #[test]
    fn auto_spatial_matches_fixed_results() {
        let l = squares(60, 1);
        let r = squares(80, 2);
        let auto = ProxyJoin::new(SpatialFudjAuto);
        let fixed = ProxyJoin::new(SpatialFudj::new());
        let got_auto = run_standalone(&auto, &l, &r, &[]).unwrap();
        let got_fixed = run_standalone(&fixed, &l, &r, &[ExtValue::Long(16)]).unwrap();
        assert_eq!(got_auto, got_fixed);
        assert!(!got_auto.is_empty());
    }

    #[test]
    fn auto_interval_matches_fixed_results() {
        let l = intervals(70, 3);
        let r = intervals(50, 4);
        let auto = ProxyJoin::new(IntervalFudjAuto);
        let fixed = ProxyJoin::new(IntervalFudj::new());
        let got_auto = run_standalone(&auto, &l, &r, &[]).unwrap();
        let got_fixed = run_standalone(&fixed, &l, &r, &[ExtValue::Long(512)]).unwrap();
        assert_eq!(got_auto, got_fixed);
        assert!(!got_auto.is_empty());
    }

    #[test]
    fn explicit_parameter_still_wins() {
        let j = SpatialFudjAuto;
        let mut s = SpatialStats::default();
        j.summarize(&squares(1, 9)[0], &mut s).unwrap();
        let plan = j.divide(&s, &s, &[ExtValue::Long(7)]).unwrap();
        assert_eq!(plan.grid.side(), 7);
    }

    #[test]
    fn tuned_grid_side_heuristics() {
        let extent = Rect::new(0.0, 0.0, 100.0, 100.0);
        // Density rule: more records → finer grid.
        let coarse = tuned_grid_side(&extent, 1_000, 0.1, 0.1);
        let fine = tuned_grid_side(&extent, 100_000, 0.1, 0.1);
        assert!(fine > coarse, "{fine} vs {coarse}");
        // Duplication rule: big keys cap the grid.
        let capped = tuned_grid_side(&extent, 100_000, 10.0, 10.0);
        assert!(
            capped <= 5,
            "tiles must stay ≥ 2 key extents, got n={capped}"
        );
        // Degenerate inputs.
        assert_eq!(tuned_grid_side(&Rect::empty(), 100, 1.0, 1.0), 1);
        assert_eq!(tuned_grid_side(&extent, 0, 1.0, 1.0), 1);
    }

    #[test]
    fn tuned_granules_heuristics() {
        // Granule ≈ avg duration.
        assert_eq!(tuned_granules(100_000, 10_000, 100), 1000);
        // Capped by record count.
        assert_eq!(tuned_granules(1_000_000, 10, 1), 10);
        // Degenerate.
        assert_eq!(tuned_granules(0, 10, 1), 1);
        assert_eq!(tuned_granules(100, 0, 1), 1);
        // Never exceeds the packed-encoding limit.
        assert!(tuned_granules(i64::MAX / 2, u64::MAX / 2, 1) < MAX_GRANULES);
    }

    #[test]
    fn auto_divide_reports_chosen_parameters() {
        let j = SpatialFudjAuto;
        let mut s = SpatialStats::default();
        for sq in squares(500, 5) {
            j.summarize(&sq, &mut s).unwrap();
        }
        let plan = j.divide(&s, &s, &[]).unwrap();
        let n = plan.grid.side();
        assert!(
            (2..=64).contains(&n),
            "auto-tuned side {n} out of sane range"
        );
    }
}
