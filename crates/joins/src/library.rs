//! The `"flexiblejoins"` library bundle.
//!
//! The paper's experiments upload one JAR, `flexiblejoins`, containing the
//! example join classes; this is its Rust counterpart. Register it once,
//! then `CREATE JOIN` any of the classes:
//!
//! ```
//! use fudj_core::JoinRegistry;
//! use fudj_types::DataType;
//!
//! let registry = JoinRegistry::new();
//! registry.install_library(fudj_joins::standard_library());
//! registry
//!     .create_join(
//!         "text_similarity_join",
//!         vec![DataType::String, DataType::String, DataType::Float64],
//!         "setsimilarity.SetSimilarityJoin",
//!         "flexiblejoins",
//!     )
//!     .unwrap();
//! ```

use crate::autotune::{IntervalFudjAuto, SpatialFudjAuto};
use crate::band::BandJoin;
use crate::interval::IntervalFudj;
use crate::spatial::{SpatialDedup, SpatialFudj};
use crate::textsim::{TextDedup, TextSimilarityFudj};
use fudj_core::{JoinLibrary, ProxyJoin};
use std::sync::Arc;

/// Name of the standard library bundle.
pub const LIBRARY_NAME: &str = "flexiblejoins";

/// Build the standard join library with every example class:
///
/// | class | algorithm |
/// |---|---|
/// | `spatial.SpatialJoin` | PBSM, framework duplicate avoidance |
/// | `spatial.SpatialJoinRefPoint` | PBSM, reference-point custom dedup |
/// | `spatial.SpatialJoinElimination` | PBSM, post-join elimination |
/// | `interval.OverlappingIntervalJoin` | OIP single-assign / theta match |
/// | `setsimilarity.SetSimilarityJoin` | prefix filtering, avoidance |
/// | `setsimilarity.SetSimilarityJoinElimination` | prefix filtering, elimination |
/// | `band.BandJoin` | 1-D band join (extension) |
/// | `spatial.SpatialJoinAuto` | PBSM with self-tuned grid side (§VIII) |
/// | `interval.OverlappingIntervalJoinAuto` | OIP with self-tuned granules (§VIII) |
pub fn standard_library() -> JoinLibrary {
    JoinLibrary::builder(LIBRARY_NAME)
        .with_class("spatial.SpatialJoin", || {
            Arc::new(ProxyJoin::new(SpatialFudj::new()))
        })
        .with_class("spatial.SpatialJoinRefPoint", || {
            Arc::new(ProxyJoin::new(SpatialFudj::with_dedup(
                SpatialDedup::ReferencePoint,
            )))
        })
        .with_class("spatial.SpatialJoinElimination", || {
            Arc::new(ProxyJoin::new(SpatialFudj::with_dedup(
                SpatialDedup::Elimination,
            )))
        })
        .with_class("interval.OverlappingIntervalJoin", || {
            Arc::new(ProxyJoin::new(IntervalFudj::new()))
        })
        .with_class("setsimilarity.SetSimilarityJoin", || {
            Arc::new(ProxyJoin::new(TextSimilarityFudj::new()))
        })
        .with_class("setsimilarity.SetSimilarityJoinElimination", || {
            Arc::new(ProxyJoin::new(TextSimilarityFudj::with_dedup(
                TextDedup::Elimination,
            )))
        })
        .with_class("band.BandJoin", || {
            Arc::new(ProxyJoin::new(BandJoin::new()))
        })
        .with_class("spatial.SpatialJoinAuto", || {
            Arc::new(ProxyJoin::new(SpatialFudjAuto))
        })
        .with_class("interval.OverlappingIntervalJoinAuto", || {
            Arc::new(ProxyJoin::new(IntervalFudjAuto))
        })
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fudj_core::JoinRegistry;
    use fudj_types::DataType;

    #[test]
    fn library_lists_all_classes() {
        let lib = standard_library();
        assert_eq!(lib.name(), LIBRARY_NAME);
        assert_eq!(lib.classes().len(), 9);
        for class in lib.classes() {
            assert!(lib.instantiate(&class).is_ok(), "{class}");
        }
    }

    #[test]
    fn paper_query4_lifecycle() {
        // CREATE JOIN text_similarity_join(a: string, b: string, t: double)
        //   RETURNS boolean AS "setsimilarity.SetSimilarityJoin" AT flexiblejoins;
        let registry = JoinRegistry::new();
        registry.install_library(standard_library());
        let def = registry
            .create_join(
                "text_similarity_join",
                vec![DataType::String, DataType::String, DataType::Float64],
                "setsimilarity.SetSimilarityJoin",
                LIBRARY_NAME,
            )
            .unwrap();
        assert_eq!(def.algorithm().name(), "text_similarity_join");
        assert!(def.algorithm().uses_default_match());
        // DROP JOIN text_similarity_join(...);
        registry.drop_join("text_similarity_join").unwrap();
        assert!(registry.get("text_similarity_join").is_none());
    }

    #[test]
    fn interval_class_is_theta() {
        let lib = standard_library();
        let alg = lib.instantiate("interval.OverlappingIntervalJoin").unwrap();
        assert!(!alg.uses_default_match());
    }
}
