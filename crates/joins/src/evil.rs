//! Adversarial join fixtures for the guardrail layer.
//!
//! Real FUDJ deployments run third-party join libraries the engine cannot
//! audit. This module is the test stand-in for the worst of them: an
//! [`EvilJoin`] wrapper that forwards to a well-behaved inner algorithm but
//! misbehaves in one configurable way — panicking, hanging (on the
//! simulated UDF clock), emitting out-of-range buckets, assigning
//! non-deterministically, or over-replicating keys. The guard layer
//! ([`fudj_core::GuardedJoin`]) must turn each of these into a structured
//! [`fudj_types::FudjError::UdfViolation`], never a poisoned worker pool or
//! a silently wrong answer.
//!
//! Misbehavior is *key-scoped* wherever the callback sees a key: only keys
//! matched by [`poisoned`] act up, so Quarantine-policy tests can compute an
//! exact oracle (the clean join minus poisoned keys). Structural callbacks
//! (`divide`) misbehave unconditionally.
//!
//! [`EqualityFudj`] is the deliberately boring inner algorithm: a plain
//! hash-equality join over any key type, with default `matches` — the one
//! shape for which the engine's `FallbackEquality` degradation is sound.
//! [`evil_library`] bundles every mode as CREATE JOIN classes for
//! end-to-end SQL tests.

use fudj_core::{
    consume_udf_time, BucketId, DedupMode, JoinAlgorithm, JoinLibrary, PPlanState, Side,
    SummaryState,
};
use fudj_types::{ExtValue, Result};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Name of the adversarial library bundle.
pub const EVIL_LIBRARY_NAME: &str = "evillib";

/// Bucket count [`EqualityFudj`] hashes into.
const EQ_BUCKETS: u64 = 8;

/// Out-of-range sentinel: when the inner algorithm does not declare a
/// bucket range, [`EvilJoin`] declares this many and emits it (one past the
/// end) for poisoned keys.
const RANGE_SENTINEL: BucketId = 1 << 20;

// -- poison predicate -------------------------------------------------------

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn fold(h: u64, x: u64) -> u64 {
    splitmix(h ^ x)
}

/// Deterministic structural hash of a key (same spirit as the guard's
/// internal site hash, but independent of it: the fixtures must not share
/// the hash they are trying to defeat).
pub fn key_hash(v: &ExtValue) -> u64 {
    match v {
        ExtValue::Null => splitmix(11),
        ExtValue::Bool(b) => fold(12, *b as u64),
        ExtValue::Long(x) => fold(13, *x as u64),
        ExtValue::Double(x) => fold(14, x.to_bits()),
        ExtValue::Text(s) => s.bytes().fold(splitmix(15), |h, b| fold(h, b as u64)),
        ExtValue::LongArray(xs) => xs.iter().fold(splitmix(16), |h, x| fold(h, *x as u64)),
        ExtValue::DoubleArray(xs) => xs.iter().fold(splitmix(17), |h, x| fold(h, x.to_bits())),
        ExtValue::TextArray(xs) => xs.iter().fold(splitmix(18), |h, s| {
            s.bytes().fold(fold(h, 19), |h, b| fold(h, b as u64))
        }),
    }
}

/// Whether `key` is one of the roughly-one-in-eight keys an [`EvilJoin`]
/// misbehaves on. Deterministic across runs, threads, and retries, so tests
/// can compute exact quarantine oracles.
pub fn poisoned(key: &ExtValue) -> bool {
    key_hash(key).is_multiple_of(8)
}

// -- the evil wrapper -------------------------------------------------------

/// Which user callback the wrapper corrupts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EvilPhase {
    /// `local_aggregate` (key-scoped).
    Summarize,
    /// `divide` (structural — misbehaves unconditionally).
    Divide,
    /// `assign` (key-scoped).
    Assign,
    /// `verify` (scoped to the left key of the pair).
    Verify,
}

/// The one way an [`EvilJoin`] misbehaves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EvilMode {
    /// Forward everything untouched (the control group: a guarded tame
    /// join must be indistinguishable from the unguarded inner join).
    Tame,
    /// Panic in the given callback.
    PanicIn(EvilPhase),
    /// Burn this many simulated milliseconds in the given callback.
    HangIn(EvilPhase, u64),
    /// Emit a bucket id outside the declared range from `assign`.
    OutOfRangeBucket,
    /// Return a different assignment every time `assign` is called on a
    /// poisoned key (defeats retry safety and duplicate avoidance).
    NonDeterministicAssign,
    /// Emit every assigned bucket this many extra times.
    OverReplicate(usize),
}

/// A wrapper that forwards to `inner` but misbehaves per [`EvilMode`].
pub struct EvilJoin {
    inner: Arc<dyn JoinAlgorithm>,
    mode: EvilMode,
    /// Flipped on every poisoned `assign` call so
    /// [`EvilMode::NonDeterministicAssign`] never answers the same twice.
    flip: AtomicU64,
}

impl EvilJoin {
    /// Wrap `inner` with the given misbehavior.
    pub fn new(inner: Arc<dyn JoinAlgorithm>, mode: EvilMode) -> Self {
        EvilJoin {
            inner,
            mode,
            flip: AtomicU64::new(0),
        }
    }

    fn sabotage(&self, phase: EvilPhase, key: Option<&ExtValue>) {
        let scoped = key.map(poisoned).unwrap_or(true);
        match self.mode {
            EvilMode::PanicIn(p) if p == phase && scoped => {
                panic!("evil library: injected panic in {phase:?}")
            }
            EvilMode::HangIn(p, ms) if p == phase && scoped => consume_udf_time(ms),
            _ => {}
        }
    }
}

impl JoinAlgorithm for EvilJoin {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn new_summary(&self, side: Side) -> SummaryState {
        self.inner.new_summary(side)
    }

    fn local_aggregate(
        &self,
        side: Side,
        key: &ExtValue,
        summary: &mut SummaryState,
    ) -> Result<()> {
        self.sabotage(EvilPhase::Summarize, Some(key));
        self.inner.local_aggregate(side, key, summary)
    }

    fn global_aggregate(
        &self,
        side: Side,
        a: SummaryState,
        b: SummaryState,
    ) -> Result<SummaryState> {
        self.inner.global_aggregate(side, a, b)
    }

    fn symmetric(&self) -> bool {
        self.inner.symmetric()
    }

    fn divide(
        &self,
        left: &SummaryState,
        right: &SummaryState,
        params: &[ExtValue],
    ) -> Result<PPlanState> {
        self.sabotage(EvilPhase::Divide, None);
        self.inner.divide(left, right, params)
    }

    fn assign(
        &self,
        side: Side,
        key: &ExtValue,
        pplan: &PPlanState,
        out: &mut Vec<BucketId>,
    ) -> Result<()> {
        self.sabotage(EvilPhase::Assign, Some(key));
        match self.mode {
            EvilMode::OutOfRangeBucket if poisoned(key) => {
                // One past the end of whatever range is declared.
                out.push(self.declared_buckets(pplan).unwrap_or(RANGE_SENTINEL));
                Ok(())
            }
            EvilMode::NonDeterministicAssign if poisoned(key) => {
                self.inner.assign(side, key, pplan, out)?;
                if self.flip.fetch_add(1, Ordering::Relaxed) % 2 == 1 {
                    let extra = out.last().copied().unwrap_or(0);
                    out.push(extra);
                }
                Ok(())
            }
            EvilMode::OverReplicate(factor) if poisoned(key) => {
                let start = out.len();
                self.inner.assign(side, key, pplan, out)?;
                let assigned: Vec<BucketId> = out[start..].to_vec();
                for _ in 0..factor {
                    out.extend_from_slice(&assigned);
                }
                Ok(())
            }
            _ => self.inner.assign(side, key, pplan, out),
        }
    }

    fn matches(&self, b1: BucketId, b2: BucketId) -> bool {
        self.inner.matches(b1, b2)
    }

    fn uses_default_match(&self) -> bool {
        self.inner.uses_default_match()
    }

    fn verify(
        &self,
        b1: BucketId,
        k1: &ExtValue,
        b2: BucketId,
        k2: &ExtValue,
        pplan: &PPlanState,
    ) -> Result<bool> {
        self.sabotage(EvilPhase::Verify, Some(k1));
        self.inner.verify(b1, k1, b2, k2, pplan)
    }

    fn dedup_mode(&self) -> DedupMode {
        self.inner.dedup_mode()
    }

    fn dedup(
        &self,
        b1: BucketId,
        k1: &ExtValue,
        b2: BucketId,
        k2: &ExtValue,
        pplan: &PPlanState,
    ) -> Result<bool> {
        self.inner.dedup(b1, k1, b2, k2, pplan)
    }

    fn declared_buckets(&self, pplan: &PPlanState) -> Option<BucketId> {
        // Out-of-range sabotage needs *some* declared range to violate.
        self.inner.declared_buckets(pplan).or(match self.mode {
            EvilMode::OutOfRangeBucket => Some(RANGE_SENTINEL),
            _ => None,
        })
    }
}

// -- the boring inner join --------------------------------------------------

/// A plain hash-equality join written against the raw [`JoinAlgorithm`]
/// surface: count summaries, a fixed bucket count, hash single-assign,
/// default `matches`, structural-equality `verify`. Its whole point is
/// predictability — the guard's equality-fallback path must reproduce its
/// results exactly.
pub struct EqualityFudj;

impl JoinAlgorithm for EqualityFudj {
    fn name(&self) -> &str {
        "equality"
    }

    fn new_summary(&self, _side: Side) -> SummaryState {
        SummaryState::new(0i64)
    }

    fn local_aggregate(
        &self,
        _side: Side,
        _key: &ExtValue,
        summary: &mut SummaryState,
    ) -> Result<()> {
        if let Some(count) = summary.downcast_mut::<i64>() {
            *count += 1;
        }
        Ok(())
    }

    fn global_aggregate(
        &self,
        _side: Side,
        a: SummaryState,
        b: SummaryState,
    ) -> Result<SummaryState> {
        let sum = a.downcast_ref::<i64>().copied().unwrap_or(0)
            + b.downcast_ref::<i64>().copied().unwrap_or(0);
        Ok(SummaryState::new(sum))
    }

    fn symmetric(&self) -> bool {
        true
    }

    fn divide(
        &self,
        _left: &SummaryState,
        _right: &SummaryState,
        _params: &[ExtValue],
    ) -> Result<PPlanState> {
        Ok(PPlanState::new(EQ_BUCKETS as i64))
    }

    fn assign(
        &self,
        _side: Side,
        key: &ExtValue,
        _pplan: &PPlanState,
        out: &mut Vec<BucketId>,
    ) -> Result<()> {
        out.push(key_hash(key) % EQ_BUCKETS);
        Ok(())
    }

    fn verify(
        &self,
        _b1: BucketId,
        k1: &ExtValue,
        _b2: BucketId,
        k2: &ExtValue,
        _pplan: &PPlanState,
    ) -> Result<bool> {
        Ok(k1 == k2)
    }

    fn dedup_mode(&self) -> DedupMode {
        // Single-assign: duplicates cannot arise.
        DedupMode::None
    }

    fn declared_buckets(&self, _pplan: &PPlanState) -> Option<BucketId> {
        Some(EQ_BUCKETS)
    }
}

// -- the library bundle -----------------------------------------------------

/// The adversarial library: every [`EvilMode`] wrapped around
/// [`EqualityFudj`], registered as CREATE JOIN classes. Hang budgets burn
/// 60 simulated seconds (any per-call budget under a minute trips);
/// over-replication emits 64 extra copies (the default per-key cap is
/// far higher — tests lower it via `WITH (max_buckets_per_key = ...)`).
///
/// | class | misbehavior |
/// |---|---|
/// | `evil.Tame` | none (control) |
/// | `evil.PanicSummarize` | panics in `local_aggregate` on poisoned keys |
/// | `evil.PanicDivide` | panics in `divide` |
/// | `evil.PanicAssign` | panics in `assign` on poisoned keys |
/// | `evil.PanicVerify` | panics in `verify` on poisoned left keys |
/// | `evil.HangAssign` | burns 60 simulated s in `assign` on poisoned keys |
/// | `evil.OutOfRange` | emits a bucket past the declared range |
/// | `evil.NonDetAssign` | different assignment on every retry |
/// | `evil.OverReplicate` | 64× replication of poisoned keys |
pub fn evil_library() -> JoinLibrary {
    fn wrap(mode: EvilMode) -> Arc<dyn JoinAlgorithm> {
        Arc::new(EvilJoin::new(Arc::new(EqualityFudj), mode))
    }
    JoinLibrary::builder(EVIL_LIBRARY_NAME)
        .with_class("evil.Tame", || wrap(EvilMode::Tame))
        .with_class("evil.PanicSummarize", || {
            wrap(EvilMode::PanicIn(EvilPhase::Summarize))
        })
        .with_class("evil.PanicDivide", || {
            wrap(EvilMode::PanicIn(EvilPhase::Divide))
        })
        .with_class("evil.PanicAssign", || {
            wrap(EvilMode::PanicIn(EvilPhase::Assign))
        })
        .with_class("evil.PanicVerify", || {
            wrap(EvilMode::PanicIn(EvilPhase::Verify))
        })
        .with_class("evil.HangAssign", || {
            wrap(EvilMode::HangIn(EvilPhase::Assign, 60_000))
        })
        .with_class("evil.OutOfRange", || wrap(EvilMode::OutOfRangeBucket))
        .with_class("evil.NonDetAssign", || {
            wrap(EvilMode::NonDeterministicAssign)
        })
        .with_class("evil.OverReplicate", || wrap(EvilMode::OverReplicate(64)))
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fudj_core::standalone::run_standalone;
    use fudj_core::{GuardConfig, GuardedJoin, UdfPolicy};
    use fudj_types::FudjError;

    fn keys(vals: &[i64]) -> Vec<ExtValue> {
        vals.iter().map(|v| ExtValue::Long(*v)).collect()
    }

    /// A poisoned and a clean Long key, found by scanning (the predicate is
    /// hash-based, so the concrete values are not magic numbers).
    fn poison_and_clean() -> (i64, i64) {
        let poison = (0..1000).find(|v| poisoned(&ExtValue::Long(*v))).unwrap();
        let clean = (0..1000).find(|v| !poisoned(&ExtValue::Long(*v))).unwrap();
        (poison, clean)
    }

    #[test]
    fn tame_evil_join_is_a_correct_equality_join() {
        let (poison, clean) = poison_and_clean();
        let left = keys(&[poison, clean, 777]);
        let right = keys(&[clean, poison, clean]);
        let alg = EvilJoin::new(Arc::new(EqualityFudj), EvilMode::Tame);
        let pairs = run_standalone(&alg, &left, &right, &[]).unwrap();
        let mut expect: Vec<(usize, usize)> = Vec::new();
        for (i, l) in left.iter().enumerate() {
            for (j, r) in right.iter().enumerate() {
                if l == r {
                    expect.push((i, j));
                }
            }
        }
        let mut got = pairs;
        got.sort_unstable();
        expect.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn every_evil_mode_is_caught_as_a_violation() {
        let (poison, clean) = poison_and_clean();
        let left = keys(&[poison, clean]);
        let right = keys(&[clean, poison]);
        let modes = [
            EvilMode::PanicIn(EvilPhase::Summarize),
            EvilMode::PanicIn(EvilPhase::Divide),
            EvilMode::PanicIn(EvilPhase::Assign),
            EvilMode::PanicIn(EvilPhase::Verify),
            EvilMode::HangIn(EvilPhase::Assign, 60_000),
            EvilMode::OutOfRangeBucket,
            EvilMode::OverReplicate(1 << 25),
        ];
        for mode in modes {
            let alg = GuardedJoin::new(
                EvilJoin::new(Arc::new(EqualityFudj), mode),
                GuardConfig::default(),
            );
            let err = run_standalone(&alg, &left, &right, &[]).unwrap_err();
            assert!(
                matches!(err, FudjError::UdfViolation { .. }),
                "{mode:?}: {err}"
            );
        }
    }

    #[test]
    fn nondeterministic_assign_is_caught_when_sampled() {
        let (poison, clean) = poison_and_clean();
        let mut config = GuardConfig::default();
        config.limits.check_sample = 1; // probe every call
        let alg = GuardedJoin::new(
            EvilJoin::new(Arc::new(EqualityFudj), EvilMode::NonDeterministicAssign),
            config,
        );
        let err = run_standalone(&alg, &keys(&[poison, clean]), &keys(&[clean]), &[]).unwrap_err();
        let FudjError::UdfViolation { phase, detail, .. } = err else {
            panic!("wrong error")
        };
        assert_eq!(phase, "assign");
        assert!(detail.contains("deterministic"), "{detail}");
    }

    #[test]
    fn quarantine_drops_exactly_the_poisoned_keys() {
        let (poison, clean) = poison_and_clean();
        let left = keys(&[poison, clean, poison]);
        let right = keys(&[clean, poison, clean]);
        let config = GuardConfig::with_policy(UdfPolicy::Quarantine);
        let guarded = GuardedJoin::new(
            EvilJoin::new(Arc::new(EqualityFudj), EvilMode::PanicIn(EvilPhase::Assign)),
            config,
        );
        let mut got = run_standalone(&guarded, &left, &right, &[]).unwrap();
        got.sort_unstable();
        // Oracle: the clean equality join minus pairs touching poisoned keys.
        let mut expect: Vec<(usize, usize)> = Vec::new();
        for (i, l) in left.iter().enumerate() {
            for (j, r) in right.iter().enumerate() {
                if l == r && !poisoned(l) && !poisoned(r) {
                    expect.push((i, j));
                }
            }
        }
        expect.sort_unstable();
        assert_eq!(got, expect);
        assert!(guarded.stats().quarantined_rows > 0);
    }

    #[test]
    fn evil_library_lists_and_instantiates_all_classes() {
        let lib = evil_library();
        assert_eq!(lib.name(), EVIL_LIBRARY_NAME);
        assert_eq!(lib.classes().len(), 9);
        for class in lib.classes() {
            assert!(lib.instantiate(&class).is_ok(), "{class}");
        }
    }
}
