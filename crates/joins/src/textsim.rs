//! Text-similarity FUDJ — prefix-filtered set-similarity join (§V-B).
//!
//! ```text
//! SUMMARIZE(text, S):   for token in tokenize(text): S[token] += 1
//! DIVIDE(S1, S2, t):    merge counts, rank tokens rarest-first → PPlan(ranks, t)
//! ASSIGN(text, PPlan):  first p ranks of the record's tokens,
//!                       p = (l − ceil(t·l)) + 1
//! MATCH:                default (rank equality)
//! VERIFY(t1, t2):       jaccard(tokens(t1), tokens(t2)) ≥ t
//! ```
//!
//! Prefix assignment multi-assigns, so duplicate handling matters: the
//! default is the framework's avoidance (the paper's Fig. 12a shows it beats
//! the original algorithm's elimination step by ~1.15×); elimination is
//! available for that comparison.
//!
//! Records whose token set is empty are never assigned to a bucket and thus
//! never join — the standard prefix-filtering behavior.

use fudj_core::{DedupMode, FlexibleJoin};
use fudj_text::{jaccard_of_sorted, prefix_length, token_set, tokenize, TokenCounts, TokenRanks};
use fudj_types::{ExtValue, FudjError, Result};
use serde::{Deserialize, Serialize};

/// Duplicate-handling flavor for the text join (Fig. 12a's subjects).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum TextDedup {
    /// The framework's default duplicate avoidance.
    #[default]
    Avoidance,
    /// Post-join duplicate elimination (the original algorithm's approach).
    Elimination,
}

/// Set-similarity join with prefix filtering, as a FUDJ library class
/// (`"setsimilarity.SetSimilarityJoin"` in [`crate::standard_library`]).
#[derive(Clone, Debug, Default)]
pub struct TextSimilarityFudj {
    dedup: TextDedup,
}

/// The text `PPlan`: global token ranks + the similarity threshold. The
/// threshold lives in the plan because ASSIGN needs it for the prefix length
/// (the paper embeds it in the caller signature for the same reason).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TextPPlan {
    pub ranks: TokenRanks,
    pub threshold: f64,
}

impl TextSimilarityFudj {
    /// Prefix-filtering join with the framework's default avoidance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Prefix-filtering join with a chosen duplicate-handling flavor.
    pub fn with_dedup(dedup: TextDedup) -> Self {
        TextSimilarityFudj { dedup }
    }
}

impl FlexibleJoin for TextSimilarityFudj {
    type Summary = TokenCounts;
    type PPlan = TextPPlan;

    fn name(&self) -> &str {
        "text_similarity_join"
    }

    fn summarize(&self, key: &ExtValue, summary: &mut TokenCounts) -> Result<()> {
        for token in tokenize(key.as_text()?) {
            summary.observe(&token);
        }
        Ok(())
    }

    fn merge_summaries(&self, mut a: TokenCounts, b: TokenCounts) -> TokenCounts {
        a.merge(&b);
        a
    }

    fn divide(
        &self,
        left: &TokenCounts,
        right: &TokenCounts,
        params: &[ExtValue],
    ) -> Result<TextPPlan> {
        let threshold = match params.first() {
            Some(p) => p.as_double()?,
            None => {
                return Err(FudjError::JoinLibrary(
                    "text similarity join requires a threshold parameter".into(),
                ))
            }
        };
        if !(0.0..=1.0).contains(&threshold) || threshold == 0.0 {
            return Err(FudjError::JoinLibrary(format!(
                "similarity threshold must be in (0, 1], got {threshold}"
            )));
        }
        let mut merged = left.clone();
        merged.merge(right);
        Ok(TextPPlan {
            ranks: TokenRanks::from_counts(&merged),
            threshold,
        })
    }

    fn assign(
        &self,
        key: &ExtValue,
        pplan: &TextPPlan,
        out: &mut Vec<fudj_core::BucketId>,
    ) -> Result<()> {
        let tokens = token_set(key.as_text()?);
        let ranked = pplan.ranks.ranked_tokens(&tokens);
        let p = prefix_length(ranked.len(), pplan.threshold);
        out.extend(
            ranked[..p.min(ranked.len())]
                .iter()
                .map(|&r| r as fudj_core::BucketId),
        );
        Ok(())
    }

    fn verify(&self, k1: &ExtValue, k2: &ExtValue, pplan: &TextPPlan) -> Result<bool> {
        let a = token_set(k1.as_text()?);
        let b = token_set(k2.as_text()?);
        Ok(jaccard_of_sorted(&a, &b) >= pplan.threshold)
    }

    fn dedup_mode(&self) -> DedupMode {
        match self.dedup {
            TextDedup::Avoidance => DedupMode::Avoidance,
            TextDedup::Elimination => DedupMode::Elimination,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fudj_core::standalone::{nested_loop_reference, run_standalone};
    use fudj_core::ProxyJoin;

    fn texts(v: &[&str]) -> Vec<ExtValue> {
        v.iter().map(|s| ExtValue::Text((*s).to_owned())).collect()
    }

    const REVIEWS_A: &[&str] = &[
        "great hiking trail with scenic river views",
        "terrible food cold and late delivery",
        "scenic river hiking trail with great views",
        "the camping spot was quiet and clean",
    ];
    const REVIEWS_B: &[&str] = &[
        "great hiking trail with scenic river views today",
        "quiet clean camping spot",
        "completely unrelated text about databases",
    ];

    fn oracle(l: &[&str], r: &[&str], t: f64) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (i, a) in l.iter().enumerate() {
            for (j, b) in r.iter().enumerate() {
                let sa = token_set(a);
                let sb = token_set(b);
                if !sa.is_empty() && !sb.is_empty() && jaccard_of_sorted(&sa, &sb) >= t {
                    out.push((i, j));
                }
            }
        }
        out
    }

    #[test]
    fn divide_validates_threshold() {
        let j = TextSimilarityFudj::new();
        let c = TokenCounts::new();
        assert!(j.divide(&c, &c, &[]).is_err());
        assert!(j.divide(&c, &c, &[ExtValue::Double(0.0)]).is_err());
        assert!(j.divide(&c, &c, &[ExtValue::Double(1.5)]).is_err());
        assert!(j.divide(&c, &c, &[ExtValue::Double(0.8)]).is_ok());
    }

    #[test]
    fn assign_uses_rarest_prefix() {
        let j = TextSimilarityFudj::new();
        let mut counts = TokenCounts::new();
        // "common" appears 10 times, "rare" once, "mid" three times.
        for _ in 0..10 {
            counts.observe("common");
        }
        for _ in 0..3 {
            counts.observe("mid");
        }
        counts.observe("rare");
        let plan = TextPPlan {
            ranks: TokenRanks::from_counts(&counts),
            threshold: 0.8,
        };
        let mut out = Vec::new();
        // 3 distinct tokens, t=0.8 → p = 3 - ceil(2.4) + 1 = 1 → rarest only.
        j.assign(&ExtValue::Text("common mid rare".into()), &plan, &mut out)
            .unwrap();
        assert_eq!(out, vec![plan.ranks.rank("rare").unwrap() as u64]);
    }

    #[test]
    fn empty_text_gets_no_buckets() {
        let j = TextSimilarityFudj::new();
        let plan = TextPPlan {
            ranks: TokenRanks::default(),
            threshold: 0.9,
        };
        let mut out = Vec::new();
        j.assign(&ExtValue::Text("...".into()), &plan, &mut out)
            .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn standalone_matches_oracle_both_dedups() {
        for t in [0.5, 0.7, 0.9] {
            for dedup in [TextDedup::Avoidance, TextDedup::Elimination] {
                let alg = ProxyJoin::new(TextSimilarityFudj::with_dedup(dedup));
                let got = run_standalone(
                    &alg,
                    &texts(REVIEWS_A),
                    &texts(REVIEWS_B),
                    &[ExtValue::Double(t)],
                )
                .unwrap();
                assert_eq!(
                    got,
                    oracle(REVIEWS_A, REVIEWS_B, t),
                    "t={t} dedup={dedup:?}"
                );
            }
        }
    }

    #[test]
    fn agrees_with_nested_loop_reference() {
        let alg = ProxyJoin::new(TextSimilarityFudj::new());
        let l = texts(REVIEWS_A);
        let r = texts(REVIEWS_B);
        let params = [ExtValue::Double(0.6)];
        let got = run_standalone(&alg, &l, &r, &params).unwrap();
        let reference = nested_loop_reference(&alg, &l, &r, &params).unwrap();
        assert_eq!(got, reference);
    }

    #[test]
    fn identical_texts_match_at_any_threshold() {
        let alg = ProxyJoin::new(TextSimilarityFudj::new());
        let l = texts(&["alpha beta gamma"]);
        let got = run_standalone(&alg, &l, &l, &[ExtValue::Double(1.0)]).unwrap();
        assert_eq!(got, vec![(0, 0)]);
    }

    #[test]
    fn randomized_against_oracle() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let vocab = [
            "river", "trail", "lake", "peak", "camp", "view", "rock", "wood",
        ];
        let mut rng = SmallRng::seed_from_u64(12);
        let mut gen_side = |n: usize| -> Vec<String> {
            (0..n)
                .map(|_| {
                    let len = rng.gen_range(1..6);
                    (0..len)
                        .map(|_| vocab[rng.gen_range(0..vocab.len())])
                        .collect::<Vec<_>>()
                        .join(" ")
                })
                .collect()
        };
        let a = gen_side(40);
        let b = gen_side(30);
        let ar: Vec<&str> = a.iter().map(String::as_str).collect();
        let br: Vec<&str> = b.iter().map(String::as_str).collect();
        let alg = ProxyJoin::new(TextSimilarityFudj::new());
        let got = run_standalone(&alg, &texts(&ar), &texts(&br), &[ExtValue::Double(0.7)]).unwrap();
        assert_eq!(got, oracle(&ar, &br, 0.7));
    }
}
