//! Hand-built "built-in operator" baselines.
//!
//! The paper compares every FUDJ implementation against the same algorithm
//! integrated *into the engine by hand*: a rewrite rule, typed aggregate,
//! unnest, match, and verify functions written against engine internals
//! (~1,600–1,900 LOC each in AsterixDB; Table II). These are the Rust
//! equivalents: they implement [`EngineJoin`] directly on native
//! [`Value`]s — no external-type translation, concrete state types, typed
//! fast paths, and (for the advanced spatial operator) a custom local join.
//!
//! The performance delta between these and their FUDJ twins *is* the
//! framework overhead the §VII-B experiment measures; the LOC delta is
//! Table II.

use fudj_core::{BucketId, DedupMode, EngineJoin, PPlanState, Side, SummaryState};
use fudj_geo::{sweep::plane_sweep_join_into, Rect, UniformGrid};
use fudj_temporal::granule::{buckets_overlap, MAX_GRANULES};
use fudj_temporal::{GranuleTimeline, Interval, IntervalSummary};
use fudj_text::{jaccard_of_sorted, prefix_length, token_set, tokenize, TokenCounts, TokenRanks};
use fudj_types::{FudjError, Result, Value};
use serde::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------------

fn wrong_state(op: &str, what: &str) -> FudjError {
    FudjError::Execution(format!("{op}: internal {what} state of the wrong type"))
}

/// MBR of a native geometry value.
fn value_mbr(v: &Value) -> Result<Rect> {
    match v {
        Value::Point(p) => Ok(Rect::from_point(p)),
        Value::Polygon(poly) => Ok(poly.mbr()),
        other => Err(FudjError::type_mismatch(
            "point or polygon",
            other,
            "spatial join key",
        )),
    }
}

/// Native geometry intersection predicate.
fn values_intersect(a: &Value, b: &Value) -> Result<bool> {
    Ok(match (a, b) {
        (Value::Point(p), Value::Point(q)) => p == q,
        (Value::Point(p), Value::Polygon(poly)) | (Value::Polygon(poly), Value::Point(p)) => {
            poly.contains_point(p)
        }
        (Value::Polygon(p), Value::Polygon(q)) => p.intersects(q),
        (a, b) => {
            return Err(FudjError::type_mismatch(
                "two geometries",
                (a.data_type(), b.data_type()),
                "spatial verify",
            ))
        }
    })
}

fn grid_param(params: &[Value], default: u32) -> Result<u32> {
    match params.first() {
        Some(p) => {
            let n = p.as_i64()?;
            if n <= 0 || n > u16::MAX as i64 {
                return Err(FudjError::Plan(format!(
                    "grid side must be in 1..=65535, got {n}"
                )));
            }
            Ok(n as u32)
        }
        None => Ok(default),
    }
}

// ---------------------------------------------------------------------------
// Built-in spatial join (PBSM)
// ---------------------------------------------------------------------------

/// Grid `PPlan` of the built-in spatial operators.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BuiltinSpatialPlan {
    grid: UniformGrid,
}

/// Hand-integrated PBSM operator: typed MBR summaries, grid partitioning,
/// per-tile nested-loop local join, reference-point duplicate avoidance.
#[derive(Clone, Copy, Debug, Default)]
pub struct BuiltinSpatialJoin;

impl BuiltinSpatialJoin {
    /// New built-in spatial join.
    pub fn new() -> Self {
        BuiltinSpatialJoin
    }
}

impl EngineJoin for BuiltinSpatialJoin {
    fn name(&self) -> &str {
        "builtin_spatial_join"
    }

    fn new_summary(&self, _side: Side) -> SummaryState {
        SummaryState::new(Rect::default())
    }

    fn local_aggregate(&self, _side: Side, key: &Value, summary: &mut SummaryState) -> Result<()> {
        let mbr = value_mbr(key)?;
        let s = summary
            .downcast_mut::<Rect>()
            .ok_or_else(|| wrong_state(self.name(), "summary"))?;
        s.expand_rect(&mbr);
        Ok(())
    }

    fn global_aggregate(
        &self,
        _side: Side,
        a: SummaryState,
        b: SummaryState,
    ) -> Result<SummaryState> {
        let ra = a
            .downcast_ref::<Rect>()
            .ok_or_else(|| wrong_state(self.name(), "summary"))?;
        let rb = b
            .downcast_ref::<Rect>()
            .ok_or_else(|| wrong_state(self.name(), "summary"))?;
        Ok(SummaryState::new(ra.union(rb)))
    }

    fn symmetric(&self) -> bool {
        true
    }

    fn divide(
        &self,
        left: &SummaryState,
        right: &SummaryState,
        params: &[Value],
    ) -> Result<PPlanState> {
        let l = left
            .downcast_ref::<Rect>()
            .ok_or_else(|| wrong_state(self.name(), "summary"))?;
        let r = right
            .downcast_ref::<Rect>()
            .ok_or_else(|| wrong_state(self.name(), "summary"))?;
        let n = grid_param(params, crate::spatial::DEFAULT_GRID_SIDE)?;
        Ok(PPlanState::new(BuiltinSpatialPlan {
            grid: UniformGrid::new(l.intersection(r), n),
        }))
    }

    fn assign(
        &self,
        _side: Side,
        key: &Value,
        pplan: &PPlanState,
        out: &mut Vec<BucketId>,
    ) -> Result<()> {
        let plan = pplan
            .downcast_ref::<BuiltinSpatialPlan>()
            .ok_or_else(|| wrong_state(self.name(), "pplan"))?;
        let clipped = value_mbr(key)?.intersection(&plan.grid.extent());
        if !clipped.is_empty() {
            out.extend(plan.grid.overlapping_tiles(&clipped));
        }
        Ok(())
    }

    fn verify(
        &self,
        _b1: BucketId,
        k1: &Value,
        _b2: BucketId,
        k2: &Value,
        _pplan: &PPlanState,
    ) -> Result<bool> {
        values_intersect(k1, k2)
    }

    fn dedup_mode(&self) -> DedupMode {
        DedupMode::Custom // reference point — what a hand-built PBSM uses
    }

    fn dedup(
        &self,
        b1: BucketId,
        k1: &Value,
        _b2: BucketId,
        k2: &Value,
        pplan: &PPlanState,
    ) -> Result<bool> {
        let plan = pplan
            .downcast_ref::<BuiltinSpatialPlan>()
            .ok_or_else(|| wrong_state(self.name(), "pplan"))?;
        Ok(plan
            .grid
            .is_reference_tile(b1, &value_mbr(k1)?, &value_mbr(k2)?))
    }
}

// ---------------------------------------------------------------------------
// Advanced spatial join (plane-sweep local join, §VII-F)
// ---------------------------------------------------------------------------

/// The §VII-F *advanced* spatial operator: [`BuiltinSpatialJoin`] plus a
/// plane-sweep local join inside each tile — sort both sides' MBRs by x and
/// sweep instead of the nested loop, then exact-verify only the MBR-level
/// candidates.
#[derive(Clone, Copy, Debug, Default)]
pub struct AdvancedSpatialJoin {
    inner: BuiltinSpatialJoin,
}

impl AdvancedSpatialJoin {
    /// New advanced spatial join.
    pub fn new() -> Self {
        Self::default()
    }
}

impl EngineJoin for AdvancedSpatialJoin {
    fn name(&self) -> &str {
        "advanced_spatial_join"
    }

    fn new_summary(&self, side: Side) -> SummaryState {
        self.inner.new_summary(side)
    }

    fn local_aggregate(&self, side: Side, key: &Value, summary: &mut SummaryState) -> Result<()> {
        self.inner.local_aggregate(side, key, summary)
    }

    fn global_aggregate(
        &self,
        side: Side,
        a: SummaryState,
        b: SummaryState,
    ) -> Result<SummaryState> {
        self.inner.global_aggregate(side, a, b)
    }

    fn symmetric(&self) -> bool {
        true
    }

    fn divide(
        &self,
        left: &SummaryState,
        right: &SummaryState,
        params: &[Value],
    ) -> Result<PPlanState> {
        self.inner.divide(left, right, params)
    }

    fn assign(
        &self,
        side: Side,
        key: &Value,
        pplan: &PPlanState,
        out: &mut Vec<BucketId>,
    ) -> Result<()> {
        self.inner.assign(side, key, pplan, out)
    }

    fn verify(
        &self,
        b1: BucketId,
        k1: &Value,
        b2: BucketId,
        k2: &Value,
        pplan: &PPlanState,
    ) -> Result<bool> {
        self.inner.verify(b1, k1, b2, k2, pplan)
    }

    fn dedup_mode(&self) -> DedupMode {
        self.inner.dedup_mode()
    }

    fn dedup(
        &self,
        b1: BucketId,
        k1: &Value,
        b2: BucketId,
        k2: &Value,
        pplan: &PPlanState,
    ) -> Result<bool> {
        self.inner.dedup(b1, k1, b2, k2, pplan)
    }

    fn local_join_pairs(
        &self,
        _b1: BucketId,
        left_keys: &[Value],
        _b2: BucketId,
        right_keys: &[Value],
        _pplan: &PPlanState,
        emit: &mut dyn FnMut(usize, usize),
    ) -> Result<()> {
        let left_mbrs: Vec<Rect> = left_keys.iter().map(value_mbr).collect::<Result<_>>()?;
        let right_mbrs: Vec<Rect> = right_keys.iter().map(value_mbr).collect::<Result<_>>()?;
        let mut verify_err = None;
        plane_sweep_join_into(&left_mbrs, &right_mbrs, |i, j| {
            if verify_err.is_some() {
                return;
            }
            match values_intersect(&left_keys[i], &right_keys[j]) {
                Ok(true) => emit(i, j),
                Ok(false) => {}
                Err(e) => verify_err = Some(e),
            }
        });
        match verify_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

// ---------------------------------------------------------------------------
// Built-in interval join (OIP)
// ---------------------------------------------------------------------------

/// Hand-integrated OIP operator: typed min/max summaries, granule timeline,
/// packed single-assign buckets, theta granule-overlap match.
#[derive(Clone, Copy, Debug, Default)]
pub struct BuiltinIntervalJoin;

impl BuiltinIntervalJoin {
    /// New built-in interval join.
    pub fn new() -> Self {
        BuiltinIntervalJoin
    }
}

impl EngineJoin for BuiltinIntervalJoin {
    fn name(&self) -> &str {
        "builtin_interval_join"
    }

    fn new_summary(&self, _side: Side) -> SummaryState {
        SummaryState::new(IntervalSummary::default())
    }

    fn local_aggregate(&self, _side: Side, key: &Value, summary: &mut SummaryState) -> Result<()> {
        let iv = key.as_interval()?;
        summary
            .downcast_mut::<IntervalSummary>()
            .ok_or_else(|| wrong_state(self.name(), "summary"))?
            .observe(&iv);
        Ok(())
    }

    fn global_aggregate(
        &self,
        _side: Side,
        a: SummaryState,
        b: SummaryState,
    ) -> Result<SummaryState> {
        let sa = a
            .downcast_ref::<IntervalSummary>()
            .ok_or_else(|| wrong_state(self.name(), "summary"))?;
        let sb = b
            .downcast_ref::<IntervalSummary>()
            .ok_or_else(|| wrong_state(self.name(), "summary"))?;
        Ok(SummaryState::new(sa.merge(sb)))
    }

    fn symmetric(&self) -> bool {
        true
    }

    fn divide(
        &self,
        left: &SummaryState,
        right: &SummaryState,
        params: &[Value],
    ) -> Result<PPlanState> {
        let l = left
            .downcast_ref::<IntervalSummary>()
            .ok_or_else(|| wrong_state(self.name(), "summary"))?;
        let r = right
            .downcast_ref::<IntervalSummary>()
            .ok_or_else(|| wrong_state(self.name(), "summary"))?;
        let n = match params.first() {
            Some(p) => {
                let n = p.as_i64()?;
                if n <= 0 || n > MAX_GRANULES as i64 {
                    return Err(FudjError::Plan(format!(
                        "granule count must be in 1..={MAX_GRANULES}, got {n}"
                    )));
                }
                n as u32
            }
            None => crate::interval::DEFAULT_GRANULES,
        };
        let range = l.merge(r).range().unwrap_or_else(|| Interval::new(0, 0));
        Ok(PPlanState::new(GranuleTimeline::new(range, n)))
    }

    fn assign(
        &self,
        _side: Side,
        key: &Value,
        pplan: &PPlanState,
        out: &mut Vec<BucketId>,
    ) -> Result<()> {
        let tl = pplan
            .downcast_ref::<GranuleTimeline>()
            .ok_or_else(|| wrong_state(self.name(), "pplan"))?;
        out.push(tl.assign(&key.as_interval()?));
        Ok(())
    }

    fn matches(&self, b1: BucketId, b2: BucketId) -> bool {
        buckets_overlap(b1, b2)
    }

    fn uses_default_match(&self) -> bool {
        false
    }

    fn verify(
        &self,
        _b1: BucketId,
        k1: &Value,
        _b2: BucketId,
        k2: &Value,
        _pplan: &PPlanState,
    ) -> Result<bool> {
        Ok(k1.as_interval()?.overlaps(&k2.as_interval()?))
    }

    fn dedup_mode(&self) -> DedupMode {
        DedupMode::None
    }

    fn dedup(
        &self,
        _b1: BucketId,
        _k1: &Value,
        _b2: BucketId,
        _k2: &Value,
        _pplan: &PPlanState,
    ) -> Result<bool> {
        Ok(true)
    }
}

// ---------------------------------------------------------------------------
// Advanced interval join (forward-scan local join, §VIII future work)
// ---------------------------------------------------------------------------

/// [`BuiltinIntervalJoin`] plus a forward-scan plane sweep as the local
/// bucket join: sort both sides by start and scan, instead of the nested
/// loop with per-pair `verify`. The interval counterpart of the paper's
/// §VII-F plane-sweep experiment, covering the §VIII "sort-merge-based
/// joins and local join optimizations" future work.
#[derive(Clone, Copy, Debug, Default)]
pub struct AdvancedIntervalJoin {
    inner: BuiltinIntervalJoin,
}

impl AdvancedIntervalJoin {
    /// New advanced interval join.
    pub fn new() -> Self {
        Self::default()
    }
}

impl EngineJoin for AdvancedIntervalJoin {
    fn name(&self) -> &str {
        "advanced_interval_join"
    }

    fn new_summary(&self, side: Side) -> SummaryState {
        self.inner.new_summary(side)
    }

    fn local_aggregate(&self, side: Side, key: &Value, summary: &mut SummaryState) -> Result<()> {
        self.inner.local_aggregate(side, key, summary)
    }

    fn global_aggregate(
        &self,
        side: Side,
        a: SummaryState,
        b: SummaryState,
    ) -> Result<SummaryState> {
        self.inner.global_aggregate(side, a, b)
    }

    fn symmetric(&self) -> bool {
        true
    }

    fn divide(
        &self,
        left: &SummaryState,
        right: &SummaryState,
        params: &[Value],
    ) -> Result<PPlanState> {
        self.inner.divide(left, right, params)
    }

    fn assign(
        &self,
        side: Side,
        key: &Value,
        pplan: &PPlanState,
        out: &mut Vec<BucketId>,
    ) -> Result<()> {
        self.inner.assign(side, key, pplan, out)
    }

    fn matches(&self, b1: BucketId, b2: BucketId) -> bool {
        self.inner.matches(b1, b2)
    }

    fn uses_default_match(&self) -> bool {
        false
    }

    fn verify(
        &self,
        b1: BucketId,
        k1: &Value,
        b2: BucketId,
        k2: &Value,
        pplan: &PPlanState,
    ) -> Result<bool> {
        self.inner.verify(b1, k1, b2, k2, pplan)
    }

    fn dedup_mode(&self) -> DedupMode {
        DedupMode::None
    }

    fn dedup(
        &self,
        _b1: BucketId,
        _k1: &Value,
        _b2: BucketId,
        _k2: &Value,
        _pplan: &PPlanState,
    ) -> Result<bool> {
        Ok(true)
    }

    fn local_join_pairs(
        &self,
        _b1: BucketId,
        left_keys: &[Value],
        _b2: BucketId,
        right_keys: &[Value],
        _pplan: &PPlanState,
        emit: &mut dyn FnMut(usize, usize),
    ) -> Result<()> {
        let left: Vec<Interval> = left_keys
            .iter()
            .map(Value::as_interval)
            .collect::<Result<_>>()?;
        let right: Vec<Interval> = right_keys
            .iter()
            .map(Value::as_interval)
            .collect::<Result<_>>()?;
        fudj_temporal::sweep::forward_scan_join_into(&left, &right, emit);
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Built-in text-similarity join (prefix filtering)
// ---------------------------------------------------------------------------

/// Rank table + threshold `PPlan` of the built-in text operator.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BuiltinTextPlan {
    ranks: TokenRanks,
    threshold: f64,
}

/// Hand-integrated prefix-filtering set-similarity operator. Its engine
/// access shows in the local join: each bucket's records are tokenized
/// *once* and verified from cached token sets, which a per-call UDF boundary
/// cannot do — one source of the (small) built-in advantage in Fig. 9c.
#[derive(Clone, Copy, Debug, Default)]
pub struct BuiltinTextSimJoin;

impl BuiltinTextSimJoin {
    /// New built-in text-similarity join.
    pub fn new() -> Self {
        BuiltinTextSimJoin
    }

    fn plan<'a>(&self, pplan: &'a PPlanState) -> Result<&'a BuiltinTextPlan> {
        pplan
            .downcast_ref::<BuiltinTextPlan>()
            .ok_or_else(|| wrong_state(self.name(), "pplan"))
    }
}

impl EngineJoin for BuiltinTextSimJoin {
    fn name(&self) -> &str {
        "builtin_text_similarity_join"
    }

    fn new_summary(&self, _side: Side) -> SummaryState {
        SummaryState::new(TokenCounts::new())
    }

    fn local_aggregate(&self, _side: Side, key: &Value, summary: &mut SummaryState) -> Result<()> {
        let text = key.as_str()?;
        let counts = summary
            .downcast_mut::<TokenCounts>()
            .ok_or_else(|| wrong_state(self.name(), "summary"))?;
        for token in tokenize(text) {
            counts.observe(&token);
        }
        Ok(())
    }

    fn global_aggregate(
        &self,
        _side: Side,
        a: SummaryState,
        b: SummaryState,
    ) -> Result<SummaryState> {
        let mut ca = a
            .downcast_ref::<TokenCounts>()
            .ok_or_else(|| wrong_state(self.name(), "summary"))?
            .clone();
        let cb = b
            .downcast_ref::<TokenCounts>()
            .ok_or_else(|| wrong_state(self.name(), "summary"))?;
        ca.merge(cb);
        Ok(SummaryState::new(ca))
    }

    fn symmetric(&self) -> bool {
        true
    }

    fn divide(
        &self,
        left: &SummaryState,
        right: &SummaryState,
        params: &[Value],
    ) -> Result<PPlanState> {
        let threshold = params
            .first()
            .ok_or_else(|| FudjError::Plan("text similarity join requires a threshold".into()))?
            .as_f64()?;
        if !(threshold > 0.0 && threshold <= 1.0) {
            return Err(FudjError::Plan(format!(
                "threshold must be in (0, 1], got {threshold}"
            )));
        }
        let mut merged = left
            .downcast_ref::<TokenCounts>()
            .ok_or_else(|| wrong_state(self.name(), "summary"))?
            .clone();
        merged.merge(
            right
                .downcast_ref::<TokenCounts>()
                .ok_or_else(|| wrong_state(self.name(), "summary"))?,
        );
        Ok(PPlanState::new(BuiltinTextPlan {
            ranks: TokenRanks::from_counts(&merged),
            threshold,
        }))
    }

    fn assign(
        &self,
        _side: Side,
        key: &Value,
        pplan: &PPlanState,
        out: &mut Vec<BucketId>,
    ) -> Result<()> {
        let plan = self.plan(pplan)?;
        let tokens = token_set(key.as_str()?);
        let ranked = plan.ranks.ranked_tokens(&tokens);
        let p = prefix_length(ranked.len(), plan.threshold);
        out.extend(ranked[..p.min(ranked.len())].iter().map(|&r| r as BucketId));
        Ok(())
    }

    fn verify(
        &self,
        _b1: BucketId,
        k1: &Value,
        _b2: BucketId,
        k2: &Value,
        pplan: &PPlanState,
    ) -> Result<bool> {
        let plan = self.plan(pplan)?;
        Ok(jaccard_of_sorted(&token_set(k1.as_str()?), &token_set(k2.as_str()?)) >= plan.threshold)
    }

    fn dedup_mode(&self) -> DedupMode {
        DedupMode::Custom
    }

    fn dedup(
        &self,
        b1: BucketId,
        k1: &Value,
        b2: BucketId,
        k2: &Value,
        pplan: &PPlanState,
    ) -> Result<bool> {
        // Native avoidance: the pair is reported only from its smallest
        // shared prefix rank. Because match is equality, b1 == b2 here.
        debug_assert_eq!(b1, b2);
        let plan = self.plan(pplan)?;
        let ra = plan.ranks.ranked_tokens(&token_set(k1.as_str()?));
        let rb = plan.ranks.ranked_tokens(&token_set(k2.as_str()?));
        let pa = prefix_length(ra.len(), plan.threshold).min(ra.len());
        let pb = prefix_length(rb.len(), plan.threshold).min(rb.len());
        let first_shared = ra[..pa].iter().filter(|r| rb[..pb].contains(r)).min();
        Ok(first_shared == Some(&(b1 as u32)))
    }

    fn local_join_pairs(
        &self,
        b1: BucketId,
        left_keys: &[Value],
        _b2: BucketId,
        right_keys: &[Value],
        pplan: &PPlanState,
        emit: &mut dyn FnMut(usize, usize),
    ) -> Result<()> {
        let plan = self.plan(pplan)?;
        let _ = b1;
        // Engine-side optimization: tokenize each bucket once.
        let left_sets: Vec<Vec<String>> = left_keys
            .iter()
            .map(|k| Ok(token_set(k.as_str()?)))
            .collect::<Result<_>>()?;
        let right_sets: Vec<Vec<String>> = right_keys
            .iter()
            .map(|k| Ok(token_set(k.as_str()?)))
            .collect::<Result<_>>()?;
        for (i, a) in left_sets.iter().enumerate() {
            for (j, b) in right_sets.iter().enumerate() {
                if jaccard_of_sorted(a, b) >= plan.threshold {
                    emit(i, j);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::IntervalFudj;
    use crate::spatial::SpatialFudj;
    use crate::textsim::TextSimilarityFudj;
    use fudj_core::{reference_execute, FudjEngineJoin, ProxyJoin};
    use fudj_geo::{Point, Polygon};
    use rand::{rngs::SmallRng, Rng, SeedableRng};
    use std::sync::Arc;

    fn spatial_workload(seed: u64) -> (Vec<Value>, Vec<Value>) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let parks: Vec<Value> = (0..40)
            .map(|_| {
                let x = rng.gen_range(0.0..90.0);
                let y = rng.gen_range(0.0..90.0);
                let w = rng.gen_range(0.5..10.0);
                let h = rng.gen_range(0.5..10.0);
                Value::polygon(Polygon::from_rect(&Rect::new(x, y, x + w, y + h)))
            })
            .collect();
        let fires: Vec<Value> = (0..80)
            .map(|_| {
                Value::Point(Point::new(
                    rng.gen_range(0.0..100.0),
                    rng.gen_range(0.0..100.0),
                ))
            })
            .collect();
        (parks, fires)
    }

    /// Core equivalence: built-in and FUDJ spatial operators compute the
    /// same result set (the paper's premise for comparing their runtimes).
    #[test]
    fn builtin_spatial_equals_fudj_spatial() {
        let (parks, fires) = spatial_workload(7);
        let params = [Value::Int64(8)];
        let builtin =
            reference_execute(&BuiltinSpatialJoin::new(), &parks, &fires, &params).unwrap();
        let fudj = FudjEngineJoin::new(Arc::new(ProxyJoin::new(SpatialFudj::new())));
        let flexible = reference_execute(&fudj, &parks, &fires, &params).unwrap();
        assert_eq!(builtin, flexible);
        assert!(!builtin.is_empty(), "fixture should produce matches");
        assert!(
            fudj.translation_count() > 0,
            "FUDJ path crossed the boundary"
        );
    }

    #[test]
    fn advanced_spatial_equals_builtin() {
        let (parks, fires) = spatial_workload(21);
        let params = [Value::Int64(6)];
        let a = reference_execute(&BuiltinSpatialJoin::new(), &parks, &fires, &params).unwrap();
        let b = reference_execute(&AdvancedSpatialJoin::new(), &parks, &fires, &params).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn builtin_interval_equals_fudj_interval() {
        let mut rng = SmallRng::seed_from_u64(17);
        let mut side = |n: usize| -> Vec<Value> {
            (0..n)
                .map(|_| {
                    let s = rng.gen_range(0i64..50_000);
                    Value::Interval(Interval::new(s, s + rng.gen_range(0i64..2_000)))
                })
                .collect()
        };
        let l = side(70);
        let r = side(50);
        let params = [Value::Int64(64)];
        let builtin = reference_execute(&BuiltinIntervalJoin::new(), &l, &r, &params).unwrap();
        let fudj = FudjEngineJoin::new(Arc::new(ProxyJoin::new(IntervalFudj::new())));
        let flexible = reference_execute(&fudj, &l, &r, &params).unwrap();
        assert_eq!(builtin, flexible);
        assert!(!builtin.is_empty());
    }

    #[test]
    fn builtin_textsim_equals_fudj_textsim() {
        let vocab = [
            "river", "trail", "lake", "peak", "camp", "view", "rock", "wood", "fern",
        ];
        let mut rng = SmallRng::seed_from_u64(4);
        let mut side = |n: usize| -> Vec<Value> {
            (0..n)
                .map(|_| {
                    let len = rng.gen_range(2..7);
                    let text: Vec<&str> = (0..len)
                        .map(|_| vocab[rng.gen_range(0..vocab.len())])
                        .collect();
                    Value::str(text.join(" "))
                })
                .collect()
        };
        let l = side(50);
        let r = side(40);
        for t in [0.5, 0.8, 0.9] {
            let params = [Value::Float64(t)];
            let builtin = reference_execute(&BuiltinTextSimJoin::new(), &l, &r, &params).unwrap();
            let fudj = FudjEngineJoin::new(Arc::new(ProxyJoin::new(TextSimilarityFudj::new())));
            let flexible = reference_execute(&fudj, &l, &r, &params).unwrap();
            assert_eq!(builtin, flexible, "t={t}");
        }
    }

    #[test]
    fn builtin_rejects_wrong_key_types() {
        let j = BuiltinSpatialJoin::new();
        let mut s = j.new_summary(Side::Left);
        assert!(j
            .local_aggregate(Side::Left, &Value::Int64(1), &mut s)
            .is_err());

        let ij = BuiltinIntervalJoin::new();
        let mut s = ij.new_summary(Side::Left);
        assert!(ij
            .local_aggregate(Side::Left, &Value::str("x"), &mut s)
            .is_err());
    }

    #[test]
    fn builtin_spatial_param_validation() {
        let j = BuiltinSpatialJoin::new();
        let s = j.new_summary(Side::Left);
        assert!(j.divide(&s, &s, &[Value::Int64(0)]).is_err());
        assert!(j.divide(&s, &s, &[Value::Int64(1 << 20)]).is_err());
        assert!(j.divide(&s, &s, &[]).is_ok(), "default grid side applies");
    }
}
