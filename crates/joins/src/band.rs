//! Band join — an extension join type demonstrating model generality.
//!
//! Not one of the paper's three examples; included to show that a fourth
//! algorithm drops into the unchanged framework (the paper's central
//! claim). A band join pairs numeric keys within a distance ε:
//! `|a − b| ≤ ε`. Partitioning is single-assign into ε-wide cells; matching
//! is the theta predicate "adjacent or equal cells" — a second multi-join
//! exercising the NLJ bucket-matching path alongside the interval join.

use fudj_core::{BucketId, DedupMode, FlexibleJoin};
use fudj_types::{ExtValue, FudjError, Result};
use serde::{Deserialize, Serialize};

/// 1-D band join (`|a − b| ≤ ε`) as a FUDJ library class
/// (`"band.BandJoin"` in [`crate::standard_library`]).
#[derive(Clone, Debug, Default)]
pub struct BandJoin;

/// Min/max of the observed keys — the band join's `Summary`.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct MinMax {
    pub min: f64,
    pub max: f64,
}

impl Default for MinMax {
    fn default() -> Self {
        MinMax {
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl MinMax {
    fn observe(&mut self, v: f64) {
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    fn merge(self, other: MinMax) -> MinMax {
        MinMax {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }
}

/// The band join's `PPlan`: ε-wide cells over the joint domain.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct BandPPlan {
    pub origin: f64,
    pub epsilon: f64,
    pub cells: u64,
}

impl BandJoin {
    /// New band join.
    pub fn new() -> Self {
        BandJoin
    }
}

impl FlexibleJoin for BandJoin {
    type Summary = MinMax;
    type PPlan = BandPPlan;

    fn name(&self) -> &str {
        "band_join"
    }

    fn summarize(&self, key: &ExtValue, summary: &mut MinMax) -> Result<()> {
        summary.observe(key.as_double()?);
        Ok(())
    }

    fn merge_summaries(&self, a: MinMax, b: MinMax) -> MinMax {
        a.merge(b)
    }

    fn divide(&self, left: &MinMax, right: &MinMax, params: &[ExtValue]) -> Result<BandPPlan> {
        let epsilon = params
            .first()
            .ok_or_else(|| {
                FudjError::JoinLibrary("band join requires an epsilon parameter".into())
            })?
            .as_double()?;
        if epsilon <= 0.0 || !epsilon.is_finite() {
            return Err(FudjError::JoinLibrary(format!(
                "epsilon must be finite and > 0, got {epsilon}"
            )));
        }
        let m = left.merge(*right);
        let (origin, span) = if m.min > m.max {
            (0.0, 0.0)
        } else {
            (m.min, (m.max - m.min).max(0.0))
        };
        let cells = (span / epsilon).floor() as u64 + 1;
        Ok(BandPPlan {
            origin,
            epsilon,
            cells,
        })
    }

    fn assign(&self, key: &ExtValue, pplan: &BandPPlan, out: &mut Vec<BucketId>) -> Result<()> {
        let v = key.as_double()?;
        let cell = ((v - pplan.origin) / pplan.epsilon).floor();
        out.push((cell.max(0.0) as u64).min(pplan.cells - 1));
        Ok(())
    }

    fn matches(&self, b1: BucketId, b2: BucketId) -> bool {
        b1.abs_diff(b2) <= 1
    }

    fn uses_default_match(&self) -> bool {
        false
    }

    fn verify(&self, k1: &ExtValue, k2: &ExtValue, pplan: &BandPPlan) -> Result<bool> {
        Ok((k1.as_double()? - k2.as_double()?).abs() <= pplan.epsilon)
    }

    fn dedup_mode(&self) -> DedupMode {
        DedupMode::None // single-assign
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fudj_core::standalone::run_standalone;
    use fudj_core::ProxyJoin;

    fn vals(v: &[f64]) -> Vec<ExtValue> {
        v.iter().map(|&x| ExtValue::Double(x)).collect()
    }

    fn oracle(l: &[f64], r: &[f64], eps: f64) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (i, a) in l.iter().enumerate() {
            for (j, b) in r.iter().enumerate() {
                if (a - b).abs() <= eps {
                    out.push((i, j));
                }
            }
        }
        out
    }

    #[test]
    fn divide_validates_epsilon() {
        let j = BandJoin::new();
        let s = MinMax::default();
        assert!(j.divide(&s, &s, &[]).is_err());
        assert!(j.divide(&s, &s, &[ExtValue::Double(0.0)]).is_err());
        assert!(j.divide(&s, &s, &[ExtValue::Double(-1.0)]).is_err());
        assert!(j.divide(&s, &s, &[ExtValue::Double(2.0)]).is_ok());
    }

    #[test]
    fn adjacent_cells_match() {
        let j = BandJoin::new();
        assert!(j.matches(5, 5));
        assert!(j.matches(5, 6));
        assert!(j.matches(6, 5));
        assert!(!j.matches(5, 7));
    }

    #[test]
    fn standalone_matches_oracle() {
        let l = [0.0, 1.1, 5.7, 9.9, 23.4, 50.0];
        let r = [0.5, 6.0, 10.0, 24.0, 49.1];
        for eps in [0.5, 1.0, 3.0] {
            let alg = ProxyJoin::new(BandJoin::new());
            let got = run_standalone(&alg, &vals(&l), &vals(&r), &[ExtValue::Double(eps)]).unwrap();
            assert_eq!(got, oracle(&l, &r, eps), "eps={eps}");
        }
    }

    #[test]
    fn randomized_against_oracle() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(3);
        let l: Vec<f64> = (0..100).map(|_| rng.gen_range(0.0..1000.0)).collect();
        let r: Vec<f64> = (0..80).map(|_| rng.gen_range(0.0..1000.0)).collect();
        let alg = ProxyJoin::new(BandJoin::new());
        let got = run_standalone(&alg, &vals(&l), &vals(&r), &[ExtValue::Double(7.5)]).unwrap();
        assert_eq!(got, oracle(&l, &r, 7.5));
    }

    #[test]
    fn integer_keys_widen() {
        // Long keys work via the widening as_double accessor.
        let l = vec![ExtValue::Long(10), ExtValue::Long(20)];
        let r = vec![ExtValue::Long(12)];
        let alg = ProxyJoin::new(BandJoin::new());
        let got = run_standalone(&alg, &l, &r, &[ExtValue::Double(2.0)]).unwrap();
        assert_eq!(got, vec![(0, 0)]);
    }
}
