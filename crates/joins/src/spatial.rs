//! Spatial FUDJ — the PBSM algorithm in the FUDJ programming model (§V-A).
//!
//! ```text
//! SUMMARIZE(geometry, S):  S ← MBR(geometry) ∪ S
//! DIVIDE(S1, S2, n):       PPlan ← (S1 ∩ S2, n × n grid)
//! ASSIGN(geometry, PPlan): overlapping tile ids of MBR(geometry)
//! MATCH:                   default (tile equality)
//! VERIFY(g1, g2):          intersects(g1, g2)
//! ```
//!
//! Geometries arrive through the external-type boundary as flat coordinate
//! arrays (`[x, y]` for a point, `[x0, y0, x1, y1, ...]` for a polygon ring)
//! — see `fudj_types::ext`.

use fudj_core::{BucketId, DedupMode, FlexibleJoin};
use fudj_geo::{Point, Polygon, Rect, UniformGrid};
use fudj_types::{ExtValue, FudjError, Result};
use serde::{Deserialize, Serialize};

/// Duplicate-handling flavor for the spatial join (Fig. 12's subjects).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SpatialDedup {
    /// The framework's default duplicate avoidance (re-run `assign`).
    #[default]
    FrameworkAvoidance,
    /// PBSM's reference-point method, supplied as a custom `dedup`.
    ReferencePoint,
    /// Post-join duplicate elimination.
    Elimination,
}

/// The PBSM spatial join as a FUDJ library class
/// (`"spatial.SpatialJoin"` in [`crate::standard_library`]).
#[derive(Clone, Debug, Default)]
pub struct SpatialFudj {
    dedup: SpatialDedup,
}

/// The spatial `PPlan`: the grid over the joint MBR.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SpatialPPlan {
    pub grid: UniformGrid,
}

/// Default grid side when the query supplies no `n` parameter.
pub const DEFAULT_GRID_SIDE: u32 = 100;

impl SpatialFudj {
    /// PBSM with the framework's default duplicate avoidance.
    pub fn new() -> Self {
        Self::default()
    }

    /// PBSM with a chosen duplicate-handling flavor.
    pub fn with_dedup(dedup: SpatialDedup) -> Self {
        SpatialFudj { dedup }
    }
}

/// A key decoded from its external coordinate-array form.
pub(crate) enum Geom {
    Point(Point),
    Polygon(Polygon),
}

pub(crate) fn decode_geom(key: &ExtValue) -> Result<Geom> {
    let coords = key.as_double_array()?;
    match coords.len() {
        2 => Ok(Geom::Point(Point::new(coords[0], coords[1]))),
        n if n >= 6 && n % 2 == 0 => Ok(Geom::Polygon(Polygon::new(
            coords
                .chunks_exact(2)
                .map(|c| Point::new(c[0], c[1]))
                .collect(),
        ))),
        n => Err(FudjError::JoinLibrary(format!(
            "spatial key must be [x, y] or a polygon ring, got {n} coordinates"
        ))),
    }
}

pub(crate) fn geoms_intersect(a: &Geom, b: &Geom) -> bool {
    match (a, b) {
        (Geom::Point(p), Geom::Point(q)) => p == q,
        (Geom::Point(p), Geom::Polygon(poly)) | (Geom::Polygon(poly), Geom::Point(p)) => {
            poly.contains_point(p)
        }
        (Geom::Polygon(p), Geom::Polygon(q)) => p.intersects(q),
    }
}

impl FlexibleJoin for SpatialFudj {
    type Summary = Rect;
    type PPlan = SpatialPPlan;

    fn name(&self) -> &str {
        "spatial_join"
    }

    fn summarize(&self, key: &ExtValue, summary: &mut Rect) -> Result<()> {
        // MBR(geometry) ∪ S — directly from the coordinate array, without
        // materializing the geometry.
        summary.expand_rect(&key.as_coords_mbr()?);
        Ok(())
    }

    fn merge_summaries(&self, a: Rect, b: Rect) -> Rect {
        a.union(&b)
    }

    fn divide(&self, left: &Rect, right: &Rect, params: &[ExtValue]) -> Result<SpatialPPlan> {
        let n = match params.first() {
            Some(p) => {
                let n = p.as_long()?;
                if n <= 0 || n > u16::MAX as i64 {
                    return Err(FudjError::JoinLibrary(format!(
                        "grid side must be in 1..=65535, got {n}"
                    )));
                }
                n as u32
            }
            None => DEFAULT_GRID_SIDE,
        };
        // PBSM grids only the region both inputs cover; results can only
        // exist there.
        let extent = left.intersection(right);
        Ok(SpatialPPlan {
            grid: UniformGrid::new(extent, n),
        })
    }

    fn assign(&self, key: &ExtValue, pplan: &SpatialPPlan, out: &mut Vec<BucketId>) -> Result<()> {
        let mbr = key.as_coords_mbr()?;
        // A record outside the joint region cannot join: prune it here
        // instead of clamping it onto border tiles.
        let clipped = mbr.intersection(&pplan.grid.extent());
        if !clipped.is_empty() {
            out.extend(pplan.grid.overlapping_tiles(&clipped));
        }
        Ok(())
    }

    fn verify(&self, k1: &ExtValue, k2: &ExtValue, _pplan: &SpatialPPlan) -> Result<bool> {
        Ok(geoms_intersect(&decode_geom(k1)?, &decode_geom(k2)?))
    }

    fn dedup_mode(&self) -> DedupMode {
        match self.dedup {
            SpatialDedup::FrameworkAvoidance => DedupMode::Avoidance,
            SpatialDedup::ReferencePoint => DedupMode::Custom,
            SpatialDedup::Elimination => DedupMode::Elimination,
        }
    }

    fn custom_dedup(
        &self,
        b1: BucketId,
        k1: &ExtValue,
        _b2: BucketId,
        k2: &ExtValue,
        pplan: &SpatialPPlan,
    ) -> Result<bool> {
        // Reference-point method: report the pair only from the tile
        // containing the min corner of the two MBRs' intersection.
        let m1 = k1.as_coords_mbr()?;
        let m2 = k2.as_coords_mbr()?;
        Ok(pplan.grid.is_reference_tile(b1, &m1, &m2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fudj_core::standalone::run_standalone;
    use fudj_core::ProxyJoin;
    use fudj_types::ext::to_external;
    use fudj_types::Value;

    fn point(x: f64, y: f64) -> ExtValue {
        ExtValue::DoubleArray(vec![x, y])
    }

    fn square(x0: f64, y0: f64, side: f64) -> ExtValue {
        ExtValue::DoubleArray(vec![
            x0,
            y0,
            x0 + side,
            y0,
            x0 + side,
            y0 + side,
            x0,
            y0 + side,
        ])
    }

    #[test]
    fn summarize_unions_mbrs() {
        let j = SpatialFudj::new();
        let mut s = Rect::default();
        j.summarize(&point(1.0, 2.0), &mut s).unwrap();
        j.summarize(&square(5.0, 5.0, 2.0), &mut s).unwrap();
        assert_eq!(s, Rect::new(1.0, 2.0, 7.0, 7.0));
    }

    #[test]
    fn divide_intersects_and_grids() {
        let j = SpatialFudj::new();
        let l = Rect::new(0.0, 0.0, 10.0, 10.0);
        let r = Rect::new(5.0, 5.0, 20.0, 20.0);
        let plan = j.divide(&l, &r, &[ExtValue::Long(4)]).unwrap();
        assert_eq!(plan.grid.extent(), Rect::new(5.0, 5.0, 10.0, 10.0));
        assert_eq!(plan.grid.side(), 4);
        assert!(j.divide(&l, &r, &[ExtValue::Long(0)]).is_err());
        assert!(j.divide(&l, &r, &[ExtValue::Long(1 << 20)]).is_err());
    }

    #[test]
    fn assign_prunes_outside_joint_region() {
        let j = SpatialFudj::new();
        let plan = SpatialPPlan {
            grid: UniformGrid::new(Rect::new(0.0, 0.0, 8.0, 8.0), 4),
        };
        let mut out = Vec::new();
        j.assign(&point(100.0, 100.0), &plan, &mut out).unwrap();
        assert!(out.is_empty(), "outside record pruned");
        j.assign(&point(1.0, 1.0), &plan, &mut out).unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn verify_point_in_polygon() {
        let j = SpatialFudj::new();
        let plan = SpatialPPlan {
            grid: UniformGrid::new(Rect::new(0.0, 0.0, 1.0, 1.0), 1),
        };
        assert!(j
            .verify(&square(0.0, 0.0, 4.0), &point(2.0, 2.0), &plan)
            .unwrap());
        assert!(!j
            .verify(&square(0.0, 0.0, 4.0), &point(9.0, 9.0), &plan)
            .unwrap());
        assert!(j.verify(&point(1.0, 1.0), &point(1.0, 1.0), &plan).unwrap());
        assert!(j
            .verify(&square(0.0, 0.0, 4.0), &square(3.0, 3.0, 4.0), &plan)
            .unwrap());
        assert!(j
            .verify(&point(0.0, 0.0), &ExtValue::Long(1), &plan)
            .is_err());
    }

    /// End-to-end PBSM through the standalone runner: parks × fire points,
    /// against a brute-force oracle — all three dedup flavors agree.
    #[test]
    fn standalone_all_dedup_flavors_agree_with_oracle() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(99);
        let parks: Vec<Polygon> = (0..30)
            .map(|_| {
                let x = rng.gen_range(0.0..80.0);
                let y = rng.gen_range(0.0..80.0);
                let w = rng.gen_range(1.0..15.0);
                let h = rng.gen_range(1.0..15.0);
                Polygon::from_rect(&Rect::new(x, y, x + w, y + h))
            })
            .collect();
        let fires: Vec<Point> = (0..60)
            .map(|_| Point::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)))
            .collect();

        let left: Vec<ExtValue> = parks
            .iter()
            .map(|p| to_external(&Value::polygon(p.clone())).unwrap())
            .collect();
        let right: Vec<ExtValue> = fires
            .iter()
            .map(|p| to_external(&Value::Point(*p)).unwrap())
            .collect();

        let mut oracle = Vec::new();
        for (i, park) in parks.iter().enumerate() {
            for (j, fire) in fires.iter().enumerate() {
                if park.contains_point(fire) {
                    oracle.push((i, j));
                }
            }
        }
        assert!(!oracle.is_empty(), "fixture produces matches");

        let params = [ExtValue::Long(6)];
        for dedup in [
            SpatialDedup::FrameworkAvoidance,
            SpatialDedup::ReferencePoint,
            SpatialDedup::Elimination,
        ] {
            let alg = ProxyJoin::new(SpatialFudj::with_dedup(dedup));
            let got = run_standalone(&alg, &left, &right, &params).unwrap();
            assert_eq!(got, oracle, "dedup flavor {dedup:?}");
        }
    }

    /// Polygon × polygon self-join shape: overlapping squares multi-assign
    /// across tiles, and avoidance keeps the result exact.
    #[test]
    fn polygon_polygon_join_no_duplicates() {
        let squares = vec![
            square(0.0, 0.0, 10.0),
            square(5.0, 5.0, 10.0),
            square(20.0, 20.0, 3.0),
            square(8.0, 8.0, 4.0),
        ];
        let alg = ProxyJoin::new(SpatialFudj::new());
        let got = run_standalone(&alg, &squares, &squares, &[ExtValue::Long(8)]).unwrap();
        // Expected: every pair whose squares intersect (incl. self-pairs).
        let polys: Vec<Polygon> = squares
            .iter()
            .map(|e| {
                let c = e.as_double_array().unwrap();
                Polygon::new(c.chunks_exact(2).map(|p| Point::new(p[0], p[1])).collect())
            })
            .collect();
        let mut oracle = Vec::new();
        for (i, a) in polys.iter().enumerate() {
            for (j, b) in polys.iter().enumerate() {
                if a.intersects(b) {
                    oracle.push((i, j));
                }
            }
        }
        assert_eq!(got, oracle);
    }

    #[test]
    fn disjoint_datasets_produce_empty_result_fast() {
        // Joint MBR is empty; every record is pruned at assign.
        let left = vec![square(0.0, 0.0, 1.0), square(2.0, 2.0, 1.0)];
        let right = vec![point(100.0, 100.0), point(200.0, 200.0)];
        let alg = ProxyJoin::new(SpatialFudj::new());
        let (pairs, stats) = fudj_core::standalone::run_standalone_with_stats(
            &alg,
            &left,
            &right,
            &[ExtValue::Long(16)],
        )
        .unwrap();
        assert!(pairs.is_empty());
        assert_eq!(stats.verified_pairs, 0, "nothing reaches verify");
    }
}
