//! Overlapping-Interval FUDJ — OIPJoin in the FUDJ programming model (§V-C).
//!
//! ```text
//! SUMMARIZE(interval, S): S.minStart ← min(...); S.maxEnd ← max(...)
//! DIVIDE(S1, S2, n):      unify timelines, split into n granules → PPlan
//! ASSIGN(interval):       single bucket (startGranule << 16) | endGranule
//! MATCH(b1, b2):          granule ranges overlap   ← theta, NOT equality!
//! VERIFY(i1, i2):         i1.start ≤ i2.end ∧ i1.end ≥ i2.start
//! ```
//!
//! Because `match` is a theta predicate, this join is a *multi-join*: the
//! engine cannot hash-partition buckets and falls back to NLJ bucket
//! matching — the scalability ceiling the paper observes in §VII-C.
//! Assignment is single-assign, so no duplicate handling is needed.

use fudj_core::{BucketId, DedupMode, FlexibleJoin};
use fudj_temporal::granule::{buckets_overlap, MAX_GRANULES};
use fudj_temporal::{GranuleTimeline, Interval, IntervalSummary};
use fudj_types::{ExtValue, FudjError, Result};

/// Default granule count when the query supplies no parameter.
pub const DEFAULT_GRANULES: u32 = 1000;

/// The OIP interval join as a FUDJ library class
/// (`"interval.OverlappingIntervalJoin"` in [`crate::standard_library`]).
#[derive(Clone, Debug, Default)]
pub struct IntervalFudj;

impl IntervalFudj {
    /// New interval join.
    pub fn new() -> Self {
        IntervalFudj
    }
}

impl FlexibleJoin for IntervalFudj {
    type Summary = IntervalSummary;
    type PPlan = GranuleTimeline;

    fn name(&self) -> &str {
        "interval_join"
    }

    fn summarize(&self, key: &ExtValue, summary: &mut IntervalSummary) -> Result<()> {
        summary.observe(&key.as_interval()?);
        Ok(())
    }

    fn merge_summaries(&self, a: IntervalSummary, b: IntervalSummary) -> IntervalSummary {
        a.merge(&b)
    }

    fn divide(
        &self,
        left: &IntervalSummary,
        right: &IntervalSummary,
        params: &[ExtValue],
    ) -> Result<GranuleTimeline> {
        let n = match params.first() {
            Some(p) => {
                let n = p.as_long()?;
                if n <= 0 || n > MAX_GRANULES as i64 {
                    return Err(FudjError::JoinLibrary(format!(
                        "granule count must be in 1..={MAX_GRANULES}, got {n}"
                    )));
                }
                n as u32
            }
            None => DEFAULT_GRANULES,
        };
        let merged = left.merge(right);
        // An empty side means an empty result; a degenerate single-point
        // timeline keeps every downstream call well-defined.
        let range = merged.range().unwrap_or_else(|| Interval::new(0, 0));
        Ok(GranuleTimeline::new(range, n))
    }

    fn assign(
        &self,
        key: &ExtValue,
        pplan: &GranuleTimeline,
        out: &mut Vec<BucketId>,
    ) -> Result<()> {
        // Single-assign: the one bucket packing (startGranule, endGranule).
        out.push(pplan.assign(&key.as_interval()?));
        Ok(())
    }

    fn matches(&self, b1: BucketId, b2: BucketId) -> bool {
        buckets_overlap(b1, b2)
    }

    fn uses_default_match(&self) -> bool {
        false // theta match ⇒ multi-join ⇒ NLJ bucket matching
    }

    fn verify(&self, k1: &ExtValue, k2: &ExtValue, _pplan: &GranuleTimeline) -> Result<bool> {
        Ok(k1.as_interval()?.overlaps(&k2.as_interval()?))
    }

    fn dedup_mode(&self) -> DedupMode {
        DedupMode::None // single-assign cannot duplicate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fudj_core::standalone::{run_standalone, run_standalone_with_stats};
    use fudj_core::ProxyJoin;

    fn iv(s: i64, e: i64) -> ExtValue {
        ExtValue::LongArray(vec![s, e])
    }

    fn oracle(l: &[(i64, i64)], r: &[(i64, i64)]) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (i, a) in l.iter().enumerate() {
            for (j, b) in r.iter().enumerate() {
                if a.0 <= b.1 && a.1 >= b.0 {
                    out.push((i, j));
                }
            }
        }
        out
    }

    #[test]
    fn theta_match_declared() {
        let j = IntervalFudj::new();
        assert!(!j.uses_default_match());
        assert_eq!(j.dedup_mode(), DedupMode::None);
    }

    #[test]
    fn divide_unifies_timelines() {
        let j = IntervalFudj::new();
        let mut l = IntervalSummary::default();
        l.observe(&Interval::new(100, 500));
        let mut r = IntervalSummary::default();
        r.observe(&Interval::new(0, 300));
        let tl = j.divide(&l, &r, &[ExtValue::Long(10)]).unwrap();
        assert_eq!(tl.range(), Interval::new(0, 500));
        assert_eq!(tl.granules(), 10);
        assert!(j.divide(&l, &r, &[ExtValue::Long(0)]).is_err());
        assert!(j.divide(&l, &r, &[ExtValue::Long(1 << 20)]).is_err());
    }

    #[test]
    fn single_assign() {
        let j = IntervalFudj::new();
        let tl = GranuleTimeline::new(Interval::new(0, 1000), 10);
        let mut out = Vec::new();
        j.assign(&iv(150, 420), &tl, &mut out).unwrap();
        assert_eq!(out.len(), 1, "single-assign");
    }

    #[test]
    fn standalone_matches_oracle() {
        let taxi_a = [(0, 50), (100, 180), (300, 320), (900, 1000), (240, 600)];
        let taxi_b = [(40, 110), (175, 250), (590, 905), (10, 20)];
        let l: Vec<ExtValue> = taxi_a.iter().map(|&(s, e)| iv(s, e)).collect();
        let r: Vec<ExtValue> = taxi_b.iter().map(|&(s, e)| iv(s, e)).collect();
        for n in [1i64, 4, 16, 100, 1000] {
            let alg = ProxyJoin::new(IntervalFudj::new());
            let got = run_standalone(&alg, &l, &r, &[ExtValue::Long(n)]).unwrap();
            assert_eq!(got, oracle(&taxi_a, &taxi_b), "n={n}");
        }
    }

    #[test]
    fn randomized_against_oracle() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(5);
        let mut gen_side = |n: usize| -> Vec<(i64, i64)> {
            (0..n)
                .map(|_| {
                    let s = rng.gen_range(0..10_000);
                    (s, s + rng.gen_range(0i64..500))
                })
                .collect()
        };
        let a = gen_side(80);
        let b = gen_side(60);
        let l: Vec<ExtValue> = a.iter().map(|&(s, e)| iv(s, e)).collect();
        let r: Vec<ExtValue> = b.iter().map(|&(s, e)| iv(s, e)).collect();
        let alg = ProxyJoin::new(IntervalFudj::new());
        let got = run_standalone(&alg, &l, &r, &[ExtValue::Long(64)]).unwrap();
        assert_eq!(got, oracle(&a, &b));
    }

    #[test]
    fn no_dedup_pass_runs() {
        let alg = ProxyJoin::new(IntervalFudj::new());
        let l = vec![iv(0, 1000)];
        let r = vec![iv(0, 1000)];
        let (pairs, stats) =
            run_standalone_with_stats(&alg, &l, &r, &[ExtValue::Long(100)]).unwrap();
        assert_eq!(pairs, vec![(0, 0)]);
        assert_eq!(stats.deduped_pairs, 0);
        assert_eq!(stats.left_assignments, 1);
    }

    #[test]
    fn empty_side_yields_empty_result() {
        let alg = ProxyJoin::new(IntervalFudj::new());
        assert!(run_standalone(&alg, &[], &[iv(0, 5)], &[])
            .unwrap()
            .is_empty());
    }
}
