//! Join libraries for the FUDJ framework, plus the hand-built baselines.
//!
//! The `fudj_*` modules are the paper's §V example implementations, written
//! against the [`fudj_core::FlexibleJoin`] programming model exactly as the
//! paper's pseudocode describes them:
//!
//! * [`spatial::SpatialFudj`] — PBSM (Patel & DeWitt): MBR summaries, a
//!   uniform grid `PPlan`, multi-assign to overlapping tiles, default
//!   equality match, geometric `verify`. Three duplicate-handling flavors
//!   (framework avoidance, reference-point custom, elimination) for the
//!   Fig. 12 experiments.
//! * [`interval::IntervalFudj`] — OIPJoin (Dignös et al.): min-start/max-end
//!   summary, granule timeline `PPlan`, single-assign packed buckets, a
//!   *theta* `match` (granule-range overlap) that forces NLJ bucket
//!   matching — the scalability limit §VII-C observes.
//! * [`textsim::TextSimilarityFudj`] — set-similarity with prefix filtering
//!   (Vernica et al.): token-count summary, token-rank `PPlan`, multi-assign
//!   to prefix buckets, default match, Jaccard `verify`.
//! * [`band::BandJoin`] — an *extra* join type not in the paper, included to
//!   show the model generalizes: a 1-D band join (`|a − b| ≤ ε`) with theta
//!   matching of adjacent cells.
//! * [`autotune`] — the paper's §VIII future work implemented: spatial and
//!   interval variants that derive their bucket counts from statistics
//!   gathered during SUMMARIZE instead of a query parameter.
//! * [`evil`] — adversarial fixtures for the guardrail layer: the
//!   [`evil::EvilJoin`] wrapper misbehaves in one configurable way
//!   (panic, hang, out-of-range buckets, non-determinism, replication
//!   blow-up) so tests can prove [`fudj_core::GuardedJoin`] contains it.
//!
//! The [`builtin`] module contains the baselines: the same three algorithms
//! hand-integrated against the engine's native [`fudj_core::EngineJoin`]
//! interface (no external-type translation, concrete state types, local
//! optimizations) — the "built-in operator" implementations whose LOC and
//! runtime the paper compares FUDJ against, including the §VII-F advanced
//! spatial operator with a plane-sweep local join.
//!
//! [`library::standard_library`] bundles every FUDJ class into the
//! `"flexiblejoins"` library used by `CREATE JOIN` statements.

pub mod autotune;
pub mod band;
pub mod builtin;
pub mod evil;
pub mod interval;
pub mod library;
pub mod spatial;
pub mod textsim;

pub use autotune::{IntervalFudjAuto, SpatialFudjAuto};
pub use band::BandJoin;
pub use evil::{evil_library, poisoned, EqualityFudj, EvilJoin, EvilMode, EvilPhase};
pub use interval::IntervalFudj;
pub use library::standard_library;
pub use spatial::{SpatialDedup, SpatialFudj};
pub use textsim::{TextDedup, TextSimilarityFudj};
