//! `fudj` — the interactive SQL shell.
//!
//! ```text
//! cargo run -p fudj-cli --release -- --workers 4 --sample 2000
//! ```
//!
//! Flags: `--workers N` (cluster size, default 4), `--sample [N]` (preload
//! the synthetic datasets and register the paper's joins).

use fudj_cli::{Repl, ReplCommand};
use std::io::{BufRead, Write};

fn main() {
    let mut workers = 4usize;
    let mut sample: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workers" | "-w" => {
                workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--workers needs a number"));
            }
            "--sample" => {
                sample = Some(args.next().and_then(|v| v.parse().ok()).unwrap_or(2_000));
            }
            "--help" | "-h" => {
                println!("{}", fudj_cli::repl::HELP);
                return;
            }
            other => die(&format!("unknown flag {other}; try --help")),
        }
    }

    let mut repl = Repl::new(workers);
    println!("FUDJ shell — {workers}-worker cluster. \\help for help, \\q to quit.");
    if let Some(n) = sample {
        match repl.load_sample(n) {
            Ok(()) => println!("loaded sample datasets (~{n} records each); try \\d"),
            Err(e) => eprintln!("sample load failed: {e}"),
        }
    }

    let stdin = std::io::stdin();
    let mut prompt_continuation = false;
    loop {
        print!(
            "{}",
            if prompt_continuation {
                "   ...> "
            } else {
                "fudj> "
            }
        );
        let _ = std::io::stdout().flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        match repl.feed(line.trim_end_matches(['\n', '\r'])) {
            ReplCommand::Incomplete => prompt_continuation = true,
            ReplCommand::Statement(sql) => {
                prompt_continuation = false;
                print!("{}", repl.run_statement(&sql));
            }
            ReplCommand::Meta(cmd, args) => {
                if matches!(cmd.as_str(), "q" | "quit" | "exit") {
                    break;
                }
                print!("{}", repl.run_meta(&cmd, &args));
            }
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2)
}
