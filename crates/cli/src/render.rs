//! psql-style table rendering for result batches.

use fudj_exec::MetricsSnapshot;
use fudj_types::{Batch, Value};

/// Maximum rendered width of one cell before truncation.
const MAX_CELL: usize = 48;

fn cell(v: &Value) -> String {
    let mut s = match v {
        // Strings render unquoted in tables.
        Value::Str(s) => s.to_string(),
        other => other.to_string(),
    };
    if s.chars().count() > MAX_CELL {
        s = s.chars().take(MAX_CELL - 1).collect::<String>() + "…";
    }
    s
}

/// Render a batch as an aligned text table with a header and row count.
pub fn render_batch(batch: &Batch) -> String {
    let headers: Vec<String> = batch
        .schema()
        .fields()
        .iter()
        .map(|f| f.name.clone())
        .collect();
    let rows: Vec<Vec<String>> = batch
        .rows()
        .iter()
        .map(|r| r.values().iter().map(cell).collect())
        .collect();

    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in &rows {
        for (i, c) in row.iter().enumerate() {
            widths[i] = widths[i].max(c.chars().count());
        }
    }

    let mut out = String::new();
    let line = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect::<Vec<_>>()
            .join(" | ")
    };
    out.push_str(&line(&headers, &widths));
    out.push('\n');
    out.push_str(
        &widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("-+-"),
    );
    out.push('\n');
    for row in &rows {
        out.push_str(&line(row, &widths));
        out.push('\n');
    }
    out.push_str(&format!(
        "({} row{})\n",
        rows.len(),
        if rows.len() == 1 { "" } else { "s" }
    ));
    out
}

/// Render the execution mode one query ran under (row vs columnar).
pub fn render_exec_mode(snapshot: &MetricsSnapshot) -> String {
    format!("Exec mode: {}\n", snapshot.exec_mode)
}

/// Render the fault-injection/recovery counters of one query, or an empty
/// string when the query saw no faults (so quiet runs print nothing new).
pub fn render_fault_stats(snapshot: &MetricsSnapshot) -> String {
    let f = &snapshot.fault;
    if !f.any() {
        return String::new();
    }
    format!(
        "Faults: {} injected ({} panics, {} transients, {} worker losses, \
         {} stragglers, {} drops, {} duplicates); \
         recovered via {} task retries, {} re-executions, {} speculations, \
         {} retransmits, {} dups discarded; {} escalations; \
         simulated delay {} ms\n",
        f.total_injected(),
        f.injected_panics,
        f.injected_transients,
        f.injected_worker_losses,
        f.injected_stragglers,
        f.dropped_deliveries,
        f.duplicated_deliveries,
        f.task_retries,
        f.reexecutions,
        f.speculations,
        f.delivery_retries,
        f.duplicates_discarded,
        f.retry_exhaustions,
        f.sim_clock_ms,
    )
}

/// Render the checkpoint/recovery counters of one query, or an empty
/// string when the recovery layer was idle (so ordinary runs print
/// nothing new).
pub fn render_recovery_stats(snapshot: &MetricsSnapshot) -> String {
    let r = &snapshot.recovery;
    if !r.any() {
        return String::new();
    }
    let mut out = format!(
        "Recovery: {} checkpoints written ({} bytes, {} evicted), {} read; \
         {} deaths survived ({} partitions restored, {} recomputed, \
         {} full-stage replays); {} workers quarantined\n",
        r.checkpoints_written,
        r.checkpoint_bytes_written,
        r.checkpoints_evicted,
        r.checkpoints_read,
        r.deaths_survived,
        r.partitions_restored,
        r.partitions_recomputed,
        r.full_stage_replays,
        r.workers_quarantined,
    );
    if r.stages_resumed + r.resume_full_replays > 0 {
        out.push_str(&format!(
            "  crash resume: {} stage{} resumed ({} rows restored), \
             {} full replay{}\n",
            r.stages_resumed,
            if r.stages_resumed == 1 { "" } else { "s" },
            r.resume_rows_restored,
            r.resume_full_replays,
            if r.resume_full_replays == 1 { "" } else { "s" },
        ));
    }
    out
}

/// Render the WAL/snapshot durability counters of one query, or an empty
/// string when no durable store is attached (so non-durable sessions
/// print nothing new).
pub fn render_durability_stats(snapshot: &MetricsSnapshot) -> String {
    let d = &snapshot.durability;
    if !d.any() {
        return String::new();
    }
    let mut out = format!(
        "Durability: {} WAL records appended ({} bytes, {} fsyncs), \
         {} snapshot{} ({} bytes); {} records / {} rows replayed\n",
        d.wal_records_appended,
        d.wal_bytes_appended,
        d.wal_fsyncs,
        d.snapshots_written,
        if d.snapshots_written == 1 { "" } else { "s" },
        d.snapshot_bytes_written,
        d.wal_records_replayed,
        d.rows_replayed,
    );
    let damage = d.torn_tails_truncated
        + d.corrupt_records_quarantined
        + d.corrupt_snapshots_quarantined
        + d.replay_quarantined;
    if damage > 0 || d.faults_injected > 0 {
        out.push_str(&format!(
            "  storage faults: {} injected ({} fsyncs dropped); {} torn tails \
             truncated, {} corrupt records + {} corrupt snapshots quarantined, \
             {} inconsistent replays skipped\n",
            d.faults_injected,
            d.fsyncs_dropped,
            d.torn_tails_truncated,
            d.corrupt_records_quarantined,
            d.corrupt_snapshots_quarantined,
            d.replay_quarantined,
        ));
    }
    out
}

/// Render the hybrid-hash spill counters of one query, or an empty string
/// when no join spilled (so in-memory runs print nothing new).
pub fn render_spill_stats(snapshot: &MetricsSnapshot) -> String {
    if snapshot.spilled_rows == 0 && snapshot.spill_passes == 0 {
        return String::new();
    }
    format!(
        "Spill: {} rows / {} bytes to disk; {} resident + {} spilled \
         sub-partitions over {} pass{}; recursion depth {}, {} BNL \
         fallback{}; peak resident {} rows\n",
        snapshot.spilled_rows,
        snapshot.spilled_bytes,
        snapshot.spill_resident_partitions,
        snapshot.spill_spilled_partitions,
        snapshot.spill_passes,
        if snapshot.spill_passes == 1 { "" } else { "es" },
        snapshot.spill_recursion_depth,
        snapshot.spill_bnl_fallbacks,
        if snapshot.spill_bnl_fallbacks == 1 {
            ""
        } else {
            "s"
        },
        snapshot.spill_peak_resident_rows,
    )
}

/// Render the UDF guardrail counters of one query, or an empty string when
/// every user callback behaved (so well-behaved runs print nothing new).
pub fn render_udf_stats(snapshot: &MetricsSnapshot) -> String {
    let u = &snapshot.udf;
    if !u.any() {
        return String::new();
    }
    let mut phases = Vec::new();
    for (name, n) in [
        ("summarize", u.summarize_violations),
        ("merge", u.merge_violations),
        ("divide", u.divide_violations),
        ("assign", u.assign_violations),
        ("match", u.match_violations),
        ("verify", u.verify_violations),
        ("dedup", u.dedup_violations),
    ] {
        if n > 0 {
            phases.push(format!("{n} in {name}"));
        }
    }
    format!(
        "UDF guard: {} violation{} ({}); {} panics caught, {} budget overruns, \
         {} contract breaches; {} rows quarantined, {} equality fallbacks\n",
        u.total_violations(),
        if u.total_violations() == 1 { "" } else { "s" },
        phases.join(", "),
        u.caught_panics,
        u.budget_overruns,
        u.contract_breaches,
        u.quarantined_rows,
        u.fallback_activations,
    )
}

/// Render the serving-tier counters of one response, or an empty string
/// when the statement did not pass through a serving tier (so plain REPL
/// queries print nothing new).
pub fn render_serving_stats(snapshot: &MetricsSnapshot) -> String {
    let s = &snapshot.serving;
    if !s.any() {
        return String::new();
    }
    format!(
        "Serving: plans {} hit / {} miss / {} evicted; results {} hit / \
         {} miss / {} evicted, {} invalidated by ingest; {} admitted, \
         {} rejected; queue depth high-water {}\n",
        s.plan_cache_hits,
        s.plan_cache_misses,
        s.plan_cache_evictions,
        s.result_cache_hits,
        s.result_cache_misses,
        s.result_cache_evictions,
        s.result_cache_invalidations,
        s.admissions,
        s.rejections,
        s.queue_depth_high_water,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use fudj_types::{DataType, Field, Row, Schema};

    fn batch() -> Batch {
        let schema = Schema::shared(vec![
            Field::new("id", DataType::Int64),
            Field::new("tags", DataType::String),
        ]);
        Batch::new(
            schema,
            vec![
                Row::new(vec![Value::Int64(1), Value::str("river, camping")]),
                Row::new(vec![Value::Int64(22), Value::str("x")]),
            ],
        )
    }

    #[test]
    fn renders_aligned_table() {
        let text = render_batch(&batch());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "id | tags          ");
        assert!(lines[1].starts_with("---+"));
        assert_eq!(lines[2], "1  | river, camping");
        assert_eq!(lines[4], "(2 rows)");
    }

    #[test]
    fn truncates_long_cells() {
        let schema = Schema::shared(vec![Field::new("t", DataType::String)]);
        let long = "x".repeat(200);
        let b = Batch::new(schema, vec![Row::new(vec![Value::str(&long)])]);
        let text = render_batch(&b);
        assert!(text.lines().nth(2).unwrap().chars().count() <= MAX_CELL);
        assert!(text.contains('…'));
    }

    #[test]
    fn empty_batch_renders_header_only() {
        let schema = Schema::shared(vec![Field::new("c", DataType::Int64)]);
        let text = render_batch(&Batch::empty(schema));
        assert!(text.contains("(0 rows)"));
    }

    #[test]
    fn exec_mode_renders_for_both_engines() {
        let mut snap = MetricsSnapshot {
            exec_mode: fudj_exec::ExecMode::Columnar,
            ..Default::default()
        };
        assert_eq!(render_exec_mode(&snap), "Exec mode: columnar\n");
        snap.exec_mode = fudj_exec::ExecMode::Row;
        assert_eq!(render_exec_mode(&snap), "Exec mode: row\n");
    }

    #[test]
    fn fault_stats_render_only_when_faults_happened() {
        let mut snap = MetricsSnapshot::default();
        assert_eq!(render_fault_stats(&snap), "");
        snap.fault.injected_transients = 2;
        snap.fault.task_retries = 2;
        let text = render_fault_stats(&snap);
        assert!(text.contains("2 injected"), "{text}");
        assert!(text.contains("2 transients"), "{text}");
        assert!(text.contains("2 task retries"), "{text}");
    }

    #[test]
    fn spill_stats_render_only_when_a_join_spilled() {
        let mut snap = MetricsSnapshot::default();
        assert_eq!(render_spill_stats(&snap), "");
        snap.spilled_rows = 120;
        snap.spilled_bytes = 4_800;
        snap.spill_resident_partitions = 12;
        snap.spill_spilled_partitions = 4;
        snap.spill_passes = 2;
        snap.spill_recursion_depth = 1;
        snap.spill_bnl_fallbacks = 1;
        snap.spill_peak_resident_rows = 10;
        let text = render_spill_stats(&snap);
        assert!(text.contains("120 rows / 4800 bytes"), "{text}");
        assert!(text.contains("12 resident + 4 spilled"), "{text}");
        assert!(text.contains("2 passes"), "{text}");
        assert!(text.contains("recursion depth 1"), "{text}");
        assert!(text.contains("1 BNL fallback;"), "{text}");
        assert!(text.contains("peak resident 10 rows"), "{text}");
    }

    #[test]
    fn durability_stats_render_only_when_a_store_is_attached() {
        let mut snap = MetricsSnapshot::default();
        assert_eq!(render_durability_stats(&snap), "");
        snap.durability.wal_records_appended = 9;
        snap.durability.wal_bytes_appended = 512;
        snap.durability.wal_fsyncs = 9;
        snap.durability.snapshots_written = 1;
        let text = render_durability_stats(&snap);
        assert!(text.contains("9 WAL records appended"), "{text}");
        assert!(text.contains("1 snapshot ("), "{text}");
        assert!(!text.contains("storage faults"), "{text}");

        snap.durability.faults_injected = 3;
        snap.durability.torn_tails_truncated = 1;
        let text = render_durability_stats(&snap);
        assert!(text.contains("3 injected"), "{text}");
        assert!(text.contains("1 torn tails truncated"), "{text}");
    }

    #[test]
    fn udf_stats_render_only_when_violations_happened() {
        let mut snap = MetricsSnapshot::default();
        assert_eq!(render_udf_stats(&snap), "");
        snap.udf.assign_violations = 3;
        snap.udf.caught_panics = 1;
        snap.udf.budget_overruns = 2;
        snap.udf.quarantined_rows = 3;
        let text = render_udf_stats(&snap);
        assert!(text.contains("3 violations"), "{text}");
        assert!(text.contains("3 in assign"), "{text}");
        assert!(text.contains("1 panics caught"), "{text}");
        assert!(text.contains("3 rows quarantined"), "{text}");
        assert!(!text.contains("in verify"), "{text}");
    }

    #[test]
    fn serving_stats_render_only_when_a_tier_was_involved() {
        let mut snap = MetricsSnapshot::default();
        assert_eq!(render_serving_stats(&snap), "");
        snap.serving.admissions = 5;
        snap.serving.plan_cache_hits = 3;
        snap.serving.plan_cache_misses = 2;
        snap.serving.result_cache_hits = 2;
        snap.serving.result_cache_misses = 3;
        snap.serving.result_cache_invalidations = 1;
        snap.serving.queue_depth_high_water = 4;
        let text = render_serving_stats(&snap);
        assert!(text.contains("plans 3 hit / 2 miss"), "{text}");
        assert!(text.contains("results 2 hit / 3 miss"), "{text}");
        assert!(text.contains("1 invalidated by ingest"), "{text}");
        assert!(text.contains("5 admitted, 0 rejected"), "{text}");
        assert!(text.contains("queue depth high-water 4"), "{text}");
    }
}
