//! psql-style table rendering for result batches.

use fudj_types::{Batch, Value};

/// Maximum rendered width of one cell before truncation.
const MAX_CELL: usize = 48;

fn cell(v: &Value) -> String {
    let mut s = match v {
        // Strings render unquoted in tables.
        Value::Str(s) => s.to_string(),
        other => other.to_string(),
    };
    if s.chars().count() > MAX_CELL {
        s = s.chars().take(MAX_CELL - 1).collect::<String>() + "…";
    }
    s
}

/// Render a batch as an aligned text table with a header and row count.
pub fn render_batch(batch: &Batch) -> String {
    let headers: Vec<String> = batch
        .schema()
        .fields()
        .iter()
        .map(|f| f.name.clone())
        .collect();
    let rows: Vec<Vec<String>> = batch
        .rows()
        .iter()
        .map(|r| r.values().iter().map(cell).collect())
        .collect();

    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in &rows {
        for (i, c) in row.iter().enumerate() {
            widths[i] = widths[i].max(c.chars().count());
        }
    }

    let mut out = String::new();
    let line = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect::<Vec<_>>()
            .join(" | ")
    };
    out.push_str(&line(&headers, &widths));
    out.push('\n');
    out.push_str(
        &widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("-+-"),
    );
    out.push('\n');
    for row in &rows {
        out.push_str(&line(row, &widths));
        out.push('\n');
    }
    out.push_str(&format!(
        "({} row{})\n",
        rows.len(),
        if rows.len() == 1 { "" } else { "s" }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fudj_types::{DataType, Field, Row, Schema};

    fn batch() -> Batch {
        let schema = Schema::shared(vec![
            Field::new("id", DataType::Int64),
            Field::new("tags", DataType::String),
        ]);
        Batch::new(
            schema,
            vec![
                Row::new(vec![Value::Int64(1), Value::str("river, camping")]),
                Row::new(vec![Value::Int64(22), Value::str("x")]),
            ],
        )
    }

    #[test]
    fn renders_aligned_table() {
        let text = render_batch(&batch());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "id | tags          ");
        assert!(lines[1].starts_with("---+"));
        assert_eq!(lines[2], "1  | river, camping");
        assert_eq!(lines[4], "(2 rows)");
    }

    #[test]
    fn truncates_long_cells() {
        let schema = Schema::shared(vec![Field::new("t", DataType::String)]);
        let long = "x".repeat(200);
        let b = Batch::new(schema, vec![Row::new(vec![Value::str(&long)])]);
        let text = render_batch(&b);
        assert!(text.lines().nth(2).unwrap().chars().count() <= MAX_CELL);
        assert!(text.contains('…'));
    }

    #[test]
    fn empty_batch_renders_header_only() {
        let schema = Schema::shared(vec![Field::new("c", DataType::Int64)]);
        let text = render_batch(&Batch::empty(schema));
        assert!(text.contains("(0 rows)"));
    }
}
