//! The REPL engine: statement accumulation, meta commands, execution.

use crate::render::{
    render_batch, render_durability_stats, render_exec_mode, render_fault_stats,
    render_recovery_stats, render_serving_stats, render_spill_stats, render_udf_stats,
};
use fudj_datagen::GeneratorConfig;
use fudj_exec::{FaultConfig, GuardConfig, GuardMode, UdfPolicy};
use fudj_joins::standard_library;
use fudj_sched::JobHandle;
use fudj_sql::{QueryOutput, Session};
use std::collections::HashMap;
use std::fmt::Write as _;

/// What one line of input amounts to.
#[derive(Debug, PartialEq, Eq)]
pub enum ReplCommand {
    /// Keep buffering (statement not finished with `;` yet).
    Incomplete,
    /// A complete SQL statement to execute.
    Statement(String),
    /// Meta command (`\d`, `\joins`, `\timing`, `\help`, `\q`, `\sample N`).
    Meta(String, Vec<String>),
}

/// The interactive session state.
pub struct Repl {
    session: Session,
    buffer: String,
    timing: bool,
    show_metrics: bool,
    /// Result handles of `\submit`-ed jobs, consumed by `\await`.
    jobs: HashMap<u64, JobHandle>,
}

impl Repl {
    /// Fresh REPL over a cluster of `workers`, standard library installed.
    pub fn new(workers: usize) -> Self {
        let session = Session::new(workers);
        session.install_library(standard_library());
        Repl {
            session,
            buffer: String::new(),
            timing: true,
            show_metrics: false,
            jobs: HashMap::new(),
        }
    }

    /// The underlying session (tests and embedding).
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Classify one input line, buffering incomplete statements.
    pub fn feed(&mut self, line: &str) -> ReplCommand {
        let trimmed = line.trim();
        if self.buffer.is_empty() && trimmed.starts_with('\\') {
            let mut parts = trimmed[1..].split_whitespace();
            let cmd = parts.next().unwrap_or("").to_string();
            return ReplCommand::Meta(cmd, parts.map(str::to_owned).collect());
        }
        if !self.buffer.is_empty() {
            self.buffer.push('\n');
        }
        self.buffer.push_str(line);
        if self.buffer.trim_end().ends_with(';') {
            let stmt = std::mem::take(&mut self.buffer);
            ReplCommand::Statement(stmt)
        } else {
            ReplCommand::Incomplete
        }
    }

    /// Execute a complete statement and render the outcome.
    pub fn run_statement(&mut self, sql: &str) -> String {
        let start = std::time::Instant::now();
        match self.session.execute(sql) {
            Ok(QueryOutput::Rows(batch, metrics)) => {
                let mut out = render_batch(&batch);
                if self.timing {
                    let _ = writeln!(out, "Time: {:?}", start.elapsed());
                }
                if self.show_metrics {
                    out.push_str(&render_exec_mode(&metrics));
                    let _ = writeln!(
                        out,
                        "Network: {} bytes shuffled, {} broadcast, {} state; verify calls: {}",
                        metrics.bytes_shuffled,
                        metrics.bytes_broadcast,
                        metrics.state_bytes,
                        metrics.verify_calls,
                    );
                    for (w, stats) in metrics.per_worker.iter().enumerate() {
                        let _ = writeln!(
                            out,
                            "  worker {w}: {} rows received, {} bytes received, busy {:?}",
                            stats.rows, stats.bytes, stats.busy,
                        );
                    }
                    for skew in metrics.skew_report() {
                        let _ = writeln!(
                            out,
                            "  phase {}: max {:?} / mean {:?} across {} workers (skew {:.2})",
                            skew.phase,
                            skew.max,
                            skew.mean,
                            skew.workers,
                            skew.ratio(),
                        );
                    }
                    out.push_str(&render_spill_stats(&metrics));
                    out.push_str(&render_fault_stats(&metrics));
                    out.push_str(&render_recovery_stats(&metrics));
                    out.push_str(&render_durability_stats(&metrics));
                    out.push_str(&render_udf_stats(&metrics));
                    out.push_str(&render_serving_stats(&metrics));
                }
                out
            }
            Ok(QueryOutput::Ack(msg)) => {
                let mut out = format!("{msg}\n");
                // `SET wal_dir` journal-resumes queries the previous
                // incarnation left unfinished; deliver their results here
                // (exactly once — the drain empties the session's buffer).
                for r in self.session.take_resumed() {
                    match &r.result {
                        Ok((batch, _)) => {
                            let how = r
                                .resumed_from
                                .as_deref()
                                .map(|s| format!("from the {s} checkpoint"))
                                .unwrap_or_else(|| "via full replay".to_owned());
                            let _ = writeln!(out, "resumed unfinished query ({how}): {}", r.sql);
                            out.push_str(&render_batch(batch));
                        }
                        Err(e) => {
                            let _ = writeln!(out, "error: resume of {:?} failed: {e}", r.sql);
                        }
                    }
                }
                out
            }
            Ok(QueryOutput::Plan(plan)) => plan,
            Err(e) => format!("error: {e}\n"),
        }
    }

    /// Execute a meta command and render the outcome.
    pub fn run_meta(&mut self, cmd: &str, args: &[String]) -> String {
        match cmd {
            "d" | "datasets" => {
                let mut out = String::new();
                for name in self.session.catalog().names() {
                    // A dataset dropped between names() and get() is not
                    // worth a panic — just skip the stale name.
                    let Ok(ds) = self.session.catalog().get(&name) else {
                        continue;
                    };
                    let _ = writeln!(
                        out,
                        "{name}  ({} rows, {} partitions): {}",
                        ds.len(),
                        ds.partition_count(),
                        ds.schema()
                    );
                }
                if out.is_empty() {
                    out.push_str("no datasets; try \\sample 2000\n");
                }
                out
            }
            "joins" => {
                let mut out = String::new();
                for name in self.session.registry().join_names() {
                    let Some(def) = self.session.registry().get(&name) else {
                        continue;
                    };
                    let _ = writeln!(out, "{def:?}");
                }
                if out.is_empty() {
                    out.push_str("no joins registered; see \\help for a CREATE JOIN example\n");
                }
                out
            }
            "libraries" => {
                format!("{:?}\n", self.session.registry().library_names())
            }
            "timing" => {
                self.timing = !self.timing;
                format!("timing {}\n", if self.timing { "on" } else { "off" })
            }
            "metrics" => {
                self.show_metrics = !self.show_metrics;
                format!("metrics {}\n", if self.show_metrics { "on" } else { "off" })
            }
            "chaos" => match args.first().map(String::as_str) {
                None | Some("off") => {
                    let was_on = self.session.faults().is_some();
                    self.session.set_faults(None);
                    if was_on {
                        "chaos off\n".to_owned()
                    } else {
                        "chaos is off; \\chaos <seed> arms deterministic fault injection\n"
                            .to_owned()
                    }
                }
                Some("disk") => match args.get(1).map(String::as_str) {
                    Some("off") => {
                        self.session.set_disk_faults(None);
                        "disk chaos off; the next SET wal_dir uses the real filesystem \
                         (a dir opened under chaos reopens its simulated disk, quieted)\n"
                            .to_owned()
                    }
                    Some(arg) => match arg.parse::<u64>() {
                        Ok(seed) => {
                            self.session
                                .set_disk_faults(Some(fudj_storage::StorageFaultConfig::chaos(
                                    seed,
                                )));
                            format!(
                                "disk chaos on (seed {seed}): the next SET wal_dir opens its \
                                 store over a fault-injecting filesystem (torn writes, \
                                 dropped fsyncs, bit flips); \\metrics shows durability \
                                 counters\n"
                            )
                        }
                        Err(_) => {
                            format!("error: bad seed {arg:?}; usage: \\chaos disk <seed>|off\n")
                        }
                    },
                    None => "usage: \\chaos disk <seed>|off\n".to_owned(),
                },
                Some("crash") => match args.get(1).map(|a| a.parse::<u64>()) {
                    Some(Ok(seed)) => {
                        // Whole-process crash: the seed deterministically
                        // picks a crash site across the WAL, snapshot,
                        // checkpoint, and query-journal write paths.
                        let sites: Vec<&str> = fudj_storage::QUERY_CRASH_POINTS
                            .iter()
                            .chain(fudj_storage::CRASH_POINTS)
                            .copied()
                            .collect();
                        let site = sites[(seed as usize) % sites.len()];
                        let hit = 1 + seed % 3;
                        self.session
                            .set_disk_faults(Some(fudj_storage::StorageFaultConfig::crash_at(
                                seed, site, hit,
                            )));
                        format!(
                            "crash chaos on (seed {seed}): the next SET wal_dir opens its \
                             store over a filesystem that dies at {site} (hit {hit}); \
                             reopen the same wal_dir to journal-resume in-flight queries\n"
                        )
                    }
                    _ => "usage: \\chaos crash <seed>\n".to_owned(),
                },
                Some("deaths") => match args.get(1).map(|a| a.parse::<u64>()) {
                    Some(Ok(seed)) => {
                        self.session
                            .set_faults(Some(FaultConfig::chaos_with_deaths(seed)));
                        format!(
                            "chaos on with worker deaths (seed {seed}): stage boundaries \
                             may permanently kill a worker; SET checkpoint_stages = all \
                             enables partial recovery, \\workers shows membership\n"
                        )
                    }
                    _ => "usage: \\chaos deaths <seed>\n".to_owned(),
                },
                Some(arg) => match arg.parse::<u64>() {
                    Ok(seed) => {
                        self.session.set_faults(Some(FaultConfig::chaos(seed)));
                        format!(
                            "chaos on (seed {seed}): queries now run under deterministic \
                             fault injection; \\metrics shows recovery counters\n"
                        )
                    }
                    Err(_) => format!("error: bad seed {arg:?}; usage: \\chaos <seed>\n"),
                },
            },
            "workers" => match args.first().map(String::as_str) {
                None => {
                    let mut out = String::new();
                    for info in self.session.workers_status() {
                        let state = match info.state {
                            fudj_exec::WorkerState::Active => "active",
                            fudj_exec::WorkerState::Dead => "dead",
                            fudj_exec::WorkerState::Quarantined => "quarantined",
                            fudj_exec::WorkerState::Decommissioned => "decommissioned",
                        };
                        let _ = writeln!(
                            out,
                            "worker {}  {:<14} {} injected failure{}",
                            info.worker,
                            state,
                            info.failures,
                            if info.failures == 1 { "" } else { "s" },
                        );
                    }
                    out
                }
                Some("drop") => match args.get(1).and_then(|a| a.parse::<usize>().ok()) {
                    Some(w) => match self.session.decommission_worker(w) {
                        Ok(()) => format!(
                            "worker {w} decommissioned; its partitions rehash onto survivors\n"
                        ),
                        Err(e) => format!("error: {e}\n"),
                    },
                    None => "usage: \\workers drop <worker id>\n".to_owned(),
                },
                Some("add") => match self.session.add_worker() {
                    Ok(w) => format!("worker {w} rejoined the cluster\n"),
                    Err(e) => format!("error: {e}\n"),
                },
                Some(other) => {
                    format!("error: unknown subcommand {other:?}; usage: \\workers [drop <id>|add]\n")
                }
            },
            "guard" => match args.first().map(String::as_str) {
                None => format!("guard mode: {}\n", guard_mode_text(self.session.guard())),
                Some("off") => {
                    self.session.set_guard(GuardMode::Off);
                    "guard off: user-defined joins run unguarded\n".to_owned()
                }
                Some("per-join") | Some("perjoin") | Some("on") => {
                    self.session.set_guard(GuardMode::PerJoin);
                    "guard per-join: each join runs under its CREATE JOIN options\n".to_owned()
                }
                Some(arg) => match UdfPolicy::parse(arg) {
                    Some(policy) => {
                        self.session
                            .set_guard(GuardMode::Override(GuardConfig::with_policy(policy)));
                        format!("guard override: all joins now run under policy {policy}\n")
                    }
                    None => format!(
                        "error: bad guard mode {arg:?}; usage: \\guard \
                         [off|per-join|failfast|quarantine|fallback]\n"
                    ),
                },
            },
            "sample" => {
                let n: usize = args.first().and_then(|a| a.parse().ok()).unwrap_or(2_000);
                match self.load_sample(n) {
                    Ok(()) => format!("loaded sample datasets with ~{n} records each\n"),
                    Err(e) => format!("error: {e}\n"),
                }
            }
            "save" => match (args.first(), args.get(1)) {
                (Some(name), Some(path)) => {
                    match self
                        .session
                        .catalog()
                        .get(name)
                        .and_then(|ds| fudj_storage::write_csv(&ds, path))
                    {
                        Ok(rows) => format!("wrote {rows} rows to {path}\n"),
                        Err(e) => format!("error: {e}\n"),
                    }
                }
                _ => "usage: \\save <dataset> <file.csv>\n".to_owned(),
            },
            "load" => match (args.first(), args.get(1)) {
                (Some(name), Some(path)) => match self.load_csv(name, path, args.get(2)) {
                    Ok(rows) => format!("loaded {rows} rows into {name}\n"),
                    Err(e) => format!("error: {e}\n"),
                },
                _ => {
                    "usage: \\load <dataset> <file.csv> [col:type,col:type,...]\n                     (omit the column list to reuse an existing dataset's schema)\n"
                        .to_owned()
                }
            },
            "submit" => {
                if args.is_empty() {
                    return "usage: \\submit <select statement>\n".to_owned();
                }
                let sql = args.join(" ");
                match self.session.submit(&sql) {
                    Ok(handle) => {
                        let id = handle.id();
                        let msg =
                            format!("job {id} submitted; \\jobs tracks it, \\await {id} waits\n");
                        self.jobs.insert(id, handle);
                        msg
                    }
                    Err(e) => format!("error: {e}\n"),
                }
            }
            "jobs" => {
                let jobs = self.session.scheduler().jobs();
                if jobs.is_empty() {
                    return "no jobs; \\submit <select> schedules one\n".to_owned();
                }
                let mut out = String::new();
                for j in jobs {
                    let deadline = j
                        .deadline_ms
                        .map(|d| format!(", deadline {d} ms"))
                        .unwrap_or_default();
                    let _ = writeln!(
                        out,
                        "job {}  {:<9} prio {}  stages {}/{}  sim {} ms{}  {}",
                        j.id,
                        j.state.to_string(),
                        j.priority,
                        j.stages_done,
                        j.stages_total,
                        j.sim_clock_ms,
                        deadline,
                        j.label,
                    );
                    if let Some(e) = &j.error {
                        let _ = writeln!(out, "    error: {e}");
                    }
                }
                out
            }
            "cancel" => match args.first().and_then(|a| a.parse::<u64>().ok()) {
                Some(id) => match self.session.scheduler().cancel(id) {
                    Ok(()) => format!("job {id} cancel requested\n"),
                    Err(e) => format!("error: {e}\n"),
                },
                None => "usage: \\cancel <job id>\n".to_owned(),
            },
            "await" => match args.first().and_then(|a| a.parse::<u64>().ok()) {
                Some(id) => match self.jobs.remove(&id) {
                    Some(handle) => match handle.wait() {
                        Ok((batch, _)) => render_batch(&batch),
                        Err(e) => format!("error: {e}\n"),
                    },
                    None => format!("error: no pending handle for job {id}\n"),
                },
                None => "usage: \\await <job id>\n".to_owned(),
            },
            "persist" => match self.session.persist() {
                Ok(()) => {
                    let store = self.session.durable().expect("persist succeeded");
                    format!(
                        "snapshot v{} written to {}; WAL compacted\n",
                        store.version(),
                        store.dir().display(),
                    )
                }
                Err(e) => format!("error: {e}\n"),
            },
            "serve" => match args.first().and_then(|a| a.parse::<u64>().ok()) {
                Some(seed) => match crate::serve_demo::run(seed) {
                    Ok(report) => report,
                    Err(e) => format!("error: {e}\n"),
                },
                None => "usage: \\serve <seed>\n".to_owned(),
            },
            "help" | "?" => HELP.to_owned(),
            "q" | "quit" | "exit" => String::new(),
            other => format!("unknown command \\{other}; try \\help\n"),
        }
    }

    /// Load the synthetic sample datasets and register the paper's joins.
    pub fn load_sample(&mut self, n: usize) -> fudj_types::Result<()> {
        let parts = 4;
        self.session
            .register_dataset(fudj_datagen::parks(GeneratorConfig::new(n, 1, parts))?)?;
        self.session
            .register_dataset(fudj_datagen::wildfires(GeneratorConfig::new(
                2 * n,
                2,
                parts,
            ))?)?;
        self.session
            .register_dataset(fudj_datagen::nyctaxi(GeneratorConfig::new(n, 3, parts))?)?;
        self.session
            .register_dataset(fudj_datagen::amazon_reviews(GeneratorConfig::new(
                n, 4, parts,
            ))?)?;
        self.session
            .register_dataset(fudj_datagen::weather(GeneratorConfig::new(n, 5, parts))?)?;
        for ddl in [
            r#"CREATE JOIN st_contains(a: polygon, b: point)
               RETURNS boolean AS "spatial.SpatialJoin" AT flexiblejoins"#,
            r#"CREATE JOIN overlapping_interval(a: interval, b: interval)
               RETURNS boolean AS "interval.OverlappingIntervalJoin" AT flexiblejoins"#,
            r#"CREATE JOIN similarity_jaccard(a: string, b: string, t: double)
               RETURNS boolean AS "setsimilarity.SetSimilarityJoin" AT flexiblejoins"#,
            r#"CREATE JOIN jaccard_similarity(a: string, b: string, t: double)
               RETURNS boolean AS "setsimilarity.SetSimilarityJoin" AT flexiblejoins"#,
        ] {
            self.session.execute(ddl)?;
        }
        Ok(())
    }

    /// Load a CSV file into a (possibly new) dataset. With no explicit
    /// column list the schema is copied from an existing dataset of the
    /// same name pattern `<name>` (useful for re-importing a \\save).
    fn load_csv(
        &mut self,
        name: &str,
        path: &str,
        columns: Option<&String>,
    ) -> fudj_types::Result<usize> {
        let schema = match columns {
            Some(spec) => {
                let mut fields = Vec::new();
                for part in spec.split(',') {
                    let (col, ty) = part.split_once(':').ok_or_else(|| {
                        fudj_types::FudjError::Parse(format!("bad column spec {part:?}"))
                    })?;
                    fields.push(fudj_types::Field::new(col.trim(), parse_type(ty.trim())?));
                }
                std::sync::Arc::new(fudj_types::Schema::new(fields))
            }
            None => self
                .session
                .catalog()
                .get(name)
                .map(|ds| ds.schema().clone())?,
        };
        // Re-importing over an existing dataset replaces it.
        let _ = self.session.catalog().drop_dataset(name);
        let pk = schema.fields()[0].name.clone();
        let ds = fudj_storage::read_csv(path, name, schema, &pk, 4)?;
        let rows = ds.len();
        self.session.register_dataset(ds)?;
        Ok(rows)
    }
}

/// Human-readable description of a guard mode for `\guard`.
fn guard_mode_text(mode: &GuardMode) -> String {
    match mode {
        GuardMode::PerJoin => "per-join (each join's CREATE JOIN options)".to_owned(),
        GuardMode::Override(config) => format!("override (policy {})", config.policy),
        GuardMode::Off => "off".to_owned(),
    }
}

/// Parse a column type name (the same vocabulary as CREATE JOIN).
fn parse_type(name: &str) -> fudj_types::Result<fudj_types::DataType> {
    use fudj_types::DataType as T;
    Ok(match name.to_ascii_lowercase().as_str() {
        "string" | "text" => T::String,
        "double" | "float" => T::Float64,
        "bigint" | "int" => T::Int64,
        "boolean" | "bool" => T::Bool,
        "uuid" => T::Uuid,
        "datetime" => T::DateTime,
        "interval" => T::Interval,
        "point" => T::Point,
        "polygon" => T::Polygon,
        other => {
            return Err(fudj_types::FudjError::Parse(format!(
                "unknown type {other:?}"
            )))
        }
    })
}

/// `\help` text.
pub const HELP: &str = r#"FUDJ shell
  statements end with ';' and may span lines:
    SELECT ... FROM ds a, ds2 b WHERE ... GROUP BY ... ORDER BY ... LIMIT n;
    EXPLAIN SELECT ...;
    CREATE JOIN name(a: type, b: type[, p: type]) RETURNS boolean
      AS "class.Name" AT library;
    DROP JOIN name;
  meta commands:
    \sample [N]   load synthetic Parks/Wildfires/NYCTaxi/AmazonReview/Weather
                  datasets (~N records each) and register the paper's joins
    \d            list datasets        \joins     list registered joins
    \libraries    list join libraries  \timing    toggle query timing
    \metrics      toggle network/verify metrics after each query
    \chaos <seed> run queries under deterministic fault injection (task
                  panics, lost workers, stragglers, dropped/duplicated
                  shuffles) with automatic recovery; \chaos off disarms
    \chaos deaths <seed>              like \chaos, plus permanent worker
                                      deaths at stage boundaries; pair with
                                      SET checkpoint_stages = all for
                                      partial (lineage-scoped) recovery
    \workers      per-worker membership (active/dead/quarantined/
                  decommissioned) and failure counts
    \workers drop <id>                decommission a worker (partitions
                                      rehash deterministically onto the
                                      survivors); \workers add rejoins one
    \guard [mode] show or set the UDF guardrail mode: per-join (default,
                  honors CREATE JOIN ... WITH options), off, or a
                  session-wide policy override (failfast, quarantine,
                  fallback); \metrics shows per-query violation counters
    \submit <select ...>              schedule a SELECT concurrently; honors
                                      SET priority / deadline_ms /
                                      memory_budget_rows
    \jobs                             list scheduled jobs and their states
    \await <id>                       wait for a submitted job's rows
    \cancel <id>                      cancel a queued or running job
    \serve <seed>                     run a seeded multi-tenant workload
                                      through the serving tier (plan +
                                      result caches) and report hit rates
                                      and latency percentiles
  scheduler knobs (statements, end with ';'):
    SET max_inflight_queries = N;     SET admission_queue_limit = N;
    SET memory_quota_rows = N|off;    SET stage_slots = N;
    SET priority = N;                 SET deadline_ms = N|off;
  spill knobs (statements, end with ';'):
    SET memory_budget_rows = N|off;   SET spill_fanout = N|off;
    SET spill_recursion_limit = N|off;  (0 = always block-nested-loop)
  execution knobs (statements, end with ';'):
    SET exec_mode = row|columnar|off; (off = engine default, columnar)
  serving knobs (statements, end with ';'; read by serving tiers):
    SET plan_cache_entries = N|none;  SET result_cache_entries = N|none;
    SET result_cache = on|off;        (0 entries disables a cache)
  recovery knobs (statements, end with ';'):
    SET checkpoint_stages = all|off|'stage,stage,...';
    SET checkpoint_budget_bytes = N|off;
    SET worker_quarantine_threshold = N|off;
  persistence knobs (statements, end with ';'):
    SET wal_dir = '<path>'|off;       open a crash-consistent store: replay
                                      committed state, then WAL every table
                                      append and CREATE/DROP JOIN
    SET durability = sync|N|off;      fsync every record / every N / never
    SET checkpoint_durable = on|off;  journal queries and write their stage
                                      checkpoints through the WAL's
                                      filesystem; a reopened wal_dir then
                                      resumes in-flight queries from their
                                      last committed stage boundary
    \persist                          write an atomic snapshot and compact
                                      the WAL behind it
    \chaos disk <seed>                the next SET wal_dir injects seeded
                                      torn writes, dropped fsyncs, and bit
                                      flips; \chaos disk off disarms
    \chaos crash <seed>               the next SET wal_dir dies at a seeded
                                      crash site (WAL, snapshot, checkpoint,
                                      or query-journal write); reopen the
                                      same wal_dir to journal-resume
    \save <ds> <file.csv>             export a dataset to CSV
    \load <ds> <file.csv> [c:t,...]   import CSV (new schema or an
                                      existing dataset's)
    \help         this text            \q         quit
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feed_buffers_until_semicolon() {
        let mut r = Repl::new(2);
        assert_eq!(r.feed("SELECT 1"), ReplCommand::Incomplete);
        match r.feed("FROM t;") {
            ReplCommand::Statement(s) => assert_eq!(s, "SELECT 1\nFROM t;"),
            other => panic!("{other:?}"),
        }
        // Buffer resets afterwards.
        assert_eq!(r.feed("\\q"), ReplCommand::Meta("q".into(), vec![]));
    }

    #[test]
    fn meta_commands_parse_with_args() {
        let mut r = Repl::new(2);
        assert_eq!(
            r.feed("\\sample 500"),
            ReplCommand::Meta("sample".into(), vec!["500".into()])
        );
    }

    #[test]
    fn sample_load_and_query_end_to_end() {
        let mut r = Repl::new(2);
        let msg = r.run_meta("sample", &["300".into()]);
        assert!(msg.contains("loaded"), "{msg}");
        let out = r.run_statement(
            "SELECT COUNT(*) AS c FROM NYCTaxi n1, NYCTaxi n2 \
             WHERE n1.Vendor = 1 AND n2.Vendor = 2 \
               AND overlapping_interval(n1.ride_interval, n2.ride_interval);",
        );
        assert!(out.contains("(1 row)"), "{out}");
        assert!(out.contains("Time:"), "{out}");
    }

    #[test]
    fn datasets_and_joins_listings() {
        let mut r = Repl::new(2);
        assert!(r.run_meta("d", &[]).contains("no datasets"));
        r.run_meta("sample", &["200".into()]);
        let d = r.run_meta("d", &[]);
        assert!(d.contains("Parks") && d.contains("Weather"), "{d}");
        let j = r.run_meta("joins", &[]);
        assert!(j.contains("st_contains"), "{j}");
    }

    #[test]
    fn toggles_and_unknown_commands() {
        let mut r = Repl::new(2);
        assert!(r.run_meta("timing", &[]).contains("off"));
        assert!(r.run_meta("timing", &[]).contains("on"));
        assert!(r.run_meta("metrics", &[]).contains("on"));
        assert!(r.run_meta("nonsense", &[]).contains("unknown"));
        assert!(r.run_meta("help", &[]).contains("CREATE JOIN"));
    }

    #[test]
    fn every_dispatched_meta_command_is_in_help() {
        // Parse the top-level dispatch arms of `run_meta` out of this very
        // source file: they are the lines whose first non-space character
        // opens a string literal (inner matches arm on `Some(..)`/`None`/
        // enum variants instead), so a new `\command` arm without a
        // matching `\help` line fails here.
        let source = include_str!("repl.rs");
        let body = source
            .split("fn run_meta")
            .nth(1)
            .and_then(|s| s.split("fn load_sample").next())
            .expect("run_meta body precedes load_sample");
        let mut arms = 0;
        for line in body.lines() {
            let trimmed = line.trim_start();
            if !trimmed.starts_with('"') || !trimmed.contains("=>") {
                continue;
            }
            let lhs = trimmed.split("=>").next().unwrap();
            let commands: Vec<&str> = lhs
                .split('|')
                .map(str::trim)
                .filter_map(|t| t.strip_prefix('"').and_then(|t| t.strip_suffix('"')))
                .collect();
            if commands.is_empty() {
                continue;
            }
            arms += 1;
            assert!(
                commands.iter().any(|c| HELP.contains(&format!("\\{c}"))),
                "run_meta arm {commands:?} has no \\command line in HELP"
            );
        }
        assert!(arms >= 15, "expected the dispatch arms, found {arms}");
    }

    #[test]
    fn serve_demo_reports_caches_and_latency() {
        let mut r = Repl::new(2);
        assert!(r.run_meta("serve", &[]).contains("usage"));
        assert!(r.run_meta("serve", &["x".into()]).contains("usage"));
        let out = r.run_meta("serve", &["5".into()]);
        assert!(out.contains("served 64 statements"), "{out}");
        assert!(out.contains("latency (sim ms): p50"), "{out}");
        assert!(out.contains("results"), "{out}");
    }

    #[test]
    fn save_and_load_roundtrip_via_meta_commands() {
        let mut r = Repl::new(2);
        r.run_meta("sample", &["150".into()]);
        let path = std::env::temp_dir()
            .join(format!("fudj-cli-save-{}.csv", std::process::id()))
            .display()
            .to_string();
        let saved = r.run_meta("save", &["Parks".into(), path.clone()]);
        assert!(saved.contains("wrote 150 rows"), "{saved}");

        // Reload into a new dataset using an explicit schema.
        let loaded = r.run_meta(
            "load",
            &[
                "Parks2".into(),
                path.clone(),
                "id:uuid,boundary:polygon,tags:string".into(),
            ],
        );
        assert!(loaded.contains("loaded 150 rows"), "{loaded}");
        let out = r.run_statement("SELECT COUNT(*) AS c FROM Parks2 p;");
        assert!(out.contains("150"), "{out}");

        // Reload over the original (schema inferred from the old dataset).
        let reloaded = r.run_meta("load", &["Parks".into(), path.clone()]);
        assert!(reloaded.contains("loaded 150 rows"), "{reloaded}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn save_load_usage_and_errors() {
        let mut r = Repl::new(2);
        assert!(r.run_meta("save", &[]).contains("usage"));
        assert!(r.run_meta("load", &[]).contains("usage"));
        assert!(r
            .run_meta("save", &["Ghost".into(), "/tmp/x.csv".into()])
            .contains("error"));
        assert!(r
            .run_meta(
                "load",
                &["t".into(), "/nonexistent.csv".into(), "a:bigint".into()]
            )
            .contains("error"));
        assert!(r
            .run_meta("load", &["t".into(), "/tmp/x.csv".into(), "a:wat".into()])
            .contains("error"));
    }

    #[test]
    fn metrics_toggle_shows_per_worker_and_skew() {
        let mut r = Repl::new(2);
        r.run_meta("sample", &["200".into()]);
        r.run_meta("metrics", &[]);
        let out = r.run_statement(
            "SELECT COUNT(*) AS c FROM Parks p, Wildfires w \
             WHERE st_contains(p.boundary, w.location);",
        );
        assert!(out.contains("Network:"), "{out}");
        assert!(
            out.contains("worker 0:") && out.contains("worker 1:"),
            "{out}"
        );
        assert!(out.contains("phase join:") && out.contains("skew"), "{out}");
    }

    #[test]
    fn chaos_toggle_arms_and_disarms_fault_plan() {
        let mut r = Repl::new(2);
        assert!(r.run_meta("chaos", &[]).contains("chaos is off"));
        let on = r.run_meta("chaos", &["42".into()]);
        assert!(on.contains("chaos on (seed 42)"), "{on}");
        assert_eq!(r.session().faults().map(|f| f.seed), Some(42));
        assert!(r.run_meta("chaos", &["off".into()]).contains("chaos off"));
        assert!(r.session().faults().is_none());
        assert!(r.run_meta("chaos", &["nope".into()]).contains("error"));
    }

    #[test]
    fn chaos_query_recovers_and_reports_fault_metrics() {
        let mut r = Repl::new(3);
        r.run_meta("sample", &["200".into()]);
        r.run_meta("metrics", &[]);

        // Fault-free baseline for the same query.
        let query = "SELECT COUNT(*) AS c FROM NYCTaxi n1, NYCTaxi n2 \
             WHERE n1.Vendor = 1 AND n2.Vendor = 2 \
               AND overlapping_interval(n1.ride_interval, n2.ride_interval);";
        let clean = r.run_statement(query);
        assert!(!clean.contains("Faults:"), "{clean}");

        // Under chaos the query still answers identically and the fault
        // counters surface. Seed chosen arbitrarily; any seed must work.
        r.run_meta("chaos", &["7".into()]);
        let chaotic = r.run_statement(query);
        assert!(!chaotic.starts_with("error:"), "{chaotic}");
        assert!(chaotic.contains("Faults:"), "{chaotic}");
        let count_of = |s: &str| s.lines().nth(2).map(str::to_owned);
        assert_eq!(count_of(&clean), count_of(&chaotic));
    }

    #[test]
    fn workers_listing_and_membership_commands() {
        let mut r = Repl::new(3);
        let out = r.run_meta("workers", &[]);
        assert!(out.contains("worker 0  active"), "{out}");
        assert!(out.contains("worker 2  active"), "{out}");

        let dropped = r.run_meta("workers", &["drop".into(), "1".into()]);
        assert!(dropped.contains("decommissioned"), "{dropped}");
        let out = r.run_meta("workers", &[]);
        assert!(out.contains("worker 1  decommissioned"), "{out}");

        // Queries still answer with a worker out of the routing set.
        r.run_meta("sample", &["150".into()]);
        let rows = r.run_statement("SELECT COUNT(*) AS c FROM Parks p;");
        assert!(rows.contains("150"), "{rows}");

        let added = r.run_meta("workers", &["add".into()]);
        assert!(added.contains("worker 1 rejoined"), "{added}");
        // At full strength another add is an error, as is dropping the
        // last active worker twice over.
        assert!(r.run_meta("workers", &["add".into()]).contains("error"));
        assert!(r.run_meta("workers", &["drop".into()]).contains("usage"));
        assert!(r.run_meta("workers", &["wat".into()]).contains("error"));
    }

    #[test]
    fn chaos_deaths_arms_death_plan_and_recovers() {
        let mut r = Repl::new(3);
        assert!(r.run_meta("chaos", &["deaths".into()]).contains("usage"));
        let on = r.run_meta("chaos", &["deaths".into(), "11".into()]);
        assert!(on.contains("worker deaths (seed 11)"), "{on}");
        assert!(r.session().faults().map(|f| f.worker_death_prob > 0.0) == Some(true));

        r.run_meta("sample", &["200".into()]);
        r.run_statement("SET checkpoint_stages = all;");
        let out = r.run_statement(
            "SELECT COUNT(*) AS c FROM NYCTaxi n1, NYCTaxi n2 \
             WHERE n1.Vendor = 1 AND n2.Vendor = 2 \
               AND overlapping_interval(n1.ride_interval, n2.ride_interval);",
        );
        assert!(!out.starts_with("error:"), "{out}");
    }

    #[test]
    fn guard_toggle_sets_session_mode() {
        let mut r = Repl::new(2);
        assert!(r.run_meta("guard", &[]).contains("per-join"));
        assert!(r
            .run_meta("guard", &["quarantine".into()])
            .contains("policy quarantine"));
        assert!(matches!(r.session().guard(), GuardMode::Override(c)
            if c.policy == UdfPolicy::Quarantine));
        assert!(r.run_meta("guard", &["off".into()]).contains("unguarded"));
        assert!(matches!(r.session().guard(), GuardMode::Off));
        assert!(r
            .run_meta("guard", &["per-join".into()])
            .contains("per-join"));
        assert!(matches!(r.session().guard(), GuardMode::PerJoin));
        assert!(r.run_meta("guard", &["wat".into()]).contains("error"));
    }

    #[test]
    fn submit_jobs_await_cancel_lifecycle() {
        let mut r = Repl::new(2);
        assert!(r.run_meta("jobs", &[]).contains("no jobs"));
        assert!(r.run_meta("submit", &[]).contains("usage"));
        r.run_meta("sample", &["200".into()]);

        let args: Vec<String> = "SELECT COUNT(*) AS c FROM Parks p"
            .split_whitespace()
            .map(str::to_owned)
            .collect();
        let out = r.run_meta("submit", &args);
        assert!(out.contains("job 1 submitted"), "{out}");

        let awaited = r.run_meta("await", &["1".into()]);
        assert!(awaited.contains("(1 row)"), "{awaited}");
        // The handle is consumed; a second await reports that.
        assert!(r.run_meta("await", &["1".into()]).contains("error"));

        let jobs = r.run_meta("jobs", &[]);
        assert!(jobs.contains("job 1") && jobs.contains("done"), "{jobs}");

        // Cancelling an unknown id is an error, not a panic.
        assert!(r.run_meta("cancel", &["99".into()]).contains("error"));
        assert!(r.run_meta("cancel", &[]).contains("usage"));

        // SET knobs flow through statements into the scheduler.
        r.run_statement("SET max_inflight_queries = 2;");
        assert_eq!(r.session().scheduler().config().max_inflight, 2);
    }

    #[test]
    fn chaos_crash_arms_a_seeded_crash_site() {
        let mut r = Repl::new(2);
        assert!(r.run_meta("chaos", &["crash".into()]).contains("usage"));
        assert!(r
            .run_meta("chaos", &["crash".into(), "nope".into()])
            .contains("usage"));
        let on = r.run_meta("chaos", &["crash".into(), "3".into()]);
        assert!(on.contains("crash chaos on (seed 3)"), "{on}");
        let cfg = r.session.disk_faults().expect("fault plan armed");
        let (site, hit) = cfg.crash_point.expect("crash point set");
        assert!(
            fudj_storage::QUERY_CRASH_POINTS.contains(&site.as_str())
                || fudj_storage::CRASH_POINTS.contains(&site.as_str()),
            "{site}"
        );
        assert!((1..=3).contains(&hit));
        // Different seeds can reach every site class.
        let other = r.run_meta("chaos", &["crash".into(), "4".into()]);
        assert!(other.contains("crash chaos on (seed 4)"), "{other}");
        assert!(r
            .run_meta("chaos", &["disk".into(), "off".into()])
            .contains("off"));
    }

    #[test]
    fn chaos_crash_reopen_journal_resumes_in_flight_query() {
        let mut r = Repl::new(2);
        r.run_meta("sample", &["100".into()]);
        r.run_statement("SET checkpoint_durable = on;");
        // Seed 0 → journal:submit, hit 1: the first query's journal
        // entry lands durably, then the simulated disk dies.
        let on = r.run_meta("chaos", &["crash".into(), "0".into()]);
        assert!(on.contains("journal:submit"), "{on}");
        r.run_statement("SET wal_dir = '/repl-crash';");
        assert!(
            r.session().disk_faults().is_none(),
            "the crash plan is consumed by the open it poisons"
        );
        let killed = r.run_statement("SELECT COUNT(*) AS c FROM Parks p;");
        assert!(killed.contains("simulated crash"), "{killed}");
        // Reopening the same wal_dir restarts the simulated disk and
        // delivers the journal-resumed result in the SET's output.
        let reopened = r.run_statement("SET wal_dir = '/repl-crash';");
        assert!(reopened.contains("resumed unfinished query"), "{reopened}");
        assert!(reopened.contains("100"), "{reopened}");
        // Exactly once: a further reopen finds a sealed journal.
        let again = r.run_statement("SET wal_dir = '/repl-crash';");
        assert!(!again.contains("resumed"), "{again}");
    }

    #[test]
    fn persist_and_chaos_disk_meta_commands() {
        let mut r = Repl::new(2);
        // Without an open store, \persist is a clean error.
        assert!(r.run_meta("persist", &[]).contains("error"));
        assert!(r.run_meta("chaos", &["disk".into()]).contains("usage"));
        let on = r.run_meta("chaos", &["disk".into(), "77".into()]);
        assert!(on.contains("disk chaos on (seed 77)"), "{on}");
        assert_eq!(r.session().disk_faults().map(|c| c.seed), Some(77));
        assert!(r
            .run_meta("chaos", &["disk".into(), "off".into()])
            .contains("disk chaos off"));
        assert!(r.session().disk_faults().is_none());
        assert!(r
            .run_meta("chaos", &["disk".into(), "nope".into()])
            .contains("error"));

        // Full round-trip: open a store, see durability counters in the
        // metrics block, snapshot via \persist.
        let dir = std::env::temp_dir().join(format!("fudj-cli-wal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        r.run_meta("sample", &["150".into()]);
        r.run_meta("metrics", &[]);
        let out = r.run_statement(&format!("SET wal_dir = '{}';", dir.display()));
        assert!(out.contains("set wal_dir"), "{out}");
        let q = r.run_statement("SELECT COUNT(*) AS c FROM Parks p;");
        assert!(q.contains("Durability:"), "{q}");
        let persisted = r.run_meta("persist", &[]);
        assert!(persisted.contains("snapshot v"), "{persisted}");
        assert!(persisted.contains("WAL compacted"), "{persisted}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn errors_render_not_panic() {
        let mut r = Repl::new(2);
        let out = r.run_statement("SELECT x FROM Ghost g;");
        assert!(out.starts_with("error:"), "{out}");
    }

    #[test]
    fn explain_renders_plan() {
        let mut r = Repl::new(2);
        r.run_meta("sample", &["200".into()]);
        let out = r.run_statement(
            "EXPLAIN SELECT COUNT(*) FROM Parks p, Wildfires w \
             WHERE st_contains(p.boundary, w.location);",
        );
        assert!(out.contains("FudjJoin"), "{out}");
    }
}
