//! Library side of the FUDJ shell: command parsing, result rendering, and
//! the REPL engine — separated from `main.rs` so everything is testable.

pub mod render;
pub mod repl;
pub mod serve_demo;

pub use render::render_batch;
pub use repl::{Repl, ReplCommand};
