//! The `\serve <seed>` REPL demo: a seeded multi-tenant workload pushed
//! through a [`fudj_serve::ServingTier`] over its own sample session,
//! reporting cache effectiveness and latency percentiles.
//!
//! The demo is self-contained (it builds a fresh engine rather than
//! borrowing the REPL's session) so `\serve` never perturbs the tables or
//! knobs the user is working with.

use fudj_serve::{generate, sample_session, MixProfile, ServingTier, WorkloadConfig};
use fudj_types::Result;
use std::sync::Arc;

/// Tenants in the demo mix.
const TENANTS: u32 = 8;
/// Operations replayed through the tier.
const OPS: usize = 64;

/// Run the serving demo with the given workload seed and return the report.
pub fn run(seed: u64) -> Result<String> {
    let session = Arc::new(sample_session(60, 2)?);
    let tier = ServingTier::new(Arc::clone(&session));
    let ops = generate(&WorkloadConfig {
        tenants: TENANTS,
        ops: OPS,
        seed,
        profile: MixProfile::ShapeSkewed(1.1),
        priority_classes: 3,
    });

    let mut failures = 0usize;
    for op in &ops {
        if tier
            .serve_with_priority(op.tenant, op.priority, &op.sql)
            .is_err()
        {
            failures += 1;
        }
    }

    let stats = tier.stats();
    let global = tier.global_latency();
    let mut out = String::new();
    out.push_str(&format!(
        "served {} statements from {} tenants (seed {}, {} failed)\n",
        ops.len(),
        TENANTS,
        seed,
        failures,
    ));
    out.push_str(&format!(
        "plans: {} hit / {} miss / {} evicted; results: {} hit / {} miss / \
         {} evicted, {} invalidated\n",
        stats.plan_cache_hits,
        stats.plan_cache_misses,
        stats.plan_cache_evictions,
        stats.result_cache_hits,
        stats.result_cache_misses,
        stats.result_cache_evictions,
        stats.result_cache_invalidations,
    ));
    out.push_str(&format!(
        "admissions: {} ok / {} rejected; queue depth high-water {}\n",
        stats.admissions, stats.rejections, stats.queue_depth_high_water,
    ));
    out.push_str(&format!(
        "latency (sim ms): p50 {} / p95 {} / p99 {} / max {} over {} served\n",
        global.p50(),
        global.p95(),
        global.p99(),
        global.max(),
        global.count(),
    ));
    let mut tenants = tier.tenant_ids();
    tenants.sort_unstable();
    for t in tenants {
        if let Some(h) = tier.tenant_latency(t) {
            out.push_str(&format!(
                "  tenant {t}: p50 {} / p99 {} / max {} ({} ops)\n",
                h.p50(),
                h.p99(),
                h.max(),
                h.count(),
            ));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_report_is_deterministic_and_hits_caches() {
        let a = run(7).expect("demo runs");
        let b = run(7).expect("demo runs");
        assert_eq!(a, b, "same seed must produce the same report");
        assert!(a.contains("served 64 statements"));
        assert!(a.contains("0 failed"), "no statement may fail: {a}");
        // 64 skewed ops over 8 shapes revisit (shape, param) pairs, so the
        // result cache must hit. (A plan hit needs a result miss on a
        // cached shape — invalidation or eviction — and this quiet demo
        // ingests nothing, so plans may legitimately show 0 hits.)
        assert!(!a.contains("results: 0 hit"), "result cache never hit: {a}");
        assert!(a.contains("latency (sim ms): p50"));
        assert!(a.contains("tenant 0:"));
    }

    #[test]
    fn different_seeds_differ() {
        let a = run(1).expect("demo runs");
        let b = run(2).expect("demo runs");
        assert_ne!(a, b);
    }
}
