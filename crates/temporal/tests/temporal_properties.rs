//! Property tests for intervals and the granule timeline.

use fudj_temporal::granule::buckets_overlap;
use fudj_temporal::{GranuleTimeline, Interval, IntervalSummary};
use proptest::prelude::*;

fn arb_interval() -> impl Strategy<Value = Interval> {
    (0i64..100_000, 0i64..5_000).prop_map(|(s, d)| Interval::new(s, s + d))
}

proptest! {
    /// Overlap is symmetric and agrees with intersection existence.
    #[test]
    fn overlap_symmetric(a in arb_interval(), b in arb_interval()) {
        prop_assert_eq!(a.overlaps(&b), b.overlaps(&a));
        prop_assert_eq!(a.overlaps(&b), a.intersection(&b).is_some());
    }

    /// Hull covers both operands; intersection (when present) is covered by both.
    #[test]
    fn hull_and_intersection(a in arb_interval(), b in arb_interval()) {
        let h = a.hull(&b);
        prop_assert!(h.covers(&a) && h.covers(&b));
        if let Some(i) = a.intersection(&b) {
            prop_assert!(a.covers(&i) && b.covers(&i));
        }
    }

    /// Summary observes = summary of merge of singletons; range covers all.
    #[test]
    fn summary_merge_equals_fold(ivs in prop::collection::vec(arb_interval(), 1..32)) {
        let mut folded = IntervalSummary::default();
        for iv in &ivs {
            folded.observe(iv);
        }
        let merged = ivs.iter().fold(IntervalSummary::default(), |acc, iv| {
            let mut s = IntervalSummary::default();
            s.observe(iv);
            acc.merge(&s)
        });
        prop_assert_eq!(folded, merged);
        let r = folded.range().unwrap();
        for iv in &ivs {
            prop_assert!(r.covers(iv));
        }
    }

    /// *Partitioning soundness*: overlapping intervals always land in
    /// matching (overlapping) buckets — otherwise the join would lose pairs.
    #[test]
    fn overlapping_intervals_buckets_match(
        a in arb_interval(),
        b in arb_interval(),
        n in 1u32..2000,
    ) {
        let mut s = IntervalSummary::default();
        s.observe(&a);
        s.observe(&b);
        let tl = GranuleTimeline::new(s.range().unwrap(), n);
        if a.overlaps(&b) {
            prop_assert!(buckets_overlap(tl.assign(&a), tl.assign(&b)));
        }
    }

    /// Assigned bucket granule range covers the interval's time range.
    #[test]
    fn bucket_covers_interval(iv in arb_interval(), n in 1u32..2000) {
        let mut s = IntervalSummary::default();
        s.observe(&iv);
        let tl = GranuleTimeline::new(s.range().unwrap(), n);
        let (gs, ge) = fudj_temporal::decode_bucket(tl.assign(&iv));
        prop_assert!(gs <= ge);
        prop_assert!(ge < tl.granules().max(1));
        // Start granule's interval begins at or before iv.start; end granule's
        // interval finishes at or after iv.end (within the clamped range).
        prop_assert!(tl.granule_interval(gs).start <= iv.start);
        prop_assert!(tl.granule_interval(ge).end >= iv.end.min(tl.range().end));
    }

    /// Granule intervals tile the timeline without gaps.
    #[test]
    fn granules_tile_range(start in 0i64..1_000, span in 1i64..1_000_000, n in 1u32..500) {
        let tl = GranuleTimeline::new(Interval::new(start, start + span), n);
        prop_assert_eq!(tl.granule_interval(0).start, start);
        prop_assert_eq!(tl.granule_interval(tl.granules() - 1).end, start + span);
        for g in 0..tl.granules() - 1 {
            prop_assert_eq!(
                tl.granule_interval(g).end + 1,
                tl.granule_interval(g + 1).start
            );
        }
    }
}
