//! Intervals and time utilities for the FUDJ reproduction.
//!
//! The Overlapping-Interval FUDJ (OIPJoin-style, Dignös et al.) needs a
//! half-numeric interval type, an overlap predicate, the min-start/max-end
//! summary, granule (bucket) math over a divided timeline, and the paper's
//! packed bucket encoding `(start_granule << 16) | end_granule`.

pub mod datetime;
pub mod granule;
pub mod interval;
pub mod sweep;

pub use datetime::{format_millis, parse_date};
pub use granule::{decode_bucket, encode_bucket, GranuleTimeline};
pub use interval::{Interval, IntervalSummary};
pub use sweep::forward_scan_join;
