//! Closed intervals over an `i64` timeline (milliseconds since epoch in the
//! datasets, but any monotone unit works).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A closed interval `[start, end]` with `start <= end`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Interval {
    pub start: i64,
    pub end: i64,
}

impl Interval {
    /// Create an interval; `start` must not exceed `end`.
    #[inline]
    pub fn new(start: i64, end: i64) -> Self {
        debug_assert!(start <= end, "inverted interval [{start}, {end}]");
        Interval { start, end }
    }

    /// Duration `end - start`.
    #[inline]
    pub fn duration(&self) -> i64 {
        self.end - self.start
    }

    /// The paper's `overlapping_interval` predicate:
    /// `i1.start <= i2.end AND i1.end >= i2.start` (closed-interval overlap,
    /// touching endpoints count).
    #[inline]
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.start <= other.end && self.end >= other.start
    }

    /// Whether `t` lies inside the closed interval.
    #[inline]
    pub fn contains(&self, t: i64) -> bool {
        t >= self.start && t <= self.end
    }

    /// Whether `other` lies entirely within `self`.
    #[inline]
    pub fn covers(&self, other: &Interval) -> bool {
        self.start <= other.start && self.end >= other.end
    }

    /// Intersection, or `None` when disjoint.
    pub fn intersection(&self, other: &Interval) -> Option<Interval> {
        if self.overlaps(other) {
            Some(Interval::new(
                self.start.max(other.start),
                self.end.min(other.end),
            ))
        } else {
            None
        }
    }

    /// Smallest interval covering both.
    #[inline]
    pub fn hull(&self, other: &Interval) -> Interval {
        Interval::new(self.start.min(other.start), self.end.max(other.end))
    }
}

impl fmt::Debug for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.start, self.end)
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "interval({}, {})", self.start, self.end)
    }
}

/// The interval FUDJ's `Summary`: minimum start and maximum end observed.
/// The empty summary is the identity of [`IntervalSummary::merge`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntervalSummary {
    pub min_start: i64,
    pub max_end: i64,
}

impl Default for IntervalSummary {
    fn default() -> Self {
        IntervalSummary {
            min_start: i64::MAX,
            max_end: i64::MIN,
        }
    }
}

impl IntervalSummary {
    /// Whether any interval has been observed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min_start > self.max_end
    }

    /// Fold one interval into the summary (the paper's `SUMMARIZE`).
    #[inline]
    pub fn observe(&mut self, iv: &Interval) {
        self.min_start = self.min_start.min(iv.start);
        self.max_end = self.max_end.max(iv.end);
    }

    /// Merge two partial summaries (the paper's `global_aggregate`).
    #[inline]
    pub fn merge(&self, other: &IntervalSummary) -> IntervalSummary {
        IntervalSummary {
            min_start: self.min_start.min(other.min_start),
            max_end: self.max_end.max(other.max_end),
        }
    }

    /// The covered range as an interval, or `None` when empty.
    pub fn range(&self) -> Option<Interval> {
        if self.is_empty() {
            None
        } else {
            Some(Interval::new(self.min_start, self.max_end))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_cases() {
        let a = Interval::new(0, 10);
        assert!(a.overlaps(&Interval::new(5, 15)));
        assert!(a.overlaps(&Interval::new(-5, 0))); // touching start
        assert!(a.overlaps(&Interval::new(10, 20))); // touching end
        assert!(a.overlaps(&Interval::new(2, 3))); // nested
        assert!(!a.overlaps(&Interval::new(11, 20)));
        assert!(!a.overlaps(&Interval::new(-20, -1)));
    }

    #[test]
    fn overlap_is_symmetric() {
        let a = Interval::new(0, 10);
        let b = Interval::new(10, 12);
        assert_eq!(a.overlaps(&b), b.overlaps(&a));
    }

    #[test]
    fn intersection_and_hull() {
        let a = Interval::new(0, 10);
        let b = Interval::new(5, 15);
        assert_eq!(a.intersection(&b), Some(Interval::new(5, 10)));
        assert_eq!(a.hull(&b), Interval::new(0, 15));
        assert_eq!(a.intersection(&Interval::new(20, 30)), None);
    }

    #[test]
    fn contains_and_covers() {
        let a = Interval::new(0, 10);
        assert!(a.contains(0) && a.contains(10) && a.contains(5));
        assert!(!a.contains(-1) && !a.contains(11));
        assert!(a.covers(&Interval::new(2, 8)));
        assert!(a.covers(&a));
        assert!(!a.covers(&Interval::new(2, 12)));
    }

    #[test]
    fn summary_observe_and_merge() {
        let mut s1 = IntervalSummary::default();
        assert!(s1.is_empty());
        s1.observe(&Interval::new(5, 10));
        s1.observe(&Interval::new(1, 3));
        assert_eq!(s1.range(), Some(Interval::new(1, 10)));

        let mut s2 = IntervalSummary::default();
        s2.observe(&Interval::new(-4, 2));
        let merged = s1.merge(&s2);
        assert_eq!(merged.range(), Some(Interval::new(-4, 10)));

        // Empty is the merge identity.
        assert_eq!(s1.merge(&IntervalSummary::default()), s1);
    }
}
