//! Timeline granules and the OIP packed-bucket encoding.
//!
//! The interval FUDJ's `DIVIDE` splits the unified timeline into
//! `NumberOfBuckets` equal granules; `ASSIGN` maps each interval to the
//! *single* bucket identified by its (start granule, end granule) pair,
//! packed into one integer as `(start << 16) | end` — exactly the paper's
//! single-assign scheme. `MATCH` unpacks two buckets and tests granule-range
//! overlap (a theta match, which is why interval FUDJ ends up on the NLJ
//! bucket-matching path).

use crate::interval::Interval;
use serde::{Deserialize, Serialize};

/// How many low bits hold the end granule in the packed encoding.
pub const GRANULE_BITS: u32 = 16;

/// Maximum granule count representable by the packed encoding.
pub const MAX_GRANULES: u32 = 1 << GRANULE_BITS;

/// Pack a (start, end) granule pair into one bucket id.
#[inline]
pub fn encode_bucket(start_granule: u32, end_granule: u32) -> u64 {
    debug_assert!(start_granule < MAX_GRANULES && end_granule < MAX_GRANULES);
    debug_assert!(start_granule <= end_granule);
    ((start_granule as u64) << GRANULE_BITS) | end_granule as u64
}

/// Unpack a bucket id into its (start, end) granule pair.
#[inline]
pub fn decode_bucket(bucket: u64) -> (u32, u32) {
    (
        (bucket >> GRANULE_BITS) as u32,
        (bucket & (MAX_GRANULES as u64 - 1)) as u32,
    )
}

/// Whether two packed buckets have overlapping granule ranges — the interval
/// FUDJ's `MATCH`.
#[inline]
pub fn buckets_overlap(b1: u64, b2: u64) -> bool {
    let (s1, e1) = decode_bucket(b1);
    let (s2, e2) = decode_bucket(b2);
    s1 <= e2 && e1 >= s2
}

/// The interval FUDJ's `PPlan`: a timeline divided into equal granules.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct GranuleTimeline {
    range: Interval,
    granules: u32,
    /// Granule length; at least 1 so ids stay bounded for tiny ranges.
    d: i64,
}

impl GranuleTimeline {
    /// Divide `range` into `granules` equal pieces.
    ///
    /// # Panics
    /// Panics when `granules` is zero or exceeds [`MAX_GRANULES`] (the packed
    /// encoding would overflow — the same 16-bit limit as the paper's
    /// `(front << 16) | end` scheme).
    pub fn new(range: Interval, granules: u32) -> Self {
        assert!(granules > 0, "timeline needs at least one granule");
        assert!(
            granules <= MAX_GRANULES,
            "granule count {granules} exceeds the packed-encoding limit {MAX_GRANULES}"
        );
        let span = range.duration().max(1);
        let d = (span / granules as i64).max(1);
        GranuleTimeline { range, granules, d }
    }

    /// The divided range.
    #[inline]
    pub fn range(&self) -> Interval {
        self.range
    }

    /// Number of granules.
    #[inline]
    pub fn granules(&self) -> u32 {
        self.granules
    }

    /// Granule length.
    #[inline]
    pub fn granule_len(&self) -> i64 {
        self.d
    }

    /// Granule index of time `t`, clamped into `[0, granules)` so every
    /// record gets a bucket even if it falls outside the summarized range
    /// (possible only when summaries were computed on a different snapshot).
    #[inline]
    pub fn granule_of(&self, t: i64) -> u32 {
        let off = t.saturating_sub(self.range.start);
        if off <= 0 {
            return 0;
        }
        ((off / self.d) as u64).min(self.granules as u64 - 1) as u32
    }

    /// The paper's `ASSIGN`: the single packed bucket of an interval —
    /// `(start_granule << 16) | end_granule`.
    #[inline]
    pub fn assign(&self, iv: &Interval) -> u64 {
        let s = self.granule_of(iv.start);
        let e = self.granule_of(iv.end).max(s);
        encode_bucket(s, e)
    }

    /// The time range covered by granule `g`.
    pub fn granule_interval(&self, g: u32) -> Interval {
        debug_assert!(g < self.granules);
        let start = self.range.start + g as i64 * self.d;
        let end = if g + 1 == self.granules {
            self.range.end
        } else {
            self.range.start + (g as i64 + 1) * self.d - 1
        };
        Interval::new(start, end.max(start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tl() -> GranuleTimeline {
        GranuleTimeline::new(Interval::new(0, 1000), 10)
    }

    #[test]
    fn encode_decode_roundtrip() {
        for (s, e) in [(0u32, 0u32), (3, 7), (65535, 65535), (0, 65535)] {
            assert_eq!(decode_bucket(encode_bucket(s, e)), (s, e));
        }
    }

    #[test]
    fn granule_of_boundaries() {
        let t = tl();
        assert_eq!(t.granule_of(0), 0);
        assert_eq!(t.granule_of(99), 0);
        assert_eq!(t.granule_of(100), 1);
        assert_eq!(t.granule_of(999), 9);
        assert_eq!(t.granule_of(1000), 9); // clamped into last granule
        assert_eq!(t.granule_of(-50), 0); // clamped below
        assert_eq!(t.granule_of(5000), 9); // clamped above
    }

    #[test]
    fn assign_packs_start_and_end() {
        let t = tl();
        let b = t.assign(&Interval::new(150, 420));
        assert_eq!(decode_bucket(b), (1, 4));
    }

    #[test]
    fn buckets_overlap_iff_granule_ranges_do() {
        let a = encode_bucket(1, 4);
        assert!(buckets_overlap(a, encode_bucket(4, 9))); // touch
        assert!(buckets_overlap(a, encode_bucket(0, 1)));
        assert!(buckets_overlap(a, encode_bucket(2, 3))); // nested
        assert!(!buckets_overlap(a, encode_bucket(5, 9)));
        assert!(!buckets_overlap(a, encode_bucket(0, 0)));
    }

    #[test]
    fn overlapping_intervals_get_overlapping_buckets() {
        // Soundness of the partitioning: if two intervals overlap, their
        // buckets must match, or the join would miss results.
        let t = tl();
        let pairs = [
            (Interval::new(0, 100), Interval::new(100, 200)),
            (Interval::new(50, 950), Interval::new(940, 1000)),
            (Interval::new(333, 333), Interval::new(0, 1000)),
        ];
        for (a, b) in pairs {
            assert!(a.overlaps(&b));
            assert!(
                buckets_overlap(t.assign(&a), t.assign(&b)),
                "{a:?} vs {b:?}"
            );
        }
    }

    #[test]
    fn granule_interval_partition_covers_range() {
        let t = tl();
        assert_eq!(t.granule_interval(0).start, 0);
        assert_eq!(t.granule_interval(9).end, 1000);
        for g in 0..9u32 {
            assert_eq!(
                t.granule_interval(g).end + 1,
                t.granule_interval(g + 1).start
            );
        }
    }

    #[test]
    fn tiny_range_single_granule() {
        let t = GranuleTimeline::new(Interval::new(42, 42), 100);
        assert_eq!(t.assign(&Interval::new(42, 42)), encode_bucket(0, 0));
    }

    #[test]
    #[should_panic(expected = "packed-encoding limit")]
    fn rejects_oversized_granule_count() {
        let _ = GranuleTimeline::new(Interval::new(0, 1_000_000), MAX_GRANULES + 1);
    }
}
