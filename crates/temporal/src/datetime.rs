//! Minimal date handling: the `parse_date("01/01/2022", "M/D/Y")` built-in
//! used by Query 1's filter, and a formatter for readable output.
//!
//! Dates are represented as milliseconds since the Unix epoch (UTC), the
//! same unit the `Interval` type uses.

/// Milliseconds per day.
pub const MS_PER_DAY: i64 = 86_400_000;

/// Days in each month of a non-leap year.
const DAYS_IN_MONTH: [i64; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

#[inline]
fn is_leap(year: i64) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

fn days_in_month(year: i64, month: i64) -> i64 {
    if month == 2 && is_leap(year) {
        29
    } else {
        DAYS_IN_MONTH[(month - 1) as usize]
    }
}

/// Days from 1970-01-01 to `year`-`month`-`day` (proleptic Gregorian).
fn days_from_epoch(year: i64, month: i64, day: i64) -> i64 {
    let mut days: i64 = 0;
    if year >= 1970 {
        for y in 1970..year {
            days += if is_leap(y) { 366 } else { 365 };
        }
    } else {
        for y in year..1970 {
            days -= if is_leap(y) { 366 } else { 365 };
        }
    }
    for m in 1..month {
        days += days_in_month(year, m);
    }
    days + (day - 1)
}

/// Parse a date string under a format of `M`, `D`, `Y` separated by `/`
/// (e.g. `parse_date("01/15/2022", "M/D/Y")`). Returns epoch milliseconds at
/// midnight UTC, or `None` for malformed input or out-of-range fields.
pub fn parse_date(text: &str, format: &str) -> Option<i64> {
    let fields: Vec<&str> = format.split('/').collect();
    let parts: Vec<&str> = text.split('/').collect();
    if fields.len() != parts.len() || fields.is_empty() {
        return None;
    }
    let (mut year, mut month, mut day) = (None, None, None);
    for (f, p) in fields.iter().zip(parts.iter()) {
        let v: i64 = p.trim().parse().ok()?;
        match f.trim() {
            "Y" | "YYYY" => year = Some(v),
            "M" | "MM" => month = Some(v),
            "D" | "DD" => day = Some(v),
            _ => return None,
        }
    }
    let (y, m, d) = (year?, month?, day?);
    if !(1..=12).contains(&m) || d < 1 || d > days_in_month(y, m) {
        return None;
    }
    Some(days_from_epoch(y, m, d) * MS_PER_DAY)
}

/// Format epoch milliseconds as `YYYY-MM-DD HH:MM:SS` (UTC).
pub fn format_millis(ms: i64) -> String {
    let days = ms.div_euclid(MS_PER_DAY);
    let mut rem = ms.rem_euclid(MS_PER_DAY);
    let hours = rem / 3_600_000;
    rem %= 3_600_000;
    let minutes = rem / 60_000;
    let seconds = (rem % 60_000) / 1000;

    let mut year = 1970i64;
    let mut d = days;
    loop {
        let len = if is_leap(year) { 366 } else { 365 };
        if d >= len {
            d -= len;
            year += 1;
        } else if d < 0 {
            year -= 1;
            d += if is_leap(year) { 366 } else { 365 };
        } else {
            break;
        }
    }
    let mut month = 1i64;
    while d >= days_in_month(year, month) {
        d -= days_in_month(year, month);
        month += 1;
    }
    format!(
        "{year:04}-{month:02}-{:02} {hours:02}:{minutes:02}:{seconds:02}",
        d + 1
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_zero() {
        assert_eq!(parse_date("01/01/1970", "M/D/Y"), Some(0));
    }

    #[test]
    fn known_dates() {
        // 2022-01-01 is 18993 days after the epoch.
        assert_eq!(parse_date("01/01/2022", "M/D/Y"), Some(18_993 * MS_PER_DAY));
        // Leap day.
        assert_eq!(parse_date("29/02/2020", "D/M/Y"), Some(18_321 * MS_PER_DAY));
    }

    #[test]
    fn rejects_bad_input() {
        assert_eq!(parse_date("13/40/2022", "M/D/Y"), None); // month 13
        assert_eq!(parse_date("02/30/2021", "M/D/Y"), None); // Feb 30
        assert_eq!(parse_date("1-1-2022", "M/D/Y"), None); // wrong separator
        assert_eq!(parse_date("01/01", "M/D/Y"), None); // missing field
        assert_eq!(parse_date("a/b/c", "M/D/Y"), None);
    }

    #[test]
    fn format_roundtrip() {
        let ms = parse_date("07/04/2023", "M/D/Y").unwrap();
        assert_eq!(format_millis(ms), "2023-07-04 00:00:00");
        assert_eq!(format_millis(ms + 3_723_000), "2023-07-04 01:02:03");
    }

    #[test]
    fn format_pre_epoch() {
        assert_eq!(format_millis(-MS_PER_DAY), "1969-12-31 00:00:00");
    }

    #[test]
    fn parse_format_consistency_across_years() {
        for (y, m, d) in [(1999, 12, 31), (2000, 2, 29), (2024, 2, 29), (2030, 6, 15)] {
            let s = format!("{m:02}/{d:02}/{y}");
            let ms = parse_date(&s, "M/D/Y").unwrap();
            assert_eq!(format_millis(ms), format!("{y:04}-{m:02}-{d:02} 00:00:00"));
        }
    }
}
