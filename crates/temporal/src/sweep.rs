//! Forward-scan plane sweep for interval overlap joins.
//!
//! The paper's future work (§VIII) names sort-merge/plane-sweep local joins
//! as the next optimization after PBSM's; for intervals the classic
//! algorithm is the *forward scan* (Bouros & Mamoulis, PVLDB'17, the
//! paper's \[4\]): sort both sides by start, then for each interval in start
//! order scan the other side forward while starts precede this interval's
//! end. Every scanned interval overlaps by construction — no per-pair
//! verification is needed.
//!
//! The advanced built-in interval operator uses this as its per-bucket
//! local join instead of the nested loop.

use crate::interval::Interval;

/// All index pairs `(i, j)` with `left[i]` overlapping `right[j]`,
/// discovered by a forward scan. Output order is unspecified.
///
/// Runs in `O(n log n + k)` versus the nested loop's `O(n·m)`.
pub fn forward_scan_join(left: &[Interval], right: &[Interval]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    forward_scan_join_into(left, right, |i, j| out.push((i, j)));
    out
}

/// Forward-scan join feeding each overlapping pair to `emit(i, j)` —
/// the allocation-free core used by the advanced operator.
pub fn forward_scan_join_into(
    left: &[Interval],
    right: &[Interval],
    mut emit: impl FnMut(usize, usize),
) {
    if left.is_empty() || right.is_empty() {
        return;
    }
    let mut li: Vec<usize> = (0..left.len()).collect();
    let mut ri: Vec<usize> = (0..right.len()).collect();
    li.sort_unstable_by_key(|&i| left[i].start);
    ri.sort_unstable_by_key(|&j| right[j].start);

    let mut l = 0usize;
    let mut r = 0usize;
    while l < li.len() && r < ri.len() {
        let lv = &left[li[l]];
        let rv = &right[ri[r]];
        if lv.start <= rv.start {
            // Every right interval starting within [lv.start, lv.end]
            // overlaps lv (its start is ≥ lv.start and ≤ lv.end).
            let mut k = r;
            while k < ri.len() && right[ri[k]].start <= lv.end {
                emit(li[l], ri[k]);
                k += 1;
            }
            l += 1;
        } else {
            let mut k = l;
            while k < li.len() && left[li[k]].start <= rv.end {
                emit(li[k], ri[r]);
                k += 1;
            }
            r += 1;
        }
    }
}

/// Reference nested-loop interval join, used by tests.
pub fn nested_loop_interval_join(left: &[Interval], right: &[Interval]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for (i, a) in left.iter().enumerate() {
        for (j, b) in right.iter().enumerate() {
            if a.overlaps(b) {
                out.push((i, j));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(s: i64, e: i64) -> Interval {
        Interval::new(s, e)
    }

    fn sorted(mut v: Vec<(usize, usize)>) -> Vec<(usize, usize)> {
        v.sort_unstable();
        v
    }

    #[test]
    fn empty_inputs() {
        assert!(forward_scan_join(&[], &[iv(0, 1)]).is_empty());
        assert!(forward_scan_join(&[iv(0, 1)], &[]).is_empty());
    }

    #[test]
    fn basic_overlaps() {
        let l = [iv(0, 10), iv(20, 30)];
        let r = [iv(5, 25), iv(40, 50)];
        assert_eq!(sorted(forward_scan_join(&l, &r)), vec![(0, 0), (1, 0)]);
    }

    #[test]
    fn touching_endpoints_count() {
        let l = [iv(0, 10)];
        let r = [iv(10, 20), iv(21, 30)];
        assert_eq!(sorted(forward_scan_join(&l, &r)), vec![(0, 0)]);
    }

    #[test]
    fn duplicate_free() {
        let l = vec![iv(0, 100); 3];
        let r = vec![iv(50, 60); 2];
        let pairs = forward_scan_join(&l, &r);
        let mut dedup = pairs.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(pairs.len(), dedup.len());
        assert_eq!(pairs.len(), 6);
    }

    #[test]
    fn matches_nested_loop_on_random_data() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(42);
        let mut side = |n: usize| -> Vec<Interval> {
            (0..n)
                .map(|_| {
                    let s = rng.gen_range(0..5_000);
                    iv(s, s + rng.gen_range(0i64..600))
                })
                .collect()
        };
        for _ in 0..8 {
            let l = side(70);
            let r = side(50);
            assert_eq!(
                sorted(forward_scan_join(&l, &r)),
                sorted(nested_loop_interval_join(&l, &r))
            );
        }
    }
}
