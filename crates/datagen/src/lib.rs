//! Seeded synthetic dataset generators.
//!
//! The paper evaluates on four real datasets (Table I): Wildfires (18M
//! points), Parks (10M polygons), NYCTaxi (173M intervals), AmazonReview
//! (83M texts). Those are multi-GB downloads tied to UCR-STAR and Amazon
//! dumps; this reproduction substitutes deterministic generators that keep
//! the *characteristics each algorithm exploits*:
//!
//! * **Wildfires** — points spatially *clustered* around fire complexes
//!   (uniform points would understate PBSM's pruning and skew behavior);
//! * **Parks** — convex polygon boundaries of varying size, plus a `tags`
//!   string drawn from a park-feature vocabulary (Query 2 joins on it);
//! * **NYCTaxi** — ride intervals with rush-hour start-time clustering and
//!   heavy-tailed durations, tagged `vendor ∈ {1, 2}`;
//! * **AmazonReview** — Zipf-distributed vocabulary (prefix filtering's
//!   whole premise) with 1–5 star ratings, and a controlled fraction of
//!   *near-duplicate* reviews so high-threshold joins have results, like
//!   real review corpora do;
//! * **Weather** — point + reading interval + temperature (Query 3).
//!
//! Every generator is a pure function of `(n, seed)`; experiments are
//! reproducible bit-for-bit.

pub mod datasets;
pub mod text;

pub use datasets::{
    amazon_reviews, nyctaxi, parks, weather, wildfires, GeneratorConfig, WORLD_LAT, WORLD_LON,
};
pub use text::{ReviewGenerator, Vocabulary};
