//! Zipfian text generation for the review corpus.

use rand::rngs::SmallRng;
use rand::Rng;

/// A vocabulary with a Zipf rank-frequency law: word `k` (1-based) is drawn
/// with probability proportional to `1 / k^s`.
///
/// Prefix filtering's effectiveness depends on exactly this shape — a few
/// very common tokens that the prefix skips, and a long tail of rare tokens
/// that make cheap buckets.
#[derive(Clone, Debug)]
pub struct Vocabulary {
    words: Vec<String>,
    /// Cumulative probabilities for inverse-CDF sampling.
    cdf: Vec<f64>,
}

impl Vocabulary {
    /// Build `size` synthetic words (`w0`, `w1`, ...) under Zipf exponent `s`.
    pub fn zipf(size: usize, s: f64) -> Self {
        assert!(size > 0, "vocabulary cannot be empty");
        let words = (0..size).map(|i| format!("w{i}")).collect();
        let mut cdf = Vec::with_capacity(size);
        let mut acc = 0.0;
        for k in 1..=size {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Vocabulary { words, cdf }
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the vocabulary is empty (never: construction requires > 0).
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Sample one word.
    pub fn sample<'a>(&'a self, rng: &mut SmallRng) -> &'a str {
        let u: f64 = rng.gen();
        let idx = self
            .cdf
            .partition_point(|&c| c < u)
            .min(self.words.len() - 1);
        &self.words[idx]
    }
}

/// Generates review texts, injecting near-duplicates.
#[derive(Clone, Debug)]
pub struct ReviewGenerator {
    vocab: Vocabulary,
    /// Words per review, inclusive range.
    pub min_len: usize,
    pub max_len: usize,
    /// Probability that a review is a light perturbation of an earlier one.
    pub near_dup_rate: f64,
    /// Fraction of tokens replaced when perturbing.
    pub perturbation: f64,
    history: Vec<Vec<String>>,
}

impl ReviewGenerator {
    /// Generator over a Zipf(1.05) vocabulary of `vocab_size` words.
    pub fn new(vocab_size: usize) -> Self {
        ReviewGenerator {
            vocab: Vocabulary::zipf(vocab_size, 1.05),
            min_len: 5,
            max_len: 40,
            near_dup_rate: 0.25,
            perturbation: 0.1,
            history: Vec::new(),
        }
    }

    /// Produce the next review text.
    pub fn next_review(&mut self, rng: &mut SmallRng) -> String {
        let tokens = if !self.history.is_empty() && rng.gen_bool(self.near_dup_rate) {
            // Perturb a random earlier review: swap ~perturbation of tokens.
            let base = &self.history[rng.gen_range(0..self.history.len())];
            let mut tokens = base.clone();
            for t in tokens.iter_mut() {
                if rng.gen_bool(self.perturbation) {
                    *t = self.vocab.sample(rng).to_owned();
                }
            }
            tokens
        } else {
            let len = rng.gen_range(self.min_len..=self.max_len);
            (0..len)
                .map(|_| self.vocab.sample(rng).to_owned())
                .collect()
        };
        // Cap history so memory stays bounded on large corpora.
        if self.history.len() < 10_000 {
            self.history.push(tokens.clone());
        }
        tokens.join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn zipf_is_skewed_toward_low_ranks() {
        let v = Vocabulary::zipf(1000, 1.0);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut head = 0usize;
        const N: usize = 20_000;
        for _ in 0..N {
            let w = v.sample(&mut rng);
            // First 10 words of a 1000-word Zipf(1) cover ~39% of mass.
            if let Some(num) = w.strip_prefix('w').and_then(|s| s.parse::<usize>().ok()) {
                if num < 10 {
                    head += 1;
                }
            }
        }
        let frac = head as f64 / N as f64;
        assert!((0.3..0.5).contains(&frac), "head fraction {frac}");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let v = Vocabulary::zipf(100, 1.0);
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(v.sample(&mut a), v.sample(&mut b));
        }
    }

    #[test]
    fn reviews_have_configured_lengths() {
        let mut g = ReviewGenerator::new(500);
        g.near_dup_rate = 0.0;
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..50 {
            let r = g.next_review(&mut rng);
            let words = r.split(' ').count();
            assert!((g.min_len..=g.max_len).contains(&words), "{words} words");
        }
    }

    #[test]
    fn near_duplicates_actually_appear() {
        use fudj_text_check::jaccard;
        let mut g = ReviewGenerator::new(2000);
        g.near_dup_rate = 0.5;
        let mut rng = SmallRng::seed_from_u64(11);
        let reviews: Vec<String> = (0..200).map(|_| g.next_review(&mut rng)).collect();
        let mut high_sim = 0;
        for (i, a) in reviews.iter().enumerate() {
            for b in reviews.iter().skip(i + 1) {
                if jaccard(a, b) >= 0.8 {
                    high_sim += 1;
                }
            }
        }
        assert!(high_sim > 10, "only {high_sim} high-similarity pairs");
    }

    /// Minimal local Jaccard so this crate's tests don't depend on
    /// fudj-text (which is a separate substrate).
    mod fudj_text_check {
        use std::collections::HashSet;

        pub fn jaccard(a: &str, b: &str) -> f64 {
            let sa: HashSet<&str> = a.split(' ').collect();
            let sb: HashSet<&str> = b.split(' ').collect();
            let inter = sa.intersection(&sb).count();
            let union = sa.union(&sb).count();
            if union == 0 {
                1.0
            } else {
                inter as f64 / union as f64
            }
        }
    }
}
