//! The five synthetic datasets, as loadable [`Dataset`]s.

use crate::text::ReviewGenerator;
use fudj_geo::{Point, Polygon};
use fudj_storage::{Dataset, DatasetBuilder};
use fudj_temporal::Interval;
use fudj_types::{DataType, Field, Result, Row, Schema, Value};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Longitude range of the synthetic world (continental-US-like).
pub const WORLD_LON: (f64, f64) = (-125.0, -65.0);
/// Latitude range of the synthetic world.
pub const WORLD_LAT: (f64, f64) = (25.0, 50.0);

/// Epoch millis of 2022-01-01 (the Query 1 filter boundary).
pub const JAN_2022_MS: i64 = 18_993 * 86_400_000;
/// One year in milliseconds.
pub const YEAR_MS: i64 = 365 * 86_400_000;

/// Common generator knobs.
#[derive(Clone, Copy, Debug)]
pub struct GeneratorConfig {
    /// Record count.
    pub rows: usize,
    /// RNG seed — equal seeds give bit-identical datasets.
    pub seed: u64,
    /// Storage partitions of the produced dataset.
    pub partitions: usize,
}

impl GeneratorConfig {
    /// `rows` records under `seed`, stored in `partitions` partitions.
    pub fn new(rows: usize, seed: u64, partitions: usize) -> Self {
        GeneratorConfig {
            rows,
            seed,
            partitions,
        }
    }
}

fn rng_of(cfg: &GeneratorConfig) -> SmallRng {
    SmallRng::seed_from_u64(cfg.seed)
}

/// Clustered random point: most points near one of `centers`, some uniform.
fn clustered_point(rng: &mut SmallRng, centers: &[(f64, f64)]) -> Point {
    if rng.gen_bool(0.85) {
        let (cx, cy) = centers[rng.gen_range(0..centers.len())];
        // Box-Muller-ish spread around the center.
        let dx: f64 = rng.gen_range(-1.0..1.0) + rng.gen_range(-1.0..1.0);
        let dy: f64 = rng.gen_range(-1.0..1.0) + rng.gen_range(-1.0..1.0);
        Point::new(
            (cx + dx * 1.5).clamp(WORLD_LON.0, WORLD_LON.1),
            (cy + dy * 1.5).clamp(WORLD_LAT.0, WORLD_LAT.1),
        )
    } else {
        Point::new(
            rng.gen_range(WORLD_LON.0..WORLD_LON.1),
            rng.gen_range(WORLD_LAT.0..WORLD_LAT.1),
        )
    }
}

fn fire_centers(rng: &mut SmallRng) -> Vec<(f64, f64)> {
    (0..12)
        .map(|_| {
            (
                rng.gen_range(WORLD_LON.0..WORLD_LON.1),
                rng.gen_range(WORLD_LAT.0..WORLD_LAT.1),
            )
        })
        .collect()
}

/// `Wildfires(id uuid, location point, fire_start datetime, fire_end
/// datetime)` — clustered ignition points over two years (so Query 1's
/// `fire_start >= 01/01/2022` filter is selective).
pub fn wildfires(cfg: GeneratorConfig) -> Result<Dataset> {
    let schema = Schema::shared(vec![
        Field::new("id", DataType::Uuid),
        Field::new("location", DataType::Point),
        Field::new("fire_start", DataType::DateTime),
        Field::new("fire_end", DataType::DateTime),
    ]);
    let d = DatasetBuilder::new("Wildfires", schema)
        .primary_key("id")
        .partitions(cfg.partitions)
        .build()?;
    let mut rng = rng_of(&cfg);
    let centers = fire_centers(&mut rng);
    for i in 0..cfg.rows {
        let loc = clustered_point(&mut rng, &centers);
        let start = JAN_2022_MS - YEAR_MS + rng.gen_range(0..2 * YEAR_MS);
        let duration = rng.gen_range(3_600_000i64..30 * 86_400_000); // 1 h – 30 d
        d.insert(Row::new(vec![
            Value::Uuid(i as u128 | (1 << 96)),
            Value::Point(loc),
            Value::DateTime(start),
            Value::DateTime(start + duration),
        ]))?;
    }
    Ok(d)
}

/// Convex-ish park polygon around a center.
fn park_polygon(rng: &mut SmallRng) -> Polygon {
    let cx: f64 = rng.gen_range(WORLD_LON.0..WORLD_LON.1);
    let cy: f64 = rng.gen_range(WORLD_LAT.0..WORLD_LAT.1);
    // Log-uniform radius: many small parks, a few large ones. Radii are
    // scaled up relative to real parks so that laptop-scale record counts
    // (10³–10⁵ instead of the paper's 10M) still produce join matches at a
    // density comparable to the full datasets.
    let radius = 0.15 * (1.0f64 / rng.gen_range(0.001..1.0f64)).powf(0.5);
    let radius = radius.min(3.0);
    let vertices = rng.gen_range(4..10usize);
    let ring = (0..vertices)
        .map(|k| {
            let angle = (k as f64 / vertices as f64) * std::f64::consts::TAU;
            let r = radius * rng.gen_range(0.6..1.0f64);
            Point::new(
                (cx + r * angle.cos()).clamp(WORLD_LON.0, WORLD_LON.1),
                (cy + r * angle.sin()).clamp(WORLD_LAT.0, WORLD_LAT.1),
            )
        })
        .collect();
    Polygon::new(ring)
}

/// Park-feature tag vocabulary (Query 2 joins on Jaccard similarity of tags).
const PARK_TAGS: &[&str] = &[
    "river",
    "scenic",
    "landscape",
    "camping",
    "backpacking",
    "hiking",
    "trail",
    "lake",
    "fishing",
    "swimming",
    "picnic",
    "wildlife",
    "forest",
    "canyon",
    "waterfall",
    "desert",
    "mountain",
    "beach",
    "playground",
    "dogs",
    "biking",
    "climbing",
    "caves",
    "historic",
];

/// `Parks(id uuid, boundary polygon, tags string)`.
pub fn parks(cfg: GeneratorConfig) -> Result<Dataset> {
    let schema = Schema::shared(vec![
        Field::new("id", DataType::Uuid),
        Field::new("boundary", DataType::Polygon),
        Field::new("tags", DataType::String),
    ]);
    let d = DatasetBuilder::new("Parks", schema)
        .primary_key("id")
        .partitions(cfg.partitions)
        .build()?;
    let mut rng = rng_of(&cfg);
    for i in 0..cfg.rows {
        let boundary = park_polygon(&mut rng);
        let tag_count = rng.gen_range(2..7usize);
        let mut tags: Vec<&str> = (0..tag_count)
            .map(|_| PARK_TAGS[rng.gen_range(0..PARK_TAGS.len())])
            .collect();
        tags.sort_unstable();
        tags.dedup();
        d.insert(Row::new(vec![
            Value::Uuid(i as u128 | (2 << 96)),
            Value::polygon(boundary),
            Value::str(tags.join(", ")),
        ]))?;
    }
    Ok(d)
}

/// `NYCTaxi(id uuid, vendor bigint, ride_interval interval)` — start times
/// cluster at rush hours; durations are heavy-tailed.
pub fn nyctaxi(cfg: GeneratorConfig) -> Result<Dataset> {
    let schema = Schema::shared(vec![
        Field::new("id", DataType::Uuid),
        Field::new("Vendor", DataType::Int64),
        Field::new("ride_interval", DataType::Interval),
    ]);
    let d = DatasetBuilder::new("NYCTaxi", schema)
        .primary_key("id")
        .partitions(cfg.partitions)
        .build()?;
    let mut rng = rng_of(&cfg);
    for i in 0..cfg.rows {
        let day = rng.gen_range(0..365i64);
        // Rush-hour mixture: 8am, 6pm, or uniform.
        let hour_ms: i64 = match rng.gen_range(0..3u8) {
            0 => 8 * 3_600_000 + rng.gen_range(-3_600_000i64..3_600_000),
            1 => 18 * 3_600_000 + rng.gen_range(-3_600_000i64..3_600_000),
            _ => rng.gen_range(0..86_400_000),
        };
        let start = JAN_2022_MS + day * 86_400_000 + hour_ms.clamp(0, 86_399_000);
        // Heavy tail: median ~10 min, occasional multi-hour rides.
        let u: f64 = rng.gen_range(0.001..1.0);
        let duration = (600_000.0 * u.powf(-0.5)).min(4.0 * 3_600_000.0) as i64;
        d.insert(Row::new(vec![
            Value::Uuid(i as u128 | (3 << 96)),
            Value::Int64(1 + (rng.gen_bool(0.5) as i64)),
            Value::Interval(Interval::new(start, start + duration)),
        ]))?;
    }
    Ok(d)
}

/// `AmazonReview(id uuid, overall bigint, review string)` — Zipf vocabulary
/// with near-duplicate injection.
pub fn amazon_reviews(cfg: GeneratorConfig) -> Result<Dataset> {
    let schema = Schema::shared(vec![
        Field::new("id", DataType::Uuid),
        Field::new("overall", DataType::Int64),
        Field::new("review", DataType::String),
    ]);
    let d = DatasetBuilder::new("AmazonReview", schema)
        .primary_key("id")
        .partitions(cfg.partitions)
        .build()?;
    let mut rng = rng_of(&cfg);
    let mut gen = ReviewGenerator::new(5_000);
    for i in 0..cfg.rows {
        // Real review corpora skew positive.
        let overall = *[5i64, 5, 5, 4, 4, 3, 2, 1]
            .get(rng.gen_range(0..8usize))
            .unwrap();
        let review = gen.next_review(&mut rng);
        d.insert(Row::new(vec![
            Value::Uuid(i as u128 | (4 << 96)),
            Value::Int64(overall),
            Value::str(review),
        ]))?;
    }
    Ok(d)
}

/// `Weather(id uuid, location point, reading_interval interval, temp bigint)`
/// — for Query 3's combined spatial + interval join.
pub fn weather(cfg: GeneratorConfig) -> Result<Dataset> {
    let schema = Schema::shared(vec![
        Field::new("id", DataType::Uuid),
        Field::new("location", DataType::Point),
        Field::new("reading_interval", DataType::Interval),
        Field::new("temp", DataType::Int64),
    ]);
    let d = DatasetBuilder::new("Weather", schema)
        .primary_key("id")
        .partitions(cfg.partitions)
        .build()?;
    let mut rng = rng_of(&cfg);
    let centers = fire_centers(&mut rng);
    for i in 0..cfg.rows {
        let loc = clustered_point(&mut rng, &centers);
        let start = JAN_2022_MS + rng.gen_range(0..YEAR_MS);
        let duration = rng.gen_range(1..48i64) * 3_600_000; // 1–48 h readings
        d.insert(Row::new(vec![
            Value::Uuid(i as u128 | (5 << 96)),
            Value::Point(loc),
            Value::Interval(Interval::new(start, start + duration)),
            Value::Int64(rng.gen_range(-20..45)),
        ]))?;
    }
    Ok(d)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(rows: usize) -> GeneratorConfig {
        GeneratorConfig::new(rows, 7, 4)
    }

    #[test]
    fn all_generators_produce_requested_rows() {
        assert_eq!(wildfires(cfg(100)).unwrap().len(), 100);
        assert_eq!(parks(cfg(100)).unwrap().len(), 100);
        assert_eq!(nyctaxi(cfg(100)).unwrap().len(), 100);
        assert_eq!(amazon_reviews(cfg(100)).unwrap().len(), 100);
        assert_eq!(weather(cfg(100)).unwrap().len(), 100);
    }

    #[test]
    fn determinism_same_seed_same_data() {
        let a = wildfires(cfg(50)).unwrap();
        let b = wildfires(cfg(50)).unwrap();
        let mut ra = a.all_rows();
        let mut rb = b.all_rows();
        ra.sort();
        rb.sort();
        assert_eq!(ra, rb);

        let c = wildfires(GeneratorConfig::new(50, 8, 4)).unwrap();
        let mut rc = c.all_rows();
        rc.sort();
        assert_ne!(ra, rc, "different seed, different data");
    }

    #[test]
    fn wildfire_geometry_and_times_in_range() {
        let d = wildfires(cfg(200)).unwrap();
        for row in d.all_rows() {
            let p = row.get(1).as_point().unwrap();
            assert!((WORLD_LON.0..=WORLD_LON.1).contains(&p.x));
            assert!((WORLD_LAT.0..=WORLD_LAT.1).contains(&p.y));
            let start = match row.get(2) {
                Value::DateTime(ms) => *ms,
                other => panic!("{other:?}"),
            };
            let end = match row.get(3) {
                Value::DateTime(ms) => *ms,
                other => panic!("{other:?}"),
            };
            assert!(start < end);
        }
    }

    #[test]
    fn parks_have_valid_polygons_and_tags() {
        let d = parks(cfg(200)).unwrap();
        for row in d.all_rows() {
            let poly = row.get(1).as_polygon().unwrap();
            assert!(poly.len() >= 3);
            assert!(poly.area() > 0.0);
            let tags = row.get(2).as_str().unwrap();
            assert!(!tags.is_empty());
        }
    }

    #[test]
    fn taxi_vendors_split_and_intervals_valid() {
        let d = nyctaxi(cfg(500)).unwrap();
        let mut v1 = 0;
        for row in d.all_rows() {
            let v = row.get(1).as_i64().unwrap();
            assert!(v == 1 || v == 2);
            if v == 1 {
                v1 += 1;
            }
            let iv = row.get(2).as_interval().unwrap();
            assert!(iv.duration() > 0);
        }
        assert!((100..400).contains(&v1), "vendor 1 count {v1} of 500");
    }

    #[test]
    fn reviews_skew_positive() {
        let d = amazon_reviews(cfg(800)).unwrap();
        let fives = d
            .all_rows()
            .iter()
            .filter(|r| r.get(1).as_i64().unwrap() == 5)
            .count();
        assert!(fives > 200, "only {fives} five-star reviews of 800");
    }

    #[test]
    fn spatial_clustering_is_present() {
        // Clustered points should leave parts of the world nearly empty:
        // compare occupancy of a coarse grid to the uniform expectation.
        let d = wildfires(cfg(2000)).unwrap();
        let mut cells = std::collections::HashSet::new();
        for row in d.all_rows() {
            let p = row.get(1).as_point().unwrap();
            let cx = ((p.x - WORLD_LON.0) / (WORLD_LON.1 - WORLD_LON.0) * 20.0) as i64;
            let cy = ((p.y - WORLD_LAT.0) / (WORLD_LAT.1 - WORLD_LAT.0) * 20.0) as i64;
            cells.insert((cx.min(19), cy.min(19)));
        }
        // 2000 uniform points would occupy essentially all 400 cells
        // (expected empty ≈ 400·e⁻⁵ ≈ 3); clustering leaves far more empty.
        assert!(
            cells.len() < 360,
            "occupied {} of 400 cells — not clustered",
            cells.len()
        );
    }
}
