//! Benchmark harness regenerating every table and figure of the paper.
//!
//! The `figures` binary drives everything:
//!
//! ```text
//! cargo run -p fudj-bench --release --bin figures -- all
//! cargo run -p fudj-bench --release --bin figures -- fig9
//! ```
//!
//! | Subcommand | Paper artifact |
//! |---|---|
//! | `table1`   | Table I — dataset inventory (synthetic counterparts) |
//! | `table2`   | Table II — LOC, FUDJ vs built-in |
//! | `fig1`     | Fig. 1 — productivity vs performance positioning |
//! | `fig9`     | Fig. 9 — runtime vs record count, FUDJ/built-in/on-top |
//! | `fig10`    | Fig. 10 — runtime vs worker count |
//! | `fig11`    | Fig. 11 — bucket-count and similarity-threshold sweeps |
//! | `fig12`    | Fig. 12 — duplicate handling + advanced local join |
//! | `overhead` | §VII-B — per-record FUDJ-vs-built-in overhead |
//!
//! Absolute numbers will not match the paper's 12-node cluster; the claims
//! under reproduction are the *shapes*: who wins, by roughly what factor,
//! and where the curves bend. `EXPERIMENTS.md` records one full run.

pub mod loc;
pub mod runner;
pub mod serving;
pub mod workloads;

pub use runner::{measure, JoinKind, Strategy};
pub use workloads::Workload;

/// Print a row-per-line table with aligned columns.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>w$}", w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Format seconds compactly.
pub fn fmt_secs(s: f64) -> String {
    if s < 0.001 {
        format!("{:.0}µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.1}ms", s * 1e3)
    } else {
        format!("{s:.2}s")
    }
}
