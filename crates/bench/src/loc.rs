//! Table II — lines-of-code accounting, computed from this repository's
//! actual sources.
//!
//! Methodology (documented with the numbers it produces):
//!
//! * **FUDJ** — the user-written join class alone (`spatial.rs`,
//!   `interval.rs`, `textsim.rs` in `fudj-joins`), comments, blank lines,
//!   and test modules stripped. That is all a developer writes under the
//!   framework.
//! * **Built-in** — what hand-integrating the same algorithm costs without
//!   the framework: the native operator section of `builtin.rs` *plus* the
//!   engine-side distributed-join machinery every built-in operator would
//!   have to re-implement per join in the paper's setting (the Fig. 8
//!   execution in `fudj_exec::fudj_join` and the optimizer's join-rewrite
//!   in `fudj_planner::optimizer`) — the code the FUDJ framework writes
//!   once so that join authors don't.

use std::path::{Path, PathBuf};

/// Workspace root, resolved from this crate's manifest directory.
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

/// Count non-blank, non-comment lines, excluding `#[cfg(test)]` modules.
pub fn count_loc(source: &str) -> usize {
    let mut count = 0usize;
    let mut in_block_comment = false;
    let mut test_mod_depth: Option<usize> = None; // brace depth at test mod
    let mut depth = 0usize;

    for line in source.lines() {
        let trimmed = line.trim();

        // Track and skip test modules by brace depth.
        if test_mod_depth.is_none() && trimmed.starts_with("#[cfg(test)]") {
            test_mod_depth = Some(depth);
        }

        let mut code = false;
        let mut chars = trimmed.chars().peekable();
        let mut line_comment = false;
        while let Some(c) = chars.next() {
            if in_block_comment {
                if c == '*' && chars.peek() == Some(&'/') {
                    chars.next();
                    in_block_comment = false;
                }
                continue;
            }
            if line_comment {
                break;
            }
            match c {
                '/' if chars.peek() == Some(&'/') => line_comment = true,
                '/' if chars.peek() == Some(&'*') => {
                    chars.next();
                    in_block_comment = true;
                }
                '{' => {
                    depth += 1;
                    code = true;
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    code = true;
                    if let Some(d) = test_mod_depth {
                        if depth == d {
                            test_mod_depth = None;
                            // The closing brace of the test mod itself does
                            // not count.
                            code = false;
                        }
                    }
                }
                c if !c.is_whitespace() => code = true,
                _ => {}
            }
        }

        if code && test_mod_depth.is_none() {
            count += 1;
        }
    }
    count
}

/// LOC of a whole file (tests and comments stripped).
pub fn count_file(path: &Path) -> usize {
    let src = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    count_loc(&src)
}

/// LOC of a banner-delimited section of a file: lines after the banner
/// containing `start` up to (excluding) the banner containing `end`, or EOF.
pub fn count_section(path: &Path, start: &str, end: Option<&str>) -> usize {
    let src = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let from = src
        .find(start)
        .unwrap_or_else(|| panic!("marker {start:?} in {}", path.display()));
    let section = match end {
        Some(end) => {
            let to = src[from..]
                .find(end)
                .map(|o| from + o)
                .unwrap_or_else(|| panic!("marker {end:?} in {}", path.display()));
            &src[from..to]
        }
        None => &src[from..],
    };
    count_loc(section)
}

/// One Table II row.
#[derive(Clone, Debug)]
pub struct LocRow {
    pub join: &'static str,
    pub fudj: usize,
    pub builtin: usize,
}

/// Compute Table II from the repository sources.
pub fn table2() -> Vec<LocRow> {
    let root = workspace_root();
    let joins = root.join("crates/joins/src");
    let builtin = joins.join("builtin.rs");

    // Engine-side machinery a hand-built operator re-implements per join.
    let engine_side = count_file(&root.join("crates/exec/src/fudj_join.rs"))
        + count_section(
            &root.join("crates/planner/src/optimizer.rs"),
            "fn rewrite_join",
            None,
        );
    let shared_helpers = count_section(
        &builtin,
        "// Shared helpers",
        Some("// Built-in spatial join"),
    );
    let share = shared_helpers / 3;

    vec![
        LocRow {
            join: "Spatial",
            fudj: count_file(&joins.join("spatial.rs")),
            builtin: count_section(
                &builtin,
                "// Built-in spatial join",
                Some("// Advanced spatial join"),
            ) + share
                + engine_side,
        },
        LocRow {
            join: "Interval",
            fudj: count_file(&joins.join("interval.rs")),
            builtin: count_section(
                &builtin,
                "// Built-in interval join",
                Some("// Advanced interval join"),
            ) + share
                + engine_side,
        },
        LocRow {
            join: "Text-similarity",
            fudj: count_file(&joins.join("textsim.rs")),
            builtin: count_section(
                &builtin,
                "// Built-in text-similarity join",
                Some("#[cfg(test)]"),
            ) + share
                + engine_side,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_code_not_comments_or_tests() {
        let src = r#"
// a comment
/* block
   comment */
fn real() {
    let x = 1; // trailing comment
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        assert!(true);
    }
}
"#;
        // fn real() {, let x..., } = 3 lines.
        assert_eq!(count_loc(src), 3);
    }

    #[test]
    fn empty_and_comment_only_is_zero() {
        assert_eq!(count_loc(""), 0);
        assert_eq!(count_loc("// just\n// comments\n\n/* and block */"), 0);
    }

    #[test]
    fn table2_shape_matches_paper() {
        // The reproduction of Table II's headline: every FUDJ implementation
        // is several times smaller than its hand-integrated twin.
        for row in table2() {
            assert!(
                row.fudj > 30,
                "{}: FUDJ {} LOC is suspiciously small",
                row.join,
                row.fudj
            );
            assert!(
                row.builtin as f64 / row.fudj as f64 > 2.0,
                "{}: built-in {} vs FUDJ {} — ratio too small",
                row.join,
                row.builtin,
                row.fudj
            );
        }
    }
}
