//! Quick perf sanity check + machine-readable summary.
//!
//! Runs the three paper workloads through the concurrent scheduler
//! (so each run carries a per-query control clock), times the pool
//! dispatch overhead against fresh thread spawning, measures the cost
//! of stage checkpointing (off / on / on while surviving a worker
//! death), and writes the results to `BENCH_PR5.json` at the repository
//! root. The JSON format is documented in `EXPERIMENTS.md`.

use fudj_bench::runner::{measure, RunConfig, Strategy};
use fudj_bench::workloads::Workload;
use fudj_exec::{FaultConfig, MetricsSnapshot, WorkerPool};
use fudj_planner::PlanOptions;
use fudj_types::Value;
use std::fmt::Write as _;
use std::time::Instant;

/// One workload's scheduled measurement.
struct WorkloadResult {
    name: &'static str,
    wall_seconds: f64,
    rows: usize,
    metrics: MetricsSnapshot,
}

/// Run one workload end to end through `Session::submit`, so the
/// metrics snapshot carries the scheduler's simulated clock.
fn scheduled_run(
    workload: Workload,
    records: usize,
    workers: usize,
    buckets: Option<i64>,
) -> WorkloadResult {
    let mut session = workload.session(records, workers, None);
    let mut options = PlanOptions::default();
    if let Some(b) = buckets {
        options.extra_join_params.push(Value::Int64(b));
    }
    session.set_options(options);

    let sql = workload.sql(0.9);
    let start = Instant::now();
    let handle = session.submit(&sql).expect("perfcheck query must submit");
    let (batch, metrics) = handle.wait().expect("perfcheck query must run");
    WorkloadResult {
        name: workload.name(),
        wall_seconds: start.elapsed().as_secs_f64(),
        rows: batch.len(),
        metrics,
    }
}

/// Per-worker busy fractions of the run's wall-clock time.
fn busy_fractions(m: &MetricsSnapshot, wall_seconds: f64) -> Vec<f64> {
    m.per_worker
        .iter()
        .map(|w| {
            if wall_seconds > 0.0 {
                w.busy.as_secs_f64() / wall_seconds
            } else {
                0.0
            }
        })
        .collect()
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".to_owned()
    }
}

/// One recovery-overhead measurement: the spatial workload with a given
/// checkpoint policy and (optionally) a seeded death-only fault plan.
struct RecoveryRow {
    mode: &'static str,
    wall_seconds: f64,
    rows: usize,
    metrics: MetricsSnapshot,
}

fn recovery_run(
    mode: &'static str,
    records: usize,
    workers: usize,
    checkpoints: bool,
    death_seed: Option<u64>,
) -> RecoveryRow {
    let mut session = Workload::Spatial.session(records, workers, None);
    let mut options = PlanOptions::default();
    options.extra_join_params.push(Value::Int64(32));
    session.set_options(options);
    if let Some(seed) = death_seed {
        // Deaths only: the row isolates death-recovery cost, not the
        // transient-fault retry machinery.
        session.set_faults(Some(FaultConfig {
            worker_death_prob: 0.35,
            ..FaultConfig::quiet(seed)
        }));
    }
    if checkpoints {
        session
            .execute("SET checkpoint_stages = all;")
            .expect("checkpoint knob must apply");
    }
    let sql = Workload::Spatial.sql(0.9);
    let start = Instant::now();
    let output = session.execute(&sql).expect("perfcheck query must run");
    let wall_seconds = start.elapsed().as_secs_f64();
    RecoveryRow {
        mode,
        wall_seconds,
        rows: output.batch().len(),
        metrics: output.metrics().clone(),
    }
}

/// The death row must actually contain a death: the schedule is a pure
/// function of the seed, so scan a small deterministic seed range for
/// the first run that survives at least one.
fn recovery_death_run(records: usize, workers: usize) -> RecoveryRow {
    for seed in 1..64 {
        let row = recovery_run(
            "checkpoints_on_with_death",
            records,
            workers,
            true,
            Some(seed),
        );
        if row.metrics.recovery.deaths_survived > 0 {
            return row;
        }
    }
    panic!("no seed in 1..64 produced a worker death — death arming is broken");
}

fn main() {
    // Warm + best-of-3 end-to-end numbers for the scaling headline.
    for workers in [1usize, 4] {
        let cfg = RunConfig {
            workers,
            buckets: Some(32),
            ..RunConfig::new(Workload::Spatial, Strategy::Fudj, 4000)
        };
        let _ = measure(&cfg);
        let best = (0..3)
            .map(|_| measure(&cfg).seconds)
            .fold(f64::MAX, f64::min);
        println!("end-to-end spatial FUDJ, workers={workers}: best {best:.4}s");
    }

    // The three paper workloads, scheduled.
    const WORKERS: usize = 4;
    let results = [
        scheduled_run(Workload::Spatial, 2000, WORKERS, Some(32)),
        scheduled_run(Workload::Interval, 800, WORKERS, Some(64)),
        scheduled_run(Workload::Text, 600, WORKERS, None),
    ];
    for r in &results {
        println!(
            "scheduled {}: {} rows, {} bytes shuffled, sim {} ms, wall {:.4}s",
            r.name, r.rows, r.metrics.bytes_shuffled, r.metrics.sim_clock_ms, r.wall_seconds
        );
    }

    // Dispatch overhead: persistent pool vs a fresh thread batch per call
    // (what exchange/operator fan-out used to do), 4 tasks x 2000 calls.
    const CALLS: usize = 2000;
    let pool = WorkerPool::new(4);
    let start = Instant::now();
    for _ in 0..CALLS {
        let out = pool.run(vec![1u64, 2, 3, 4], |_, x| Ok(x * 2)).unwrap();
        assert_eq!(out.len(), 4);
    }
    let pooled = start.elapsed();

    let start = Instant::now();
    for _ in 0..CALLS {
        let items = [1u64, 2, 3, 4];
        let out: Vec<u64> = std::thread::scope(|s| {
            items
                .iter()
                .map(|x| s.spawn(move || x * 2))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert_eq!(out.len(), 4);
    }
    let spawned = start.elapsed();
    println!(
        "dispatch of 4 tasks x {CALLS} calls: pool {pooled:?}, fresh spawn {spawned:?} ({:.1}x)",
        spawned.as_secs_f64() / pooled.as_secs_f64()
    );

    // Recovery overhead: the same workload with checkpointing off, on,
    // and on while surviving an injected worker death.
    let recovery_rows = [
        recovery_run("checkpoints_off", 2000, WORKERS, false, None),
        recovery_run("checkpoints_on", 2000, WORKERS, true, None),
        recovery_death_run(2000, WORKERS),
    ];
    let base_rows = recovery_rows[0].rows;
    for r in &recovery_rows {
        assert_eq!(r.rows, base_rows, "{}: recovery changed the answer", r.mode);
        let rec = &r.metrics.recovery;
        println!(
            "recovery {}: wall {:.4}s, {} checkpoints ({} bytes), {} restored, \
             {} recomputed, {} deaths",
            r.mode,
            r.wall_seconds,
            rec.checkpoints_written,
            rec.checkpoint_bytes_written,
            rec.partitions_restored,
            rec.partitions_recomputed,
            rec.deaths_survived,
        );
    }

    // Machine-readable summary (no JSON dependency in the workspace, so
    // the document is assembled by hand).
    let mut json = String::new();
    json.push_str("{\n  \"pr\": 5,\n");
    let _ = writeln!(json, "  \"workers\": {WORKERS},");
    json.push_str("  \"workloads\": [\n");
    for (i, r) in results.iter().enumerate() {
        let fractions: Vec<String> = busy_fractions(&r.metrics, r.wall_seconds)
            .into_iter()
            .map(json_f64)
            .collect();
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"rows\": {}, \"bytes_shuffled\": {}, \
             \"simulated_ms\": {}, \"wall_seconds\": {}, \"pool_busy_fractions\": [{}]}}",
            r.name,
            r.rows,
            r.metrics.bytes_shuffled,
            r.metrics.sim_clock_ms,
            json_f64(r.wall_seconds),
            fractions.join(", "),
        );
        json.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str("  \"recovery_overhead\": [\n");
    for (i, r) in recovery_rows.iter().enumerate() {
        let rec = &r.metrics.recovery;
        let _ = write!(
            json,
            "    {{\"mode\": \"{}\", \"rows\": {}, \"wall_seconds\": {}, \
             \"checkpoints_written\": {}, \"checkpoint_bytes_written\": {}, \
             \"checkpoints_read\": {}, \"partitions_restored\": {}, \
             \"partitions_recomputed\": {}, \"deaths_survived\": {}}}",
            r.mode,
            r.rows,
            json_f64(r.wall_seconds),
            rec.checkpoints_written,
            rec.checkpoint_bytes_written,
            rec.checkpoints_read,
            rec.partitions_restored,
            rec.partitions_recomputed,
            rec.deaths_survived,
        );
        json.push_str(if i + 1 < recovery_rows.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"dispatch\": {{\"calls\": {CALLS}, \"tasks_per_call\": 4, \
         \"pool_seconds\": {}, \"spawn_seconds\": {}, \"spawn_over_pool\": {}}}",
        json_f64(pooled.as_secs_f64()),
        json_f64(spawned.as_secs_f64()),
        json_f64(spawned.as_secs_f64() / pooled.as_secs_f64()),
    );
    json.push_str("}\n");

    // The bench crate lives at crates/bench; the JSON lands at the root.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_PR5.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
