//! Quick perf sanity check + machine-readable summary.
//!
//! Runs the three paper workloads through the concurrent scheduler
//! (so each run carries a per-query control clock), times the pool
//! dispatch overhead against fresh thread spawning, measures the cost
//! of stage checkpointing (off / on / on while surviving a worker
//! death), and writes the results to `BENCH_PR5.json` at the repository
//! root. It then sweeps the hybrid-hash memory budget (unbounded, 50%,
//! 10%, 1% of the per-worker COMBINE input) across all four join
//! classes and writes the runtime-vs-budget curves to `BENCH_PR6.json`,
//! races the row-at-a-time engine against the columnar stride engine on
//! scan/filter/aggregate pipelines, writing the speedups to
//! `BENCH_PR7.json`, and finally measures ingest throughput under the
//! durability knobs (no store / fsync-every-write / every-64 / off)
//! plus snapshot and recovery-replay cost, writing `BENCH_PR8.json`,
//! and replays seeded multi-tenant workloads through the serving tier
//! (caches on vs off, uniform vs shape-skewed, three priority classes),
//! writing `BENCH_PR9.json`, and sweeps crash-restart resumption of a
//! join-heavy journaled query across checkpoint cadences (no stage
//! boundaries / aggregate boundary only / every boundary), writing the
//! reopen-and-resume times plus the redo work saved to
//! `BENCH_PR10.json`. Every emitted file gets a one-line
//! `wrote <file> (<n> rows)` summary, and all the JSON formats are
//! documented in `EXPERIMENTS.md`.

use fudj_bench::runner::{measure, RunConfig, Strategy};
use fudj_bench::workloads::Workload;
use fudj_core::FudjEngineJoin;
use fudj_exec::{
    AggFunc, Aggregate, Cluster, CmpOp, ColumnCompare, ExecMode, FaultConfig, FudjJoinNode,
    MetricsSnapshot, PhysicalPlan, WorkerPool,
};
use fudj_joins::EqualityFudj;
use fudj_planner::PlanOptions;
use fudj_storage::DatasetBuilder;
use fudj_types::{DataType, Field, Row, Schema, Value};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// One workload's scheduled measurement.
struct WorkloadResult {
    name: &'static str,
    wall_seconds: f64,
    rows: usize,
    metrics: MetricsSnapshot,
}

/// Run one workload end to end through `Session::submit`, so the
/// metrics snapshot carries the scheduler's simulated clock.
fn scheduled_run(
    workload: Workload,
    records: usize,
    workers: usize,
    buckets: Option<i64>,
) -> WorkloadResult {
    let mut session = workload.session(records, workers, None);
    let mut options = PlanOptions::default();
    if let Some(b) = buckets {
        options.extra_join_params.push(Value::Int64(b));
    }
    session.set_options(options);

    let sql = workload.sql(0.9);
    let start = Instant::now();
    let handle = session.submit(&sql).expect("perfcheck query must submit");
    let (batch, metrics) = handle.wait().expect("perfcheck query must run");
    WorkloadResult {
        name: workload.name(),
        wall_seconds: start.elapsed().as_secs_f64(),
        rows: batch.len(),
        metrics,
    }
}

/// Per-worker busy fractions of the run's wall-clock time.
fn busy_fractions(m: &MetricsSnapshot, wall_seconds: f64) -> Vec<f64> {
    m.per_worker
        .iter()
        .map(|w| {
            if wall_seconds > 0.0 {
                w.busy.as_secs_f64() / wall_seconds
            } else {
                0.0
            }
        })
        .collect()
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".to_owned()
    }
}

/// Write one `BENCH_PR*.json` to the repository root and print a one-line
/// summary: the file written and how many data rows it carries (nested
/// JSON objects, one per measurement).
fn write_bench(file: &str, json: &str) {
    let rows = json
        .lines()
        .filter(|l| l.trim_start().starts_with("{\""))
        .count();
    // The bench crate lives at crates/bench; the JSON lands at the root.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(format!("../../{file}"));
    match std::fs::write(&path, json) {
        Ok(()) => println!("wrote {} ({rows} rows)", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

/// One recovery-overhead measurement: the spatial workload with a given
/// checkpoint policy and (optionally) a seeded death-only fault plan.
struct RecoveryRow {
    mode: &'static str,
    wall_seconds: f64,
    rows: usize,
    metrics: MetricsSnapshot,
}

fn recovery_run(
    mode: &'static str,
    records: usize,
    workers: usize,
    checkpoints: bool,
    death_seed: Option<u64>,
) -> RecoveryRow {
    let mut session = Workload::Spatial.session(records, workers, None);
    let mut options = PlanOptions::default();
    options.extra_join_params.push(Value::Int64(32));
    session.set_options(options);
    if let Some(seed) = death_seed {
        // Deaths only: the row isolates death-recovery cost, not the
        // transient-fault retry machinery.
        session.set_faults(Some(FaultConfig {
            worker_death_prob: 0.35,
            ..FaultConfig::quiet(seed)
        }));
    }
    if checkpoints {
        session
            .execute("SET checkpoint_stages = all;")
            .expect("checkpoint knob must apply");
    }
    let sql = Workload::Spatial.sql(0.9);
    let start = Instant::now();
    let output = session.execute(&sql).expect("perfcheck query must run");
    let wall_seconds = start.elapsed().as_secs_f64();
    RecoveryRow {
        mode,
        wall_seconds,
        rows: output.batch().len(),
        metrics: output.metrics().clone(),
    }
}

/// The death row must actually contain a death: the schedule is a pure
/// function of the seed, so scan a small deterministic seed range for
/// the first run that survives at least one.
fn recovery_death_run(records: usize, workers: usize) -> RecoveryRow {
    for seed in 1..64 {
        let row = recovery_run(
            "checkpoints_on_with_death",
            records,
            workers,
            true,
            Some(seed),
        );
        if row.metrics.recovery.deaths_survived > 0 {
            return row;
        }
    }
    panic!("no seed in 1..64 produced a worker death — death arming is broken");
}

/// One point on a join class's runtime-vs-budget curve.
struct SweepPoint {
    label: &'static str,
    budget: Option<usize>,
    rows: usize,
    wall_seconds: f64,
    metrics: MetricsSnapshot,
}

/// One join class's full budget sweep.
struct SweepCurve {
    class: &'static str,
    /// Theta classes broadcast, so hash repartitioning is unsound for
    /// them; over budget they spill both sides whole and block-nested-
    /// loop, which makes their spill volume flat across budgeted points.
    theta: bool,
    points: Vec<SweepPoint>,
}

/// Budget steps of the sweep: fractions of the measured per-worker
/// COMBINE input, so "50%" means half of what one spilling task sees.
const SWEEP_STEPS: [(&str, Option<u64>); 4] = [
    ("unbounded", None),
    ("50%", Some(2)),
    ("10%", Some(10)),
    ("1%", Some(100)),
];

/// Sweep one SQL workload: run unbounded to size the per-worker COMBINE
/// input (≈ shuffled rows / workers for default-match classes), then
/// re-run at each budget fraction through `SET memory_budget_rows`.
fn sweep_sql(
    class: &'static str,
    workload: Workload,
    records: usize,
    workers: usize,
) -> SweepCurve {
    let mut points = Vec::new();
    let mut per_task = 0u64;
    for (label, divisor) in SWEEP_STEPS {
        let budget = divisor.map(|d| ((per_task / d) as usize).max(4));
        let session = workload.session(records, workers, None);
        if let Some(b) = budget {
            session
                .execute(&format!("SET memory_budget_rows = {b};"))
                .expect("budget knob must apply");
        }
        let sql = workload.sql(0.9);
        let start = Instant::now();
        let output = session.execute(&sql).expect("sweep query must run");
        let wall_seconds = start.elapsed().as_secs_f64();
        let metrics = output.metrics().clone();
        if divisor.is_none() {
            // Theta classes broadcast instead of shuffling; their curve
            // exists to document that the budget is ignored, so any
            // positive base works.
            per_task = (metrics.rows_shuffled.max(metrics.rows_broadcast) / workers as u64).max(8);
        }
        points.push(SweepPoint {
            label,
            budget,
            rows: output.batch().len(),
            wall_seconds,
            metrics,
        });
    }
    SweepCurve {
        class,
        theta: workload == Workload::Interval,
        points,
    }
}

/// Sweep the equality class directly on a cluster (the SQL surface has
/// no equality workload): Zipf-ish skewed long keys, same budget steps.
fn sweep_equality(workers: usize) -> SweepCurve {
    let n = 1_200usize;
    let keys = |salt: u64| -> Vec<Value> {
        let mut x = 0x9E37_79B9 ^ salt;
        (0..n)
            .map(|_| {
                x ^= x >> 12;
                x ^= x << 25;
                x ^= x >> 27;
                let u = (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64;
                Value::Int64((64f64.powf(u) as i64).min(63))
            })
            .collect()
    };
    let dataset = |name: &str, keys: &[Value]| {
        let schema = Schema::shared(vec![
            Field::new("id", DataType::Int64),
            Field::new("k", DataType::Int64),
        ]);
        let d = DatasetBuilder::new(name, schema)
            .partitions(workers)
            .build()
            .unwrap();
        for (i, k) in keys.iter().enumerate() {
            d.insert(Row::new(vec![Value::Int64(i as i64), k.clone()]))
                .unwrap();
        }
        Arc::new(d)
    };
    let (l, r) = (keys(1), keys(2));
    let cluster = Cluster::new(workers);
    let mut points = Vec::new();
    // Equality tags each row exactly once, so the per-worker COMBINE
    // input is known up front (unlike the SQL classes, whose tag
    // amplification is measured from the unbounded run).
    let per_task = ((2 * n) / workers) as u64;
    for (label, divisor) in SWEEP_STEPS {
        let budget = divisor.map(|d| ((per_task / d) as usize).max(4));
        let mut node = FudjJoinNode::new(
            PhysicalPlan::Scan {
                dataset: dataset("sweep_l", &l),
            },
            PhysicalPlan::Scan {
                dataset: dataset("sweep_r", &r),
            },
            Arc::new(FudjEngineJoin::new(Arc::new(EqualityFudj))),
            1,
            1,
            vec![],
        );
        node.memory_budget_rows = budget;
        let start = Instant::now();
        let (batch, metrics) = cluster
            .execute(&PhysicalPlan::FudjJoin(node))
            .expect("equality sweep must run");
        let wall_seconds = start.elapsed().as_secs_f64();
        let metrics = metrics.snapshot();
        points.push(SweepPoint {
            label,
            budget,
            rows: batch.len(),
            wall_seconds,
            metrics,
        });
    }
    SweepCurve {
        class: "Equality",
        theta: false,
        points,
    }
}

/// Run the PR6 budget sweep across all four join classes, sanity-check
/// graceful degradation, and assemble the `BENCH_PR6.json` document.
fn budget_sweep(workers: usize) -> String {
    let curves = [
        sweep_sql("Spatial", Workload::Spatial, 1_600, workers),
        sweep_sql("Interval", Workload::Interval, 500, workers),
        sweep_sql("Set-similarity", Workload::Text, 500, workers),
        sweep_equality(workers),
    ];

    let mut json = String::new();
    json.push_str("{\n  \"pr\": 6,\n");
    let _ = writeln!(json, "  \"workers\": {workers},");
    json.push_str("  \"budget_sweep\": [\n");
    for (ci, c) in curves.iter().enumerate() {
        let base_rows = c.points[0].rows;
        for (pi, p) in c.points.iter().enumerate() {
            // Graceful degradation, not a cliff: every budget returns the
            // same answer, and for spillable classes the spill volume
            // rises monotonically as the budget shrinks.
            assert_eq!(
                p.rows, base_rows,
                "{}/{}: budget changed the answer",
                c.class, p.label
            );
            let m = &p.metrics;
            if c.theta && pi > 0 {
                // A budgeted theta run spills both sides whole and takes
                // the block-nested-loop path instead of repartitioning.
                assert!(
                    m.spill_bnl_fallbacks > 0,
                    "{}: budgeted theta run never took the BNL path",
                    c.class
                );
            }
            if pi > 0 {
                assert!(
                    m.spilled_bytes >= c.points[pi - 1].metrics.spilled_bytes,
                    "{}: spill volume not monotone in budget",
                    c.class
                );
            }
            if pi + 1 == c.points.len() {
                assert!(m.spilled_rows > 0, "{}: 1% budget never spilled", c.class);
            }
            println!(
                "sweep {} @ {}: {} rows, wall {:.4}s, spilled {} rows / {} bytes, \
                 {} resident / {} spilled parts, depth {}, {} BNL",
                c.class,
                p.label,
                p.rows,
                p.wall_seconds,
                m.spilled_rows,
                m.spilled_bytes,
                m.spill_resident_partitions,
                m.spill_spilled_partitions,
                m.spill_recursion_depth,
                m.spill_bnl_fallbacks,
            );
            let budget = p
                .budget
                .map(|b| b.to_string())
                .unwrap_or_else(|| "null".to_owned());
            let _ = write!(
                json,
                "    {{\"class\": \"{}\", \"budget_label\": \"{}\", \"budget_rows\": {}, \
                 \"rows\": {}, \"wall_seconds\": {}, \"spilled_rows\": {}, \
                 \"spilled_bytes\": {}, \"resident_partitions\": {}, \
                 \"spilled_partitions\": {}, \"passes\": {}, \"recursion_depth\": {}, \
                 \"bnl_fallbacks\": {}, \"peak_resident_rows\": {}}}",
                c.class,
                p.label,
                budget,
                p.rows,
                json_f64(p.wall_seconds),
                m.spilled_rows,
                m.spilled_bytes,
                m.spill_resident_partitions,
                m.spill_spilled_partitions,
                m.spill_passes,
                m.spill_recursion_depth,
                m.spill_bnl_fallbacks,
                m.spill_peak_resident_rows,
            );
            let last = ci + 1 == curves.len() && pi + 1 == c.points.len();
            json.push_str(if last { "\n" } else { ",\n" });
        }
    }
    json.push_str("  ]\n}\n");
    json
}

/// One row-vs-columnar race over the same physical plan and cluster.
struct ModePoint {
    workload: &'static str,
    rows_in: usize,
    rows_out: usize,
    row_seconds: f64,
    columnar_seconds: f64,
}

impl ModePoint {
    fn speedup(&self) -> f64 {
        self.row_seconds / self.columnar_seconds
    }
}

/// Time one plan under one execution mode, returning the sorted result,
/// the counter fingerprint source, and the best wall time over `rounds`
/// timed runs. Callers interleave row and columnar rounds so a noisy
/// scheduling burst penalizes both engines, not whichever one it hit.
struct ModeRace {
    rows: Vec<Row>,
    snap: MetricsSnapshot,
    best: f64,
}

fn race_mode(cluster: &Cluster, plan: &PhysicalPlan, mode: ExecMode, rounds: usize) -> ModeRace {
    let mut best = f64::MAX;
    let mut kept = None;
    for _ in 0..rounds {
        let start = Instant::now();
        let (batch, metrics) = cluster.execute_mode(plan, Some(mode)).unwrap();
        let wall = start.elapsed().as_secs_f64();
        let snap = metrics.snapshot();
        assert_eq!(snap.exec_mode, mode, "executor ignored the mode override");
        best = best.min(wall);
        if kept.is_none() {
            let mut rows = batch.into_rows();
            rows.sort();
            kept = Some((rows, snap));
        }
    }
    let (rows, snap) = kept.unwrap();
    ModeRace { rows, snap, best }
}

/// Race the row engine against the columnar engine on the pipelines the
/// stride kernels target — scan+filter, scan+aggregate, and the fused
/// scan+filter+aggregate — and assemble `BENCH_PR7.json`. Asserts that
/// both engines return bit-identical answers with identical logical
/// counter fingerprints, and that the columnar engine clears 1.5x
/// rows/sec on at least two of the pipelines.
fn exec_mode_sweep(workers: usize) -> String {
    const N: usize = 480_000;
    let schema = Arc::new(Schema::new(vec![
        Field::new("id", DataType::Int64),
        Field::new("grp", DataType::Int64),
        Field::new("val", DataType::Int64),
    ]));
    let data = DatasetBuilder::new("Fact", schema)
        .partitions(workers)
        .build()
        .unwrap();
    // Deterministic xorshift fill: 4096 groups, values in [0, 10_000).
    // The group count is large enough that the row engine's
    // `Vec<Value>`-keyed hash table feels every probe (alloc + deep hash
    // + deep compare), which is exactly the overhead the columnar
    // engine's i64 slot map amortizes away.
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for i in 0..N {
        let grp = (next() % 4096) as i64;
        let val = (next() % 10_000) as i64;
        data.insert(Row::new(vec![
            Value::Int64(i as i64),
            Value::Int64(grp),
            Value::Int64(val),
        ]))
        .unwrap();
    }
    let data = Arc::new(data);

    let scan = || PhysicalPlan::Scan {
        dataset: data.clone(),
    };
    let cmp = |column: usize, op: CmpOp, lit: i64| ColumnCompare {
        column,
        op,
        literal: Value::Int64(lit),
    };
    let filter = |input: PhysicalPlan, compares: Vec<ColumnCompare>| PhysicalPlan::VecFilter {
        input: Box::new(input),
        compares,
    };
    // ~78%-pass conjunction: real pruning work for the filter kernels.
    let selective = || {
        vec![
            cmp(1, CmpOp::GtEq, 64),
            cmp(1, CmpOp::NotEq, 300),
            cmp(2, CmpOp::Lt, 9_000),
        ]
    };
    // ~99%-pass predicate: almost everything flows through to the
    // aggregation, so this pipeline measures filter + aggregate together
    // rather than the filter alone.
    let pass_heavy = || vec![cmp(2, CmpOp::Lt, 9_900)];
    let project = |input: PhysicalPlan| PhysicalPlan::VecProject {
        input: Box::new(input),
        columns: vec![1],
        schema: Arc::new(Schema::new(vec![Field::new("grp", DataType::Int64)])),
    };
    let aggregate = |input: PhysicalPlan| PhysicalPlan::HashAggregate {
        input: Box::new(input),
        group_by: vec![1],
        aggregates: vec![
            Aggregate::count_star("c"),
            Aggregate::on(AggFunc::Sum, 2, "s"),
            Aggregate::on(AggFunc::Avg, 2, "a"),
        ],
    };
    let plans = [
        ("scan_filter_project", project(filter(scan(), selective()))),
        ("group_aggregate", aggregate(scan())),
        (
            "filter_group_aggregate",
            aggregate(filter(scan(), pass_heavy())),
        ),
    ];

    let cluster = Cluster::new(workers);
    let mut points = Vec::new();
    for (name, plan) in &plans {
        let row = race_mode(&cluster, plan, ExecMode::Row, 6);
        let col = race_mode(&cluster, plan, ExecMode::Columnar, 6);
        assert_eq!(row.rows, col.rows, "{name}: engines disagree on the answer");
        assert_eq!(
            row.snap.fingerprint(),
            col.snap.fingerprint(),
            "{name}: engines disagree on logical counters"
        );
        assert!(!row.rows.is_empty(), "{name}: degenerate workload");
        points.push(ModePoint {
            workload: name,
            rows_in: N,
            rows_out: row.rows.len(),
            row_seconds: row.best,
            columnar_seconds: col.best,
        });
    }

    let mut json = String::new();
    json.push_str("{\n  \"pr\": 7,\n");
    let _ = writeln!(json, "  \"workers\": {workers},");
    let _ = writeln!(json, "  \"rows\": {N},");
    json.push_str("  \"exec_mode_sweep\": [\n");
    for (i, p) in points.iter().enumerate() {
        println!(
            "exec-mode {}: {} -> {} rows, row {:.4}s ({:.0} rows/s), \
             columnar {:.4}s ({:.0} rows/s), speedup {:.2}x",
            p.workload,
            p.rows_in,
            p.rows_out,
            p.row_seconds,
            p.rows_in as f64 / p.row_seconds,
            p.columnar_seconds,
            p.rows_in as f64 / p.columnar_seconds,
            p.speedup(),
        );
        let _ = write!(
            json,
            "    {{\"workload\": \"{}\", \"rows_in\": {}, \"rows_out\": {}, \
             \"row_seconds\": {}, \"columnar_seconds\": {}, \
             \"row_rows_per_sec\": {}, \"columnar_rows_per_sec\": {}, \
             \"speedup\": {}, \"counters_match\": true}}",
            p.workload,
            p.rows_in,
            p.rows_out,
            json_f64(p.row_seconds),
            json_f64(p.columnar_seconds),
            json_f64(p.rows_in as f64 / p.row_seconds),
            json_f64(p.rows_in as f64 / p.columnar_seconds),
            json_f64(p.speedup()),
        );
        json.push_str(if i + 1 < points.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    let cleared = points.iter().filter(|p| p.speedup() >= 1.5).count();
    assert!(
        cleared >= 2,
        "columnar engine cleared 1.5x on only {cleared} of {} pipelines",
        points.len()
    );
    json
}

/// One durable-ingest measurement.
struct IngestPoint {
    mode: &'static str,
    wall_seconds: f64,
    wal_records: u64,
    wal_bytes: u64,
    fsyncs: u64,
}

/// PR8: ingest throughput with no store, fsync-every-write,
/// fsync-every-64, and fsync-off durability, plus the snapshot and
/// recovery-replay cost on the fully-synced store. Durable modes must
/// not change the ingested row count, and recovery must restore every
/// row. Assembles `BENCH_PR8.json`.
fn durability_sweep() -> String {
    use fudj_sql::Session;
    const ROWS: usize = 20_000;
    const BATCH: usize = 200;

    let dir_for = |mode: &str| {
        std::env::temp_dir().join(format!("fudj-wal-bench-{}-{mode}", std::process::id()))
    };
    let kv_schema = || {
        Schema::shared(vec![
            Field::new("id", DataType::Int64),
            Field::new("tag", DataType::String),
        ])
    };
    let ingest = |session: &Session| {
        let d = session.catalog().get("kv").unwrap();
        for b in 0..(ROWS / BATCH) {
            d.insert_all((0..BATCH).map(|i| {
                let id = (b * BATCH + i) as i64;
                Row::new(vec![Value::Int64(id), Value::str(format!("t{}", id % 7))])
            }))
            .unwrap();
        }
    };

    let modes: [(&'static str, Option<&'static str>); 4] = [
        ("in_memory", None),
        ("wal_fsync_every_write", Some("sync")),
        ("wal_fsync_every_64", Some("64")),
        ("wal_fsync_off", Some("off")),
    ];
    let mut points = Vec::new();
    for (mode, durability) in modes {
        let session = Session::new(4);
        if let Some(knob) = durability {
            let dir = dir_for(mode);
            let _ = std::fs::remove_dir_all(&dir);
            session
                .execute(&format!("SET durability = {knob};"))
                .expect("durability knob must apply");
            session
                .execute(&format!("SET wal_dir = '{}';", dir.display()))
                .expect("wal_dir must open");
        }
        session
            .register_dataset(
                DatasetBuilder::new("kv", kv_schema())
                    .primary_key("id")
                    .partitions(4)
                    .build()
                    .unwrap(),
            )
            .unwrap();
        let start = Instant::now();
        ingest(&session);
        let wall_seconds = start.elapsed().as_secs_f64();
        assert_eq!(
            session.catalog().get("kv").unwrap().len(),
            ROWS,
            "{mode}: durability changed the ingested row count"
        );
        let stats = session.durable().map(|s| s.stats()).unwrap_or_default();
        println!(
            "durable ingest {mode}: {ROWS} rows in {wall_seconds:.4}s ({:.0} rows/s), \
             {} WAL records ({} bytes), {} fsyncs",
            ROWS as f64 / wall_seconds,
            stats.wal_records_appended,
            stats.wal_bytes_appended,
            stats.wal_fsyncs,
        );
        points.push(IngestPoint {
            mode,
            wall_seconds,
            wal_records: stats.wal_records_appended,
            wal_bytes: stats.wal_bytes_appended,
            fsyncs: stats.wal_fsyncs,
        });
    }

    // Recovery replay + snapshot cost on the fully-synced store.
    let dir = dir_for("wal_fsync_every_write");
    let session = Session::new(4);
    let start = Instant::now();
    session
        .execute(&format!("SET wal_dir = '{}';", dir.display()))
        .expect("recovery open must succeed");
    let replay_seconds = start.elapsed().as_secs_f64();
    assert_eq!(
        session.catalog().get("kv").expect("recovered table").len(),
        ROWS,
        "recovery lost rows"
    );
    let store = session.durable().unwrap();
    let replay = store.stats();
    let start = Instant::now();
    session.persist().expect("snapshot must write");
    let snapshot_seconds = start.elapsed().as_secs_f64();
    let snap = store.stats();
    println!(
        "durable recovery: {} records / {} rows replayed in {replay_seconds:.4}s; \
         snapshot {} bytes in {snapshot_seconds:.4}s",
        replay.wal_records_replayed, replay.rows_replayed, snap.snapshot_bytes_written,
    );
    drop(session);
    for (mode, durability) in modes {
        if durability.is_some() {
            let _ = std::fs::remove_dir_all(dir_for(mode));
        }
    }

    let mut json = String::new();
    json.push_str("{\n  \"pr\": 8,\n");
    let _ = writeln!(json, "  \"rows\": {ROWS},");
    let _ = writeln!(json, "  \"batch_rows\": {BATCH},");
    json.push_str("  \"ingest\": [\n");
    for (i, p) in points.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"mode\": \"{}\", \"wall_seconds\": {}, \"rows_per_sec\": {}, \
             \"wal_records\": {}, \"wal_bytes\": {}, \"fsyncs\": {}}}",
            p.mode,
            json_f64(p.wall_seconds),
            json_f64(ROWS as f64 / p.wall_seconds),
            p.wal_records,
            p.wal_bytes,
            p.fsyncs,
        );
        json.push_str(if i + 1 < points.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"recovery\": {{\"wall_seconds\": {}, \"records_replayed\": {}, \
         \"rows_replayed\": {}}},",
        json_f64(replay_seconds),
        replay.wal_records_replayed,
        replay.rows_replayed,
    );
    let _ = writeln!(
        json,
        "  \"snapshot\": {{\"wall_seconds\": {}, \"bytes\": {}}}",
        json_f64(snapshot_seconds),
        snap.snapshot_bytes_written,
    );
    json.push_str("}\n");
    json
}

/// One crash-resume measurement: a checkpoint cadence, where the crash
/// struck, and what the restart paid to finish the query.
struct ResumePoint {
    cadence: &'static str,
    crash_site: &'static str,
    crash_hit: u64,
    uninterrupted_seconds: f64,
    checkpoint_frames: u64,
    checkpoint_bytes: u64,
    reopen_resume_seconds: f64,
    resumed_from: Option<String>,
    stages_resumed: u64,
    resume_rows_restored: u64,
    full_replays: u64,
}

/// PR10: crash-restart resumption cost vs checkpoint cadence on a
/// join-heavy journaled query. For each cadence, run the query once
/// uninterrupted (baseline time + checkpoint write overhead), then crash
/// the process at the last durable journal record the cadence emits,
/// reopen the same virtual disk, and time the reopen-and-resume. Coarser
/// cadences pay less during the run and redo more after the crash; the
/// no-boundary cadence must fall back to a full replay. Assembles
/// `BENCH_PR10.json`.
fn crash_resume_sweep() -> String {
    use fudj_datagen::{parks, wildfires, GeneratorConfig};
    use fudj_joins::standard_library;
    use fudj_sql::Session;
    use fudj_storage::{FaultFs, StorageFaultConfig};

    const RECORDS: usize = 600;
    const SEED: u64 = 7;
    const SQL: &str = "SELECT p.id, COUNT(w.id) AS num_fires FROM Parks p, Wildfires w \
         WHERE ST_Contains(p.boundary, w.location) GROUP BY p.id ORDER BY num_fires DESC";

    let make_session = || {
        let s = Session::new(4);
        s.install_library(standard_library());
        s.register_dataset(parks(GeneratorConfig::new(RECORDS, 1, 4)).unwrap())
            .unwrap();
        s.register_dataset(wildfires(GeneratorConfig::new(2 * RECORDS, 2, 4)).unwrap())
            .unwrap();
        s.execute(
            r#"CREATE JOIN st_contains(a: polygon, b: point)
               RETURNS boolean AS "spatial.SpatialJoin" AT flexiblejoins"#,
        )
        .unwrap();
        s
    };
    // `nostage` names no real boundary, so the journal records submit and
    // finish only — a crash mid-query always resumes via full replay.
    let cadences: [(&'static str, &'static str, &'static str, u64); 4] = [
        ("no_boundaries", "nostage", "journal:submit", 1),
        ("agg_boundary_only", "agg:shuffle", "journal:stage", 1),
        ("every_boundary", "all", "journal:stage", 2),
        ("every_boundary_late_crash", "all", "journal:stage", 3),
    ];

    let mut points = Vec::new();
    let mut base_rows = None;
    for (cadence, stages, crash_site, crash_hit) in cadences {
        // Uninterrupted baseline under the same cadence (fresh disk).
        let session = make_session();
        session.execute("SET checkpoint_durable = on").unwrap();
        session
            .execute(&format!("SET checkpoint_stages = '{stages}'"))
            .unwrap();
        session
            .open_wal_with(
                &format!("/bench-pr10-base-{cadence}"),
                FaultFs::new(StorageFaultConfig::quiet(SEED)),
            )
            .unwrap();
        let start = Instant::now();
        let out = session.execute(SQL).expect("baseline query must run");
        let uninterrupted_seconds = start.elapsed().as_secs_f64();
        let rows = out.batch().len();
        assert_eq!(
            *base_rows.get_or_insert(rows),
            rows,
            "{cadence}: answer drifted"
        );
        let stats = session.cluster().checkpoints().stats();
        let (checkpoint_frames, checkpoint_bytes) = (
            stats.durable_frames_written,
            stats.durable_frame_bytes_written,
        );
        drop(session);

        // Crash run: die at the cadence's last durable journal record.
        let fs = FaultFs::new(StorageFaultConfig::crash_at(SEED, crash_site, crash_hit));
        let dir = format!("/bench-pr10-crash-{cadence}");
        let session = make_session();
        session.execute("SET checkpoint_durable = on").unwrap();
        session
            .execute(&format!("SET checkpoint_stages = '{stages}'"))
            .unwrap();
        session.open_wal_with(&dir, fs.clone()).unwrap();
        assert!(
            session.execute(SQL).is_err(),
            "{cadence}: the armed {crash_site} crash never fired"
        );
        drop(session);

        // Restart: reopen the same disk; the open replays the WAL and
        // re-executes the unfinished query from its last boundary.
        fs.reopen_after_crash();
        let session = make_session();
        session.execute("SET checkpoint_durable = on").unwrap();
        session
            .execute(&format!("SET checkpoint_stages = '{stages}'"))
            .unwrap();
        let start = Instant::now();
        session.open_wal_with(&dir, fs).expect("reopen must resume");
        let reopen_resume_seconds = start.elapsed().as_secs_f64();
        let mut resumed = session.take_resumed();
        assert_eq!(resumed.len(), 1, "{cadence}: expected one pending query");
        let resumed = resumed.remove(0);
        let (batch, snapshot) = resumed.result.expect("resume must succeed");
        assert_eq!(batch.len(), rows, "{cadence}: resume changed the answer");
        let rec = &snapshot.recovery;
        if crash_site == "journal:stage" {
            assert!(
                rec.stages_resumed > 0,
                "{cadence}: boundary cadence fell back to full replay"
            );
        } else {
            // No boundary was ever committed, so there is no resume spec:
            // the restart re-executes the query from scratch.
            assert_eq!(
                rec.stages_resumed, 0,
                "{cadence}: resumed without a boundary"
            );
            assert!(
                resumed.resumed_from.is_none(),
                "{cadence}: phantom boundary"
            );
        }
        println!(
            "crash resume {cadence}: baseline {uninterrupted_seconds:.4}s \
             ({checkpoint_frames} durable frames, {checkpoint_bytes} bytes), \
             reopen+resume {reopen_resume_seconds:.4}s from {:?} \
             ({} stages resumed, {} rows restored, {} full replays)",
            resumed.resumed_from,
            rec.stages_resumed,
            rec.resume_rows_restored,
            rec.resume_full_replays,
        );
        points.push(ResumePoint {
            cadence,
            crash_site,
            crash_hit,
            uninterrupted_seconds,
            checkpoint_frames,
            checkpoint_bytes,
            reopen_resume_seconds,
            resumed_from: resumed.resumed_from,
            stages_resumed: rec.stages_resumed,
            resume_rows_restored: rec.resume_rows_restored,
            full_replays: rec.resume_full_replays,
        });
    }

    let mut json = String::new();
    json.push_str("{\n  \"pr\": 10,\n");
    json.push_str("  \"workload\": \"spatial_join_group_by\",\n");
    let _ = writeln!(json, "  \"parks\": {RECORDS},");
    let _ = writeln!(json, "  \"wildfires\": {},", 2 * RECORDS);
    json.push_str("  \"cadences\": [\n");
    for (i, p) in points.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"cadence\": \"{}\", \"crash_site\": \"{}\", \"crash_hit\": {}, \
             \"uninterrupted_seconds\": {}, \"checkpoint_frames\": {}, \
             \"checkpoint_bytes\": {}, \"reopen_resume_seconds\": {}, \
             \"resumed_from\": {}, \"stages_resumed\": {}, \
             \"resume_rows_restored\": {}, \"full_replays\": {}}}",
            p.cadence,
            p.crash_site,
            p.crash_hit,
            json_f64(p.uninterrupted_seconds),
            p.checkpoint_frames,
            p.checkpoint_bytes,
            json_f64(p.reopen_resume_seconds),
            match &p.resumed_from {
                Some(s) => format!("\"{s}\""),
                None => "null".to_owned(),
            },
            p.stages_resumed,
            p.resume_rows_restored,
            p.full_replays,
        );
        json.push_str(if i + 1 < points.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    json
}

fn main() {
    // Warm + best-of-3 end-to-end numbers for the scaling headline.
    for workers in [1usize, 4] {
        let cfg = RunConfig {
            workers,
            buckets: Some(32),
            ..RunConfig::new(Workload::Spatial, Strategy::Fudj, 4000)
        };
        let _ = measure(&cfg);
        let best = (0..3)
            .map(|_| measure(&cfg).seconds)
            .fold(f64::MAX, f64::min);
        println!("end-to-end spatial FUDJ, workers={workers}: best {best:.4}s");
    }

    // The three paper workloads, scheduled.
    const WORKERS: usize = 4;
    let results = [
        scheduled_run(Workload::Spatial, 2000, WORKERS, Some(32)),
        scheduled_run(Workload::Interval, 800, WORKERS, Some(64)),
        scheduled_run(Workload::Text, 600, WORKERS, None),
    ];
    for r in &results {
        println!(
            "scheduled {}: {} rows, {} bytes shuffled, sim {} ms, wall {:.4}s",
            r.name, r.rows, r.metrics.bytes_shuffled, r.metrics.sim_clock_ms, r.wall_seconds
        );
    }

    // Dispatch overhead: persistent pool vs a fresh thread batch per call
    // (what exchange/operator fan-out used to do), 4 tasks x 2000 calls.
    const CALLS: usize = 2000;
    let pool = WorkerPool::new(4);
    let start = Instant::now();
    for _ in 0..CALLS {
        let out = pool.run(vec![1u64, 2, 3, 4], |_, x| Ok(x * 2)).unwrap();
        assert_eq!(out.len(), 4);
    }
    let pooled = start.elapsed();

    let start = Instant::now();
    for _ in 0..CALLS {
        let items = [1u64, 2, 3, 4];
        let out: Vec<u64> = std::thread::scope(|s| {
            items
                .iter()
                .map(|x| s.spawn(move || x * 2))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert_eq!(out.len(), 4);
    }
    let spawned = start.elapsed();
    println!(
        "dispatch of 4 tasks x {CALLS} calls: pool {pooled:?}, fresh spawn {spawned:?} ({:.1}x)",
        spawned.as_secs_f64() / pooled.as_secs_f64()
    );

    // Recovery overhead: the same workload with checkpointing off, on,
    // and on while surviving an injected worker death.
    let recovery_rows = [
        recovery_run("checkpoints_off", 2000, WORKERS, false, None),
        recovery_run("checkpoints_on", 2000, WORKERS, true, None),
        recovery_death_run(2000, WORKERS),
    ];
    let base_rows = recovery_rows[0].rows;
    for r in &recovery_rows {
        assert_eq!(r.rows, base_rows, "{}: recovery changed the answer", r.mode);
        let rec = &r.metrics.recovery;
        println!(
            "recovery {}: wall {:.4}s, {} checkpoints ({} bytes), {} restored, \
             {} recomputed, {} deaths",
            r.mode,
            r.wall_seconds,
            rec.checkpoints_written,
            rec.checkpoint_bytes_written,
            rec.partitions_restored,
            rec.partitions_recomputed,
            rec.deaths_survived,
        );
    }

    // Machine-readable summary (no JSON dependency in the workspace, so
    // the document is assembled by hand).
    let mut json = String::new();
    json.push_str("{\n  \"pr\": 5,\n");
    let _ = writeln!(json, "  \"workers\": {WORKERS},");
    json.push_str("  \"workloads\": [\n");
    for (i, r) in results.iter().enumerate() {
        let fractions: Vec<String> = busy_fractions(&r.metrics, r.wall_seconds)
            .into_iter()
            .map(json_f64)
            .collect();
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"rows\": {}, \"bytes_shuffled\": {}, \
             \"simulated_ms\": {}, \"wall_seconds\": {}, \"pool_busy_fractions\": [{}]}}",
            r.name,
            r.rows,
            r.metrics.bytes_shuffled,
            r.metrics.sim_clock_ms,
            json_f64(r.wall_seconds),
            fractions.join(", "),
        );
        json.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str("  \"recovery_overhead\": [\n");
    for (i, r) in recovery_rows.iter().enumerate() {
        let rec = &r.metrics.recovery;
        let _ = write!(
            json,
            "    {{\"mode\": \"{}\", \"rows\": {}, \"wall_seconds\": {}, \
             \"checkpoints_written\": {}, \"checkpoint_bytes_written\": {}, \
             \"checkpoints_read\": {}, \"partitions_restored\": {}, \
             \"partitions_recomputed\": {}, \"deaths_survived\": {}}}",
            r.mode,
            r.rows,
            json_f64(r.wall_seconds),
            rec.checkpoints_written,
            rec.checkpoint_bytes_written,
            rec.checkpoints_read,
            rec.partitions_restored,
            rec.partitions_recomputed,
            rec.deaths_survived,
        );
        json.push_str(if i + 1 < recovery_rows.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"dispatch\": {{\"calls\": {CALLS}, \"tasks_per_call\": 4, \
         \"pool_seconds\": {}, \"spawn_seconds\": {}, \"spawn_over_pool\": {}}}",
        json_f64(pooled.as_secs_f64()),
        json_f64(spawned.as_secs_f64()),
        json_f64(spawned.as_secs_f64() / pooled.as_secs_f64()),
    );
    json.push_str("}\n");

    write_bench("BENCH_PR5.json", &json);

    // PR6: runtime-vs-budget curves for the hybrid-hash COMBINE.
    let sweep = budget_sweep(WORKERS);
    write_bench("BENCH_PR6.json", &sweep);

    // PR7: row engine vs columnar stride engine on the same plans.
    let modes = exec_mode_sweep(WORKERS);
    write_bench("BENCH_PR7.json", &modes);

    // PR8: ingest throughput under the durability knobs + recovery cost.
    let durability = durability_sweep();
    write_bench("BENCH_PR8.json", &durability);

    // PR9: multi-tenant serving-tier mixes (caches on/off, fairness).
    let serving = fudj_bench::serving::serving_sweep();
    write_bench("BENCH_PR9.json", &serving);

    // PR10: crash-restart resume cost vs checkpoint cadence.
    let resume = crash_resume_sweep();
    write_bench("BENCH_PR10.json", &resume);
}
