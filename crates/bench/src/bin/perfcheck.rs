//! Quick perf sanity check + machine-readable summary.
//!
//! Runs the three paper workloads through the concurrent scheduler
//! (so each run carries a per-query control clock), times the pool
//! dispatch overhead against fresh thread spawning, and writes the
//! results to `BENCH_PR4.json` at the repository root. The JSON format
//! is documented in `EXPERIMENTS.md`.

use fudj_bench::runner::{measure, RunConfig, Strategy};
use fudj_bench::workloads::Workload;
use fudj_exec::{MetricsSnapshot, WorkerPool};
use fudj_planner::PlanOptions;
use fudj_types::Value;
use std::fmt::Write as _;
use std::time::Instant;

/// One workload's scheduled measurement.
struct WorkloadResult {
    name: &'static str,
    wall_seconds: f64,
    rows: usize,
    metrics: MetricsSnapshot,
}

/// Run one workload end to end through `Session::submit`, so the
/// metrics snapshot carries the scheduler's simulated clock.
fn scheduled_run(
    workload: Workload,
    records: usize,
    workers: usize,
    buckets: Option<i64>,
) -> WorkloadResult {
    let mut session = workload.session(records, workers, None);
    let mut options = PlanOptions::default();
    if let Some(b) = buckets {
        options.extra_join_params.push(Value::Int64(b));
    }
    session.set_options(options);

    let sql = workload.sql(0.9);
    let start = Instant::now();
    let handle = session.submit(&sql).expect("perfcheck query must submit");
    let (batch, metrics) = handle.wait().expect("perfcheck query must run");
    WorkloadResult {
        name: workload.name(),
        wall_seconds: start.elapsed().as_secs_f64(),
        rows: batch.len(),
        metrics,
    }
}

/// Per-worker busy fractions of the run's wall-clock time.
fn busy_fractions(m: &MetricsSnapshot, wall_seconds: f64) -> Vec<f64> {
    m.per_worker
        .iter()
        .map(|w| {
            if wall_seconds > 0.0 {
                w.busy.as_secs_f64() / wall_seconds
            } else {
                0.0
            }
        })
        .collect()
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".to_owned()
    }
}

fn main() {
    // Warm + best-of-3 end-to-end numbers for the scaling headline.
    for workers in [1usize, 4] {
        let cfg = RunConfig {
            workers,
            buckets: Some(32),
            ..RunConfig::new(Workload::Spatial, Strategy::Fudj, 4000)
        };
        let _ = measure(&cfg);
        let best = (0..3)
            .map(|_| measure(&cfg).seconds)
            .fold(f64::MAX, f64::min);
        println!("end-to-end spatial FUDJ, workers={workers}: best {best:.4}s");
    }

    // The three paper workloads, scheduled.
    const WORKERS: usize = 4;
    let results = [
        scheduled_run(Workload::Spatial, 2000, WORKERS, Some(32)),
        scheduled_run(Workload::Interval, 800, WORKERS, Some(64)),
        scheduled_run(Workload::Text, 600, WORKERS, None),
    ];
    for r in &results {
        println!(
            "scheduled {}: {} rows, {} bytes shuffled, sim {} ms, wall {:.4}s",
            r.name, r.rows, r.metrics.bytes_shuffled, r.metrics.sim_clock_ms, r.wall_seconds
        );
    }

    // Dispatch overhead: persistent pool vs a fresh thread batch per call
    // (what exchange/operator fan-out used to do), 4 tasks x 2000 calls.
    const CALLS: usize = 2000;
    let pool = WorkerPool::new(4);
    let start = Instant::now();
    for _ in 0..CALLS {
        let out = pool.run(vec![1u64, 2, 3, 4], |_, x| Ok(x * 2)).unwrap();
        assert_eq!(out.len(), 4);
    }
    let pooled = start.elapsed();

    let start = Instant::now();
    for _ in 0..CALLS {
        let items = [1u64, 2, 3, 4];
        let out: Vec<u64> = std::thread::scope(|s| {
            items
                .iter()
                .map(|x| s.spawn(move || x * 2))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert_eq!(out.len(), 4);
    }
    let spawned = start.elapsed();
    println!(
        "dispatch of 4 tasks x {CALLS} calls: pool {pooled:?}, fresh spawn {spawned:?} ({:.1}x)",
        spawned.as_secs_f64() / pooled.as_secs_f64()
    );

    // Machine-readable summary (no JSON dependency in the workspace, so
    // the document is assembled by hand).
    let mut json = String::new();
    json.push_str("{\n  \"pr\": 4,\n");
    let _ = writeln!(json, "  \"workers\": {WORKERS},");
    json.push_str("  \"workloads\": [\n");
    for (i, r) in results.iter().enumerate() {
        let fractions: Vec<String> = busy_fractions(&r.metrics, r.wall_seconds)
            .into_iter()
            .map(json_f64)
            .collect();
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"rows\": {}, \"bytes_shuffled\": {}, \
             \"simulated_ms\": {}, \"wall_seconds\": {}, \"pool_busy_fractions\": [{}]}}",
            r.name,
            r.rows,
            r.metrics.bytes_shuffled,
            r.metrics.sim_clock_ms,
            json_f64(r.wall_seconds),
            fractions.join(", "),
        );
        json.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"dispatch\": {{\"calls\": {CALLS}, \"tasks_per_call\": 4, \
         \"pool_seconds\": {}, \"spawn_seconds\": {}, \"spawn_over_pool\": {}}}",
        json_f64(pooled.as_secs_f64()),
        json_f64(spawned.as_secs_f64()),
        json_f64(spawned.as_secs_f64() / pooled.as_secs_f64()),
    );
    json.push_str("}\n");

    // The bench crate lives at crates/bench; the JSON lands at the root.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_PR4.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}
