use fudj_bench::runner::{measure, RunConfig, Strategy};
use fudj_bench::workloads::Workload;
use fudj_exec::WorkerPool;
use std::time::Instant;

fn main() {
    for workers in [1usize, 4] {
        let cfg = RunConfig {
            workers,
            buckets: Some(32),
            ..RunConfig::new(Workload::Spatial, Strategy::Fudj, 4000)
        };
        let _ = measure(&cfg);
        let best = (0..3)
            .map(|_| measure(&cfg).seconds)
            .fold(f64::MAX, f64::min);
        println!("end-to-end spatial FUDJ, workers={workers}: best {best:.4}s");
    }

    // Dispatch overhead: persistent pool vs a fresh thread batch per call
    // (what exchange/operator fan-out used to do), 4 tasks x 2000 calls.
    const CALLS: usize = 2000;
    let pool = WorkerPool::new(4);
    let start = Instant::now();
    for _ in 0..CALLS {
        let out = pool.run(vec![1u64, 2, 3, 4], |_, x| Ok(x * 2)).unwrap();
        assert_eq!(out.len(), 4);
    }
    let pooled = start.elapsed();

    let start = Instant::now();
    for _ in 0..CALLS {
        let items = [1u64, 2, 3, 4];
        let out: Vec<u64> = std::thread::scope(|s| {
            items
                .iter()
                .map(|x| s.spawn(move || x * 2))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert_eq!(out.len(), 4);
    }
    let spawned = start.elapsed();
    println!(
        "dispatch of 4 tasks x {CALLS} calls: pool {pooled:?}, fresh spawn {spawned:?} ({:.1}x)",
        spawned.as_secs_f64() / pooled.as_secs_f64()
    );
}
