//! Regenerate every table and figure of the paper.
//!
//! ```text
//! cargo run -p fudj-bench --release --bin figures -- all
//! cargo run -p fudj-bench --release --bin figures -- fig9 fig12
//! ```
//!
//! Sizes are scaled from the paper's 10⁷–10⁸-record cluster runs down to
//! laptop scale (10²–10⁴); grid/granule defaults are scaled with them.
//! The *shapes* (who wins, crossover trends) are the reproduction target.

use fudj_bench::loc;
use fudj_bench::runner::{measure, RunConfig, Strategy};
use fudj_bench::workloads::Workload;
use fudj_bench::{fmt_secs, print_table};

/// Default bucket parameter per workload at laptop scale (the paper uses a
/// 1200×1200 grid and 1000 granules at cluster scale; Fig. 11 justifies the
/// choice by sweeping).
fn default_buckets(w: Workload) -> Option<i64> {
    match w {
        Workload::Spatial => Some(64),
        Workload::Interval => Some(512),
        Workload::Text => None,
    }
}

/// On-top is O(n²); past this size we report "—", mirroring the paper's
/// 4000-second timeout rule.
const ONTOP_MAX_RECORDS: usize = 2_000;

fn run(cfg: &RunConfig) -> String {
    fmt_secs(measure(cfg).seconds)
}

fn table1() {
    // The synthetic Table I: what stands in for each dataset.
    let rows = vec![
        vec![
            "Wildfires".into(),
            "clustered points + fire intervals".into(),
            "Point".into(),
            "18M → 10³–10⁴ (scaled)".into(),
        ],
        vec![
            "Parks".into(),
            "convex polygons + feature tags".into(),
            "Polygon".into(),
            "10M → 10³–10⁴ (scaled)".into(),
        ],
        vec![
            "NYCTaxi".into(),
            "rush-hour ride intervals, 2 vendors".into(),
            "Interval".into(),
            "173M → 10³–10⁴ (scaled)".into(),
        ],
        vec![
            "AmazonReview".into(),
            "Zipf text + 1–5 ratings + near-dups".into(),
            "Text".into(),
            "83M → 10³–10⁴ (scaled)".into(),
        ],
    ];
    print_table(
        "Table I — datasets (synthetic counterparts)",
        &["Name", "Characteristics kept", "Key Type", "#Records"],
        &rows,
    );
}

fn table2() {
    let rows: Vec<Vec<String>> = loc::table2()
        .into_iter()
        .map(|r| {
            vec![
                r.join.to_owned(),
                format!("{} loc", r.fudj),
                format!("{} loc", r.builtin),
                format!("{:.1}x", r.builtin as f64 / r.fudj as f64),
            ]
        })
        .collect();
    print_table(
        "Table II — written LOC, FUDJ vs hand-integrated (from this repo's sources)",
        &["Join Type", "FUDJ", "Built-in", "ratio"],
        &rows,
    );
    println!(
        "  (built-in = native operator + the per-join share of distributed join\n   \
         execution and optimizer-rewrite code the FUDJ framework provides once)"
    );
}

fn fig1() {
    // Productivity (LOC) vs performance (runtime) positioning at one size.
    let size = 2_000;
    let loc_rows = loc::table2();
    let mut rows = Vec::new();
    for w in [Workload::Spatial, Workload::Interval, Workload::Text] {
        let loc_row = loc_rows
            .iter()
            .find(|r| {
                r.join.starts_with(match w {
                    Workload::Spatial => "Spatial",
                    Workload::Interval => "Interval",
                    Workload::Text => "Text",
                })
            })
            .unwrap();
        for (strategy, loc) in [
            (Strategy::OnTop, 25usize), // the UDF predicate alone
            (Strategy::Fudj, loc_row.fudj),
            (Strategy::Builtin, loc_row.builtin),
        ] {
            let cfg = RunConfig {
                workers: 4,
                buckets: default_buckets(w),
                ..RunConfig::new(w, strategy, size)
            };
            let m = measure(&cfg);
            rows.push(vec![
                w.name().into(),
                strategy.name().into(),
                format!("{loc} loc"),
                fmt_secs(m.seconds),
            ]);
        }
    }
    print_table(
        &format!("Fig. 1 — productivity vs performance ({size} records, 4 workers)"),
        &[
            "Workload",
            "Method",
            "LOC (productivity)",
            "Runtime (performance)",
        ],
        &rows,
    );
    println!("  (expected shape: FUDJ ≈ built-in runtime at ~on-top LOC)");
}

fn fig9() {
    let sizes = [500usize, 1_000, 2_000, 4_000, 8_000];
    for w in [Workload::Spatial, Workload::Interval, Workload::Text] {
        let mut rows = Vec::new();
        for &n in &sizes {
            let mut row = vec![n.to_string()];
            for strategy in [Strategy::Fudj, Strategy::Builtin, Strategy::OnTop] {
                if strategy == Strategy::OnTop && n > ONTOP_MAX_RECORDS {
                    row.push("—".into());
                    continue;
                }
                let cfg = RunConfig {
                    workers: 8,
                    buckets: default_buckets(w),
                    ..RunConfig::new(w, strategy, n)
                };
                row.push(run(&cfg));
            }
            rows.push(row);
        }
        print_table(
            &format!(
                "Fig. 9{} — {} join: runtime vs record count (8 workers)",
                match w {
                    Workload::Spatial => "a",
                    Workload::Interval => "b",
                    Workload::Text => "c",
                },
                w.name()
            ),
            &["#records", "FUDJ", "Built-in", "On-top"],
            &rows,
        );
    }
    println!("  (— : on-top exceeds the timeout budget at this size, as in the paper)");
}

fn fig10() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let workers_sweep = [1usize, 2, 4, 8];
    for w in [Workload::Spatial, Workload::Interval, Workload::Text] {
        let size = match w {
            Workload::Text => 2_000,
            _ => 4_000,
        };
        let mut rows = Vec::new();
        for &workers in &workers_sweep {
            let mut row = vec![workers.to_string()];
            let mut secs = Vec::new();
            let mut fudj_skew = String::from("—");
            for strategy in [Strategy::Fudj, Strategy::Builtin] {
                let cfg = RunConfig {
                    workers,
                    buckets: default_buckets(w),
                    ..RunConfig::new(w, strategy, size)
                };
                let m = measure(&cfg);
                secs.push(m.seconds);
                row.push(fmt_secs(m.seconds));
                if strategy == Strategy::Fudj {
                    // COMBINE-phase load balance across the persistent
                    // workers: max/mean busy time (1.00 = perfectly even).
                    if let Some(s) = m.metrics.skew_report().iter().find(|s| s.phase == "join") {
                        fudj_skew = format!("{:.2}", s.ratio());
                    }
                }
            }
            row.push(format!("{:.2}x", secs[0] / secs[1].max(1e-9)));
            row.push(fudj_skew);
            rows.push(row);
        }
        print_table(
            &format!(
                "Fig. 10 — {} join: runtime vs workers ({size} records)",
                w.name()
            ),
            &["workers", "FUDJ", "Built-in", "FUDJ/built-in", "join skew"],
            &rows,
        );
    }
    println!(
        "  (host has {cores} hardware thread(s): with fewer cores than workers, wall\n   \
         time cannot drop with worker count — the sweep then measures the paper's\n   \
         other Fig. 10 claim: the FUDJ/built-in gap stays bounded as workers scale)"
    );

    // Same sweep under a simulated 100 Mb/s interconnect: the network-bound
    // share of the work (one link per worker) parallelizes even on one core,
    // restoring the paper's downward-sloping curves.
    let mut rows = Vec::new();
    for &workers in &workers_sweep {
        let mut row = vec![workers.to_string()];
        for strategy in [Strategy::Fudj, Strategy::Builtin] {
            let cfg = RunConfig {
                workers,
                buckets: default_buckets(Workload::Spatial),
                network: Some(fudj_exec::NetworkModel::fast_ethernet()),
                ..RunConfig::new(Workload::Spatial, strategy, 4_000)
            };
            row.push(run(&cfg));
        }
        rows.push(row);
    }
    print_table(
        "Fig. 10 (network-modelled) — Spatial join over a simulated 100 Mb/s interconnect",
        &["workers", "FUDJ", "Built-in"],
        &rows,
    );
}

fn fig11() {
    // (a) spatial bucket sweep
    let mut rows = Vec::new();
    for buckets in [4i64, 8, 16, 32, 64, 128, 256, 512] {
        let cfg = RunConfig {
            workers: 8,
            buckets: Some(buckets),
            ..RunConfig::new(Workload::Spatial, Strategy::Fudj, 6_000)
        };
        rows.push(vec![format!("{buckets}x{buckets}"), run(&cfg)]);
    }
    print_table(
        "Fig. 11a — Spatial FUDJ: effect of grid size (6000 records)",
        &["grid", "FUDJ"],
        &rows,
    );

    // (b) interval granule sweep
    let mut rows = Vec::new();
    for granules in [1i64, 8, 64, 256, 1024, 4096, 16384] {
        let cfg = RunConfig {
            workers: 8,
            buckets: Some(granules),
            ..RunConfig::new(Workload::Interval, Strategy::Fudj, 4_000)
        };
        rows.push(vec![granules.to_string(), run(&cfg)]);
    }
    print_table(
        "Fig. 11b — Interval FUDJ: effect of granule count (4000 records)",
        &["granules", "FUDJ"],
        &rows,
    );

    // (c) similarity-threshold sweep
    let mut rows = Vec::new();
    for t in [0.5, 0.6, 0.7, 0.8, 0.9, 0.95] {
        let cfg = RunConfig {
            workers: 8,
            threshold: t,
            ..RunConfig::new(Workload::Text, Strategy::Fudj, 2_000)
        };
        rows.push(vec![format!("{t}"), run(&cfg)]);
    }
    print_table(
        "Fig. 11c — Text FUDJ: effect of similarity threshold (2000 records)",
        &["threshold", "FUDJ"],
        &rows,
    );
    println!("  (expected shapes: U-curves over buckets; runtime grows as t falls)");
}

fn fig12() {
    // (a) duplicate avoidance vs elimination (text). Run over the simulated
    // interconnect: elimination's extra stage is a full shuffle of the
    // joined output, which a memcpy-speed "network" would hide.
    let mut rows = Vec::new();
    for n in [500usize, 1_000, 2_000, 4_000] {
        let avoid = RunConfig {
            workers: 8,
            network: Some(fudj_exec::NetworkModel::fast_ethernet()),
            ..RunConfig::new(Workload::Text, Strategy::Fudj, n)
        };
        let elim = RunConfig {
            dedup_class: Some("setsimilarity.SetSimilarityJoinElimination"),
            ..avoid.clone()
        };
        let (ma, me) = (measure(&avoid), measure(&elim));
        assert_eq!(ma.rows, me.rows, "dedup strategies must agree");
        rows.push(vec![
            n.to_string(),
            fmt_secs(ma.seconds),
            fmt_secs(me.seconds),
            format!("{:.2}x", me.seconds / ma.seconds.max(1e-9)),
        ]);
    }
    print_table(
        "Fig. 12a — Text FUDJ: duplicate Avoidance vs Elimination (t=0.9, 100 Mb/s network)",
        &["#records", "Avoidance", "Elimination", "elim/avoid"],
        &rows,
    );

    // (b) framework avoidance vs reference point (spatial, bucket sweep).
    let mut rows = Vec::new();
    for buckets in [8i64, 16, 32, 64, 128, 256] {
        let default_dedup = RunConfig {
            workers: 8,
            buckets: Some(buckets),
            ..RunConfig::new(Workload::Spatial, Strategy::Fudj, 6_000)
        };
        let refpoint = RunConfig {
            dedup_class: Some("spatial.SpatialJoinRefPoint"),
            ..default_dedup.clone()
        };
        let (md, mr) = (measure(&default_dedup), measure(&refpoint));
        assert_eq!(md.rows, mr.rows);
        rows.push(vec![
            format!("{buckets}x{buckets}"),
            fmt_secs(md.seconds),
            fmt_secs(mr.seconds),
        ]);
    }
    print_table(
        "Fig. 12b — Spatial FUDJ: framework avoidance vs Reference Point (6000 records)",
        &["grid", "FUDJ default", "Reference Point"],
        &rows,
    );

    // (c) plain FUDJ vs advanced operator with plane-sweep local join.
    let mut rows = Vec::new();
    for n in [2_000usize, 4_000, 8_000, 16_000] {
        let fudj = RunConfig {
            workers: 8,
            buckets: Some(32),
            ..RunConfig::new(Workload::Spatial, Strategy::Fudj, n)
        };
        let adv = RunConfig {
            strategy: Strategy::Advanced,
            ..fudj.clone()
        };
        let (mf, ma) = (measure(&fudj), measure(&adv));
        assert_eq!(mf.rows, ma.rows);
        rows.push(vec![
            n.to_string(),
            fmt_secs(mf.seconds),
            fmt_secs(ma.seconds),
            format!("{:.2}x", mf.seconds / ma.seconds.max(1e-9)),
        ]);
    }
    print_table(
        "Fig. 12c — Spatial FUDJ vs advanced operator (plane-sweep local join, n=32 grid)",
        &["#records", "Spatial FUDJ", "Adv. Spatial J.", "speedup"],
        &rows,
    );
}

fn overhead() {
    // §VII-B: per-record overhead of the extensibility boundary.
    let mut rows = Vec::new();
    for (w, n) in [
        (Workload::Spatial, 8_000usize),
        (Workload::Interval, 8_000),
        (Workload::Text, 4_000),
    ] {
        // Median of 3 to damp scheduler noise.
        let mut deltas = Vec::new();
        for _ in 0..3 {
            let fudj = measure(&RunConfig {
                workers: 8,
                buckets: default_buckets(w),
                ..RunConfig::new(w, Strategy::Fudj, n)
            });
            let builtin = measure(&RunConfig {
                workers: 8,
                buckets: default_buckets(w),
                ..RunConfig::new(w, Strategy::Builtin, n)
            });
            deltas.push((fudj.seconds, builtin.seconds));
        }
        deltas.sort_by(|a, b| (a.0 - a.1).total_cmp(&(b.0 - b.1)));
        let (f, b) = deltas[1];
        let per_record_ms = (f - b).max(0.0) * 1e3 / n as f64;
        rows.push(vec![
            w.name().into(),
            n.to_string(),
            fmt_secs(f),
            fmt_secs(b),
            format!("{per_record_ms:.5} ms"),
        ]);
    }
    print_table(
        "§VII-B — framework overhead per record (FUDJ − built-in)",
        &[
            "Workload",
            "#records",
            "FUDJ",
            "Built-in",
            "overhead/record",
        ],
        &rows,
    );
    println!(
        "  (paper: ≈0 for spatial/interval, ≈0.061 ms for text — the text\n   \
         overhead comes from hash-map summaries crossing the boundary)"
    );
}

/// Ablations for the implemented §VIII future-work features (not figures of
/// the paper — the paper only names them as future work).
fn extensions() {
    use fudj_bench::runner::Measurement;

    // (a) auto-tuned bucket counts vs a parameter sweep.
    let mut rows = Vec::new();
    for (w, n, sweep) in [
        (Workload::Spatial, 6_000usize, vec![8i64, 32, 128, 512]),
        (Workload::Interval, 4_000, vec![8, 64, 1024, 8192]),
    ] {
        let auto_class = match w {
            Workload::Spatial => "spatial.SpatialJoinAuto",
            Workload::Interval => "interval.OverlappingIntervalJoinAuto",
            Workload::Text => unreachable!(),
        };
        let auto = measure(&RunConfig {
            workers: 4,
            dedup_class: Some(auto_class),
            ..RunConfig::new(w, Strategy::Fudj, n)
        });
        let mut best: Option<(i64, Measurement)> = None;
        let mut worst: Option<(i64, Measurement)> = None;
        for b in sweep {
            let m = measure(&RunConfig {
                workers: 4,
                buckets: Some(b),
                ..RunConfig::new(w, Strategy::Fudj, n)
            });
            assert_eq!(m.rows, auto.rows, "{w:?} auto-tuning changed the answer");
            if best.as_ref().is_none_or(|(_, bm)| m.seconds < bm.seconds) {
                best = Some((b, m.clone()));
            }
            if worst.as_ref().is_none_or(|(_, wm)| m.seconds > wm.seconds) {
                worst = Some((b, m));
            }
        }
        let (bb, bm) = best.unwrap();
        let (wb, wm) = worst.unwrap();
        rows.push(vec![
            w.name().into(),
            fmt_secs(auto.seconds),
            format!("{} (n={bb})", fmt_secs(bm.seconds)),
            format!("{} (n={wb})", fmt_secs(wm.seconds)),
        ]);
    }
    print_table(
        "Ext. A — §VIII auto-tuned bucket counts vs parameter sweep",
        &["Workload", "auto-tuned", "best swept", "worst swept"],
        &rows,
    );
    println!("  (goal: auto lands near the best swept setting without tuning)");

    // (b) advanced interval operator: forward-scan local join vs FUDJ NLJ.
    use fudj_joins::builtin::AdvancedIntervalJoin;
    let mut rows = Vec::new();
    for n in [2_000usize, 4_000, 8_000, 16_000] {
        let base = RunConfig {
            workers: 4,
            buckets: Some(256),
            ..RunConfig::new(Workload::Interval, Strategy::Fudj, n)
        };
        let fudj = measure(&base);
        // Reuse the override plumbing via a session-level run.
        let mut session = Workload::Interval.session(n, 4, None);
        let mut options = fudj_planner::PlanOptions::default();
        options.join_overrides.insert(
            "overlapping_interval".into(),
            std::sync::Arc::new(AdvancedIntervalJoin::new()),
        );
        options
            .extra_join_params
            .push(fudj_types::Value::Int64(256));
        session.set_options(options);
        let sql = Workload::Interval.sql(0.9);
        let start = std::time::Instant::now();
        let batch = session.query(&sql).unwrap();
        let adv_secs = start.elapsed().as_secs_f64();
        assert_eq!(batch.len(), fudj.rows);
        rows.push(vec![
            n.to_string(),
            fmt_secs(fudj.seconds),
            fmt_secs(adv_secs),
            format!("{:.2}x", fudj.seconds / adv_secs.max(1e-9)),
        ]);
    }
    print_table(
        "Ext. B — Interval FUDJ vs advanced operator (forward-scan local join)",
        &["#records", "Interval FUDJ", "Adv. Interval J.", "speedup"],
        &rows,
    );

    // (c) sort-merge vs hash-group COMBINE, and the cost of spilling.
    let mut rows = Vec::new();
    for n in [4_000usize, 8_000, 16_000] {
        let sql = Workload::Spatial.sql(0.9);
        let run_with = |opts: fudj_planner::PlanOptions| -> (f64, usize, u64) {
            let mut session = Workload::Spatial.session(n, 4, None);
            let mut opts = opts;
            opts.extra_join_params.push(fudj_types::Value::Int64(48));
            session.set_options(opts);
            let start = std::time::Instant::now();
            let out = session.execute(&sql).unwrap();
            let secs = start.elapsed().as_secs_f64();
            let fudj_sql::QueryOutput::Rows(batch, m) = out else {
                unreachable!()
            };
            (secs, batch.len(), m.spilled_rows)
        };
        let (hash_s, hash_rows, _) = run_with(fudj_planner::PlanOptions::default());
        let (merge_s, merge_rows, _) = run_with(fudj_planner::PlanOptions {
            combine: fudj_exec::CombineStrategy::SortMerge,
            ..Default::default()
        });
        let (spill_s, spill_rows, spilled) = run_with(fudj_planner::PlanOptions {
            memory_budget_rows: Some(n / 8),
            ..Default::default()
        });
        assert_eq!(hash_rows, merge_rows);
        assert_eq!(hash_rows, spill_rows);
        assert!(spilled > 0);
        rows.push(vec![
            n.to_string(),
            fmt_secs(hash_s),
            fmt_secs(merge_s),
            format!("{} ({spilled} rows spilled)", fmt_secs(spill_s)),
        ]);
    }
    print_table(
        "Ext. C — COMBINE strategies: hash group vs sort-merge vs budget-forced spill (spatial)",
        &[
            "#records",
            "hash group",
            "sort-merge",
            "spill (budget = n/8)",
        ],
        &rows,
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = args.is_empty() || args.iter().any(|a| a == "all");
    let want = |name: &str| all || args.iter().any(|a| a == name);

    let start = std::time::Instant::now();
    if want("table1") {
        table1();
    }
    if want("table2") {
        table2();
    }
    if want("fig1") {
        fig1();
    }
    if want("fig9") {
        fig9();
    }
    if want("fig10") {
        fig10();
    }
    if want("fig11") {
        fig11();
    }
    if want("fig12") {
        fig12();
    }
    if want("overhead") {
        overhead();
    }
    if want("ext") {
        extensions();
    }
    eprintln!("\n[figures done in {:?}]", start.elapsed());
}
