//! Measurement runner: one (workload, strategy, size, workers, params)
//! configuration → wall-clock seconds + engine metrics.

use crate::workloads::Workload;
use fudj_core::EngineJoin;
use fudj_exec::{MetricsSnapshot, NetworkModel};
use fudj_joins::builtin::{
    AdvancedSpatialJoin, BuiltinIntervalJoin, BuiltinSpatialJoin, BuiltinTextSimJoin,
};
use fudj_planner::PlanOptions;
use fudj_types::Value;
use std::sync::Arc;
use std::time::Instant;

/// Join implementation method under measurement (the paper's three series
/// plus the §VII-F advanced operator).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// The FUDJ framework path (library behind the proxy boundary).
    Fudj,
    /// The hand-integrated native operator.
    Builtin,
    /// NLJ with the predicate as a UDF.
    OnTop,
    /// Built-in + plane-sweep local join (spatial only).
    Advanced,
}

impl Strategy {
    /// Series label.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Fudj => "FUDJ",
            Strategy::Builtin => "Built-in",
            Strategy::OnTop => "On-top",
            Strategy::Advanced => "Adv. Spatial J.",
        }
    }
}

/// Alias kept for readability of experiment code.
pub type JoinKind = Workload;

fn builtin_engine(w: Workload, advanced: bool) -> Arc<dyn EngineJoin> {
    match (w, advanced) {
        (Workload::Spatial, false) => Arc::new(BuiltinSpatialJoin::new()),
        (Workload::Spatial, true) => Arc::new(AdvancedSpatialJoin::new()),
        (Workload::Interval, _) => Arc::new(BuiltinIntervalJoin::new()),
        (Workload::Text, _) => Arc::new(BuiltinTextSimJoin::new()),
    }
}

/// One measurement.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Wall-clock seconds of query execution (planning included; loading
    /// excluded).
    pub seconds: f64,
    /// Result rows.
    pub rows: usize,
    /// Engine metrics snapshot.
    pub metrics: MetricsSnapshot,
}

/// Configuration for [`measure`].
#[derive(Clone, Debug)]
pub struct RunConfig {
    pub workload: Workload,
    pub strategy: Strategy,
    pub total_records: usize,
    pub workers: usize,
    /// Grid side (spatial) / granule count (interval), when set.
    pub buckets: Option<i64>,
    /// Similarity threshold (text).
    pub threshold: f64,
    /// Dedup library class override (FUDJ strategy only).
    pub dedup_class: Option<&'static str>,
    /// Simulated network; `None` = free (memcpy-speed) exchanges.
    pub network: Option<NetworkModel>,
}

impl RunConfig {
    /// Config with the paper's defaults: 8 workers, n=1200 grid (spatial),
    /// n=1000 granules (interval), t=0.9 — scaled grid defaults are chosen
    /// per experiment instead at call sites.
    pub fn new(workload: Workload, strategy: Strategy, total_records: usize) -> Self {
        RunConfig {
            workload,
            strategy,
            total_records,
            workers: 8,
            buckets: None,
            threshold: 0.9,
            dedup_class: None,
            network: None,
        }
    }
}

/// Execute one configuration and return its measurement. Dataset
/// generation/loading happens before the clock starts.
pub fn measure(cfg: &RunConfig) -> Measurement {
    let mut session = cfg
        .workload
        .session(cfg.total_records, cfg.workers, cfg.dedup_class);
    session.set_network(cfg.network);

    let mut options = PlanOptions::default();
    match cfg.strategy {
        Strategy::Fudj => {}
        Strategy::OnTop => options.force_on_top = true,
        Strategy::Builtin => {
            options.join_overrides.insert(
                cfg.workload.join_name().to_owned(),
                builtin_engine(cfg.workload, false),
            );
        }
        Strategy::Advanced => {
            options.join_overrides.insert(
                cfg.workload.join_name().to_owned(),
                builtin_engine(cfg.workload, true),
            );
        }
    }
    if let Some(b) = cfg.buckets {
        options.extra_join_params.push(Value::Int64(b));
    }
    session.set_options(options);

    let sql = cfg.workload.sql(cfg.threshold);
    let start = Instant::now();
    let out = session.execute(&sql).expect("experiment query must run");
    let seconds = start.elapsed().as_secs_f64();
    let fudj_sql::QueryOutput::Rows(batch, metrics) = out else {
        unreachable!()
    };
    Measurement {
        seconds,
        rows: batch.len(),
        metrics: *metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_strategies_agree_on_small_spatial_workload() {
        let base = RunConfig {
            workers: 2,
            buckets: Some(16),
            ..RunConfig::new(Workload::Spatial, Strategy::Fudj, 400)
        };
        let fudj = measure(&base);
        let builtin = measure(&RunConfig {
            strategy: Strategy::Builtin,
            ..base.clone()
        });
        let ontop = measure(&RunConfig {
            strategy: Strategy::OnTop,
            ..base.clone()
        });
        let adv = measure(&RunConfig {
            strategy: Strategy::Advanced,
            ..base.clone()
        });
        assert_eq!(fudj.rows, builtin.rows);
        assert_eq!(fudj.rows, ontop.rows);
        assert_eq!(fudj.rows, adv.rows);
        assert!(fudj.rows > 0);
    }

    #[test]
    fn measurement_reports_per_worker_metrics() {
        let cfg = RunConfig {
            workers: 2,
            buckets: Some(16),
            ..RunConfig::new(Workload::Spatial, Strategy::Fudj, 300)
        };
        let m = measure(&cfg);
        assert_eq!(
            m.metrics.per_worker.len(),
            2,
            "both workers reported activity"
        );
        assert!(m.metrics.per_worker.iter().any(|w| !w.busy.is_zero()));
        let skew = m.metrics.skew_report();
        assert!(skew.iter().any(|s| s.phase == "join"), "{skew:?}");
        assert!(skew.iter().all(|s| s.ratio() >= 1.0 - 1e-9), "{skew:?}");
    }

    #[test]
    fn strategies_agree_on_interval_and_text() {
        for (w, n) in [(Workload::Interval, 250), (Workload::Text, 250)] {
            let base = RunConfig {
                workers: 2,
                buckets: if w == Workload::Interval {
                    Some(64)
                } else {
                    None
                },
                ..RunConfig::new(w, Strategy::Fudj, n)
            };
            let fudj = measure(&base);
            let builtin = measure(&RunConfig {
                strategy: Strategy::Builtin,
                ..base.clone()
            });
            let ontop = measure(&RunConfig {
                strategy: Strategy::OnTop,
                ..base.clone()
            });
            assert_eq!(fudj.rows, builtin.rows, "{w:?}");
            assert_eq!(fudj.rows, ontop.rows, "{w:?}");
        }
    }
}
