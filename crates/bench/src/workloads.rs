//! Experiment workloads: sized sessions for the three paper join types.

use fudj_datagen::{amazon_reviews, nyctaxi, parks, wildfires, GeneratorConfig};
use fudj_joins::standard_library;
use fudj_sql::Session;

/// Which join workload an experiment runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Workload {
    /// Parks × Wildfires, `ST_Contains` (Query 5's spatial query).
    Spatial,
    /// NYCTaxi self-join on overlapping ride intervals, split by vendor.
    Interval,
    /// AmazonReview self-join on Jaccard ≥ t, split by rating.
    Text,
}

impl Workload {
    /// Human name matching the paper's panel labels.
    pub fn name(&self) -> &'static str {
        match self {
            Workload::Spatial => "Spatial",
            Workload::Interval => "Interval",
            Workload::Text => "Set-similarity",
        }
    }

    /// The experiment query (Query 5 of the paper, adapted to the synthetic
    /// schemas). `t` is the text-similarity threshold (ignored otherwise).
    pub fn sql(&self, threshold: f64) -> String {
        match self {
            Workload::Spatial => "SELECT p.id, COUNT(*) AS c \
                                  FROM Parks p, Wildfires w \
                                  WHERE st_contains(p.boundary, w.location) \
                                  GROUP BY p.id"
                .to_owned(),
            Workload::Interval => "SELECT COUNT(*) FROM NYCTaxi n1, NYCTaxi n2 \
                                   WHERE n1.Vendor = 1 AND n2.Vendor = 2 \
                                     AND overlapping_interval(n1.ride_interval, n2.ride_interval)"
                .to_owned(),
            Workload::Text => format!(
                "SELECT COUNT(*) FROM AmazonReview r1, AmazonReview r2 \
                 WHERE r1.overall = 5 AND r2.overall = 4 \
                   AND similarity_jaccard(r1.review, r2.review) >= {threshold}"
            ),
        }
    }

    /// The registered FUDJ predicate name this workload's query calls.
    pub fn join_name(&self) -> &'static str {
        match self {
            Workload::Spatial => "st_contains",
            Workload::Interval => "overlapping_interval",
            Workload::Text => "similarity_jaccard",
        }
    }

    /// Build a session with `total_records` rows of this workload's
    /// datasets, on a `workers`-node cluster. Record splits follow the
    /// paper's dataset ratios (Parks:Wildfires ≈ 10:18; the self-join
    /// workloads put all records in one dataset).
    pub fn session(
        &self,
        total_records: usize,
        workers: usize,
        dedup_class: Option<&str>,
    ) -> Session {
        let s = Session::new(workers);
        s.install_library(standard_library());
        let parts = workers.max(2);
        match self {
            Workload::Spatial => {
                let parks_n = total_records * 10 / 28;
                let fires_n = total_records - parks_n;
                s.register_dataset(parks(GeneratorConfig::new(parks_n, 51, parts)).unwrap())
                    .unwrap();
                s.register_dataset(wildfires(GeneratorConfig::new(fires_n, 52, parts)).unwrap())
                    .unwrap();
                let class = dedup_class.unwrap_or("spatial.SpatialJoin");
                s.execute(&format!(
                    r#"CREATE JOIN st_contains(a: polygon, b: point)
                       RETURNS boolean AS "{class}" AT flexiblejoins"#
                ))
                .unwrap();
            }
            Workload::Interval => {
                s.register_dataset(
                    nyctaxi(GeneratorConfig::new(total_records, 53, parts)).unwrap(),
                )
                .unwrap();
                s.execute(
                    r#"CREATE JOIN overlapping_interval(a: interval, b: interval)
                       RETURNS boolean AS "interval.OverlappingIntervalJoin" AT flexiblejoins"#,
                )
                .unwrap();
            }
            Workload::Text => {
                s.register_dataset(
                    amazon_reviews(GeneratorConfig::new(total_records, 54, parts)).unwrap(),
                )
                .unwrap();
                let class = dedup_class.unwrap_or("setsimilarity.SetSimilarityJoin");
                s.execute(&format!(
                    r#"CREATE JOIN similarity_jaccard(a: string, b: string, t: double)
                       RETURNS boolean AS "{class}" AT flexiblejoins"#
                ))
                .unwrap();
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sessions_build_and_queries_run() {
        for w in [Workload::Spatial, Workload::Interval, Workload::Text] {
            // Spatial containment is sparse: give it enough records that the
            // grouped result is reliably non-empty.
            let n = if w == Workload::Spatial { 1_200 } else { 300 };
            let s = w.session(n, 2, None);
            let batch = s.query(&w.sql(0.8)).unwrap();
            assert!(!batch.is_empty(), "{w:?}");
        }
    }

    #[test]
    fn dedup_class_override_applies() {
        let s = Workload::Text.session(200, 2, Some("setsimilarity.SetSimilarityJoinElimination"));
        let a = s.query(&Workload::Text.sql(0.8)).unwrap();
        let s2 = Workload::Text.session(200, 2, None);
        let b = s2.query(&Workload::Text.sql(0.8)).unwrap();
        assert_eq!(a.rows(), b.rows(), "dedup strategy does not change answers");
    }
}
