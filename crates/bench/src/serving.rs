//! Serving-tier latency and throughput sweep backing `BENCH_PR9.json`.
//!
//! Replays the same seeded multi-tenant workload through a
//! [`fudj_serve::ServingTier`] four ways — {uniform, shape-skewed} ×
//! {caches on, caches off} — and once more under a three-class priority
//! mix for fairness. Each mix reports wall-clock throughput, simulated
//! latency percentiles, and cache hit rates; the headline claim (the
//! paper's §VII-B amortization argument) is that on the shape-skewed mix
//! the caches buy at least 1.5× throughput.

use fudj_exec::ServingStats;
use fudj_serve::{
    generate, sample_session, LatencyHistogram, MixProfile, ServingTier, WorkloadConfig,
};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Tenants in every mix.
pub const TENANTS: u32 = 12;
/// Statements replayed per mix.
pub const OPS: usize = 180;
/// Workload seed (shared so on/off runs see identical statements).
pub const SEED: u64 = 42;
/// Records per sample dataset.
const RECORDS: usize = 60;
/// Workers in the sample engine.
const WORKERS: usize = 2;
/// Priority classes in every mix (priority = 1 + tenant % 3).
const PRIORITY_CLASSES: u32 = 3;

/// One measured mix.
pub struct MixRun {
    pub name: &'static str,
    pub caches: &'static str,
    pub wall_seconds: f64,
    pub ops_per_second: f64,
    pub stats: ServingStats,
    pub latency: LatencyHistogram,
}

/// Hit fraction with a 0/0 guard.
fn rate(hits: u64, misses: u64) -> f64 {
    let total = hits + misses;
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".to_owned()
    }
}

/// Replay the seeded workload through a fresh engine + tier.
fn run_mix(name: &'static str, profile: MixProfile, caches_on: bool) -> (MixRun, ServingTier) {
    let session = Arc::new(sample_session(RECORDS, WORKERS).expect("sample session builds"));
    if !caches_on {
        session
            .execute("SET result_cache = off;")
            .expect("knob applies");
        session
            .execute("SET plan_cache_entries = 0;")
            .expect("knob applies");
    }
    let tier = ServingTier::new(session);
    let ops = generate(&WorkloadConfig {
        tenants: TENANTS,
        ops: OPS,
        seed: SEED,
        profile,
        priority_classes: PRIORITY_CLASSES,
    });
    let start = Instant::now();
    for op in &ops {
        tier.serve_with_priority(op.tenant, op.priority, &op.sql)
            .expect("workload statement serves");
    }
    let wall_seconds = start.elapsed().as_secs_f64();
    let run = MixRun {
        name,
        caches: if caches_on { "on" } else { "off" },
        wall_seconds,
        ops_per_second: OPS as f64 / wall_seconds.max(1e-9),
        stats: tier.stats(),
        latency: tier.global_latency(),
    };
    (run, tier)
}

/// Per-priority-class latency of one served tier (fairness view).
fn fairness_rows(tier: &ServingTier) -> Vec<(u32, LatencyHistogram)> {
    let mut classes: Vec<(u32, LatencyHistogram)> = (1..=PRIORITY_CLASSES)
        .map(|p| (p, LatencyHistogram::new()))
        .collect();
    for tenant in tier.tenant_ids() {
        if let Some(h) = tier.tenant_latency(tenant) {
            let class = 1 + tenant % PRIORITY_CLASSES;
            if let Some((_, merged)) = classes.iter_mut().find(|(p, _)| *p == class) {
                merged.merge(&h);
            }
        }
    }
    classes
}

/// Run the four mixes + fairness view and assemble `BENCH_PR9.json`.
/// Panics if the shape-skewed mix does not clear the 1.5× cache speedup
/// the PR claims.
pub fn serving_sweep() -> String {
    let mixes = [
        run_mix("uniform", MixProfile::Uniform, true),
        run_mix("uniform", MixProfile::Uniform, false),
        run_mix("shape_skewed", MixProfile::ShapeSkewed(1.1), true),
        run_mix("shape_skewed", MixProfile::ShapeSkewed(1.1), false),
    ];

    for (m, _) in &mixes {
        println!(
            "serving {} caches {}: {:.4}s wall ({:.0} stmts/s), sim p50 {} / p99 {} ms, \
             plan hit rate {:.2}, result hit rate {:.2}",
            m.name,
            m.caches,
            m.wall_seconds,
            m.ops_per_second,
            m.latency.p50(),
            m.latency.p99(),
            rate(m.stats.plan_cache_hits, m.stats.plan_cache_misses),
            rate(m.stats.result_cache_hits, m.stats.result_cache_misses),
        );
    }

    let skew_on = &mixes[2].0;
    let skew_off = &mixes[3].0;
    let speedup = skew_on.ops_per_second / skew_off.ops_per_second.max(1e-9);
    println!("serving shape_skewed caches on/off throughput: {speedup:.2}x");
    assert!(
        speedup >= 1.5,
        "caches must buy >= 1.5x throughput on the shape-skewed mix, got {speedup:.2}x"
    );

    let mut json = String::new();
    json.push_str("{\n  \"pr\": 9,\n");
    let _ = writeln!(
        json,
        "  \"workers\": {WORKERS}, \"tenants\": {TENANTS}, \"ops_per_mix\": {OPS}, \
         \"seed\": {SEED}, \"priority_classes\": {PRIORITY_CLASSES},"
    );
    json.push_str("  \"mixes\": [\n");
    for (i, (m, _)) in mixes.iter().enumerate() {
        let s = &m.stats;
        let _ = write!(
            json,
            "    {{\"mix\": \"{}\", \"caches\": \"{}\", \"wall_seconds\": {}, \
             \"ops_per_second\": {}, \"p50_sim_ms\": {}, \"p99_sim_ms\": {}, \
             \"max_sim_ms\": {}, \"plan_hit_rate\": {}, \"result_hit_rate\": {}, \
             \"result_invalidations\": {}, \"admissions\": {}, \"rejections\": {}, \
             \"queue_depth_high_water\": {}}}",
            m.name,
            m.caches,
            json_f64(m.wall_seconds),
            json_f64(m.ops_per_second),
            m.latency.p50(),
            m.latency.p99(),
            m.latency.max(),
            json_f64(rate(s.plan_cache_hits, s.plan_cache_misses)),
            json_f64(rate(s.result_cache_hits, s.result_cache_misses)),
            s.result_cache_invalidations,
            s.admissions,
            s.rejections,
            s.queue_depth_high_water,
        );
        json.push_str(if i + 1 < mixes.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"skew_caches_on_over_off_throughput\": {},",
        json_f64(speedup)
    );

    // Fairness: per-priority-class simulated latency on the skewed
    // caches-on tier (priority = 1 + tenant % classes).
    let classes = fairness_rows(&mixes[2].1);
    json.push_str("  \"fairness\": [\n");
    for (i, (class, h)) in classes.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"priority\": {}, \"ops\": {}, \"p50_sim_ms\": {}, \
             \"p99_sim_ms\": {}, \"max_sim_ms\": {}}}",
            class,
            h.count(),
            h.p50(),
            h.p99(),
            h.max(),
        );
        json.push_str(if i + 1 < classes.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_emits_all_mixes_and_clears_the_speedup_bar() {
        let json = serving_sweep();
        assert!(json.contains("\"pr\": 9"));
        assert_eq!(json.matches("\"mix\": \"uniform\"").count(), 2);
        assert_eq!(json.matches("\"mix\": \"shape_skewed\"").count(), 2);
        assert_eq!(json.matches("\"priority\": ").count(), 3);
        assert!(json.contains("\"skew_caches_on_over_off_throughput\""));
    }
}
