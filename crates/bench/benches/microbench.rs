//! Criterion micro-benchmarks.
//!
//! One group per experimental theme of the paper:
//!
//! * `fig9_*` — end-to-end query latency per strategy at a fixed size
//!   (criterion-grade version of one Fig. 9 column);
//! * `vii_b_boundary` — the §VII-B extensibility boundary in isolation:
//!   translate + assign + verify per key, FUDJ proxy path vs native;
//! * `fig12c_local_join` — plane-sweep vs nested-loop local join;
//! * `substrate` — wire encode/decode and tokenizer throughput, the
//!   utilities the engine leans on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fudj_bench::runner::{measure, RunConfig, Strategy};
use fudj_bench::workloads::Workload;
use fudj_core::{EngineJoin, FudjEngineJoin, ProxyJoin, Side};
use fudj_geo::{plane_sweep_join, sweep::nested_loop_rect_join, Point, Polygon, Rect};
use fudj_joins::builtin::BuiltinSpatialJoin;
use fudj_joins::SpatialFudj;
use fudj_types::{wire, Row, Value};
use rand::{rngs::SmallRng, Rng, SeedableRng};
use std::hint::black_box;
use std::sync::Arc;

fn fig9_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_query_latency");
    group.sample_size(10);
    for workload in [Workload::Spatial, Workload::Interval, Workload::Text] {
        for strategy in [Strategy::Fudj, Strategy::Builtin, Strategy::OnTop] {
            let n = if strategy == Strategy::OnTop {
                500
            } else {
                2_000
            };
            let cfg = RunConfig {
                workers: 4,
                buckets: match workload {
                    Workload::Spatial => Some(48),
                    Workload::Interval => Some(256),
                    Workload::Text => None,
                },
                ..RunConfig::new(workload, strategy, n)
            };
            group.bench_with_input(
                BenchmarkId::new(workload.name(), format!("{}_{n}", strategy.name())),
                &cfg,
                |b, cfg| b.iter(|| black_box(measure(cfg).rows)),
            );
        }
    }
    group.finish();
}

fn vii_b_boundary(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(1);
    let polys: Vec<Value> = (0..512)
        .map(|_| {
            let x = rng.gen_range(0.0..90.0);
            let y = rng.gen_range(0.0..90.0);
            Value::polygon(Polygon::from_rect(&Rect::new(x, y, x + 4.0, y + 4.0)))
        })
        .collect();

    let fudj: Arc<dyn EngineJoin> = Arc::new(FudjEngineJoin::new(Arc::new(ProxyJoin::new(
        SpatialFudj::new(),
    ))));
    let native: Arc<dyn EngineJoin> = Arc::new(BuiltinSpatialJoin::new());

    let mut group = c.benchmark_group("vii_b_boundary");
    for (name, ej) in [("fudj_proxy", &fudj), ("builtin_native", &native)] {
        // Summarize + divide once, outside the timed loop.
        let mut s = ej.new_summary(Side::Left);
        for p in &polys {
            ej.local_aggregate(Side::Left, p, &mut s).unwrap();
        }
        let plan = ej.divide(&s, &s, &[Value::Int64(32)]).unwrap();

        group.bench_function(BenchmarkId::new("assign_512_keys", name), |b| {
            let mut out = Vec::new();
            b.iter(|| {
                for p in &polys {
                    out.clear();
                    ej.assign(Side::Left, p, &plan, &mut out).unwrap();
                    black_box(&out);
                }
            })
        });

        group.bench_function(BenchmarkId::new("verify_512_pairs", name), |b| {
            b.iter(|| {
                for pair in polys.chunks_exact(2) {
                    black_box(ej.verify(0, &pair[0], 0, &pair[1], &plan).unwrap());
                }
            })
        });
    }
    group.finish();
}

fn fig12c_local_join(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(2);
    let mut rects = |n: usize| -> Vec<Rect> {
        (0..n)
            .map(|_| {
                let x = rng.gen_range(0.0..100.0);
                let y = rng.gen_range(0.0..100.0);
                Rect::new(
                    x,
                    y,
                    x + rng.gen_range(0.1..5.0),
                    y + rng.gen_range(0.1..5.0),
                )
            })
            .collect()
    };
    let left = rects(400);
    let right = rects(400);

    let mut group = c.benchmark_group("fig12c_local_join");
    group.bench_function("nested_loop_400x400", |b| {
        b.iter(|| black_box(nested_loop_rect_join(&left, &right).len()))
    });
    group.bench_function("plane_sweep_400x400", |b| {
        b.iter(|| black_box(plane_sweep_join(&left, &right).len()))
    });
    group.finish();
}

fn substrate(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate");

    // Wire format round trip of a typical joined row.
    let row = Row::new(vec![
        Value::Uuid(42),
        Value::polygon(Polygon::from_rect(&Rect::new(0.0, 0.0, 5.0, 5.0))),
        Value::str("river, scenic, camping"),
        Value::Point(Point::new(1.0, 2.0)),
        Value::Int64(7),
    ]);
    group.bench_function("wire_roundtrip_row", |b| {
        let mut buf = bytes::BytesMut::with_capacity(256);
        b.iter(|| {
            buf.clear();
            wire::encode_row(&row, &mut buf);
            let mut bytes = buf.clone().freeze();
            black_box(wire::decode_row(&mut bytes).unwrap());
        })
    });

    // Tokenizer + Jaccard, the text join's verify hot path.
    let a = fudj_text::token_set("great hiking trail with scenic river views near the lake");
    let bset = fudj_text::token_set("scenic river hiking trail with great views of the peak");
    group.bench_function("jaccard_of_sorted", |b| {
        b.iter(|| black_box(fudj_text::jaccard_of_sorted(&a, &bset)))
    });
    group.bench_function("tokenize_review", |b| {
        b.iter(|| {
            black_box(fudj_text::token_set(
                "the camping spot was quiet and clean, great views, would return",
            ))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    fig9_queries,
    vii_b_boundary,
    fig12c_local_join,
    substrate
);
criterion_main!(benches);
