//! Type-erased, shippable join state.
//!
//! The engine must move two opaque things on behalf of a join library:
//! `Summary` objects (gathered during SUMMARIZE) and the `PPlan` (broadcast
//! to every worker before PARTITION). The paper handles these as regular
//! records "with type Object"; here they are [`StateObject`] trait objects —
//! cloneable (for broadcast), serializable (so exchanges can account for
//! their bytes), and downcastable (so the owning library gets its concrete
//! type back on the other side).

use std::any::Any;
use std::fmt;

/// A cloneable, serializable, downcastable state blob.
///
/// Implemented automatically for any `Clone + Serialize + Debug` type, so a
/// join library's `Summary`/`PPlan` structs qualify with zero ceremony.
pub trait StateObject: Any + Send + Sync {
    /// Clone behind the trait object.
    fn clone_box(&self) -> Box<dyn StateObject>;
    /// Serialized size in bytes — what shipping this state costs on the
    /// (simulated) wire. Uses a compact self-describing encoding.
    fn serialized_len(&self) -> usize;
    /// Debug rendering for EXPLAIN output and error messages.
    fn debug_string(&self) -> String;
    /// Upcast for downcasting.
    fn as_any(&self) -> &dyn Any;
    /// Mutable upcast for in-place updates (hot path of local aggregation).
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<T> StateObject for T
where
    T: Any + Send + Sync + Clone + serde::Serialize + fmt::Debug,
{
    fn clone_box(&self) -> Box<dyn StateObject> {
        Box::new(self.clone())
    }

    fn serialized_len(&self) -> usize {
        // JSON is not the engine's wire format, but its length is a stable,
        // format-agnostic proxy for "how big is this state" in metrics.
        count_ser::to_vec_len(self)
    }

    fn debug_string(&self) -> String {
        format!("{self:?}")
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Tiny internal serializer used only to measure state size: walks serde's
/// data model and counts bytes a compact binary encoding would use. Avoids
/// pulling in a full serde format crate for a metric.
mod count_ser {
    use serde::ser::{self, Serialize};

    pub fn to_vec_len<T: Serialize>(v: &T) -> usize {
        let mut c = Counter(0);
        // Serialization of plain-old-data cannot fail; fall back to 0 if a
        // pathological type sneaks in rather than poisoning metrics.
        let _ = v.serialize(&mut c);
        c.0
    }

    pub struct Counter(pub usize);

    #[derive(Debug)]
    pub struct NoErr;
    impl std::fmt::Display for NoErr {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "counting serializer cannot fail")
        }
    }
    impl std::error::Error for NoErr {}
    impl ser::Error for NoErr {
        fn custom<T: std::fmt::Display>(_: T) -> Self {
            NoErr
        }
    }

    macro_rules! count_prim {
        ($f:ident, $t:ty, $n:expr) => {
            fn $f(self, _v: $t) -> Result<(), NoErr> {
                self.0 += $n;
                Ok(())
            }
        };
    }

    impl<'a> ser::Serializer for &'a mut Counter {
        type Ok = ();
        type Error = NoErr;
        type SerializeSeq = &'a mut Counter;
        type SerializeTuple = &'a mut Counter;
        type SerializeTupleStruct = &'a mut Counter;
        type SerializeTupleVariant = &'a mut Counter;
        type SerializeMap = &'a mut Counter;
        type SerializeStruct = &'a mut Counter;
        type SerializeStructVariant = &'a mut Counter;

        count_prim!(serialize_bool, bool, 1);
        count_prim!(serialize_i8, i8, 1);
        count_prim!(serialize_i16, i16, 2);
        count_prim!(serialize_i32, i32, 4);
        count_prim!(serialize_i64, i64, 8);
        count_prim!(serialize_u8, u8, 1);
        count_prim!(serialize_u16, u16, 2);
        count_prim!(serialize_u32, u32, 4);
        count_prim!(serialize_u64, u64, 8);
        count_prim!(serialize_f32, f32, 4);
        count_prim!(serialize_f64, f64, 8);
        count_prim!(serialize_char, char, 4);

        fn serialize_str(self, v: &str) -> Result<(), NoErr> {
            self.0 += 4 + v.len();
            Ok(())
        }
        fn serialize_bytes(self, v: &[u8]) -> Result<(), NoErr> {
            self.0 += 4 + v.len();
            Ok(())
        }
        fn serialize_none(self) -> Result<(), NoErr> {
            self.0 += 1;
            Ok(())
        }
        fn serialize_some<T: ?Sized + Serialize>(self, v: &T) -> Result<(), NoErr> {
            self.0 += 1;
            v.serialize(self)
        }
        fn serialize_unit(self) -> Result<(), NoErr> {
            Ok(())
        }
        fn serialize_unit_struct(self, _: &'static str) -> Result<(), NoErr> {
            Ok(())
        }
        fn serialize_unit_variant(
            self,
            _: &'static str,
            _: u32,
            _: &'static str,
        ) -> Result<(), NoErr> {
            self.0 += 4;
            Ok(())
        }
        fn serialize_newtype_struct<T: ?Sized + Serialize>(
            self,
            _: &'static str,
            v: &T,
        ) -> Result<(), NoErr> {
            v.serialize(self)
        }
        fn serialize_newtype_variant<T: ?Sized + Serialize>(
            self,
            _: &'static str,
            _: u32,
            _: &'static str,
            v: &T,
        ) -> Result<(), NoErr> {
            self.0 += 4;
            v.serialize(self)
        }
        fn serialize_seq(self, _: Option<usize>) -> Result<Self::SerializeSeq, NoErr> {
            self.0 += 4;
            Ok(self)
        }
        fn serialize_tuple(self, _: usize) -> Result<Self::SerializeTuple, NoErr> {
            Ok(self)
        }
        fn serialize_tuple_struct(
            self,
            _: &'static str,
            _: usize,
        ) -> Result<Self::SerializeTupleStruct, NoErr> {
            Ok(self)
        }
        fn serialize_tuple_variant(
            self,
            _: &'static str,
            _: u32,
            _: &'static str,
            _: usize,
        ) -> Result<Self::SerializeTupleVariant, NoErr> {
            self.0 += 4;
            Ok(self)
        }
        fn serialize_map(self, _: Option<usize>) -> Result<Self::SerializeMap, NoErr> {
            self.0 += 4;
            Ok(self)
        }
        fn serialize_struct(
            self,
            _: &'static str,
            _: usize,
        ) -> Result<Self::SerializeStruct, NoErr> {
            Ok(self)
        }
        fn serialize_struct_variant(
            self,
            _: &'static str,
            _: u32,
            _: &'static str,
            _: usize,
        ) -> Result<Self::SerializeStructVariant, NoErr> {
            self.0 += 4;
            Ok(self)
        }
    }

    macro_rules! impl_compound {
        ($tr:path, $fn_name:ident) => {
            impl<'a> $tr for &'a mut Counter {
                type Ok = ();
                type Error = NoErr;
                fn $fn_name<T: ?Sized + Serialize>(&mut self, v: &T) -> Result<(), NoErr> {
                    v.serialize(&mut **self)
                }
                fn end(self) -> Result<(), NoErr> {
                    Ok(())
                }
            }
        };
    }
    impl_compound!(ser::SerializeSeq, serialize_element);
    impl_compound!(ser::SerializeTuple, serialize_element);
    impl_compound!(ser::SerializeTupleStruct, serialize_field);
    impl_compound!(ser::SerializeTupleVariant, serialize_field);

    impl ser::SerializeMap for &mut Counter {
        type Ok = ();
        type Error = NoErr;
        fn serialize_key<T: ?Sized + Serialize>(&mut self, k: &T) -> Result<(), NoErr> {
            k.serialize(&mut **self)
        }
        fn serialize_value<T: ?Sized + Serialize>(&mut self, v: &T) -> Result<(), NoErr> {
            v.serialize(&mut **self)
        }
        fn end(self) -> Result<(), NoErr> {
            Ok(())
        }
    }

    impl ser::SerializeStruct for &mut Counter {
        type Ok = ();
        type Error = NoErr;
        fn serialize_field<T: ?Sized + Serialize>(
            &mut self,
            _: &'static str,
            v: &T,
        ) -> Result<(), NoErr> {
            v.serialize(&mut **self)
        }
        fn end(self) -> Result<(), NoErr> {
            Ok(())
        }
    }

    impl ser::SerializeStructVariant for &mut Counter {
        type Ok = ();
        type Error = NoErr;
        fn serialize_field<T: ?Sized + Serialize>(
            &mut self,
            _: &'static str,
            v: &T,
        ) -> Result<(), NoErr> {
            v.serialize(&mut **self)
        }
        fn end(self) -> Result<(), NoErr> {
            Ok(())
        }
    }
}

macro_rules! state_wrapper {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        pub struct $name(Box<dyn StateObject>);

        impl $name {
            /// Wrap a concrete state value.
            pub fn new<T: StateObject>(value: T) -> Self {
                $name(Box::new(value))
            }

            /// Borrow the concrete state, if it is a `T`.
            pub fn downcast_ref<T: 'static>(&self) -> Option<&T> {
                self.0.as_any().downcast_ref::<T>()
            }

            /// Mutably borrow the concrete state, if it is a `T`.
            pub fn downcast_mut<T: 'static>(&mut self) -> Option<&mut T> {
                self.0.as_any_mut().downcast_mut::<T>()
            }

            /// Serialized size in bytes (for exchange metrics).
            pub fn serialized_len(&self) -> usize {
                self.0.serialized_len()
            }
        }

        impl Clone for $name {
            fn clone(&self) -> Self {
                $name(self.0.clone_box())
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}({})", stringify!($name), self.0.debug_string())
            }
        }
    };
}

state_wrapper! {
    /// A join library's `Summary`, type-erased for the engine.
    SummaryState
}

state_wrapper! {
    /// A join library's `PPlan`, type-erased for the engine. Broadcast to
    /// every worker between the SUMMARIZE and PARTITION phases.
    PPlanState
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Serialize;

    #[derive(Clone, Debug, PartialEq, Serialize)]
    struct Mbr {
        min_x: f64,
        min_y: f64,
        max_x: f64,
        max_y: f64,
    }

    #[test]
    fn downcast_roundtrip() {
        let m = Mbr {
            min_x: 0.0,
            min_y: 1.0,
            max_x: 2.0,
            max_y: 3.0,
        };
        let s = SummaryState::new(m.clone());
        assert_eq!(s.downcast_ref::<Mbr>(), Some(&m));
        assert_eq!(s.downcast_ref::<String>(), None);
    }

    #[test]
    fn clone_preserves_value() {
        let s = PPlanState::new(vec![1u64, 2, 3]);
        let c = s.clone();
        assert_eq!(c.downcast_ref::<Vec<u64>>().unwrap(), &vec![1, 2, 3]);
    }

    #[test]
    fn serialized_len_tracks_payload() {
        let small = SummaryState::new(vec![0u64; 1]);
        let big = SummaryState::new(vec![0u64; 100]);
        assert!(big.serialized_len() > small.serialized_len());
        // 4-byte length prefix + 100 × 8 bytes.
        assert_eq!(big.serialized_len(), 4 + 800);
    }

    #[test]
    fn serialized_len_of_strings_and_maps() {
        use std::collections::HashMap;
        let mut m: HashMap<String, u64> = HashMap::new();
        m.insert("tok".into(), 3);
        let s = SummaryState::new(m);
        // 4 (map) + 4+3 (key) + 8 (value)
        assert_eq!(s.serialized_len(), 19);
    }

    #[test]
    fn debug_string_shows_content() {
        let s = SummaryState::new(42i64);
        assert!(format!("{s:?}").contains("42"));
    }
}
