//! The join registry — `CREATE JOIN` / `DROP JOIN` metadata.
//!
//! Mirrors §VI-A: libraries are uploaded first (`install_library`), then
//! `CREATE JOIN <name>(<args>) RETURNS boolean AS "<class>" AT <library>`
//! binds a predicate-function signature to a class inside a library. The
//! query optimizer consults the registry to detect FUDJ predicates in join
//! conditions (§VI-C's detection step is a lookup of the predicate function
//! signature here).

use crate::guard::GuardConfig;
use crate::library::JoinLibrary;
use crate::model::JoinAlgorithm;
use fudj_types::{DataType, FudjError, Result};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A registered join: the user-visible predicate signature plus the library
/// binding and a shared algorithm instance.
pub struct JoinDefinition {
    name: String,
    /// Declared argument types: the two key parameters followed by any
    /// query-time parameters (e.g. the similarity threshold).
    arg_types: Vec<DataType>,
    library: String,
    class: String,
    algorithm: Arc<dyn JoinAlgorithm>,
    /// Guardrail configuration for queries using this join (`WITH (...)`
    /// options of `CREATE JOIN`).
    guard: GuardConfig,
    /// Default per-worker row budget for queries using this join (the
    /// `memory_budget_rows` option of `CREATE JOIN`); exceeding it makes
    /// the join grace-partition to spill files. Session-level planner
    /// options override it per query.
    memory_budget_rows: Option<usize>,
    /// In-flight query plans currently holding this definition. `DROP JOIN`
    /// refuses while non-zero, so no query ever observes a half-removed
    /// registry entry.
    active: Arc<AtomicU64>,
}

/// RAII lease marking a [`JoinDefinition`] as referenced by an in-flight
/// query plan. Held by the lowered plan; released on drop.
pub struct JoinLease {
    active: Arc<AtomicU64>,
}

impl Drop for JoinLease {
    fn drop(&mut self) {
        self.active.fetch_sub(1, Ordering::AcqRel);
    }
}

impl JoinDefinition {
    /// The predicate-function name queries call.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declared argument types (keys first, then parameters).
    pub fn arg_types(&self) -> &[DataType] {
        &self.arg_types
    }

    /// Number of query-time parameters after the two key arguments.
    pub fn param_count(&self) -> usize {
        self.arg_types.len().saturating_sub(2)
    }

    /// Source library name.
    pub fn library(&self) -> &str {
        &self.library
    }

    /// Class name inside the library.
    pub fn class(&self) -> &str {
        &self.class
    }

    /// The algorithm the engine executes.
    pub fn algorithm(&self) -> &Arc<dyn JoinAlgorithm> {
        &self.algorithm
    }

    /// Guardrail configuration for this join.
    pub fn guard(&self) -> &GuardConfig {
        &self.guard
    }

    /// Default per-worker row budget before the join spills, if declared.
    pub fn memory_budget_rows(&self) -> Option<usize> {
        self.memory_budget_rows
    }

    /// Mark this definition as referenced by an in-flight plan. While any
    /// lease is alive, [`JoinRegistry::drop_join`] fails cleanly.
    pub fn lease(&self) -> JoinLease {
        self.active.fetch_add(1, Ordering::AcqRel);
        JoinLease {
            active: self.active.clone(),
        }
    }

    /// Number of live leases.
    pub fn active_leases(&self) -> u64 {
        self.active.load(Ordering::Acquire)
    }
}

impl fmt::Debug for JoinDefinition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JOIN {}({}) AS {:?} AT {}",
            self.name,
            self.arg_types
                .iter()
                .map(|t| t.to_string())
                .collect::<Vec<_>>()
                .join(", "),
            self.class,
            self.library
        )
    }
}

/// A registry mutation offered to a [`RegistrySink`] *before* it is
/// applied. Borrowed, so sinks cannot retain stale definitions.
pub enum RegistryEvent<'a> {
    /// `CREATE JOIN` about to insert this definition.
    Created(&'a JoinDefinition),
    /// `DROP JOIN` about to remove the named join.
    Dropped(&'a str),
}

/// Observer invoked after a registry mutation has passed all validation
/// (library/class resolution, arity, duplicate and lease checks) but
/// before it lands in the map. Returning an error aborts the DDL with
/// the registry untouched — this is the log-before-apply hook the
/// durability layer uses to WAL `CREATE JOIN` / `DROP JOIN`.
pub trait RegistrySink: Send + Sync {
    /// Observe (and possibly veto) a validated mutation.
    fn on_event(&self, event: RegistryEvent<'_>) -> Result<()>;
}

/// Thread-safe registry of installed libraries and created joins.
#[derive(Default)]
pub struct JoinRegistry {
    libraries: RwLock<HashMap<String, Arc<JoinLibrary>>>,
    joins: RwLock<HashMap<String, Arc<JoinDefinition>>>,
    sink: RwLock<Option<Arc<dyn RegistrySink>>>,
    /// DDL version: bumped on every successful `CREATE JOIN` / `DROP
    /// JOIN`. A plan cached before a DDL may reference a definition that
    /// no longer exists (or carry a stale guard config), so result/plan
    /// caches fold this into their keys.
    ddl_epoch: AtomicU64,
}

impl JoinRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Upload a library (the terminal upload step of §VI-A). Re-installing
    /// under an existing name replaces it — the paper's "swift deployment of
    /// new FUDJ packages within seconds" — without disturbing joins already
    /// created from the previous version (they hold their own instances).
    pub fn install_library(&self, library: JoinLibrary) {
        self.libraries
            .write()
            .insert(library.name().to_owned(), Arc::new(library));
    }

    /// Installed library names, sorted.
    pub fn library_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.libraries.read().keys().cloned().collect();
        v.sort_unstable();
        v
    }

    /// `CREATE JOIN name(arg_types...) RETURNS boolean AS class AT library`.
    ///
    /// The first two argument types are the join keys; the rest are
    /// query-time parameters forwarded to `divide`.
    pub fn create_join(
        &self,
        name: impl Into<String>,
        arg_types: Vec<DataType>,
        class: impl Into<String>,
        library: impl Into<String>,
    ) -> Result<Arc<JoinDefinition>> {
        self.create_join_with_guard(name, arg_types, class, library, GuardConfig::default())
    }

    /// [`Self::create_join`] with explicit guardrail options (the `WITH
    /// (...)` clause of `CREATE JOIN`).
    pub fn create_join_with_guard(
        &self,
        name: impl Into<String>,
        arg_types: Vec<DataType>,
        class: impl Into<String>,
        library: impl Into<String>,
        guard: GuardConfig,
    ) -> Result<Arc<JoinDefinition>> {
        self.create_join_full(name, arg_types, class, library, guard, None)
    }

    /// [`Self::create_join_with_guard`] plus a default per-worker spill
    /// budget (the `memory_budget_rows` option of `CREATE JOIN`).
    pub fn create_join_full(
        &self,
        name: impl Into<String>,
        arg_types: Vec<DataType>,
        class: impl Into<String>,
        library: impl Into<String>,
        guard: GuardConfig,
        memory_budget_rows: Option<usize>,
    ) -> Result<Arc<JoinDefinition>> {
        let name = name.into();
        let library = library.into();
        let class = class.into();
        if arg_types.len() < 2 {
            return Err(FudjError::Catalog(format!(
                "join {name:?} needs at least two key arguments, got {}",
                arg_types.len()
            )));
        }
        let lib = self
            .libraries
            .read()
            .get(&library)
            .cloned()
            .ok_or_else(|| FudjError::JoinNotFound(format!("library {library:?}")))?;
        let algorithm = lib.instantiate(&class)?;

        let mut joins = self.joins.write();
        if joins.contains_key(&name) {
            return Err(FudjError::Catalog(format!("join {name:?} already exists")));
        }
        let def = Arc::new(JoinDefinition {
            name: name.clone(),
            arg_types,
            library,
            class,
            algorithm,
            guard,
            memory_budget_rows,
            active: Arc::new(AtomicU64::new(0)),
        });
        if let Some(sink) = self.sink.read().clone() {
            sink.on_event(RegistryEvent::Created(&def))?;
        }
        joins.insert(name, def.clone());
        self.ddl_epoch.fetch_add(1, Ordering::AcqRel);
        Ok(def)
    }

    /// `DROP JOIN name(...)`. Fails cleanly (entry untouched) while any
    /// in-flight plan holds a lease on the definition.
    pub fn drop_join(&self, name: &str) -> Result<()> {
        let mut joins = self.joins.write();
        let def = joins
            .get(name)
            .ok_or_else(|| FudjError::JoinNotFound(name.to_owned()))?;
        let leases = def.active_leases();
        if leases > 0 {
            return Err(FudjError::Catalog(format!(
                "join {name:?} is referenced by {leases} in-flight quer{}",
                if leases == 1 { "y" } else { "ies" }
            )));
        }
        if let Some(sink) = self.sink.read().clone() {
            sink.on_event(RegistryEvent::Dropped(name))?;
        }
        joins.remove(name);
        self.ddl_epoch.fetch_add(1, Ordering::AcqRel);
        Ok(())
    }

    /// DDL epoch: advances on every successful join create/drop, never on
    /// lookups or library installs. Part of result-cache keys.
    pub fn ddl_epoch(&self) -> u64 {
        self.ddl_epoch.load(Ordering::Acquire)
    }

    /// Install (or with `None`, remove) the mutation observer. Used by the
    /// durability layer to WAL join DDL before it takes effect.
    pub fn set_sink(&self, sink: Option<Arc<dyn RegistrySink>>) {
        *self.sink.write() = sink;
    }

    /// FUDJ predicate detection: is `name` a registered join function?
    pub fn get(&self, name: &str) -> Option<Arc<JoinDefinition>> {
        self.joins.read().get(name).cloned()
    }

    /// Registered join names, sorted.
    pub fn join_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.joins.read().keys().cloned().collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flexible::{FlexibleJoin, ProxyJoin};
    use crate::model::BucketId;
    use fudj_types::ExtValue;

    struct Dummy;
    impl FlexibleJoin for Dummy {
        type Summary = i64;
        type PPlan = i64;
        fn name(&self) -> &str {
            "dummy"
        }
        fn summarize(&self, _: &ExtValue, _: &mut i64) -> Result<()> {
            Ok(())
        }
        fn merge_summaries(&self, a: i64, _: i64) -> i64 {
            a
        }
        fn divide(&self, _: &i64, _: &i64, _: &[ExtValue]) -> Result<i64> {
            Ok(1)
        }
        fn assign(&self, _: &ExtValue, _: &i64, out: &mut Vec<BucketId>) -> Result<()> {
            out.push(0);
            Ok(())
        }
        fn verify(&self, _: &ExtValue, _: &ExtValue, _: &i64) -> Result<bool> {
            Ok(true)
        }
    }

    fn registry_with_lib() -> JoinRegistry {
        let reg = JoinRegistry::new();
        let lib = JoinLibrary::builder("flexiblejoins")
            .with_class("setsimilarity.SetSimilarityJoin", || {
                Arc::new(ProxyJoin::new(Dummy))
            })
            .build();
        reg.install_library(lib);
        reg
    }

    #[test]
    fn create_and_drop_join() {
        let reg = registry_with_lib();
        // The paper's Query 4, structurally.
        let def = reg
            .create_join(
                "text_similarity_join",
                vec![DataType::String, DataType::String, DataType::Float64],
                "setsimilarity.SetSimilarityJoin",
                "flexiblejoins",
            )
            .unwrap();
        assert_eq!(def.param_count(), 1);
        assert!(reg.get("text_similarity_join").is_some());
        assert_eq!(reg.join_names(), vec!["text_similarity_join"]);

        reg.drop_join("text_similarity_join").unwrap();
        assert!(reg.get("text_similarity_join").is_none());
        assert!(reg.drop_join("text_similarity_join").is_err());
    }

    #[test]
    fn ddl_epoch_tracks_join_ddl() {
        let reg = registry_with_lib();
        assert_eq!(reg.ddl_epoch(), 0);
        reg.create_join(
            "j",
            vec![DataType::String, DataType::String],
            "setsimilarity.SetSimilarityJoin",
            "flexiblejoins",
        )
        .unwrap();
        assert_eq!(reg.ddl_epoch(), 1);
        let _ = reg.get("j");
        let _ = reg.join_names();
        assert_eq!(reg.ddl_epoch(), 1, "lookups never bump");
        assert!(reg.drop_join("ghost").is_err());
        assert_eq!(reg.ddl_epoch(), 1, "failed DDL never bumps");
        reg.drop_join("j").unwrap();
        assert_eq!(reg.ddl_epoch(), 2);
    }

    #[test]
    fn create_requires_library_and_class() {
        let reg = registry_with_lib();
        assert!(matches!(
            reg.create_join(
                "j",
                vec![DataType::String, DataType::String],
                "x.Y",
                "missing"
            ),
            Err(FudjError::JoinNotFound(_))
        ));
        assert!(matches!(
            reg.create_join(
                "j",
                vec![DataType::String, DataType::String],
                "x.Y",
                "flexiblejoins"
            ),
            Err(FudjError::JoinNotFound(_))
        ));
    }

    #[test]
    fn create_validates_arity_and_duplicates() {
        let reg = registry_with_lib();
        assert!(reg
            .create_join(
                "j",
                vec![DataType::String],
                "setsimilarity.SetSimilarityJoin",
                "flexiblejoins"
            )
            .is_err());
        reg.create_join(
            "j",
            vec![DataType::String, DataType::String],
            "setsimilarity.SetSimilarityJoin",
            "flexiblejoins",
        )
        .unwrap();
        assert!(reg
            .create_join(
                "j",
                vec![DataType::String, DataType::String],
                "setsimilarity.SetSimilarityJoin",
                "flexiblejoins"
            )
            .is_err());
    }

    #[test]
    fn sink_observes_validated_mutations_and_can_veto() {
        use parking_lot::Mutex;
        struct Recorder {
            events: Mutex<Vec<String>>,
            veto: std::sync::atomic::AtomicBool,
        }
        impl RegistrySink for Recorder {
            fn on_event(&self, event: RegistryEvent<'_>) -> Result<()> {
                if self.veto.load(Ordering::Acquire) {
                    return Err(FudjError::Storage("disk full".into()));
                }
                self.events.lock().push(match event {
                    RegistryEvent::Created(def) => format!("create {}", def.name()),
                    RegistryEvent::Dropped(name) => format!("drop {name}"),
                });
                Ok(())
            }
        }
        let reg = registry_with_lib();
        let rec = Arc::new(Recorder {
            events: Mutex::new(Vec::new()),
            veto: std::sync::atomic::AtomicBool::new(false),
        });
        reg.set_sink(Some(rec.clone()));

        // Invalid DDL never reaches the sink.
        assert!(reg
            .create_join("bad", vec![DataType::String], "x.Y", "flexiblejoins")
            .is_err());
        assert!(rec.events.lock().is_empty());

        reg.create_join(
            "j",
            vec![DataType::String, DataType::String],
            "setsimilarity.SetSimilarityJoin",
            "flexiblejoins",
        )
        .unwrap();
        reg.drop_join("j").unwrap();
        assert_eq!(*rec.events.lock(), vec!["create j", "drop j"]);

        // A vetoing sink aborts the DDL with the registry untouched.
        rec.veto.store(true, Ordering::Release);
        assert!(reg
            .create_join(
                "j2",
                vec![DataType::String, DataType::String],
                "setsimilarity.SetSimilarityJoin",
                "flexiblejoins",
            )
            .is_err());
        assert!(reg.get("j2").is_none());
        reg.set_sink(None);
        reg.create_join(
            "j2",
            vec![DataType::String, DataType::String],
            "setsimilarity.SetSimilarityJoin",
            "flexiblejoins",
        )
        .unwrap();
    }

    #[test]
    fn reinstalling_library_keeps_existing_joins_working() {
        let reg = registry_with_lib();
        let def = reg
            .create_join(
                "j",
                vec![DataType::String, DataType::String],
                "setsimilarity.SetSimilarityJoin",
                "flexiblejoins",
            )
            .unwrap();
        // Hot-swap the library (empty new version).
        reg.install_library(JoinLibrary::builder("flexiblejoins").build());
        assert_eq!(def.algorithm().name(), "dummy");
        // New creations against the gutted library fail.
        assert!(reg
            .create_join(
                "j2",
                vec![DataType::String, DataType::String],
                "setsimilarity.SetSimilarityJoin",
                "flexiblejoins"
            )
            .is_err());
    }
}
